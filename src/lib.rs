//! # midas-repro
//!
//! Umbrella crate for the reproduction of *"Dynamic estimation for medical
//! data management in a cloud federation"* (Le, Kantere, d'Orazio — EDBT/ICDT
//! 2019 workshops). It re-exports every workspace crate under one roof so the
//! examples and the cross-crate integration tests have a single dependency.
//!
//! Layer map (bottom to top):
//!
//! * [`linalg`] — dense matrices, solvers, statistics.
//! * [`dream`] — the paper's contribution: MLR + Algorithm 1 (adaptive
//!   training-window regression) behind the [`dream::CostEstimator`] trait.
//! * [`mlearn`] — the IReS baseline learners (least squares, bagging, MLP,
//!   kNN) and the Best-ML-model selector ("BML").
//! * [`moo`] — multi-objective optimization: Pareto dominance, NSGA-II,
//!   NSGA-G, weighted sum, Algorithm 2 (`best_in_pareto`).
//! * [`cloud`] — the cloud-federation substrate: providers, Table 1 instance
//!   catalogs, pricing, networking, data placement.
//! * [`engines`] — the multi-engine execution substrate: a columnar
//!   relational executor with Hive/PostgreSQL/Spark performance profiles and
//!   simulated load drift.
//! * [`tpch`] — TPC-H-style generator, the two-table queries Q12/Q13/Q14/Q17,
//!   and the medical schema of Example 2.1.
//! * [`ires`] — the IReS-like layer: history store, Modelling module, QEP
//!   enumeration, multi-objective optimizer integration.
//! * [`midas`] — the full system facade: submit → estimate → Pareto →
//!   select → execute → learn.

#![forbid(unsafe_code)]

pub use midas;
pub use midas_cloud as cloud;
pub use midas_dream as dream;
pub use midas_engines as engines;
pub use midas_ires as ires;
pub use midas_linalg as linalg;
pub use midas_mlearn as mlearn;
pub use midas_moo as moo;
pub use midas_tpch as tpch;
