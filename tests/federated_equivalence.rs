//! Fragmentation must not change query semantics: executing a two-table
//! query through the federated three-fragment path has to produce exactly
//! the table a single-process execution produces.

use midas_repro::cloud::federation::example_federation;
use midas_repro::engines::ops::execute;
use midas_repro::engines::sim::DriftIntensity;
use midas_repro::engines::{EngineKind, Placement};
use midas_repro::ires::scheduler::{Scheduler, SchedulerConfig};
use midas_repro::ires::CandidateConfig;
use midas_repro::tpch::gen::{GenConfig, TpchDb};
use midas_repro::tpch::queries::{q12, q13, q14, q17, TwoTableQuery};

fn run_locally(
    q: &TwoTableQuery,
    tables: &midas_repro::engines::Catalog,
) -> midas_repro::engines::Table {
    let mut catalog = tables.clone();
    let (left, _) = execute(&q.left_prepare, &catalog).expect("left prepare runs");
    let (right, _) = execute(&q.right_prepare, &catalog).expect("right prepare runs");
    catalog.insert("@frag0".to_string(), left);
    catalog.insert("@frag1".to_string(), right);
    let (out, _) = execute(&q.combine, &catalog).expect("combine runs");
    out
}

#[test]
fn federated_execution_matches_local_execution_for_every_query() {
    let (fed, a, b) = example_federation();
    let mut placement = Placement::new();
    placement.place("lineitem", a, EngineKind::Hive);
    placement.place("customer", a, EngineKind::Hive);
    placement.place("orders", b, EngineKind::PostgreSql);
    placement.place("part", b, EngineKind::PostgreSql);
    let db = TpchDb::generate(GenConfig::new(0.003, 17));

    let config = CandidateConfig {
        join_site: b,
        join_engine: EngineKind::Spark,
        instance_idx: 1,
        vm_count: 3,
    };

    for query in [
        q12("RAIL", "FOB", 1995),
        q13("pending", "deposits"),
        q14(1996, 4),
        q17("Brand#12", "SM CASE"),
    ] {
        let mut scheduler = Scheduler::new(
            &fed,
            placement.clone(),
            SchedulerConfig {
                seed: 4,
                drift: DriftIntensity::Strong,
                work_scale: 3.0, // must not affect results, only costs
                ..SchedulerConfig::default()
            },
        );
        let run = scheduler
            .execute_with_config(&query, &config, db.catalog())
            .unwrap_or_else(|e| panic!("{} failed: {e}", query.label));
        let local = run_locally(&query, db.catalog());
        assert_eq!(
            run.outcome.result, local,
            "{}: federated result differs from local",
            query.label
        );
    }
}

#[test]
fn join_site_choice_does_not_change_results() {
    let (fed, a, b) = example_federation();
    let mut placement = Placement::new();
    placement.place("lineitem", a, EngineKind::Hive);
    placement.place("orders", b, EngineKind::PostgreSql);
    let db = TpchDb::generate(GenConfig::new(0.003, 21));
    let query = q12("AIR", "TRUCK", 1996);

    let mut results = Vec::new();
    for (site, engine) in [(a, EngineKind::Hive), (b, EngineKind::PostgreSql), (a, EngineKind::Spark)]
    {
        let mut scheduler = Scheduler::new(
            &fed,
            placement.clone(),
            SchedulerConfig {
                seed: 9,
                drift: DriftIntensity::Mild,
                work_scale: 1.0,
                ..SchedulerConfig::default()
            },
        );
        let config = CandidateConfig {
            join_site: site,
            join_engine: engine,
            instance_idx: 0,
            vm_count: 1,
        };
        let run = scheduler
            .execute_with_config(&query, &config, db.catalog())
            .expect("plan executes");
        results.push(run.outcome.result);
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
}
