//! Cross-crate property-based tests.

use midas_repro::cloud::{Money, PricingModel};
use midas_repro::engines::data::{Column, ColumnData, Table};
use midas_repro::engines::Catalog;
use midas_repro::engines::expr::Expr;
use midas_repro::engines::ops::{execute, JoinType, PhysicalPlan};
use midas_repro::moo::{fast_non_dominated_sort, pareto_front_indices};
use midas_repro::tpch::gen::{GenConfig, TpchDb};
use proptest::prelude::*;


/// Reference nested-loop inner join for equivalence checking.
fn nested_loop_join(
    left: &[(i64, i64)],
    right: &[(i64, i64)],
) -> Vec<(i64, i64, i64, i64)> {
    let mut out = Vec::new();
    for &(lk, lv) in left {
        for &(rk, rv) in right {
            if lk == rk {
                out.push((lk, lv, rk, rv));
            }
        }
    }
    out
}

fn table_of(name: &str, rows: &[(i64, i64)]) -> Table {
    Table::new(
        name,
        vec![
            Column::new("k", ColumnData::Int64(rows.iter().map(|r| r.0).collect())),
            Column::new("v", ColumnData::Int64(rows.iter().map(|r| r.1).collect())),
        ],
    )
    .expect("columns aligned")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The hash join agrees with a nested-loop join on any input (modulo
    /// row order, which we normalize by sorting).
    #[test]
    fn hash_join_equals_nested_loop(
        left in proptest::collection::vec((0i64..20, -100i64..100), 0..40),
        right in proptest::collection::vec((0i64..20, -100i64..100), 0..40),
    ) {
        let mut catalog = Catalog::new();
        catalog.insert("l".to_string(), table_of("l", &left));
        catalog.insert("r".to_string(), table_of("r", &right));
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::Scan { table: "l".to_string() }),
            right: Box::new(PhysicalPlan::Scan { table: "r".to_string() }),
            left_keys: vec![0],
            right_keys: vec![0],
            join_type: JoinType::Inner,
        };
        let (out, _) = execute(&plan, &catalog).expect("join runs");
        let mut got: Vec<(i64, i64, i64, i64)> = (0..out.n_rows())
            .map(|i| {
                let row = out.row(i);
                match (&row[0], &row[1], &row[2], &row[3]) {
                    (
                        midas_repro::engines::Value::Int64(a),
                        midas_repro::engines::Value::Int64(b),
                        midas_repro::engines::Value::Int64(c),
                        midas_repro::engines::Value::Int64(d),
                    ) => (*a, *b, *c, *d),
                    other => panic!("unexpected row {other:?}"),
                }
            })
            .collect();
        let mut want = nested_loop_join(&left, &right);
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Filter then count == count of rows satisfying the predicate.
    #[test]
    fn filter_selectivity_is_exact(
        rows in proptest::collection::vec((0i64..50, -50i64..50), 1..60),
        threshold in -50i64..50,
    ) {
        let mut catalog = Catalog::new();
        catalog.insert("t".to_string(), table_of("t", &rows));
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Scan { table: "t".to_string() }),
            predicate: Expr::col(1).ge(Expr::int(threshold)),
        };
        let (out, profile) = execute(&plan, &catalog).expect("filter runs");
        let want = rows.iter().filter(|r| r.1 >= threshold).count();
        prop_assert_eq!(out.n_rows(), want);
        prop_assert_eq!(profile.ops.last().expect("ops recorded").rows_out as usize, want);
    }

    /// Pareto front members are mutually non-dominated and every
    /// non-member is dominated by some member.
    #[test]
    fn pareto_front_is_sound_and_complete(
        costs in proptest::collection::vec(
            proptest::collection::vec(0.0f64..100.0, 2..4usize), 1..30),
    ) {
        // Normalize inner length (proptest generates ragged).
        let dims = costs[0].len();
        let costs: Vec<Vec<f64>> = costs.into_iter().map(|mut c| {
            c.resize(dims, 1.0);
            c
        }).collect();
        let front = pareto_front_indices(&costs);
        prop_assert!(!front.is_empty());
        for &i in &front {
            for &j in &front {
                prop_assert!(!midas_repro::moo::dominance::pareto_dominates(&costs[i], &costs[j]));
            }
        }
        for k in 0..costs.len() {
            if !front.contains(&k) {
                prop_assert!(front.iter().any(|&i| {
                    midas_repro::moo::dominance::pareto_dominates(&costs[i], &costs[k])
                }), "non-member {} dominated by nobody", k);
            }
        }
        // Fronts from the full sort agree with the direct extraction.
        let fronts = fast_non_dominated_sort(&costs);
        let mut f0 = fronts[0].clone();
        f0.sort_unstable();
        prop_assert_eq!(f0, front);
    }

    /// Billing is monotone in duration and in instance count.
    #[test]
    fn billing_is_monotone(
        secs_a in 1.0f64..10_000.0,
        secs_b in 1.0f64..10_000.0,
        count in 1u32..20,
    ) {
        let pm = PricingModel::per_second(Money::from_dollars(0.09));
        let shape = midas_repro::cloud::amazon_a1_catalog().instances()[1].clone();
        let (lo, hi) = if secs_a <= secs_b { (secs_a, secs_b) } else { (secs_b, secs_a) };
        prop_assert!(pm.instance_cost(&shape, count, lo) <= pm.instance_cost(&shape, count, hi));
        prop_assert!(
            pm.instance_cost(&shape, count, lo) <= pm.instance_cost(&shape, count + 1, lo)
        );
    }

    /// TPC-H snapshots are monotone: a bigger fraction never yields fewer
    /// rows, and fraction 1.0 is the identity.
    #[test]
    fn snapshots_are_monotone(fa in 0.0f64..1.0, fb in 0.0f64..1.0) {
        let db = TpchDb::generate(GenConfig::new(0.001, 5));
        let (lo, hi) = if fa <= fb { (fa, fb) } else { (fb, fa) };
        let sa = db.snapshot(lo);
        let sb = db.snapshot(hi);
        for name in ["lineitem", "orders", "customer", "part"] {
            prop_assert!(sa.try_get(name).expect("snapshot").n_rows() <= sb.try_get(name).expect("snapshot").n_rows());
        }
        let full = db.snapshot(1.0);
        prop_assert_eq!(full.try_get("orders").expect("snapshot").n_rows(), db.table("orders").expect("generated").n_rows());
    }
}
