//! Smoke tests of the paper-experiment drivers at miniature scale — the
//! structure checks; the full-size shapes are recorded in EXPERIMENTS.md.

use midas_repro::midas::experiments::{
    run_example31, run_fig3, run_mre, EstimatorKind, MreConfig,
};

#[test]
fn mre_experiment_produces_a_complete_table() {
    let report = run_mre(&MreConfig::smoke(5)).expect("experiment runs");
    assert_eq!(report.rows.len(), 4, "one row per paper query");
    for row in &report.rows {
        assert_eq!(row.mre.len(), 5, "five estimator columns");
        let labels: Vec<&str> = row.mre.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, vec!["BMLN", "BML2N", "BML3N", "BML", "DREAM"]);
        for (label, mre) in &row.mre {
            assert!(mre.is_finite(), "{label} produced a NaN MRE");
            assert!(*mre >= 0.0, "{label} produced a negative MRE");
        }
        assert!(row.dream_mean_window >= 4.0);
    }
    assert!(report.db_bytes > 0);
}

#[test]
fn estimator_column_order_matches_the_paper() {
    let labels: Vec<&str> = EstimatorKind::PAPER_ORDER
        .iter()
        .map(|k| k.label())
        .collect();
    assert_eq!(labels, vec!["BMLN", "BML2N", "BML3N", "BML", "DREAM"]);
}

#[test]
fn fig3_ga_pipeline_amortizes_weight_changes() {
    let report = run_fig3(0.002, 3).expect("experiment runs");
    assert_eq!(report.rows.len(), 5);
    let first = &report.rows[0];
    let last = report.rows.last().expect("non-empty sweep");
    // GA evaluations stay flat across the sweep; WSM grows linearly.
    assert_eq!(first.ga_cumulative_evals, last.ga_cumulative_evals);
    assert_eq!(
        last.wsm_cumulative_evals,
        first.wsm_cumulative_evals * report.rows.len()
    );
    // Every row has a sane optimum.
    for row in &report.rows {
        assert!(row.optimal_costs[0] > 0.0);
        assert!(row.ga_costs[0] > 0.0);
        assert!(row.wsm_costs[0] > 0.0);
    }
}

#[test]
fn example31_counts_the_pool_exactly() {
    let report = run_example31(0.002, 60, 1).expect("experiment runs");
    assert_eq!(report.pool_configurations, 18_200, "70 vCPU x 260 GiB");
    assert!(report.configs_per_second > 1_000.0);
    assert!(report.dream_window <= 60);
}
