//! End-to-end integration: the full MIDAS pipeline over the umbrella crate.

use midas_repro::midas::{Midas, QueryPolicy};
use midas_repro::tpch::gen::{GenConfig, TpchDb};
use midas_repro::tpch::medical::{generate_medical, medical_query};
use midas_repro::tpch::queries::{q12, q13, q14, q17};

fn db() -> TpchDb {
    TpchDb::generate(GenConfig::new(0.003, 99))
}

#[test]
fn all_four_paper_queries_run_end_to_end() {
    let (midas, _, _) =
        Midas::example_deployment(&["lineitem", "customer"], &["orders", "part"]);
    let db = db();
    let mut session = midas.session();
    session.set_max_vms(4);
    for query in [
        q12("MAIL", "SHIP", 1994),
        q13("special", "requests"),
        q14(1995, 9),
        q17("Brand#23", "MED BOX"),
    ] {
        let report = session
            .submit(&query, db.catalog(), &QueryPolicy::balanced())
            .unwrap_or_else(|e| panic!("{} failed: {e}", query.label));
        assert!(report.space_size > 0, "{}", query.label);
        assert!(report.pareto_size > 0, "{}", query.label);
        assert!(report.predicted_costs[0] > 0.0, "{}", query.label);
        assert!(report.actual_costs[0] > 0.0, "{}", query.label);
    }
}

#[test]
fn dream_learns_across_a_session_and_windows_stay_bounded() {
    let (midas, _, _) = Midas::example_deployment(&["lineitem"], &["orders"]);
    let db = db();
    let mut session = midas.session();
    session.set_max_vms(2);
    let mut windows = Vec::new();
    for (i, year) in (1993..=1997).chain(1993..=1997).enumerate() {
        let modes = if i % 2 == 0 { ("MAIL", "SHIP") } else { ("AIR", "RAIL") };
        let report = session
            .submit(&q12(modes.0, modes.1, year), db.catalog(), &QueryPolicy::fastest())
            .expect("pipeline runs");
        if let Some(w) = report.dream_window {
            windows.push(w);
        }
        session.idle(2, 30.0);
    }
    // With L = 4 features DREAM needs 6 runs; 10 runs leave >= 4 fits.
    assert!(windows.len() >= 4, "DREAM fits recorded: {windows:?}");
    // Windows stay near the minimum (the paper's observation).
    assert!(windows.iter().all(|&w| (6..=10).contains(&w)), "{windows:?}");
    let modelling = session.modelling("Q12").expect("class recorded");
    assert_eq!(modelling.history().len(), 10);
}

#[test]
fn budget_constraints_are_respected_when_feasible() {
    let (midas, _, _) = Midas::example_deployment(&["patient"], &["generalinfo"]);
    let midas = midas.with_drift(midas_repro::engines::sim::DriftIntensity::None);
    let tables = generate_medical(800, 0.5, 3);
    // First find the unconstrained cheapest plan's money cost.
    let mut session = midas.session();
    let cheapest = session
        .submit(&medical_query(None), &tables, &QueryPolicy::cheapest())
        .expect("pipeline runs");
    let floor = cheapest.predicted_costs[1];
    // A budget above the floor must produce a plan within budget.
    let mut session = midas.session();
    let budget = floor * 2.0 + 1e-6;
    let report = session
        .submit(
            &medical_query(None),
            &tables,
            &QueryPolicy::fastest().with_money_budget(budget),
        )
        .expect("pipeline runs");
    assert!(
        report.predicted_costs[1] <= budget + 1e-9,
        "predicted ${} exceeds budget ${budget}",
        report.predicted_costs[1]
    );
}

#[test]
fn distinct_seeds_produce_distinct_observations() {
    let (midas_a, _, _) = Midas::example_deployment(&["lineitem"], &["orders"]);
    let (midas_b, _, _) = Midas::example_deployment(&["lineitem"], &["orders"]);
    let midas_b = midas_b.with_seed(777);
    let db = db();
    let q = q12("MAIL", "SHIP", 1995);
    let ra = midas_a
        .session()
        .submit(&q, db.catalog(), &QueryPolicy::balanced())
        .expect("pipeline runs");
    let rb = midas_b
        .session()
        .submit(&q, db.catalog(), &QueryPolicy::balanced())
        .expect("pipeline runs");
    assert_ne!(ra.actual_costs[0], rb.actual_costs[0]);
    // Same seed twice: identical.
    let (midas_c, _, _) = Midas::example_deployment(&["lineitem"], &["orders"]);
    let rc = midas_c
        .session()
        .submit(&q, db.catalog(), &QueryPolicy::balanced())
        .expect("pipeline runs");
    assert_eq!(ra.actual_costs, rc.actual_costs);
}
