//! Partitioned parallel hash join / aggregation — the `partition_degree`
//! knob at every layer of the stack.
//!
//! ```text
//! cargo run --release --example partitioned_join
//! ```
//!
//! The paper's federated plans funnel both prepared sides into one big
//! *combine* fragment (join + grouped aggregation); once wave parallelism
//! overlaps the scans, that single-threaded fragment dominates latency.
//! `execute_with_partitions` shards the join's build/probe and the
//! aggregation's group discovery by the existing u64 key hash across
//! scoped threads — selection vectors in, selection vectors out — and
//! merges shard outputs deterministically, so the result table, the
//! `WorkProfile` and the fingerprint are **bit-for-bit identical** to the
//! serial path at every degree. The same knob threads through
//! `Executor`/`SharedExecutor`, the scheduler config and the runtime
//! (`RuntimeConfig::partition_degree` / `Midas::with_partition_degree`).

use midas_repro::engines::ops::{execute, execute_with_partitions};
use midas_repro::midas::runtime::RuntimeJob;
use midas_repro::midas::{Midas, QueryPolicy};
use midas_repro::tpch::gen::{GenConfig, TpchDb};
use midas_repro::tpch::queries::{q13, q17};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = TpchDb::generate(GenConfig::new(0.02, 42));

    // --- Layer 1: the engine operator. Stage Q13's combine inputs
    // (prepared sides land in the catalog as @frag0/@frag1), then run the
    // combine fragment serially and partitioned.
    let q = q13("special", "requests");
    let mut catalog = db.catalog().clone();
    let (left, _) = execute(&q.left_prepare, &catalog)?;
    let (right, _) = execute(&q.right_prepare, &catalog)?;
    catalog.insert("@frag0".to_string(), left);
    catalog.insert("@frag1".to_string(), right);

    let (serial, serial_profile) = execute(&q.combine, &catalog)?;
    for degree in [2usize, 4, 8] {
        let t0 = Instant::now();
        let (partitioned, profile) = execute_with_partitions(&q.combine, &catalog, degree)?;
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        // Bit-for-bit: same rows, same order, same accounting.
        assert_eq!(partitioned, serial);
        assert_eq!(profile, serial_profile);
        assert_eq!(partitioned.fingerprint(), serial.fingerprint());
        println!(
            "Q13 combine at partition_degree={degree}: {} rows in {ms:.2} ms \
             (fingerprint {:#018x}, identical to serial)",
            partitioned.n_rows(),
            partitioned.fingerprint()
        );
    }

    // --- Layer 2: the whole pipeline. A deployment-wide degree makes every
    // session and runtime shard its fragments' joins/aggregations; the
    // simulated outcome (plans, costs, learned history) is unchanged
    // because partitioning never alters a WorkProfile.
    let (midas, _, _) = Midas::example_deployment(&["lineitem", "customer"], &["orders", "part"]);
    let midas = midas.with_partition_degree(4);
    let mut session = midas.session();
    let report = session.submit(&q, db.catalog(), &QueryPolicy::balanced())?;
    println!(
        "session (partition_degree=4): {} -> {} rows, time {:.2}s, ${:.2}",
        report.label, report.result_rows, report.actual_costs[0], report.actual_costs[1]
    );

    // --- Layer 3: the concurrent runtime. Intra-fragment partitioning
    // composes with wave parallelism and the multi-tenant worker pool.
    let runtime = midas.runtime(db.catalog(), 2).with_parallel_fragments(true);
    let batch = runtime.run(vec![
        RuntimeJob::new("hospital-A", q13("special", "requests"), QueryPolicy::balanced()),
        RuntimeJob::new("hospital-B", q17("Brand#23", "MED BOX"), QueryPolicy::fastest()),
    ]);
    assert!(batch.failed.is_empty());
    for completed in &batch.completed {
        println!(
            "runtime [{}] {}: {} rows, fingerprint {:#018x}",
            completed.tenant,
            completed.report.label,
            completed.report.result_rows,
            completed.report.result_fingerprint
        );
    }
    Ok(())
}
