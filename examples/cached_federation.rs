//! The multi-tenant caching layer, driven through the public API.
//!
//! Sixteen hospital tenants keep re-issuing the same handful of medical
//! queries — the textbook fragment-cache workload. This example plays
//! three acts:
//!
//! 1. **cold → warm** — the same batch served twice by one runtime under
//!    the default [`CacheScope::FederationGlobal`]: the second pass is
//!    answered entirely from the shared fragment result cache
//!    (bit-identical to recomputation, the differential suites pin that),
//!    and the warm throughput shows it;
//! 2. **the privacy knob** — the identical workload under
//!    [`CacheScope::PerTenant`]: results never cross a tenant boundary,
//!    so each tenant warms its own private entries and the first service
//!    per tenant is cold again;
//! 3. **freshness** — an ingest publish retires the affected catalog
//!    version's entries; the re-issued query recomputes against the new
//!    admissions instead of being served yesterday's snapshot.
//!
//! ```text
//! cargo run --release --example cached_federation
//! ```
//!
//! [`CacheScope::FederationGlobal`]: midas_repro::engines::CacheScope
//! [`CacheScope::PerTenant`]: midas_repro::engines::CacheScope

use midas_repro::engines::CacheScope;
use midas_repro::midas::runtime::{FederationRuntime, RuntimeConfig, RuntimeJob};
use midas_repro::midas::{Midas, QueryPolicy};
use midas_repro::tpch::medical::{generate_medical, medical_delta, medical_query};

const TENANTS: usize = 16;
const ROUNDS: usize = 4;
const PATIENTS: usize = 2_000;

/// Each of the 16 hospitals re-issues one modality query per round — a
/// few distinct query shapes shared by many tenants.
fn workload() -> Vec<RuntimeJob> {
    let modalities = ["CT", "MR", "US", "XR", "PET"];
    let mut jobs = Vec::new();
    for round in 0..ROUNDS {
        for tenant in 0..TENANTS {
            jobs.push(RuntimeJob::new(
                &format!("hospital-{tenant:02}"),
                medical_query(Some(modalities[(tenant + round) % modalities.len()])),
                QueryPolicy::balanced(),
            ));
        }
    }
    jobs
}

fn runtime_with_scope(midas: &Midas, scope: CacheScope) -> FederationRuntime<'_> {
    FederationRuntime::new(
        midas.federation(),
        midas.placement(),
        generate_medical(PATIENTS, 0.5, 42),
        RuntimeConfig {
            workers: 2,
            max_vms: 2,
            cache_scope: scope,
            ..RuntimeConfig::default()
        },
    )
}

fn main() {
    let (midas, _, _) = Midas::example_deployment(&["patient"], &["generalinfo"]);
    let jobs = workload();
    let n_jobs = jobs.len();

    // Act 1: cold pass, then the identical batch served warm.
    let shared = runtime_with_scope(&midas, CacheScope::FederationGlobal);
    let cold = shared.run(jobs.clone());
    assert!(cold.failed.is_empty(), "failures: {:?}", cold.failed);
    let after_cold = shared.cache_stats();
    let warm = shared.run(jobs.clone());
    assert!(warm.failed.is_empty());
    let after_warm = shared.cache_stats();

    println!("act 1 — federation-global sharing, {TENANTS} tenants x {ROUNDS} rounds:");
    println!(
        "  cold pass: {:>7.1} qps  ({} fragment computations, {} shared hits)",
        cold.throughput_qps, after_cold.fragment.misses, after_cold.fragment.hits
    );
    let warm_hits = after_warm.fragment.hits - after_cold.fragment.hits;
    let warm_misses = after_warm.fragment.misses - after_cold.fragment.misses;
    println!(
        "  warm pass: {:>7.1} qps  ({warm_misses} computations, {warm_hits} hits — {:.1}x)",
        warm.throughput_qps,
        warm.throughput_qps / cold.throughput_qps
    );
    assert_eq!(warm_misses, 0, "the warm pass should be all hits");
    assert_eq!(warm_hits, 3 * n_jobs as u64);
    // Identical distinct queries across tenants computed only once even
    // in the cold pass: the federation shares fragments tenant-to-tenant.
    assert!(after_cold.fragment.hits > 0, "cold pass never shared across tenants");

    // Act 2: the privacy knob. Same workload, per-tenant scope — tenants
    // never observe each other's cache entries (results, like records,
    // stay inside the tenant boundary).
    let private = runtime_with_scope(&midas, CacheScope::PerTenant);
    let report = private.run(jobs.clone());
    assert!(report.failed.is_empty());
    let stats = private.cache_stats();
    println!("\nact 2 — per-tenant privacy scope, same workload:");
    println!(
        "  {} fragment computations vs {} under sharing — every tenant warms its own entries",
        stats.fragment.misses, after_cold.fragment.misses
    );
    println!(
        "  {} hits, all of them tenant-local re-issues",
        stats.fragment.hits
    );
    assert!(
        stats.fragment.misses > after_cold.fragment.misses,
        "per-tenant scope must recompute what sharing would have reused"
    );
    // Per-tenant entries keyed apart: each tenant's first service of a
    // query shape is a miss even though 15 other tenants ran it already.
    let first_services: usize = report
        .completed
        .iter()
        .filter(|r| r.cache_hits == 0)
        .count();
    assert!(first_services >= TENANTS, "cross-tenant sharing leaked through the scope");

    // Act 3: freshness. Publish an admissions wave, then re-issue: the
    // affected version's entries are invalidated, the query recomputes
    // against the new catalog version — never a stale snapshot.
    let before = shared.cache_stats();
    let ((), _report) = shared.serve(|ingress| {
        let receipt = ingress
            .ingest_batch(medical_delta(500, 0.5, 7, PATIENTS as i64))
            .expect("ingest");
        println!(
            "\nact 3 — published catalog v{} ({} new patients):",
            receipt.version, 500
        );
    });
    let invalidated = shared.cache_stats();
    println!(
        "  {} cached fragments invalidated by the publish",
        invalidated.fragment.invalidations - before.fragment.invalidations
    );
    assert!(invalidated.fragment.invalidations > before.fragment.invalidations);

    let fresh = shared.run(vec![RuntimeJob::new(
        "hospital-00",
        medical_query(Some("CT")),
        QueryPolicy::balanced(),
    )]);
    assert!(fresh.failed.is_empty());
    let served = &fresh.completed[0];
    println!(
        "  re-issued CT query pinned v{} and recomputed ({} cached fragments used)",
        served.pinned_version(),
        served.cache_hits
    );
    assert_eq!(served.pinned_version(), 1, "the re-issue must see the new version");
    assert_eq!(served.cache_hits, 0, "stale entries must not serve the new version");

    println!(
        "\nshared results, tenant privacy on a knob, publish-exact invalidation — \
         and every cached answer bit-identical to recomputation"
    );
}
