//! The Tables 3/4 protocol in miniature: a drifting two-cloud federation,
//! a stream of parameterized TPC-H queries over a growing data store, and a
//! side-by-side of DREAM vs the IReS BML baselines predicting each next
//! execution's time.
//!
//! ```text
//! cargo run --release --example tpch_federation
//! ```

use midas_repro::dream::History;
use midas_repro::engines::{EngineKind, Placement};
use midas_repro::ires::scheduler::{Scheduler, SchedulerConfig};
use midas_repro::ires::CandidateConfig;
use midas_repro::linalg::stats::mean_relative_error;
use midas_repro::midas::experiments::EstimatorKind;
use midas_repro::tpch::gen::{GenConfig, TpchDb};
use midas_repro::tpch::queries::QueryId;
use midas_repro::tpch::workload::WorkloadGenerator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (fed, a, b) = midas_repro::cloud::federation::example_federation();
    let mut placement = Placement::new();
    placement.place("lineitem", a, EngineKind::Hive);
    placement.place("orders", b, EngineKind::PostgreSql);

    let db = TpchDb::generate(GenConfig::new(0.01, 11));
    let mut scheduler = Scheduler::new(&fed, placement, SchedulerConfig::default());
    let exec_config = CandidateConfig {
        join_site: a,
        join_engine: EngineKind::Hive,
        instance_idx: 2,
        vm_count: 2,
    };

    // Record a 30-run trace of Q12 instances over a growing/archiving store.
    println!("executing 30 Q12 instances on the drifting federation…");
    let workload = WorkloadGenerator::new(11).instances(QueryId::Q12, 30);
    let mut features: Vec<Vec<f64>> = Vec::new();
    let mut costs: Vec<Vec<f64>> = Vec::new();
    for instance in &workload {
        let i = instance.index;
        let grow = |p: usize, ph: usize| {
            let half = p - 1;
            let pos = (i + ph) % (2 * half);
            let tri = half - (pos as i64 - half as i64).unsigned_abs() as usize;
            0.4 + 0.6 * tri as f64 / half as f64
        };
        let snapshot = db.snapshot_per_table(|t| match t {
            "lineitem" => grow(20, 0),
            "orders" => grow(13, 5),
            _ => 1.0,
        });
        let run = scheduler.execute_with_config(&instance.query, &exec_config, &snapshot)?;
        features.push(run.features);
        costs.push(run.costs);
        scheduler.idle(3, 40.0);
    }

    // Prequential evaluation over the last 12 runs for every estimator.
    println!("\nper-estimator prediction of the last 12 executions:");
    for kind in EstimatorKind::PAPER_ORDER {
        let mut preds = Vec::new();
        let mut actuals = Vec::new();
        for i in 18..30 {
            let mut h = History::new(features[0].len(), 2);
            for j in 0..i {
                h.record(&features[j], &costs[j])?;
            }
            let mut est = kind.build(2, 30, 0.8);
            if est.fit(&h).is_ok() {
                if let Ok(p) = est.predict(&features[i]) {
                    preds.push(p[0].max(0.0));
                    actuals.push(costs[i][0]);
                }
            }
        }
        let mre = mean_relative_error(&preds, &actuals).unwrap_or(f64::NAN);
        println!("  {:6}  MRE = {mre:.3}  ({} predictions)", kind.label(), preds.len());
    }
    println!("\n(Tables 3 and 4 of the paper are this protocol at SF 0.1 / 1.0 — run\n  cargo run --release -p midas-bench --bin repro_table3)");
    Ok(())
}
