//! Backpressure-aware adaptive planning, driven through the public API.
//!
//! A federation serving a skewed multi-tenant medical workload develops a
//! hot spot: the site every plan wants to join at gets hit by an
//! admission flap (its gate drops to one slot) and a 20x slowdown window.
//! The example streams the same congested workload twice through
//! [`FederationRuntime::serve`]:
//!
//! 1. **blind** — `pressure_penalty = 0`: the planner keeps costing the
//!    congested site as if it were idle and keeps routing joins into the
//!    backlog;
//! 2. **aware** — `pressure_penalty > 0`: admission-time pressure samples
//!    (queue depth + slot occupancy per gate) inflate the congested
//!    site's costs, joins migrate to the uncongested site, and jobs whose
//!    admission wait outgrew their predicted runtime speculatively
//!    re-plan against *live* pressure.
//!
//! Both runs print total simulated work, the completion-latency tail
//! (p50/p95/p99 on the simulated clock), the re-plan/switch counters, and
//! where each run put its joins — the aware run's migration is visible in
//! the join-site split and in the drop in total work. The pressure
//! samples are taken from live gate occupancy, so the exact split varies
//! a little from run to run; the blind run is fully deterministic.
//!
//! ```text
//! cargo run --release --example adaptive_planning
//! ```

use midas_repro::engines::sim::{DriftIntensity, FaultPlan};
use midas_repro::midas::runtime::{FederationRuntime, RuntimeConfig, RuntimeJob, RuntimeReport};
use midas_repro::midas::{Midas, QueryPolicy};
use midas_repro::tpch::medical::{generate_medical, medical_query};
use std::collections::BTreeMap;

const PATIENTS: usize = 1_500;
const ROUNDS: usize = 6;
const JOBS_PER_ROUND: usize = 9;

/// One burst of the skewed tenant mix: a heavy hospital, two medium
/// hospitals, one light clinic.
fn burst() -> Vec<RuntimeJob> {
    let mut jobs = Vec::new();
    for (tenant, modalities) in [
        ("hospital-A", &["CT", "MR", "CT", "US"][..]),
        ("hospital-B", &["CT", "XR"][..]),
        ("hospital-C", &["MR", "CT"][..]),
        ("clinic-D", &["PET"][..]),
    ] {
        for modality in modalities {
            jobs.push(RuntimeJob::new(
                tenant,
                medical_query(Some(modality)),
                QueryPolicy::balanced(),
            ));
        }
    }
    jobs
}

fn config(pressure_penalty: f64) -> RuntimeConfig {
    RuntimeConfig {
        workers: 4,
        parallel_fragments: true,
        max_vms: 2,
        // Dilate simulated site work into real wall time so in-flight
        // fragments occupy their admission slots while later bursts are
        // planned — that occupancy is the pressure signal.
        pacing: 0.02,
        pressure_penalty,
        replan_threshold: 0.25,
        // Keep ambient load flat so the tails isolate the injected
        // congestion instead of background regime shifts.
        drift: DriftIntensity::None,
        ..RuntimeConfig::default()
    }
}

/// Stream `ROUNDS` bursts through a serving runtime, pausing between
/// bursts so earlier jobs are mid-execution when later ones are admitted.
fn serve(midas: &Midas, faults: &FaultPlan, pressure_penalty: f64) -> RuntimeReport {
    let runtime = FederationRuntime::new(
        midas.federation(),
        midas.placement(),
        generate_medical(PATIENTS, 0.5, 42),
        config(pressure_penalty),
    )
    .with_fault_plan(faults.clone());
    let ((), report) = runtime.serve(|ingress| {
        for _ in 0..ROUNDS {
            for job in burst() {
                ingress.submit(job);
            }
            std::thread::sleep(std::time::Duration::from_millis(120));
        }
    });
    report
}

fn describe(midas: &Midas, label: &str, report: &RuntimeReport) {
    let mut joins: BTreeMap<String, usize> = BTreeMap::new();
    for r in &report.completed {
        let site = midas.federation().site(r.report.chosen.join_site).name.clone();
        *joins.entry(site).or_default() += 1;
    }
    let joins: Vec<String> = joins.into_iter().map(|(s, n)| format!("{s}:{n}")).collect();
    let work: f64 = report
        .completed
        .iter()
        .map(|c| c.report.actual_costs[0])
        .sum();
    let l = report.latency;
    println!(
        "{label:>5}  work {work:>6.1}s  p50 {:>6.1}s  p95 {:>6.1}s  p99 {:>6.1}s  \
         replans {:>3}  switches {:>3}  joins [{}]",
        l.p50_s,
        l.p95_s,
        l.p99_s,
        report.replans,
        report.plan_switches,
        joins.join(", ")
    );
    for (tenant, stats) in &report.tenants {
        println!(
            "         {tenant:<12} {:>2} jobs  peak queue depth {:>2}  \
             queue wait {:>6.3}s wall  p99 {:>6.1}s sim",
            stats.queries, stats.queue.peak_depth, stats.queue.total_wait_s, stats.latency.p99_s
        );
    }
}

fn main() {
    let (midas, _, _) = Midas::example_deployment(&["patient"], &["generalinfo"]);

    // Probe: where does the *blind* planner put its joins on a healthy
    // federation? That site is the hot spot worth congesting.
    let probe = serve(&midas, &FaultPlan::none(), 0.0);
    assert!(probe.failed.is_empty(), "probe failed: {:?}", probe.failed);
    let hot = probe.completed[0].report.chosen.join_site;
    let positions = (ROUNDS * JOBS_PER_ROUND) as u64;
    println!(
        "probe: blind planner joins at {}; flapping + slowing that site for \
         the whole run\n",
        midas.federation().site(hot).name
    );

    // The hot site's gate flaps down to one slot and its work runs 20x
    // slow for the entire position range — a degraded-but-alive site.
    let faults = FaultPlan::none()
        .flap(hot, 0, positions)
        .slowdown(hot, 0, positions, 20.0);

    let blind = serve(&midas, &faults, 0.0);
    let aware = serve(&midas, &faults, 4.0);
    assert!(blind.failed.is_empty(), "blind run failed: {:?}", blind.failed);
    assert!(aware.failed.is_empty(), "aware run failed: {:?}", aware.failed);

    describe(&midas, "blind", &blind);
    println!();
    describe(&midas, "aware", &aware);

    let blind_work: f64 = blind.completed.iter().map(|c| c.report.actual_costs[0]).sum();
    let aware_work: f64 = aware.completed.iter().map(|c| c.report.actual_costs[0]).sum();
    println!(
        "\naware/blind total simulated work: {:.3}x  (smaller is better)",
        aware_work / blind_work.max(1e-9)
    );
}
