//! Example 2.1 from the paper: a medical query over a cloud federation.
//!
//! ```sql
//! SELECT p.PatientSex, i.GeneralNames
//! FROM Patient p, GeneralInfo i
//! WHERE p.UID = i.UID
//! ```
//!
//! `Patient` is stored in cloud A under Hive; `GeneralInfo` (records shared
//! by other clinics for mobile patients) in cloud B under PostgreSQL. The
//! example contrasts user policies — fastest, cheapest, and budgeted — and
//! shows the money/time trade-off Table 1's pricing creates.
//!
//! ```text
//! cargo run --release --example medical_federation
//! ```

use midas_repro::midas::{Midas, QueryPolicy};
use midas_repro::tpch::medical::{generate_medical, medical_query};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (midas, _a, _b) = Midas::example_deployment(&["patient"], &["generalinfo"]);

    // A registry of 5 000 patients; 40% have shared records from other
    // clinics (the paper's mobile-patient motivation).
    let tables = generate_medical(5_000, 0.4, 7);
    println!(
        "patient registry: {} patients, {} shared general-info records",
        tables.try_get("patient")?.n_rows(),
        tables.try_get("generalinfo")?.n_rows()
    );

    let mut session = midas.session();

    // The same query under three policies.
    for (name, policy) in [
        ("fastest", QueryPolicy::fastest()),
        ("cheapest", QueryPolicy::cheapest()),
        ("balanced + $0.02 budget", QueryPolicy::balanced().with_money_budget(0.02)),
    ] {
        let report = session.submit(&medical_query(None), &tables, &policy)?;
        println!(
            "\npolicy {name}:\n  chosen from {} plans (Pareto set {})\n  predicted {:.2} s / ${:.5}   observed {:.2} s / ${:.5}   rows {}",
            report.space_size,
            report.pareto_size,
            report.predicted_costs[0],
            report.predicted_costs[1],
            report.actual_costs[0],
            report.actual_costs[1],
            report.result_rows
        );
    }

    // Clinic workload: modality-filtered variants arrive over the day; DREAM
    // learns the cost model of this query class online.
    println!("\nclinic workload (DREAM learning online):");
    for modality in ["CT", "MR", "US", "XR", "PET", "CT", "MR", "US"] {
        let report = session.submit(
            &medical_query(Some(modality)),
            &tables,
            &QueryPolicy::balanced(),
        )?;
        println!(
            "  {:28} observed {:6.2} s   DREAM window {:?}",
            report.label, report.actual_costs[0], report.dream_window
        );
    }
    println!(
        "\nsimulated clock after the session: {:.0} s",
        session.clock_s()
    );
    Ok(())
}
