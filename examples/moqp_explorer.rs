//! Explore Multi-Objective Query Processing on one QEP space: the exact
//! Pareto front, NSGA-II's approximation, and how Algorithm 2 moves along
//! the front as the user's weights and budgets change — Figure 3 made
//! tangible.
//!
//! ```text
//! cargo run --release --example moqp_explorer
//! ```

use midas_repro::cloud::federation::example_federation;
use midas_repro::engines::{EngineKind, Placement};
use midas_repro::ires::optimizer::{moqp_exhaustive, moqp_ga, reselect};
use midas_repro::ires::{EnumerationSpace, PlanCostModel};
use midas_repro::moo::select::Constraints;
use midas_repro::moo::{Nsga2Config, WeightedSumModel};
use midas_repro::tpch::gen::{GenConfig, TpchDb};
use midas_repro::tpch::queries::q14;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (fed, a, b) = example_federation();
    let mut placement = Placement::new();
    placement.place("lineitem", a, EngineKind::Hive);
    placement.place("part", b, EngineKind::PostgreSql);

    let db = TpchDb::generate(GenConfig::new(0.01, 5));
    let query = q14(1995, 6);
    let space = EnumerationSpace::for_query(&fed, &placement, &query, 16)?;
    let model = PlanCostModel::build(&placement, &query, db.catalog())?;
    println!(
        "{} — QEP space: {} configurations (join site x engine x instance x VMs)",
        query.label,
        space.len()
    );

    // Ground truth: the exact Pareto front.
    let weights = WeightedSumModel::new(&[0.5, 0.5]);
    let truth = moqp_exhaustive(&space, &model, &fed, &weights, &Constraints::none(2));
    println!("\nexact Pareto front ({} plans):", truth.pareto.len());
    let mut front = truth.pareto.clone();
    front.sort_by(|x, y| x.1[0].partial_cmp(&y.1[0]).expect("finite costs"));
    for (config, costs) in front.iter().take(12) {
        println!(
            "  {:6.2} s  ${:8.5}   site {:?} {:10} instance#{} x{} VMs",
            costs[0],
            costs[1],
            config.join_site,
            config.join_engine.to_string(),
            config.instance_idx,
            config.vm_count
        );
    }
    if front.len() > 12 {
        println!("  … and {} more", front.len() - 12);
    }

    // NSGA-II's approximation of the same front.
    let ga = moqp_ga(
        &space,
        &model,
        &fed,
        &weights,
        &Constraints::none(2),
        Nsga2Config {
            population: 60,
            generations: 40,
            seed: 1,
            ..Nsga2Config::default()
        },
    );
    println!(
        "\nNSGA-II front: {} plans found with {} cost evaluations (exhaustive needed {})",
        ga.pareto.len(),
        ga.evaluations,
        truth.evaluations
    );

    // Algorithm 2 walks the front as the policy changes — no re-optimization.
    println!("\nAlgorithm 2 (BestInPareto) on the reused front:");
    for (wt, wm) in [(1.0, 0.0), (0.7, 0.3), (0.5, 0.5), (0.2, 0.8), (0.0, 1.0)] {
        let w = WeightedSumModel::new(&[wt, wm]);
        let (cfg, costs) =
            reselect(&ga.pareto, &w, &Constraints::none(2)).expect("front is non-empty");
        println!(
            "  weights ({wt:.1}, {wm:.1})  →  {:6.2} s  ${:8.5}   ({} x{} VMs)",
            costs[0],
            costs[1],
            cfg.join_engine,
            cfg.vm_count
        );
    }

    // Budgets change the feasible set (Algorithm 2's B).
    println!("\nwith a money budget (time-first policy):");
    for budget in [0.05, 0.01, 0.002] {
        let w = WeightedSumModel::new(&[1.0, 0.0]);
        let constraints = Constraints::none(2).with_bound(1, budget);
        let (cfg, costs) = reselect(&ga.pareto, &w, &constraints).expect("front is non-empty");
        println!(
            "  budget ${budget:<6}  →  {:6.2} s  ${:8.5}   ({} x{} VMs)",
            costs[0],
            costs[1],
            cfg.join_engine,
            cfg.vm_count
        );
    }
    Ok(())
}
