//! Quickstart: stand up a two-cloud federation, run one federated TPC-H
//! query through the full MIDAS pipeline, and inspect the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use midas_repro::midas::{Midas, QueryPolicy};
use midas_repro::tpch::gen::{GenConfig, TpchDb};
use midas_repro::tpch::queries::q12;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A federation shaped like the paper's running example: lineitem lives
    // in cloud A (Amazon catalog, Hive), orders in cloud B (Azure catalog,
    // PostgreSQL), joined by a WAN link.
    let (midas, _cloud_a, _cloud_b) = Midas::example_deployment(&["lineitem"], &["orders"]);

    // A small deterministic TPC-H database.
    let db = TpchDb::generate(GenConfig::new(0.01, 42));
    println!(
        "generated TPC-H SF 0.01: {} lineitems, {} orders ({} KiB total)",
        db.table("lineitem").expect("generated").n_rows(),
        db.table("orders").expect("generated").n_rows(),
        db.total_bytes() / 1024
    );

    // Submit Q12 with a balanced time/money policy. The session enumerates
    // the QEP space, costs every candidate, builds the Pareto set, picks a
    // plan with Algorithm 2, executes it on the simulated engines and feeds
    // the observation to DREAM.
    let mut session = midas.session();
    let report = session.submit(
        &q12("MAIL", "SHIP", 1994),
        db.catalog(),
        &QueryPolicy::balanced(),
    )?;

    println!("\n{}", report.label);
    println!("  QEP space          : {} equivalent plans", report.space_size);
    println!("  Pareto plan set    : {} plans", report.pareto_size);
    println!(
        "  predicted (t, $)   : {:.2} s, ${:.5}",
        report.predicted_costs[0], report.predicted_costs[1]
    );
    println!(
        "  observed  (t, $)   : {:.2} s, ${:.5}",
        report.actual_costs[0], report.actual_costs[1]
    );
    println!("  result rows        : {}", report.result_rows);
    println!(
        "  DREAM window       : {:?} (None until L+2 runs are recorded)",
        report.dream_window
    );

    // Run the same query class a few more times: DREAM comes online once
    // the history reaches L + 2 observations.
    for year in [1995, 1996, 1997, 1993, 1994, 1995] {
        let report = session.submit(&q12("AIR", "RAIL", year), db.catalog(), &QueryPolicy::fastest())?;
        println!(
            "year {year}: observed {:.2} s — DREAM window {:?}",
            report.actual_costs[0], report.dream_window
        );
    }
    Ok(())
}
