//! Static plan analysis: catching schema, type and DAG errors before a
//! query takes a federation slot.
//!
//! The pre-execution analyzer (`engines::analyze`) type-checks a physical
//! plan against the catalog's schemas and validates the fragment DAG —
//! `@frag` references, acyclicity, site placement — producing structured
//! [`PlanDiagnostic`]s instead of mid-flight `EngineError`s. The
//! [`FederationRuntime`] runs the same analysis at admission: a malformed
//! job is rejected with a typed `RuntimeError::InvalidPlan` before it
//! touches a slot, a cache tier, or the simulated clock.
//!
//! This example walks all three views:
//!
//! 1. a clean medical query — zero diagnostics, derived output schemas;
//! 2. three malformed variants — each diagnostic with its node path,
//!    severity, kind, and what the executor would have done;
//! 3. the runtime rejecting a malformed job at admission while valid
//!    jobs in the same batch complete untouched.
//!
//! ```text
//! cargo run --release --example plan_analysis
//! ```
//!
//! [`PlanDiagnostic`]: midas_engines::PlanDiagnostic
//! [`FederationRuntime`]: midas::runtime::FederationRuntime

use midas_repro::engines::ops::PhysicalPlan;
use midas_repro::engines::{analyze_fragment_plans, Expr, SchemaCatalog};
use midas_repro::midas::runtime::{RuntimeError, RuntimeJob};
use midas_repro::midas::{Midas, QueryPolicy};
use midas_repro::tpch::medical::{generate_medical, medical_query};
use midas_repro::tpch::queries::TwoTableQuery;

fn report(schemas: &SchemaCatalog, q: &TwoTableQuery) {
    let plans = [&q.left_prepare, &q.right_prepare, &q.combine];
    let refs: Vec<&PhysicalPlan> = plans.to_vec();
    let analyses = analyze_fragment_plans(&refs, schemas);
    println!("{}:", q.label);
    for (i, a) in analyses.iter().enumerate() {
        let name = ["left_prepare", "right_prepare", "combine"][i];
        if a.diagnostics.is_empty() {
            let schema = a
                .schema
                .as_ref()
                .map(|s| {
                    s.columns
                        .iter()
                        .map(|(n, t)| format!("{n}: {t:?}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                })
                .unwrap_or_else(|| "<opaque>".to_string());
            println!("  {name:13} clean  -> [{schema}]");
        } else {
            for d in &a.diagnostics {
                println!("  {name:13} {d}");
            }
        }
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tables = generate_medical(1_000, 0.4, 7);
    let schemas = SchemaCatalog::from_catalog(&tables);

    // 1. The paper's Example 2.1 query validates cleanly; the analyzer
    //    derives each fragment's output schema, `@frag` refs included.
    report(&schemas, &medical_query(Some("CT")));

    // 2. Three ways to break it.
    let mut ghost = medical_query(None);
    ghost.combine = PhysicalPlan::Scan {
        table: "generalinfo_2019".to_string(),
    };
    ghost.label = "variant: combine scans a table that does not exist".to_string();
    report(&schemas, &ghost);

    let mut misnumbered = medical_query(None);
    misnumbered.left_prepare = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::Scan {
            table: "patient".to_string(),
        }),
        exprs: vec![
            ("UID".to_string(), Expr::col(0)),
            ("PatientSex".to_string(), Expr::col(7)),
        ],
    };
    misnumbered.label = "variant: projection past the patient schema".to_string();
    report(&schemas, &misnumbered);

    let mut mistyped = medical_query(None);
    mistyped.right_prepare = PhysicalPlan::Filter {
        input: Box::new(PhysicalPlan::Scan {
            table: "generalinfo".to_string(),
        }),
        // UID is Int64; comparing it to a string is the classic
        // stringly-typed federation bug.
        predicate: Expr::col(0).eq(Expr::str("PAT-000017")),
    };
    mistyped.label = "variant: Int64 UID compared against a string".to_string();
    report(&schemas, &mistyped);

    // 3. The runtime runs the same analysis at admission.
    let (midas, _a, _b) = Midas::example_deployment(&["patient"], &["generalinfo"]);
    let runtime = midas.runtime(&tables, 2);
    let batch = runtime.run(vec![
        RuntimeJob::new("clinic-ok", medical_query(None), QueryPolicy::balanced()),
        RuntimeJob::new("clinic-bad", ghost, QueryPolicy::balanced()),
        RuntimeJob::new("clinic-ok", medical_query(Some("MR")), QueryPolicy::balanced()),
    ]);
    println!(
        "runtime batch: {} completed, {} rejected at admission",
        batch.completed.len(),
        batch.failed.len()
    );
    for f in &batch.failed {
        match &f.error {
            RuntimeError::InvalidPlan { tenant, diagnostics } => {
                println!("  rejected {tenant} (job #{}):", f.sequence);
                for d in diagnostics {
                    println!("    {d}");
                }
            }
            other => println!("  unexpected failure: {other}"),
        }
    }
    println!(
        "cache traffic came only from the completed jobs: plan lookups = {}, fragment lookups = {}",
        batch.cache.plan.hits + batch.cache.plan.misses,
        batch.cache.fragment.hits + batch.cache.fragment.misses,
    );
    Ok(())
}
