//! Chaos on the federation, survived through the public API.
//!
//! A cloud federation is never all-healthy: sites go dark, degrade, or
//! shed admission capacity mid-query. This example drives the runtime's
//! resilience machinery end to end with a deterministic [`FaultPlan`]:
//!
//! 1. an **outage window** on the patient site — the first clinic job's
//!    initial attempt fails typed (`SiteUnavailable`), the retry lands one
//!    fault position later, past the window, and completes;
//! 2. a **long outage** that outlives every retry — the job surfaces as a
//!    structured partial failure with tenant/site/attempt context, and two
//!    such exhaustions in a row trip the tenant's **quarantine**, whose
//!    cool-off rejections are typed too;
//! 3. a **deadline** on the simulated clock — an impossible budget fails
//!    terminally without retrying or poisoning the quarantine ledger;
//! 4. a **weighted tenant** — the priority clinic drains two jobs per
//!    round-robin cycle while everyone else drains one.
//!
//! Because faults key on admission positions (sequence + attempt), the
//! whole scenario replays bit-for-bit on every run and worker count.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```
//!
//! [`FaultPlan`]: midas_repro::engines::sim::FaultPlan

use midas_repro::engines::sim::FaultPlan;
use midas_repro::midas::runtime::{
    FederationRuntime, RuntimeConfig, RuntimeError, RuntimeJob,
};
use midas_repro::midas::{Midas, QueryPolicy};
use midas_repro::tpch::medical::{generate_medical, medical_query};

fn main() {
    let (midas, patient_site, _) = Midas::example_deployment(&["patient"], &["generalinfo"]);
    let catalog = generate_medical(400, 0.5, 7);

    // Jobs are admitted in submission order, so their fault positions are
    // known up front: job k retries at positions k, k+1, … The plan below
    // scripts each act of the scenario against those positions.
    //   seq 0 (clinic-A):     outage at position 0 only — the retry at
    //                         position 1 escapes.
    //   seq 2..=3 (clinic-B): outage spanning 2..5 — both jobs exhaust
    //                         their 2 attempts, tripping quarantine.
    //   seq 4 (clinic-B):     quarantine cool-off rejection.
    //   seq 5 (clinic-A):     healthy position, impossible 1 µs deadline.
    //   seq 1, 6.. (priority): healthy, weight 2.
    let plan = FaultPlan::none()
        .outage(patient_site, 0, 1)
        .outage(patient_site, 2, 5)
        .slowdown(patient_site, 6, 8, 2.0);

    let runtime = FederationRuntime::new(
        midas.federation(),
        midas.placement(),
        catalog,
        RuntimeConfig {
            workers: 2,
            max_vms: 2,
            max_attempts: 2,
            quarantine_threshold: 2,
            quarantine_cooloff: 1,
            ..RuntimeConfig::default()
        },
    )
    .with_fault_plan(plan);
    runtime.set_tenant_weight("priority", 2);

    let mut jobs = vec![
        RuntimeJob::new("clinic-A", medical_query(Some("CT")), QueryPolicy::balanced()),
        RuntimeJob::new("priority", medical_query(Some("CT")), QueryPolicy::balanced()),
        RuntimeJob::new("clinic-B", medical_query(Some("MR")), QueryPolicy::balanced()),
        RuntimeJob::new("clinic-B", medical_query(Some("US")), QueryPolicy::fastest()),
        RuntimeJob::new("clinic-B", medical_query(Some("XR")), QueryPolicy::balanced()),
        RuntimeJob::new("clinic-A", medical_query(Some("MR")), QueryPolicy::cheapest())
            .with_deadline(1e-6),
    ];
    for modality in ["MR", "US", "XR"] {
        jobs.push(RuntimeJob::new(
            "priority",
            medical_query(Some(modality)),
            QueryPolicy::balanced(),
        ));
    }
    let submitted = jobs.len();
    let report = runtime.run(jobs);

    println!("injected faults on site {}: {} jobs submitted\n", patient_site.0, submitted);
    println!("completed ({}):", report.completed.len());
    for r in &report.completed {
        println!(
            "  seq {} {:<10} attempts={} sim {:.3}s  {}",
            r.sequence, r.tenant, r.attempts, r.report.actual_costs[0], r.report.label
        );
    }
    println!("\nfailed, every one with a typed reason ({}):", report.failed.len());
    for f in &report.failed {
        let kind = match &f.error {
            RuntimeError::SiteUnavailable { .. } => "exhausted retries",
            RuntimeError::Quarantined { .. } => "quarantine cool-off",
            RuntimeError::DeadlineExceeded { .. } => "deadline",
            RuntimeError::WorkerPanicked(_) => "panic",
            RuntimeError::Scheduler(_) => "scheduler",
            RuntimeError::InvalidPlan { .. } => "rejected at admission",
        };
        println!("  seq {} [{kind}] {}", f.sequence, f.error);
    }

    // The scenario's contract, checked so the example doubles as a smoke
    // test: nothing lost, the scripted acts each played out.
    assert_eq!(report.completed.len() + report.failed.len(), submitted);
    let attempts_of = |seq: usize| {
        report
            .completed
            .iter()
            .find(|r| r.sequence == seq)
            .map(|r| r.attempts)
    };
    assert_eq!(attempts_of(0), Some(2), "act 1: the retry escaped the outage");
    assert!(matches!(
        report.failed[0].error,
        RuntimeError::SiteUnavailable { attempts: 2, .. }
    ));
    assert!(report
        .failed
        .iter()
        .any(|f| matches!(f.error, RuntimeError::Quarantined { .. })));
    assert!(report
        .failed
        .iter()
        .any(|f| matches!(f.error, RuntimeError::DeadlineExceeded { .. })));
    assert_eq!(
        report
            .completed
            .iter()
            .filter(|r| r.tenant == "priority")
            .count(),
        4,
        "the weighted tenant drained fully"
    );
    println!("\nevery job terminated with a definite outcome — none lost, none hung");
}
