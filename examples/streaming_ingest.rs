//! Live hospital ingest while tenants query: the streaming `Ingress` API.
//!
//! The paper's federation never stops admitting patients — new records
//! arrive *while* other hospitals run their analytic queries. This example
//! drives the [`FederationRuntime`]'s streaming mode end to end:
//!
//! 1. the runtime owns a copy-on-write **versioned catalog** (version 0 =
//!    the initial registry);
//! 2. a producer thread interleaves tenant queries (`ingress.submit`) with
//!    admission waves (`ingress.ingest_batch`) while 2 workers drain;
//! 3. each job *pins* the catalog version current at admission — early
//!    queries keep their snapshot bit-for-bit, later ones see the new
//!    patients — and appending a wave recopies **zero** bytes of prior
//!    data (the chunks are `Arc`-shared).
//!
//! ```text
//! cargo run --release --example streaming_ingest
//! ```
//!
//! [`FederationRuntime`]: midas::runtime::FederationRuntime

use midas_repro::midas::runtime::{FederationRuntime, RuntimeConfig, RuntimeJob};
use midas_repro::midas::{Midas, QueryPolicy};
use midas_repro::tpch::medical::{generate_medical, medical_delta, medical_query};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (midas, _a, _b) = Midas::example_deployment(&["patient"], &["generalinfo"]);

    // The registry at opening time: 2 000 patients, 40% with shared records.
    let base_patients = 2_000usize;
    let catalog = generate_medical(base_patients, 0.4, 7);
    println!(
        "version 0: {} patients, {} shared general-info records\n",
        catalog.try_get("patient")?.n_rows(),
        catalog.try_get("generalinfo")?.n_rows()
    );

    let runtime = FederationRuntime::new(
        midas.federation(),
        midas.placement(),
        catalog,
        RuntimeConfig {
            workers: 2,
            parallel_fragments: true,
            max_vms: 4,
            // Keep each job's pinned snapshot on its report so the
            // visibility printout below can count the patients it saw.
            retain_pinned_snapshots: true,
            ..RuntimeConfig::default()
        },
    );

    // A day at the clinic: each "hour", two tenants query the registry and
    // one admission wave of 150 patients arrives.
    let modalities = ["CT", "MR", "US", "XR"];
    let ((), report) = runtime.serve(|ingress| {
        let mut next_uid = base_patients as i64;
        for hour in 0..4 {
            ingress.submit(RuntimeJob::new(
                "clinic-A",
                medical_query(Some(modalities[hour % modalities.len()])),
                QueryPolicy::fastest(),
            ));
            ingress.submit(RuntimeJob::new(
                "clinic-B",
                medical_query(None),
                QueryPolicy::cheapest(),
            ));
            let receipt = ingress
                .ingest_batch(medical_delta(150, 0.4, 100 + hour as u64, next_uid))
                .expect("admission wave ingests");
            next_uid += 150;
            println!(
                "hour {hour}: published catalog v{} (+{} rows, {} prior bytes shared)",
                receipt.version,
                receipt.stats.delta_rows,
                receipt.stats.shared_bytes,
            );
        }
        // Wait for the backlog before the "evening report".
        ingress.drain();
    });

    println!("\ncompleted {} queries, {} failed", report.completed.len(), report.failed.len());
    println!(
        "catalog at v{}; ingest totals: {} rows in {} versions, {} prior bytes Arc-shared",
        report.catalog_version,
        report.ingest.rows_ingested,
        report.ingest.versions_published,
        report.ingest.bytes_shared
    );
    for r in &report.completed {
        println!(
            "  #{:<2} {:<22} {:<9} pinned v{} ({} patients visible) -> {} rows, {:.2} s / ${:.5}",
            r.sequence,
            r.report.label,
            r.tenant,
            r.pinned_version(),
            r.pinned.as_ref().and_then(|v| v.table_rows("patient")).unwrap_or(0),
            r.report.result_rows,
            r.report.actual_costs[0],
            r.report.actual_costs[1],
        );
    }

    // Snapshot isolation, visibly: the same all-modalities query returns
    // more rows at the head version than at version 0.
    let early = report
        .completed
        .iter()
        .find(|r| r.pinned_version() == 0)
        .expect("some job pinned version 0");
    let late = report
        .completed
        .iter()
        .rev()
        .find(|r| r.pinned_version() > 0)
        .expect("some job admitted after an ingest");
    println!(
        "\nsnapshot isolation: v{} saw {} patients, v{} saw {}",
        early.pinned_version(),
        early.pinned.as_ref().and_then(|v| v.table_rows("patient")).unwrap_or(0),
        late.pinned_version(),
        late.pinned.as_ref().and_then(|v| v.table_rows("patient")).unwrap_or(0),
    );
    Ok(())
}
