#!/usr/bin/env bash
# Tier-1 verification for the MIDAS reproduction workspace.
#
# Stages:
#   1. release build of every crate;
#   2. the full test suite (unit, golden, property and differential tests);
#   3. clippy on every workspace crate with warnings denied;
#   4. a smoke run of the engine_exec criterion benches (--test mode);
#   5. the scalar-vs-vectorized timing run, which records
#      BENCH_engine_exec.json (target/repro/ and repo root) so the
#      executor's perf trajectory is tracked across PRs. The same binary
#      sweeps the partitioned parallel join/aggregation over the Q13/Q17
#      (and Q12/Q14) combine fragments at partition degrees 1/2/4/8 and
#      gates: serial-vs-partitioned results bit-for-bit identical (table,
#      WorkProfile, fingerprint) at every degree, and — on hardware with
#      >= 4 CPUs, where OS threads can physically overlap — a >= 1.4x
#      Q13/Q17 combine-fragment speedup at 4 partitions (on fewer cores
#      the sweep numbers are recorded and the wall-clock gate is reported
#      as skipped);
#   6. the concurrent-runtime throughput run, which records
#      BENCH_runtime_throughput.json (target/repro/ and repo root) —
#      the multi-worker scaling trajectory of the FederationRuntime, plus
#      the zero-copy data-plane gates: catalog bytes cloned per query must
#      be exactly 0 (base tables are Arc-shared, never deep-copied),
#      fragment-parallel mode must keep a 1-worker run's simulated costs
#      bit-for-bit identical to serial-fragment mode (and so must
#      partition_degree=4 intra-fragment parallelism), and overlapping a
#      query's independent scan fragments must clear a 1.15x qps gate on
#      the balanced placement (recorded alongside the asymmetric numbers
#      and the partition-degree qps sweep).
#      The same binary also records BENCH_ingest_throughput.json — qps of
#      the streaming Ingress while hospital delta batches publish new
#      copy-on-write catalog versions mid-flight — and gates the live-data
#      plane: every append must Arc-share the prior chunks' bytes, pin-time
#      compaction must be paid at most once per version (repeated pins
#      return the cached snapshot), and with 4 workers + parallel fragments
#      every query result must be bit-identical to standalone execution
#      against the catalog version it pinned at admission (snapshot
#      isolation);
#   7. the fault-resilience run, which records BENCH_fault_resilience.json
#      (target/repro/ and repo root): a skewed 16-tenant workload — one
#      rogue tenant flooding panicking jobs, weighted and quiet clinics —
#      under an injected FaultPlan (site outages, slowdowns, admission
#      flaps). Gates: zero lost jobs (every submission terminates with a
#      completed report or a typed RuntimeError), every non-rogue job
#      completes (short outages absorbed by retry, quarantine contains the
#      rogue), weighted deficit round-robin bounds quiet-tenant completion
#      despite the flood, and the per-job outcome ledger is bit-identical
#      at 1 and 4 workers;
#   8. the SF 1 scale smoke, which records BENCH_engine_sf1.json
#      (target/repro/ and repo root): the paper's 1 GiB configuration
#      (SF 1.0, lineitems capped at 1.2 M rows) generated once
#      materialized and once streamed chunk-at-a-time, then Q12/Q13/Q14/
#      Q17 timed unfused (whole-column vectorized) vs fused (morsel-driven
#      chunk-native) with interleaved sampling. Gates: streamed == flat
#      bit-for-bit; fused == unfused results, fingerprints and work
#      profiles at partition degrees 1/3/8; zero snapshot-compaction bytes
#      (the fused path never pins); fused serial total wall-clock no worse
#      than unfused; and — on >= 4 CPUs — >= 1.5x fused speedup on at
#      least two of the four queries (skipped with the measured numbers
#      recorded on smaller hosts). A 10-minute timeout bounds the stage.
#   9. the multi-tenant cache run, which records BENCH_cache_hit.json
#      (target/repro/ and repo root): a 16-tenant repeated medical
#      workload served twice by a cache-disabled and a cache-enabled
#      runtime from identically seeded states. Gates: the warm
#      (all-hits) pass is bit-identical to the cold pass — including the
#      simulated cost vectors at 1 worker, plans/rows/fingerprints at 4
#      workers — and clears a >= 5x warm/cold qps speedup at 1 worker;
#      a budget-halved run keeps evicting without ever exceeding its
#      byte budget.
#  10. the adaptive-planning tail run, which records
#      BENCH_adaptive_tail.json (target/repro/ and repo root): a skewed
#      four-tenant workload streamed in bursts while the blind planner's
#      favorite join site is congested (admission flap + 20x slowdown),
#      served blind (pressure_penalty = 0) and congestion-aware. Gates:
#      the aware run re-plans (replans > 0) and routes joins away from
#      the hot site while the blind run never re-plans, and the
#      pressure_penalty = 0 per-job outcome ledger is bit-identical at
#      1 and 4 workers (pressure feedback off changes nothing). On
#      >= 4 CPUs the aware run must also strictly improve wall-clock
#      p95/p99 completion latency with a >= 1.3x p99 speedup; on smaller
#      hosts those ratios are recorded in the JSON but not asserted.
#  11. the static-analysis run, which records BENCH_static_analysis.json
#      (target/repro/ and repo root): the workspace determinism lint
#      (repro_lint) walks every non-stub crate's sources and gates at
#      **zero findings** — no wall-clock (`Instant::now`/`SystemTime`),
#      `.lock().unwrap()`, or `panic!`/`unreachable!` site survives in
#      execution code without a `// LINT:` justification naming the guard
#      that discharges it. The same binary validates the Q12/Q13/Q14/Q17
#      and medical plans through the engines::analyze pre-execution
#      analyzer (all must be diagnostic-clean), checks a corpus of
#      malformed plans is fully rejected, and gates admission-time
#      validation cost at < 1% of mean per-job service time on a mixed
#      64-job medical workload.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> build (release)"
cargo build --release --offline

echo "==> tests"
cargo test -q --offline

echo "==> clippy (workspace, -D warnings)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> bench smoke (engine_exec --test)"
cargo bench --offline -p midas-bench --bench engine_exec -- --test

echo "==> perf trajectory (BENCH_engine_exec.json)"
cargo run -q --release --offline -p midas-bench --bin repro_bench_engine_exec

echo "==> runtime + ingest throughput (BENCH_runtime_throughput.json, BENCH_ingest_throughput.json)"
cargo run -q --release --offline -p midas-bench --bin repro_bench_runtime

echo "==> fault resilience (BENCH_fault_resilience.json)"
cargo run -q --release --offline -p midas-bench --bin repro_bench_fault_resilience

echo "==> SF 1 scale smoke (BENCH_engine_sf1.json)"
timeout 600 cargo run -q --release --offline -p midas-bench --bin repro_bench_engine_sf1

echo "==> multi-tenant cache (BENCH_cache_hit.json)"
cargo run -q --release --offline -p midas-bench --bin repro_bench_cache

echo "==> adaptive planning tails (BENCH_adaptive_tail.json)"
cargo run -q --release --offline -p midas-bench --bin repro_bench_adaptive

echo "==> static analysis + determinism lint (BENCH_static_analysis.json)"
cargo run -q --release --offline -p midas-bench --bin repro_lint

echo "verify: OK"
