#!/usr/bin/env bash
# Tier-1 verification for the MIDAS reproduction workspace.
#
# Stages:
#   1. release build of every crate;
#   2. the full test suite (unit, golden, property and differential tests);
#   3. clippy on the execution-engine crate with warnings denied;
#   4. a smoke run of the engine_exec criterion benches (--test mode);
#   5. the scalar-vs-vectorized timing run, which records
#      BENCH_engine_exec.json (target/repro/ and repo root) so the
#      executor's perf trajectory is tracked across PRs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> build (release)"
cargo build --release --offline

echo "==> tests"
cargo test -q --offline

echo "==> clippy (midas-engines, -D warnings)"
cargo clippy --offline -p midas-engines --all-targets -- -D warnings

echo "==> bench smoke (engine_exec --test)"
cargo bench --offline -p midas-bench --bench engine_exec -- --test

echo "==> perf trajectory (BENCH_engine_exec.json)"
cargo run -q --release --offline -p midas-bench --bin repro_bench_engine_exec

echo "verify: OK"
