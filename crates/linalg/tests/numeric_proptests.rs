//! Property-based tests for the dense solvers.

use midas_linalg::{lu_decompose, solve, Cholesky, Matrix, QrDecomposition};
use proptest::prelude::*;

/// Strategy: a well-conditioned square matrix built as `D + R` with a
/// dominant diagonal, plus a right-hand side.
fn diag_dominant(n: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (
        proptest::collection::vec(-1.0..1.0f64, n * n),
        proptest::collection::vec(-10.0..10.0f64, n),
    )
        .prop_map(move |(mut a, b)| {
            for i in 0..n {
                a[i * n + i] += (n as f64) * 3.0; // strict diagonal dominance
            }
            (a, b)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// LU solving satisfies A·x = b to numeric precision.
    #[test]
    fn lu_solves_diag_dominant((a, b) in diag_dominant(4)) {
        let m = Matrix::from_vec(4, 4, a).expect("dims");
        let x = solve(&m, &b).expect("diag-dominant is non-singular");
        let ax = m.matvec(&x).expect("dims");
        for (u, v) in ax.iter().zip(b.iter()) {
            prop_assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    /// The determinant of a permuted identity is ±1 and inverse round-trips.
    #[test]
    fn inverse_roundtrip((a, _) in diag_dominant(3)) {
        let m = Matrix::from_vec(3, 3, a).expect("dims");
        let lu = lu_decompose(&m).expect("non-singular");
        let inv = lu.inverse().expect("invertible");
        let prod = m.matmul(&inv).expect("dims");
        prop_assert!(prod.approx_eq(&Matrix::identity(3), 1e-7));
        prop_assert!(lu.determinant().abs() > 1e-9);
    }

    /// Cholesky of AᵀA + εI solves consistently with LU.
    #[test]
    fn cholesky_agrees_with_lu(
        data in proptest::collection::vec(-3.0..3.0f64, 12),
        b in proptest::collection::vec(-5.0..5.0f64, 3),
    ) {
        let a = Matrix::from_vec(4, 3, data).expect("dims");
        let mut g = a.gram();
        for i in 0..3 {
            g[(i, i)] += 1.0; // guarantee positive definiteness
        }
        let x_ch = Cholesky::decompose(&g).expect("SPD").solve(&b).expect("solves");
        let x_lu = solve(&g, &b).expect("non-singular");
        for (u, v) in x_ch.iter().zip(x_lu.iter()) {
            prop_assert!((u - v).abs() < 1e-7);
        }
    }

    /// QR least squares on a square non-singular system equals the LU solve.
    #[test]
    fn qr_square_agrees_with_lu((a, b) in diag_dominant(4)) {
        let m = Matrix::from_vec(4, 4, a).expect("dims");
        let x_lu = solve(&m, &b).expect("non-singular");
        let x_qr = QrDecomposition::decompose(&m)
            .expect("decomposes")
            .solve_least_squares(&b)
            .expect("full rank");
        for (u, v) in x_qr.iter().zip(x_lu.iter()) {
            prop_assert!((u - v).abs() < 1e-7, "{u} vs {v}");
        }
    }

    /// Matrix transpose is an involution and distributes over products.
    #[test]
    fn transpose_laws(
        a in proptest::collection::vec(-5.0..5.0f64, 6),
        b in proptest::collection::vec(-5.0..5.0f64, 8),
    ) {
        let ma = Matrix::from_vec(2, 3, a).expect("dims");
        let mb = Matrix::from_vec(3, 4, b.iter().cloned().chain([0.0; 4]).take(12).collect())
            .expect("dims");
        prop_assert!(ma.transpose().transpose().approx_eq(&ma, 0.0));
        // (AB)ᵀ = BᵀAᵀ
        let ab_t = ma.matmul(&mb).expect("dims").transpose();
        let bt_at = mb.transpose().matmul(&ma.transpose()).expect("dims");
        prop_assert!(ab_t.approx_eq(&bt_at, 1e-9));
    }
}
