//! Summary statistics used across the workspace.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance (divide by `n`); `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Sample variance (divide by `n-1`); `None` for fewer than two samples.
pub fn sample_variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Linear-interpolated quantile, `q` in `[0, 1]`; `None` for an empty slice.
///
/// Not resistant to NaNs — callers own input hygiene.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median (0.5 quantile).
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Mean Relative Error, the paper's evaluation metric (Eq. 15):
/// `MRE = (1/M) Σ |ĉᵢ - cᵢ| / cᵢ`.
///
/// Pairs whose actual value `cᵢ` is zero are skipped (the metric is undefined
/// there); returns `None` when no valid pair remains or the lengths differ.
pub fn mean_relative_error(predicted: &[f64], actual: &[f64]) -> Option<f64> {
    if predicted.len() != actual.len() {
        return None;
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for (p, a) in predicted.iter().zip(actual.iter()) {
        if *a == 0.0 {
            continue;
        }
        sum += (p - a).abs() / a.abs();
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Numerically stable online mean/variance accumulator (Welford).
///
/// Used by the engine simulator's load tracker and by model-selection code
/// that streams over validation errors.
#[derive(Debug, Clone, Default)]
pub struct OnlineMoments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineMoments {
    /// Fresh accumulator with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean; `None` before the first observation.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population variance; `None` before the first observation.
    pub fn variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Sample variance; `None` before the second observation.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n - 1) as f64)
    }

    /// Merges another accumulator into this one (parallel aggregation).
    pub fn merge(&mut self, other: &OnlineMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }

    #[test]
    fn variance_basic() {
        assert_eq!(variance(&[1.0, 1.0, 1.0]), Some(0.0));
        let v = variance(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((v - 1.25).abs() < 1e-12);
    }

    #[test]
    fn sample_variance_needs_two() {
        assert_eq!(sample_variance(&[1.0]), None);
        let v = sample_variance(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((v - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let xs = [3.0, 1.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn mre_matches_hand_computation() {
        // |1.1-1|/1 + |1.8-2|/2 = 0.1 + 0.1 => /2 = 0.1
        let mre = mean_relative_error(&[1.1, 1.8], &[1.0, 2.0]).unwrap();
        assert!((mre - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mre_skips_zero_actuals() {
        let mre = mean_relative_error(&[1.0, 5.0], &[0.0, 4.0]).unwrap();
        assert!((mre - 0.25).abs() < 1e-12);
        assert_eq!(mean_relative_error(&[1.0], &[0.0]), None);
        assert_eq!(mean_relative_error(&[1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn online_moments_match_batch() {
        let xs = [4.0, 7.0, 13.0, 16.0];
        let mut om = OnlineMoments::new();
        for &x in &xs {
            om.push(x);
        }
        assert!((om.mean().unwrap() - mean(&xs).unwrap()).abs() < 1e-12);
        assert!((om.variance().unwrap() - variance(&xs).unwrap()).abs() < 1e-12);
        assert!(
            (om.sample_variance().unwrap() - sample_variance(&xs).unwrap()).abs() < 1e-12
        );
    }

    #[test]
    fn online_moments_merge() {
        let xs = [1.0, 2.0, 3.0, 10.0, 20.0];
        let mut a = OnlineMoments::new();
        let mut b = OnlineMoments::new();
        for &x in &xs[..2] {
            a.push(x);
        }
        for &x in &xs[2..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert!((a.mean().unwrap() - mean(&xs).unwrap()).abs() < 1e-12);
        assert!((a.variance().unwrap() - variance(&xs).unwrap()).abs() < 1e-12);
    }
}
