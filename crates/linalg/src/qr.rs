//! Householder QR decomposition and least-squares solving.
//!
//! Solving least squares through QR avoids forming `AᵀA` (which squares the
//! condition number). DREAM defaults to the paper's normal equations but the
//! ablation benches compare both paths, so the QR route is a first-class
//! citizen here.

use crate::{LinalgError, Matrix, Result};

/// Compact Householder QR factorization of an `m x n` matrix with `m >= n`.
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// Upper triangle holds `R`; the lower part stores the Householder
    /// vectors' tails (v[0] implied to be 1 after normalization).
    qr: Matrix,
    /// Scaling coefficient of each Householder reflector.
    betas: Vec<f64>,
}

impl QrDecomposition {
    /// Factors `a` (requires `rows >= cols`).
    pub fn decompose(a: &Matrix) -> Result<Self> {
        let m = a.rows();
        let n = a.cols();
        if m < n {
            return Err(LinalgError::ShapeMismatch {
                rows_a: m,
                cols_a: n,
                rows_b: n,
                cols_b: n,
            });
        }
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];

        for k in 0..n {
            // Build reflector annihilating column k below the diagonal.
            let mut norm = 0.0;
            for i in k..m {
                norm += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm.sqrt();
            if norm < 1e-300 {
                betas[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // beta = 2 / (vᵀv) with v = (v0, tail...)
            let mut vtv = v0 * v0;
            for i in (k + 1)..m {
                vtv += qr[(i, k)] * qr[(i, k)];
            }
            if vtv < 1e-300 {
                betas[k] = 0.0;
                qr[(k, k)] = alpha;
                continue;
            }
            let beta = 2.0 / vtv;
            betas[k] = beta;

            // Apply H = I - beta v vᵀ to the trailing columns.
            for j in (k + 1)..n {
                let mut dot = v0 * qr[(k, j)];
                for i in (k + 1)..m {
                    dot += qr[(i, k)] * qr[(i, j)];
                }
                let dot = beta * dot;
                qr[(k, j)] -= dot * v0;
                for i in (k + 1)..m {
                    let sub = dot * qr[(i, k)];
                    qr[(i, j)] -= sub;
                }
            }
            // Store R's diagonal and the v tail (v0 kept separately via alpha).
            qr[(k, k)] = alpha;
            // Normalize tail by v0 so v = (1, tail/v0); fold v0 into beta.
            for i in (k + 1)..m {
                qr[(i, k)] /= v0;
            }
            betas[k] = beta * v0 * v0;
        }

        Ok(QrDecomposition { qr, betas })
    }

    /// Solves the least-squares problem `min ||A·x - b||₂`.
    ///
    /// Fails with [`LinalgError::Singular`] when `R` has a (near-)zero
    /// diagonal, i.e. the design matrix is rank deficient.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let m = self.qr.rows();
        let n = self.qr.cols();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                rows_a: m,
                cols_a: n,
                rows_b: b.len(),
                cols_b: 1,
            });
        }
        // Apply the stored reflectors to b: Qᵀb.
        let mut y = b.to_vec();
        for k in 0..n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            // v = (1, qr[k+1..m, k])
            let mut dot = y[k];
            for i in (k + 1)..m {
                dot += self.qr[(i, k)] * y[i];
            }
            let dot = beta * dot;
            y[k] -= dot;
            for i in (k + 1)..m {
                let sub = dot * self.qr[(i, k)];
                y[i] -= sub;
            }
        }
        // Back substitution through R.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let d = self.qr[(i, i)];
            if d.abs() < 1e-12 {
                return Err(LinalgError::Singular { pivot: i });
            }
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.qr[(i, j)] * x[j];
            }
            x[i] = acc / d;
        }
        Ok(x)
    }

    /// The upper-triangular factor `R` (n x n).
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r[(i, j)] = self.qr[(i, j)];
            }
        }
        r
    }
}

/// Convenience wrapper: least-squares solve of `min ||A·x - b||` via QR.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    QrDecomposition::decompose(a)?.solve_least_squares(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_square_system() {
        let a = Matrix::from_vec(2, 2, vec![2., 1., 1., 3.]).unwrap();
        let x = least_squares(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn overdetermined_matches_normal_equations() {
        // y = 1 + 2x fitted through 5 noisy-free points must be exact.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let mut rows = Vec::new();
        let mut b = Vec::new();
        for &x in &xs {
            rows.push(vec![1.0, x]);
            b.push(1.0 + 2.0 * x);
        }
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&refs).unwrap();
        let beta = least_squares(&a, &b).unwrap();
        assert!((beta[0] - 1.0).abs() < 1e-10);
        assert!((beta[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn residual_is_orthogonal_to_columns() {
        let a = Matrix::from_vec(4, 2, vec![1., 0.5, 1., 1.5, 1., 2.5, 1., 3.0]).unwrap();
        let b = [2.0, 1.0, 4.0, 3.5];
        let x = least_squares(&a, &b).unwrap();
        let fitted = a.matvec(&x).unwrap();
        let resid: Vec<f64> = b.iter().zip(fitted.iter()).map(|(u, v)| u - v).collect();
        let atr = a.transpose_matvec(&resid).unwrap();
        for v in atr {
            assert!(v.abs() < 1e-9, "residual not orthogonal: {v}");
        }
    }

    #[test]
    fn r_is_upper_triangular_with_correct_gram() {
        let a = Matrix::from_vec(4, 2, vec![1., 2., 3., 4., 5., 6., 7., 8.]).unwrap();
        let qr = QrDecomposition::decompose(&a).unwrap();
        let r = qr.r();
        // RᵀR must equal AᵀA.
        let rtr = r.transpose().matmul(&r).unwrap();
        assert!(rtr.approx_eq(&a.gram(), 1e-8));
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(QrDecomposition::decompose(&a).is_err());
    }

    #[test]
    fn rank_deficient_reported() {
        // Second column is 2x the first.
        let a = Matrix::from_vec(3, 2, vec![1., 2., 2., 4., 3., 6.]).unwrap();
        let qr = QrDecomposition::decompose(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 2.0, 3.0]),
            Err(LinalgError::Singular { .. })
        ));
    }
}
