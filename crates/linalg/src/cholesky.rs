//! Cholesky factorization for symmetric positive-definite systems.
//!
//! The normal-equation matrix `AᵀA` of the paper's Eq. 12 is symmetric
//! positive definite whenever the design matrix has full column rank, which
//! makes Cholesky the natural (and ~2x cheaper than LU) solver for it.

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper triangle
    /// is assumed, matching how [`Matrix::gram`] fills both halves.
    /// Fails with [`LinalgError::NotPositiveDefinite`] when a diagonal pivot
    /// is not strictly positive (rank-deficient design matrix).
    pub fn decompose(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 1e-12 {
                        return Err(LinalgError::NotPositiveDefinite { index: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` via forward then backward substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                rows_a: n,
                cols_a: n,
                rows_b: b.len(),
                cols_b: 1,
            });
        }
        // L·y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * y[j];
            }
            y[i] = acc / self.l[(i, i)];
        }
        // Lᵀ·x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.l[(j, i)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of the original matrix: `2·Σ log L_ii`.
    pub fn log_determinant(&self) -> f64 {
        (0..self.l.rows())
            .map(|i| self.l[(i, i)].ln())
            .sum::<f64>()
            * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_vec(3, 3, vec![4., 2., 1., 2., 5., 3., 1., 3., 6.]).unwrap()
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd3();
        let ch = Cholesky::decompose(&a).unwrap();
        let l = ch.factor();
        let recon = l.matmul(&l.transpose()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd3();
        let b = [1.0, -2.0, 0.5];
        let x_ch = Cholesky::decompose(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::solve::solve(&a, &b).unwrap();
        for (u, v) in x_ch.iter().zip(x_lu.iter()) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 2., 1.]).unwrap();
        assert!(matches!(
            Cholesky::decompose(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(Cholesky::decompose(&a).is_err());
    }

    #[test]
    fn log_determinant_matches_lu_determinant() {
        let a = spd3();
        let ch = Cholesky::decompose(&a).unwrap();
        let det = crate::solve::lu_decompose(&a).unwrap().determinant();
        assert!((ch.log_determinant() - det.ln()).abs() < 1e-10);
    }
}
