//! Error type shared by all linear-algebra operations.

use std::fmt;

/// Errors produced by matrix construction, decomposition and solving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands have incompatible shapes; carries `(rows_a, cols_a,
    /// rows_b, cols_b)` of the offending operands.
    ShapeMismatch {
        /// Rows of the left operand.
        rows_a: usize,
        /// Columns of the left operand.
        cols_a: usize,
        /// Rows of the right operand.
        rows_b: usize,
        /// Columns of the right operand.
        cols_b: usize,
    },
    /// The operation requires a square matrix but got `rows x cols`.
    NotSquare {
        /// Rows of the offending matrix.
        rows: usize,
        /// Columns of the offending matrix.
        cols: usize,
    },
    /// The matrix is singular (or numerically so) and cannot be factored
    /// or inverted. Carries the pivot index where elimination broke down.
    Singular {
        /// Pivot column at which no usable pivot was found.
        pivot: usize,
    },
    /// Cholesky factorization requires a positive-definite matrix; the leading
    /// minor at `index` was not positive.
    NotPositiveDefinite {
        /// Index of the failing diagonal element.
        index: usize,
    },
    /// A matrix was constructed from data whose length does not match the
    /// requested dimensions.
    BadDimensions {
        /// Rows requested.
        rows: usize,
        /// Columns requested.
        cols: usize,
        /// Length of the backing data actually supplied.
        len: usize,
    },
    /// The input was empty where at least one element is required.
    Empty,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch {
                rows_a,
                cols_a,
                rows_b,
                cols_b,
            } => write!(
                f,
                "shape mismatch: ({rows_a}x{cols_a}) is not compatible with ({rows_b}x{cols_b})"
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "expected a square matrix, got {rows}x{cols}")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::NotPositiveDefinite { index } => {
                write!(f, "matrix is not positive definite at diagonal index {index}")
            }
            LinalgError::BadDimensions { rows, cols, len } => write!(
                f,
                "cannot form a {rows}x{cols} matrix from {len} elements"
            ),
            LinalgError::Empty => write!(f, "input must not be empty"),
        }
    }
}

impl std::error::Error for LinalgError {}
