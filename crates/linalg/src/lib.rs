//! # midas-linalg
//!
//! Dense linear algebra and summary statistics used by the MIDAS / DREAM
//! reproduction.
//!
//! The paper's core machinery (Section 2.5) is ordinary least squares on a
//! design matrix `A` (Eq. 8) solved through the normal equations
//! `B = (AᵀA)⁻¹AᵀC` (Eq. 12). This crate supplies:
//!
//! * [`Matrix`] — a small dense, row-major matrix type with the usual
//!   arithmetic, transpose and multiplication,
//! * [`solve::solve`] — Gaussian elimination with partial pivoting,
//! * [`cholesky::Cholesky`] — for symmetric positive-definite systems such as
//!   `AᵀA`,
//! * [`qr::QrDecomposition`] — Householder QR, the numerically robust way to
//!   solve least-squares problems,
//! * [`stats`] — means, variances, quantiles and online (Welford) moments.
//!
//! Everything is implemented from scratch on `f64`; no external numeric
//! dependencies are used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Numeric kernels (LU/QR/Cholesky substitution loops) index rows/columns
// explicitly; iterator-chain rewrites obscure the math they mirror.
#![allow(clippy::needless_range_loop)]

pub mod cholesky;
pub mod error;
pub mod matrix;
pub mod qr;
pub mod solve;
pub mod stats;

pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use matrix::Matrix;
pub use qr::QrDecomposition;
pub use solve::{lu_decompose, solve, solve_many, LuDecomposition};

/// Result alias for fallible linear-algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;
