//! Linear system solving via LU decomposition with partial pivoting.

use crate::{LinalgError, Matrix, Result};

/// LU decomposition with partial pivoting: `P·A = L·U`.
///
/// The factors are stored compactly in a single matrix (unit lower triangle
/// implicit). Reuse the decomposition through [`LuDecomposition::solve`] to
/// solve against many right-hand sides.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    lu: Matrix,
    /// Row permutation: output row `i` of the factored system corresponds to
    /// input row `perm[i]`.
    perm: Vec<usize>,
    /// Sign of the permutation, used by [`LuDecomposition::determinant`].
    perm_sign: f64,
}

/// Numeric tolerance under which a pivot is considered to be exactly zero.
const PIVOT_EPS: f64 = 1e-12;

/// Factors a square matrix into `P·A = L·U`.
///
/// Fails with [`LinalgError::Singular`] if no pivot above the numeric
/// tolerance can be found in some column.
pub fn lu_decompose(a: &Matrix) -> Result<LuDecomposition> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut perm_sign = 1.0;

    for k in 0..n {
        // Partial pivoting: bring the largest |entry| in column k to the
        // diagonal to bound element growth.
        let mut pivot_row = k;
        let mut pivot_val = lu[(k, k)].abs();
        for r in (k + 1)..n {
            let v = lu[(r, k)].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < PIVOT_EPS {
            return Err(LinalgError::Singular { pivot: k });
        }
        if pivot_row != k {
            perm.swap(k, pivot_row);
            perm_sign = -perm_sign;
            for c in 0..n {
                let tmp = lu[(k, c)];
                lu[(k, c)] = lu[(pivot_row, c)];
                lu[(pivot_row, c)] = tmp;
            }
        }
        let pivot = lu[(k, k)];
        for r in (k + 1)..n {
            let factor = lu[(r, k)] / pivot;
            lu[(r, k)] = factor;
            for c in (k + 1)..n {
                let sub = factor * lu[(k, c)];
                lu[(r, c)] -= sub;
            }
        }
    }

    Ok(LuDecomposition {
        lu,
        perm,
        perm_sign,
    })
}

impl LuDecomposition {
    /// Solves `A·x = b` using the stored factors.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                rows_a: n,
                cols_a: n,
                rows_b: b.len(),
                cols_b: 1,
            });
        }
        // Forward substitution with the permuted rhs (L has implicit unit diagonal).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut acc = b[self.perm[i]];
            for j in 0..i {
                acc -= self.lu[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        // Back substitution through U.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix, from the product of pivots.
    pub fn determinant(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.lu.rows() {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Inverse of the original matrix, column by column.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let col = self.solve(&e)?;
            e[c] = 0.0;
            for (r, v) in col.into_iter().enumerate() {
                inv[(r, c)] = v;
            }
        }
        Ok(inv)
    }
}

/// One-shot solve of `A·x = b` (square `A`) with partial pivoting.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    lu_decompose(a)?.solve(b)
}

/// Solves `A·X = B` for a matrix of right-hand sides, reusing one
/// factorization.
pub fn solve_many(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.rows() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            rows_a: a.rows(),
            cols_a: a.cols(),
            rows_b: b.rows(),
            cols_b: b.cols(),
        });
    }
    let lu = lu_decompose(a)?;
    let mut out = Matrix::zeros(b.rows(), b.cols());
    for c in 0..b.cols() {
        let col = lu.solve(&b.col(c))?;
        for (r, v) in col.into_iter().enumerate() {
            out[(r, c)] = v;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
        let a = Matrix::from_vec(2, 2, vec![2., 1., 1., 3.]).unwrap();
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_vec(2, 2, vec![0., 1., 1., 0.]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_is_reported() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 2., 4.]).unwrap();
        assert!(matches!(solve(&a, &[1.0, 2.0]), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            lu_decompose(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn determinant_of_permuted_identity() {
        let a = Matrix::from_vec(2, 2, vec![0., 1., 1., 0.]).unwrap();
        let lu = lu_decompose(&a).unwrap();
        assert!((lu.determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_vec(3, 3, vec![4., 2., 1., 2., 5., 3., 1., 3., 6.]).unwrap();
        let inv = lu_decompose(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn solve_many_matches_individual_solves() {
        let a = Matrix::from_vec(2, 2, vec![3., 1., 1., 2.]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![9., 1., 8., 0.]).unwrap();
        let x = solve_many(&a, &b).unwrap();
        for c in 0..2 {
            let xc = solve(&a, &b.col(c)).unwrap();
            for r in 0..2 {
                assert!((x[(r, c)] - xc[r]).abs() < 1e-12);
            }
        }
    }
}
