//! Dense, row-major `f64` matrix.

use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64`.
///
/// The type is intentionally small and explicit: the design matrices in the
/// paper are `M x (L+1)` with `M` at most a few thousand observations and
/// `L` a handful of regressors, so cache-friendly contiguous storage plus
/// straightforward `O(n³)` kernels are more than sufficient and easy to audit.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// Fails with [`LinalgError::BadDimensions`] when `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::BadDimensions {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from nested row slices.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::BadDimensions {
                    rows: rows.len(),
                    cols,
                    len: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a single-column matrix from a slice.
    pub fn column_vector(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the backing row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Column `c` copied into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose `Aᵀ`.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// Uses the classic i-k-j loop order so the innermost accesses stream
    /// contiguously through both `other` and the output row.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                rows_a: self.rows,
                cols_a: self.cols,
                rows_b: other.rows,
                cols_b: other.cols,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a_ik = self[(i, k)];
                if a_ik == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += a_ik * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                rows_a: self.rows,
                cols_a: self.cols,
                rows_b: v.len(),
                cols_b: 1,
            });
        }
        Ok((0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(v.iter())
                    .map(|(a, b)| a * b)
                    .sum::<f64>()
            })
            .collect())
    }

    /// Computes the Gram matrix `AᵀA` without materializing the transpose.
    ///
    /// The result is symmetric positive semi-definite; only the upper triangle
    /// is computed and then mirrored.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                for j in i..n {
                    g[(i, j)] += a * row[j];
                }
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                g[(j, i)] = g[(i, j)];
            }
        }
        g
    }

    /// Computes `Aᵀy` without materializing the transpose.
    pub fn transpose_matvec(&self, y: &[f64]) -> Result<Vec<f64>> {
        if self.rows != y.len() {
            return Err(LinalgError::ShapeMismatch {
                rows_a: self.rows,
                cols_a: self.cols,
                rows_b: y.len(),
                cols_b: 1,
            });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let w = y[r];
            if w == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(r).iter()) {
                *o += w * a;
            }
        }
        Ok(out)
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Multiplies every element by `k`.
    pub fn scale(&self, k: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * k).collect(),
        }
    }

    /// Frobenius norm `sqrt(Σ a_ij²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// True when every pairwise element difference is within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                rows_a: self.rows,
                cols_a: self.cols,
                rows_b: other.rows,
                cols_b: other.cols,
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
        assert!(err.is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(0, 1)], 4.0);
        assert!(t.transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![5., 6., 7., 8.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn gram_equals_explicit_ata() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        assert!(g.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn transpose_matvec_matches_explicit() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let y = [1.0, -1.0, 2.0];
        let implicit = a.transpose_matvec(&y).unwrap();
        let explicit = a.transpose().matvec(&y).unwrap();
        assert_eq!(implicit, explicit);
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 0., 2., 0., 1., -1.]).unwrap();
        let v = a.matvec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(v, vec![7.0, -1.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_vec(1, 2, vec![1., 2.]).unwrap();
        let b = Matrix::from_vec(1, 2, vec![3., 5.]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4., 7.]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2., 3.]);
        assert_eq!(a.scale(2.0).as_slice(), &[2., 4.]);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_vec(1, 2, vec![3., -4.]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }
}
