//! Executor benchmarks: the relational substrate's throughput on the
//! TPC-H two-table queries — generation, scan/filter, join and the full
//! federated execution path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use midas_cloud::federation::example_federation;
use midas_engines::ops::{execute, execute_scalar};
use midas_engines::sim::{DriftIntensity, SimulationEnv};
use midas_engines::{EngineKind, Placement};
use midas_ires::scheduler::{Scheduler, SchedulerConfig};
use midas_ires::CandidateConfig;
use midas_tpch::gen::{GenConfig, TpchDb};
use midas_tpch::queries::{q12, q13, q14, q17, TwoTableQuery};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpch_generate");
    group.sample_size(10);
    for &sf in &[0.001f64, 0.005] {
        group.bench_with_input(BenchmarkId::new("sf", format!("{sf}")), &sf, |b, &sf| {
            b.iter(|| black_box(TpchDb::generate(GenConfig::new(sf, 1))))
        });
    }
    group.finish();
}

fn bench_operators(c: &mut Criterion) {
    let db = TpchDb::generate(GenConfig::new(0.01, 2));
    let catalog = db.catalog().clone();
    let queries: Vec<(&str, TwoTableQuery)> = vec![
        ("q12", q12("MAIL", "SHIP", 1994)),
        ("q13", q13("special", "requests")),
        ("q14", q14(1995, 9)),
        ("q17", q17("Brand#23", "MED BOX")),
    ];
    let mut group = c.benchmark_group("relational_execution");
    group.sample_size(10);
    for (name, q) in &queries {
        group.bench_function(BenchmarkId::new("prepare_left", *name), |b| {
            b.iter(|| black_box(execute(&q.left_prepare, &catalog).expect("runs")))
        });
    }
    // Full local pipeline of the heaviest query.
    let q = &queries[3].1;
    group.bench_function("q17_full_local", |b| {
        b.iter(|| {
            let mut cat = catalog.clone();
            let (l, _) = execute(&q.left_prepare, &cat).expect("runs");
            let (r, _) = execute(&q.right_prepare, &cat).expect("runs");
            cat.insert("@frag0".to_string(), l);
            cat.insert("@frag1".to_string(), r);
            black_box(execute(&q.combine, &cat).expect("runs"))
        })
    });
    group.finish();
}

fn bench_federated_execution(c: &mut Criterion) {
    let (fed, a, b) = example_federation();
    let mut placement = Placement::new();
    placement.place("lineitem", a, EngineKind::Hive);
    placement.place("orders", b, EngineKind::PostgreSql);
    let db = TpchDb::generate(GenConfig::new(0.005, 4));
    let config = CandidateConfig {
        join_site: a,
        join_engine: EngineKind::Spark,
        instance_idx: 2,
        vm_count: 2,
    };
    let mut group = c.benchmark_group("federated_execution");
    group.sample_size(10);
    group.bench_function("q12_end_to_end", |bch| {
        bch.iter(|| {
            let mut sched = Scheduler::new(
                &fed,
                placement.clone(),
                SchedulerConfig {
                    seed: 5,
                    drift: DriftIntensity::Mild,
                    work_scale: 1.0,
                    ..SchedulerConfig::default()
                },
            );
            black_box(
                sched
                    .execute_with_config(&q12("MAIL", "SHIP", 1994), &config, db.catalog())
                    .expect("runs"),
            )
        })
    });
    group.finish();
    // Keep the env type in use so the bench compiles stand-alone.
    let _ = SimulationEnv::new();
}

/// The headline perf comparison: the vectorized default executor against
/// the scalar reference path on the paper's two-table queries, full local
/// pipeline (both prepares plus combine). `repro_bench_engine_exec`
/// records the same comparison as `BENCH_engine_exec.json`.
fn bench_scalar_vs_vectorized(c: &mut Criterion) {
    let db = TpchDb::generate(GenConfig::new(0.01, 2));
    let queries: Vec<(&str, TwoTableQuery)> = vec![
        ("q12", q12("MAIL", "SHIP", 1994)),
        ("q13", q13("special", "requests")),
        ("q14", q14(1995, 9)),
        ("q17", q17("Brand#23", "MED BOX")),
    ];
    let mut group = c.benchmark_group("scalar_vs_vectorized");
    group.sample_size(10);
    for (name, q) in &queries {
        let mut cat = db.catalog().clone();
        group.bench_function(BenchmarkId::new("scalar", *name), |b| {
            b.iter(|| black_box(q.execute_local(&mut cat, execute_scalar).expect("runs")))
        });
        group.bench_function(BenchmarkId::new("vectorized", *name), |b| {
            b.iter(|| black_box(q.execute_local(&mut cat, execute).expect("runs")))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_operators,
    bench_federated_execution,
    bench_scalar_vs_vectorized
);
criterion_main!(benches);
