//! Bench companion to **Figure 3**: wall-clock of the three MOQP pipelines
//! (NSGA-II+Algorithm 2, scalarized-WSM GA, exhaustive) over one QEP space.

use criterion::{criterion_group, criterion_main, Criterion};
use midas_cloud::federation::example_federation;
use midas_engines::{EngineKind, Placement};
use midas_ires::optimizer::{moqp_exhaustive, moqp_ga, moqp_wsm};
use midas_ires::{EnumerationSpace, PlanCostModel};
use midas_moo::select::Constraints;
use midas_moo::{Nsga2Config, WeightedSumModel};
use midas_tpch::gen::{GenConfig, TpchDb};
use midas_tpch::queries::q12;
use std::hint::black_box;

fn bench_moqp(c: &mut Criterion) {
    let (fed, a, b) = example_federation();
    let mut placement = Placement::new();
    placement.place("lineitem", a, EngineKind::Hive);
    placement.place("orders", b, EngineKind::PostgreSql);
    let db = TpchDb::generate(GenConfig::new(0.005, 3));
    let query = q12("MAIL", "SHIP", 1994);
    let space = EnumerationSpace::for_query(&fed, &placement, &query, 12).expect("placed");
    let model = PlanCostModel::build(&placement, &query, db.catalog()).expect("buildable");
    let weights = WeightedSumModel::new(&[0.5, 0.5]);
    let none = Constraints::none(2);
    let ga_cfg = Nsga2Config {
        population: 40,
        generations: 25,
        seed: 5,
        ..Nsga2Config::default()
    };

    let mut group = c.benchmark_group("moqp_pipelines");
    group.sample_size(10);
    group.bench_function("nsga2_plus_algorithm2", |bch| {
        bch.iter(|| black_box(moqp_ga(&space, &model, &fed, &weights, &none, ga_cfg)))
    });
    group.bench_function("wsm_scalarized_ga", |bch| {
        bch.iter(|| black_box(moqp_wsm(&space, &model, &fed, &weights, ga_cfg)))
    });
    group.bench_function("exhaustive", |bch| {
        bch.iter(|| black_box(moqp_exhaustive(&space, &model, &fed, &weights, &none)))
    });
    group.finish();
}

fn bench_nsga_variants(c: &mut Criterion) {
    use midas_moo::{IntBoxProblem, Moead, MoeadConfig, Nsga2, NsgaG, NsgaGConfig};
    // A pure optimization benchmark on a synthetic 3-gene problem.
    let problem = IntBoxProblem::new(vec![20, 20, 20], 2, |g| {
        let x = g[0] as f64;
        let y = g[1] as f64;
        let z = g[2] as f64;
        vec![(x - 10.0).powi(2) + z, (y - 10.0).powi(2) + (20.0 - z)]
    });
    let cfg = Nsga2Config {
        population: 50,
        generations: 30,
        seed: 9,
        ..Nsga2Config::default()
    };
    let mut group = c.benchmark_group("nsga_variants");
    group.sample_size(10);
    group.bench_function("nsga2", |b| {
        b.iter(|| black_box(Nsga2::new(&problem, cfg).run()))
    });
    group.bench_function("nsga_g", |b| {
        b.iter(|| {
            black_box(
                NsgaG::new(
                    &problem,
                    NsgaGConfig {
                        base: cfg,
                        divisions: 8,
                    },
                )
                .run(),
            )
        })
    });
    group.bench_function("moea_d", |b| {
        b.iter(|| {
            black_box(
                Moead::new(
                    &problem,
                    MoeadConfig {
                        population: 50,
                        generations: 30,
                        seed: 9,
                        ..MoeadConfig::default()
                    },
                )
                .run(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_moqp, bench_nsga_variants);
criterion_main!(benches);
