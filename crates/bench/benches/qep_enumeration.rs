//! Bench companion to **Example 3.1**: enumerating and costing equivalent
//! QEP configurations at the 18 200-configuration scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use midas_cloud::federation::example_federation;
use midas_engines::{EngineKind, Placement};
use midas_ires::{CandidateConfig, EnumerationSpace, PlanCostModel};
use midas_tpch::gen::{GenConfig, TpchDb};
use midas_tpch::queries::q12;
use std::hint::black_box;

fn bench_enumeration(c: &mut Criterion) {
    let (fed, a, b) = example_federation();
    let mut placement = Placement::new();
    placement.place("lineitem", a, EngineKind::Hive);
    placement.place("orders", b, EngineKind::PostgreSql);
    let query = q12("MAIL", "SHIP", 1994);

    let mut group = c.benchmark_group("qep_enumeration");
    group.sample_size(20);
    for &max_vms in &[8u32, 32, 64] {
        let space = EnumerationSpace::for_query(&fed, &placement, &query, max_vms)
            .expect("tables placed");
        group.bench_with_input(
            BenchmarkId::new("enumerate_all", space.len()),
            &space,
            |bch, space| bch.iter(|| black_box(space.all())),
        );
    }
    group.finish();
}

fn bench_costing_18200(c: &mut Criterion) {
    let (fed, a, b) = example_federation();
    let mut placement = Placement::new();
    placement.place("lineitem", a, EngineKind::Hive);
    placement.place("orders", b, EngineKind::PostgreSql);
    let db = TpchDb::generate(GenConfig::new(0.005, 3));
    let query = q12("MAIL", "SHIP", 1994);
    let model = PlanCostModel::build(&placement, &query, db.catalog()).expect("buildable");
    let n_instances = fed.site(a).catalog.instances().len();

    let mut group = c.benchmark_group("qep_costing");
    group.sample_size(10);
    group.bench_function("cost_18200_configs", |bch| {
        bch.iter(|| {
            let mut acc = 0.0;
            for i in 0..18_200u64 {
                let config = CandidateConfig {
                    join_site: a,
                    join_engine: EngineKind::ALL[(i % 3) as usize],
                    instance_idx: (i as usize / 3) % n_instances,
                    vm_count: (i % 16) as u32 + 1,
                };
                acc += model.cost(&fed, black_box(&config))[0];
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_enumeration, bench_costing_18200);
criterion_main!(benches);
