//! Ablations of the design choices DESIGN.md calls out.
//!
//! Accuracy-style ablations (they print MRE-like numbers) are modelled as
//! one-iteration criterion benches over a shared synthetic drifting trace,
//! so `cargo bench` exercises them and their *printed* output lands in
//! `bench_output.txt`:
//!
//! 1. window growth policy (`m += 1` vs doubling),
//! 2. quality metric (plain R² vs adjusted R²),
//! 3. solver (normal equations vs QR vs ridge),
//! 4. drift intensity (none / mild / strong),
//! 5. BML selection policy (training error vs holdout).

use criterion::{criterion_group, criterion_main, Criterion};
use midas_dream::{
    estimate_cost_value, DreamConfig, GrowthPolicy, History, SolveMethod,
};
use midas_linalg::stats::mean_relative_error;
use midas_mlearn::{BmlEstimator, SelectionPolicy, WindowSpec};
use midas_dream::CostEstimator;
use std::hint::black_box;

/// Synthetic drifting trace: linear in two decorrelated size features with
/// regime shifts every ~17 points and 12% noise.
fn trace(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut rand = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % 10_000) as f64 / 10_000.0
    };
    let mut load = 1.0;
    let mut feats = Vec::with_capacity(n);
    let mut costs = Vec::with_capacity(n);
    for i in 0..n {
        if i % 17 == 0 {
            load = 0.5 + rand() * 2.0;
        }
        let f1 = 0.4 + 0.6 * (i % 20) as f64 / 19.0;
        let f2 = 0.4 + 0.6 * ((i + 5) % 13) as f64 / 12.0;
        let x = vec![600_000.0 * f1, 150_000.0 * f2];
        let noise = 1.0 + (rand() - 0.5) * 0.24;
        let t = load * noise * (8.0 + x[0] * 4e-5 + x[1] * 2e-5);
        feats.push(x);
        costs.push(vec![t, t * 0.002]);
    }
    (feats, costs)
}

/// Prequential MRE of a DREAM configuration over the trace's second half.
fn dream_mre(cfg: &DreamConfig, feats: &[Vec<f64>], costs: &[Vec<f64>]) -> (f64, f64) {
    let warmup = feats.len() / 2;
    let mut preds = Vec::new();
    let mut actuals = Vec::new();
    let mut windows = Vec::new();
    for i in warmup..feats.len() {
        let mut h = History::new(2, 2);
        for j in 0..i {
            h.record(&feats[j], &costs[j]).expect("fixed arity");
        }
        if let Ok(out) = estimate_cost_value(&h, cfg) {
            windows.push(out.window as f64);
            if let Ok(p) = out.predict(&feats[i]) {
                preds.push(p[0].max(0.0));
                actuals.push(costs[i][0]);
            }
        }
    }
    (
        mean_relative_error(&preds, &actuals).unwrap_or(f64::NAN),
        windows.iter().sum::<f64>() / windows.len().max(1) as f64,
    )
}

fn ablation_report(c: &mut Criterion) {
    let (feats, costs) = trace(70, 11);

    println!("\n=== Ablation 1+2+3: DREAM variants (MRE over 35 test points, mean window) ===");
    let base = DreamConfig::uniform(0.8, 2, 30);
    let variants: Vec<(&str, DreamConfig)> = vec![
        ("paper: R2 + normal equations + m+=1", base.clone()),
        ("quality: adjusted R2", base.clone().with_adjusted_r2()),
        (
            "solver: ridge(0.05)",
            DreamConfig {
                solver: SolveMethod::Ridge(0.05),
                ..base.clone()
            },
        ),
        (
            "solver: QR",
            DreamConfig {
                solver: SolveMethod::Qr,
                ..base.clone()
            },
        ),
        (
            "growth: doubling",
            DreamConfig {
                growth: GrowthPolicy::Doubling,
                ..base.clone()
            },
        ),
        (
            "combined: adjusted R2 + ridge",
            DreamConfig {
                solver: SolveMethod::Ridge(0.05),
                ..base.clone().with_adjusted_r2()
            },
        ),
    ];
    for (label, cfg) in &variants {
        let (mre, window) = dream_mre(cfg, &feats, &costs);
        println!("  {label:40} MRE = {mre:.3}   window = {window:.1}");
    }

    println!("\n=== Ablation 4: R² requirement sweep (combined config) ===");
    for &req in &[0.5, 0.7, 0.8, 0.9, 0.95] {
        let cfg = DreamConfig {
            solver: SolveMethod::Ridge(0.05),
            ..DreamConfig::uniform(req, 2, 30).with_adjusted_r2()
        };
        let (mre, window) = dream_mre(&cfg, &feats, &costs);
        println!("  R2_require = {req:4}   MRE = {mre:.3}   window = {window:.1}");
    }

    println!("\n=== Ablation 5: BML selection policy (window 2N) ===");
    for (label, policy) in [
        ("training-error (IReS-faithful)", SelectionPolicy::TrainingError),
        ("holdout validation (modern)", SelectionPolicy::HoldoutValidation),
    ] {
        let warmup = feats.len() / 2;
        let mut preds = Vec::new();
        let mut actuals = Vec::new();
        for i in warmup..feats.len() {
            let mut h = History::new(2, 2);
            for j in 0..i {
                h.record(&feats[j], &costs[j]).expect("fixed arity");
            }
            let mut est =
                BmlEstimator::new(WindowSpec::LatestMultiple(2), 2).with_policy(policy);
            if est.fit(&h).is_ok() {
                if let Ok(p) = est.predict(&feats[i]) {
                    preds.push(p[0].max(0.0));
                    actuals.push(costs[i][0]);
                }
            }
        }
        let mre = mean_relative_error(&preds, &actuals).unwrap_or(f64::NAN);
        println!("  {label:34} MRE = {mre:.3}");
    }

    // A token criterion measurement so the harness records something.
    let cfg = DreamConfig {
        solver: SolveMethod::Ridge(0.05),
        ..DreamConfig::uniform(0.8, 2, 30).with_adjusted_r2()
    };
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("dream_combined_prequential", |b| {
        b.iter(|| black_box(dream_mre(&cfg, &feats, &costs)))
    });
    group.finish();
}

criterion_group!(benches, ablation_report);
criterion_main!(benches);
