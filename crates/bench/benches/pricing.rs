//! Bench companion to **Table 1**: catalog lookups, billing arithmetic and
//! transfer estimation — the federation substrate's hot paths.

use criterion::{criterion_group, criterion_main, Criterion};
use midas_cloud::federation::example_federation;
use midas_cloud::{amazon_a1_catalog, azure_b_catalog, Money, PricingModel};
use std::hint::black_box;

fn bench_catalog(c: &mut Criterion) {
    let amazon = amazon_a1_catalog();
    let azure = azure_b_catalog();
    let mut group = c.benchmark_group("catalog");
    group.bench_function("by_name", |b| {
        b.iter(|| {
            black_box(amazon.by_name(black_box("a1.2xlarge")));
            black_box(azure.by_name(black_box("B4MS")));
        })
    });
    group.bench_function("cheapest_fitting", |b| {
        b.iter(|| black_box(azure.cheapest_fitting(black_box(2), black_box(6.0))))
    });
    group.finish();
}

fn bench_billing(c: &mut Criterion) {
    let pm = PricingModel::per_second(Money::from_dollars(0.09));
    let shape = amazon_a1_catalog().instances()[2].clone();
    let mut group = c.benchmark_group("billing");
    group.bench_function("instance_cost", |b| {
        b.iter(|| black_box(pm.instance_cost(black_box(&shape), 4, black_box(137.5))))
    });
    group.bench_function("egress_cost", |b| {
        b.iter(|| black_box(pm.egress_cost(black_box(3 * 1024 * 1024 * 1024))))
    });
    group.finish();
}

fn bench_transfer(c: &mut Criterion) {
    let (fed, a, b) = example_federation();
    let mut group = c.benchmark_group("transfer");
    group.bench_function("cross_site_estimate", |bch| {
        bch.iter(|| black_box(fed.transfer(a, b, black_box(256 * 1024 * 1024))))
    });
    group.finish();
}

criterion_group!(benches, bench_catalog, bench_billing, bench_transfer);
criterion_main!(benches);
