//! Bench companion to **Tables 3/4**: fit+predict cost of each estimator
//! column on a realistic drifting trace — the "low computational cost"
//! half of the paper's claim (the accuracy half lives in `repro_table3/4`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use midas::experiments::EstimatorKind;
use midas_dream::History;
use std::hint::black_box;

/// A synthetic drifting trace shaped like the Table 3 histories.
fn trace(n: usize) -> History {
    let mut h = History::new(4, 2);
    let mut load = 1.0;
    for i in 0..n {
        if i % 17 == 0 {
            load = 0.5 + (i % 5) as f64 * 0.5;
        }
        let f1 = 0.4 + 0.6 * (i % 20) as f64 / 19.0;
        let f2 = 0.4 + 0.6 * (i % 13) as f64 / 12.0;
        let x = [600_000.0 * f1, 150_000.0 * f2, 20_000.0 * f1, 150_000.0 * f2];
        let t = load * (8.0 + x[0] * 4e-5 + x[1] * 2e-5);
        h.record(&x, &[t, t * 0.002]).expect("fixed arity");
    }
    h
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimator_fit");
    group.sample_size(15);
    let history = trace(60);
    for kind in EstimatorKind::PAPER_ORDER {
        group.bench_with_input(
            BenchmarkId::new("fit60", kind.label()),
            &kind,
            |b, kind| {
                b.iter(|| {
                    let mut est = kind.build(2, 30, 0.8);
                    est.fit(black_box(&history)).expect("trace is fittable");
                })
            },
        );
    }
    group.finish();
}

fn bench_predict_18200(c: &mut Criterion) {
    // Example 3.1's scale: one prediction per equivalent QEP.
    let mut group = c.benchmark_group("estimator_predict_18200");
    group.sample_size(10);
    let history = trace(60);
    for kind in [EstimatorKind::Dream, EstimatorKind::BmlAll] {
        let mut est = kind.build(2, 30, 0.8);
        est.fit(&history).expect("trace is fittable");
        group.bench_with_input(
            BenchmarkId::new("qeps", kind.label()),
            &kind,
            |b, _| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for i in 0..18_200u32 {
                        let f = i as f64 / 18_200.0;
                        let x = [600_000.0 * f, 150_000.0, 20_000.0 * f, 150_000.0];
                        acc += est.predict(black_box(&x)).expect("fitted")[0];
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_predict_18200);
criterion_main!(benches);
