//! Bench companion to **Table 2**: MLR fit cost as the window size `M`
//! grows, for all three solvers — the per-round cost of Algorithm 1's loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use midas_dream::mlr::{fit, SolveMethod};
use std::hint::black_box;

fn synth(m: usize, l: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let feats: Vec<Vec<f64>> = (0..m)
        .map(|i| (0..l).map(|j| ((i * (j + 3)) % 17) as f64 + 0.5).collect())
        .collect();
    let targets: Vec<f64> = feats
        .iter()
        .enumerate()
        .map(|(i, f)| 5.0 + f.iter().sum::<f64>() * 2.0 + (i % 5) as f64 * 0.1)
        .collect();
    (feats, targets)
}

fn bench_mlr_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("mlr_fit");
    group.sample_size(30);
    for &m in &[6usize, 10, 30, 100, 300] {
        let (feats, targets) = synth(m, 4);
        let refs: Vec<&[f64]> = feats.iter().map(|r| r.as_slice()).collect();
        group.bench_with_input(BenchmarkId::new("normal_equations", m), &m, |b, _| {
            b.iter(|| fit(black_box(&refs), black_box(&targets), SolveMethod::NormalEquations))
        });
        group.bench_with_input(BenchmarkId::new("qr", m), &m, |b, _| {
            b.iter(|| fit(black_box(&refs), black_box(&targets), SolveMethod::Qr))
        });
        group.bench_with_input(BenchmarkId::new("ridge", m), &m, |b, _| {
            b.iter(|| fit(black_box(&refs), black_box(&targets), SolveMethod::Ridge(0.05)))
        });
    }
    group.finish();
}

fn bench_dream_full(c: &mut Criterion) {
    use midas_dream::{estimate_cost_value, estimate_cost_value_incremental, DreamConfig, History};
    let mut group = c.benchmark_group("dream_algorithm1");
    group.sample_size(20);
    for &n in &[20usize, 100, 500] {
        let mut h = History::new(4, 2);
        let (feats, targets) = synth(n, 4);
        for (f, t) in feats.iter().zip(targets.iter()) {
            // Add a wiggle so the R² gate actually exercises window growth.
            h.record(f, &[*t + (f[0] * 0.9).sin() * 3.0, t * 0.1]).expect("fixed arity");
        }
        // A strict requirement forces the loop to walk many windows, which
        // is where the incremental variant pays off.
        let cfg = DreamConfig::uniform(0.999, 2, n);
        group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
            b.iter(|| estimate_cost_value(black_box(&h), black_box(&cfg)))
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| estimate_cost_value_incremental(black_box(&h), black_box(&cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mlr_fit, bench_dream_full);
criterion_main!(benches);
