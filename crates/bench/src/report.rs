//! Table formatting and machine-readable result output.

use std::fs;
use std::path::Path;

/// Prints an aligned text table: a header row then data rows.
///
/// Column widths adapt to the longest cell; numeric alignment is the
/// caller's business (format values before passing them in).
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let n_cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(n_cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |sep: char| {
        let mut s = String::new();
        for w in &widths {
            s.push('+');
            s.extend(std::iter::repeat_n(sep, w + 2));
        }
        s.push('+');
        s
    };
    println!("{}", line('-'));
    let mut head = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        head.push_str(&format!("| {h:<w$} "));
    }
    head.push('|');
    println!("{head}");
    println!("{}", line('='));
    for row in rows {
        let mut s = String::new();
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = row.get(i).unwrap_or(&empty);
            s.push_str(&format!("| {cell:<w$} "));
        }
        s.push('|');
        println!("{s}");
    }
    println!("{}", line('-'));
}

/// Writes a JSON value under `target/repro/<name>.json` (created on
/// demand) so EXPERIMENTS.md can be regenerated from machine-readable
/// results. Errors are reported, not fatal — the printed table is the
/// primary artifact.
pub fn write_json(name: &str, value: &serde_json::Value) {
    let dir = Path::new("target/repro");
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {dir:?}: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = fs::write(&path, s) {
                eprintln!("warning: cannot write {path:?}: {e}");
            } else {
                println!("(json: {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_table_does_not_panic_on_ragged_rows() {
        print_table(
            &["a", "bb"],
            &[vec!["1".into()], vec!["22".into(), "333".into(), "extra".into()]],
        );
    }

    #[test]
    fn write_json_smoke() {
        write_json(
            "unit_test_artifact",
            &serde_json::json!({"ok": true, "n": 3}),
        );
    }
}
