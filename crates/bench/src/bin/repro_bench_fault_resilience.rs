//! The resilience gate of the fault-injecting runtime, recorded as
//! `target/repro/BENCH_fault_resilience.json` (and copied to the repo
//! root): a skewed 16-tenant medical workload — one rogue tenant flooding
//! poison jobs that panic mid-planning, one priority clinic at weight 2,
//! fourteen quiet clinics — driven through a federation whose patient site
//! flaps (outage, slowdown and admission-flap windows) on a fixed
//! [`FaultPlan`]. Gates:
//!
//! * **Zero lost jobs** — every submitted job terminates with a definite
//!   outcome: a completed report or a typed [`RuntimeError`], never a hang
//!   or a silent drop, at every worker count.
//! * **Quiet tenants unaffected** — every non-rogue job completes; short
//!   outage windows are absorbed by retry (attempts > 1 recorded), and the
//!   rogue's panic → quarantine → cool-off cycle never rejects a neighbor.
//! * **Weighted fairness** — at 1 worker, deficit round-robin finishes
//!   every non-rogue job within two service cycles (outcome index < 34)
//!   even though the rogue submitted its 32-job flood *first*; FIFO would
//!   have made the quiet tenants wait out the entire flood.
//! * **Replayable chaos** — the per-job outcome ledger (success/failure
//!   kind, attempts, fingerprints, pinned versions) is bit-identical at
//!   1 and 4 workers, because faults key on admission positions.

use midas::runtime::{
    FederationRuntime, RuntimeConfig, RuntimeError, RuntimeJob, RuntimeReport,
};
use midas::{Midas, QueryPolicy};
use midas_bench::{print_table, write_json};
use midas_engines::sim::FaultPlan;
use midas_moo::select::Constraints;
use midas_tpch::medical::{generate_medical, medical_query};

const ROGUE_JOBS: usize = 32;
const QUIET_TENANTS: usize = 14;
const QUIET_JOBS_EACH: usize = 2;
const PRIORITY_JOBS: usize = 4;

/// A policy whose zero weight vector panics inside planning — the rogue
/// tenant's entire workload.
fn poison_policy() -> QueryPolicy {
    QueryPolicy {
        weights: vec![0.0, 0.0],
        constraints: Constraints::none(2),
    }
}

/// Silences the default panic-hook backtrace for the injected panics only;
/// anything unexpected still prints.
fn quiet_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("weights must be non-empty"))
            || info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.contains("weights must be non-empty"));
        if !injected {
            default(info);
        }
    }));
}

/// The skewed tape: the rogue floods first, then the priority clinic, then
/// the quiet clinics — the worst submission order for naive FIFO service.
fn workload() -> Vec<RuntimeJob> {
    let modalities = ["CT", "MR", "US", "XR", "PET"];
    let mut jobs = Vec::new();
    for _ in 0..ROGUE_JOBS {
        jobs.push(RuntimeJob::new(
            "rogue",
            medical_query(Some("CT")),
            poison_policy(),
        ));
    }
    for i in 0..PRIORITY_JOBS {
        jobs.push(RuntimeJob::new(
            "priority-clinic",
            medical_query(Some(modalities[i % modalities.len()])),
            QueryPolicy::balanced(),
        ));
    }
    for t in 0..QUIET_TENANTS {
        for j in 0..QUIET_JOBS_EACH {
            jobs.push(RuntimeJob::new(
                &format!("clinic-{t:02}"),
                medical_query(Some(modalities[(t + j) % modalities.len()])),
                QueryPolicy::balanced(),
            ));
        }
    }
    jobs
}

/// Per-job outcomes canonicalized to the interleaving-independent fields
/// (see `crates/midas/tests/fault_resilience.rs` for the full contract).
fn canonical_outcomes(report: &RuntimeReport) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = report
        .completed
        .iter()
        .map(|r| {
            (
                r.sequence,
                format!(
                    "ok tenant={} attempts={} fingerprint={} pinned=v{}",
                    r.tenant,
                    r.attempts,
                    r.report.result_fingerprint,
                    r.pinned_version()
                ),
            )
        })
        .chain(
            report
                .failed
                .iter()
                .map(|f| (f.sequence, format!("err tenant={} {:?}", f.tenant, f.error))),
        )
        .collect();
    out.sort_by_key(|(sequence, _)| *sequence);
    out
}

fn main() {
    quiet_injected_panics();
    let (midas, patient_site, _) = Midas::example_deployment(&["patient"], &["generalinfo"]);
    let catalog = generate_medical(250, 0.5, 42);
    let jobs = workload();
    let n_jobs = jobs.len();

    // The flapping site: periodic short outages (escapable within the
    // default 3 attempts), slowdowns and admission flaps on the patient
    // scan site — the one no re-plan can route around.
    let mut plan = FaultPlan::none();
    let positions = n_jobs as u64 + 3;
    let mut p = 5;
    while p + 2 < positions {
        plan = plan
            .outage(patient_site, p, p + 2)
            .slowdown(patient_site, p + 3, p + 6, 2.5)
            .flap(patient_site, p + 4, p + 8);
        p += 9;
    }

    let run = |workers: usize| {
        let rt = FederationRuntime::new(
            midas.federation(),
            midas.placement(),
            catalog.clone(),
            RuntimeConfig {
                workers,
                max_vms: 2,
                ..RuntimeConfig::default()
            },
        )
        .with_fault_plan(plan.clone());
        rt.set_tenant_weight("priority-clinic", 2);
        rt.run(jobs.clone())
    };

    let serial = run(1);
    let concurrent = run(4);

    // Gate: zero lost jobs — every submission terminated, at both counts.
    for (label, report) in [("1 worker", &serial), ("4 workers", &concurrent)] {
        assert_eq!(
            report.completed.len() + report.failed.len(),
            n_jobs,
            "{label}: jobs were lost"
        );
    }

    // Gate: replayable chaos — the outcome ledger is bit-identical.
    assert_eq!(
        canonical_outcomes(&serial),
        canonical_outcomes(&concurrent),
        "fault outcomes drifted across worker counts"
    );

    // Gate: quiet tenants unaffected — every non-rogue job completed.
    let non_rogue_expected = n_jobs - ROGUE_JOBS;
    assert_eq!(serial.completed.len(), non_rogue_expected);
    assert!(serial.completed.iter().all(|r| r.tenant != "rogue"));
    assert!(serial.failed.iter().all(|f| f.tenant == "rogue"));

    // Gate: the outage windows really were absorbed by retry.
    let total_attempts: usize = serial.completed.iter().map(|r| r.attempts).sum();
    let retries = total_attempts - serial.completed.len();
    assert!(retries > 0, "no quiet job ever needed a retry — the plan injected nothing");

    // Gate: the rogue actually cycled through quarantine.
    let mut panics = 0usize;
    let mut quarantined = 0usize;
    for f in &serial.failed {
        match &f.error {
            RuntimeError::WorkerPanicked(_) => panics += 1,
            RuntimeError::Quarantined { .. } => quarantined += 1,
            // LINT: panic-ok — bench gate: any other failure kind fails
            // the verification run loudly.
            other => panic!("unexpected rogue failure: {other:?}"),
        }
    }
    let threshold = serial_config_threshold();
    assert!(panics >= threshold, "rogue never reached the quarantine threshold");
    assert!(quarantined > 0, "rogue was never quarantined");

    // Gate: weighted fairness at 1 worker. Service cycles 16 tenants with
    // the priority clinic drawing 2 credits per cycle, so every non-rogue
    // job lands in the first two cycles (17 outcomes each) even though the
    // rogue flooded first. FIFO would have stalled them all past index 31.
    let max_quiet_completion = serial
        .completed
        .iter()
        .map(|r| r.completion)
        .max()
        .expect("non-rogue jobs completed");
    assert!(
        max_quiet_completion < 34,
        "quiet tenants starved: last completion at outcome {max_quiet_completion}"
    );
    let first_quiet_completion = serial
        .completed
        .iter()
        .map(|r| r.completion)
        .min()
        .expect("non-rogue jobs completed");
    assert!(
        first_quiet_completion < 16,
        "round-robin failed to interleave the first service cycle"
    );

    print_table(
        &["workers", "completed", "failed", "retries", "panics", "quarantined"],
        &[
            vec![
                "1".into(),
                serial.completed.len().to_string(),
                serial.failed.len().to_string(),
                retries.to_string(),
                panics.to_string(),
                quarantined.to_string(),
            ],
            vec![
                "4".into(),
                concurrent.completed.len().to_string(),
                concurrent.failed.len().to_string(),
                (concurrent.completed.iter().map(|r| r.attempts).sum::<usize>()
                    - concurrent.completed.len())
                .to_string(),
                "=".into(),
                "=".into(),
            ],
        ],
    );
    println!(
        "\nfault resilience: {n_jobs} jobs over 16 tenants, flapping site {}, \
         0 lost, {retries} retries absorbed, rogue cycled {panics} panics / \
         {quarantined} quarantine rejections, outcomes bit-identical at 1 and 4 workers",
        patient_site.0,
    );

    write_json(
        "BENCH_fault_resilience",
        &serde_json::json!({
            "jobs": n_jobs,
            "tenants": 2 + QUIET_TENANTS,
            "rogue_jobs": ROGUE_JOBS,
            "priority_jobs": PRIORITY_JOBS,
            "quiet_jobs": QUIET_TENANTS * QUIET_JOBS_EACH,
            "flapping_site": patient_site.0,
            "worker_counts": [1, 4],
            "lost_jobs": 0,
            "non_rogue_completed": serial.completed.len(),
            "retries_absorbed": retries,
            "rogue_panics": panics,
            "rogue_quarantine_rejections": quarantined,
            "max_non_rogue_completion_index": max_quiet_completion,
            "first_non_rogue_completion_index": first_quiet_completion,
            "cross_worker_outcomes": "bit-for-bit",
        }),
    );
    let root_copy = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_fault_resilience.json");
    if let Err(e) = std::fs::copy("target/repro/BENCH_fault_resilience.json", &root_copy) {
        eprintln!("warning: could not copy BENCH_fault_resilience.json to repo root: {e}");
    }
}

/// The quarantine threshold the runs above used (the config default).
fn serial_config_threshold() -> usize {
    RuntimeConfig::default().quarantine_threshold
}
