//! Reproduces **Table 2**: "Using MLR in different size of dataset" — the
//! exact, deterministic verification of the MLR core against the paper's
//! published dataset and R² values.
//!
//! ```text
//! cargo run --release -p midas-bench --bin repro_table2
//! ```

use midas_bench::{print_table, write_json};
use midas_dream::mlr::{fit, SolveMethod};

/// (cost, x1, x2) — Table 2's dataset, verbatim.
const DATA: [(f64, f64, f64); 10] = [
    (20.640, 0.4916, 0.2977),
    (15.557, 0.6313, 0.0482),
    (20.971, 0.9481, 0.8232),
    (24.878, 0.4855, 2.7056),
    (23.274, 0.0125, 2.7268),
    (30.216, 0.9029, 2.6456),
    (29.978, 0.7233, 3.0640),
    (31.702, 0.8749, 4.2847),
    (20.860, 0.3354, 2.1082),
    (32.836, 0.8521, 4.8217),
];

/// The paper's published R² per M.
const PAPER_R2: [(usize, f64); 7] = [
    (4, 0.7571),
    (5, 0.7705),
    (6, 0.8371),
    (7, 0.8788),
    (8, 0.8876),
    (9, 0.8751),
    (10, 0.8945),
];

fn main() {
    println!("Table 2: Using MLR in different size of dataset.");
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for &(m, paper) in &PAPER_R2 {
        let feats: Vec<Vec<f64>> = DATA[..m].iter().map(|&(_, a, b)| vec![a, b]).collect();
        let refs: Vec<&[f64]> = feats.iter().map(|r| r.as_slice()).collect();
        let targets: Vec<f64> = DATA[..m].iter().map(|&(c, _, _)| c).collect();
        let model = fit(&refs, &targets, SolveMethod::NormalEquations)
            .expect("Table 2 prefixes are full rank");
        let ok = (model.r_squared - paper).abs() < 5.5e-4;
        rows.push(vec![
            m.to_string(),
            format!("{:.4}", model.r_squared),
            format!("{paper:.4}"),
            if ok { "exact (4 d.p.)" } else { "MISMATCH" }.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "M": m, "r2_computed": model.r_squared, "r2_paper": paper, "match": ok,
        }));
    }
    print_table(&["M", "R² (this code)", "R² (paper)", "status"], &rows);
    println!(
        "\nThe paper's reading: R² rises with M and crosses the 0.8 quality bar at M = 6,\n\
         so when R²_require = 0.8 the window need not grow past ~6 — small training sets\n\
         suffice, which is DREAM's premise."
    );
    write_json("table2", &serde_json::json!({ "rows": json_rows }));
}
