//! SF 1 scale-jump benchmark: morsel-driven fused chunk-native execution
//! vs the whole-column vectorized path, recorded as
//! `target/repro/BENCH_engine_sf1.json` (copied to the repo root as
//! `BENCH_engine_sf1.json`).
//!
//! The database is the paper's 1 GiB configuration
//! ([`GenConfig::sf_1gib`]: SF 1.0, lineitems capped at 1.2 M physical
//! rows by uniform rescale) generated twice from one seed: once
//! materialized (the unfused baseline's flat catalog) and once **streamed
//! chunk-at-a-time** into a chunk-native [`CatalogVersion`] the fused
//! executor queries directly. Before any timing, every query is
//! cross-checked bit-for-bit — tables, fingerprints and all three work
//! profiles — between the two paths, and after all fused runs the bench
//! asserts the chunk-native database paid **zero** snapshot-compaction
//! bytes: the hot path never calls `pin()`.
//!
//! Two gates:
//!
//! * **no-regression, always**: total fused (serial, degree 1)
//!   wall-clock across Q12/Q13/Q14/Q17 must not exceed the unfused
//!   vectorized total (sums of per-query minima over interleaved
//!   samples, with a small tolerance for timer noise). This holds on
//!   any hardware — the fused wins measured here (deferred join gather,
//!   compiled kernels, scratch reuse, no compaction) are single-thread
//!   wins;
//! * **speedup, on parallel hardware**: with ≥ 4 CPUs, fused execution at
//!   the topology-aware partition degree must be ≥ 1.5x the whole-column
//!   vectorized path on at least two of the four queries. On fewer cores
//!   the measured numbers are still recorded and the gate is reported as
//!   skipped rather than lying about hardware.

use midas_bench::{print_table, write_json};
use midas_engines::ops::{default_partition_degree, execute};
use midas_tpch::gen::{GenConfig, TpchDb};
use midas_tpch::queries::{q12, q13, q14, q17, TwoTableQuery};
use std::time::Instant;

/// Median-of samples per timed configuration (each query runs its full
/// three-plan pipeline per sample).
const SAMPLES: usize = 5;
/// Rows per generated chunk of the streamed database.
const CHUNK_ROWS: usize = 64 * 1024;
/// Partition degrees cross-checked for parity before any timing.
const PARITY_DEGREES: [usize; 3] = [1, 3, 8];
/// The conditional gate: fused at the auto degree vs unfused serial.
const GATE_SPEEDUP: f64 = 1.5;
/// Queries that must clear [`GATE_SPEEDUP`] when the gate is enforced.
const GATE_MIN_QUERIES: usize = 2;
/// Cores needed before the speedup gate is meaningful.
const GATE_MIN_CPUS: usize = 4;
/// Tolerance on the always-on no-regression gate (timer noise).
const NO_REGRESSION_TOLERANCE: f64 = 1.05;

/// Times several configurations **interleaved round-robin** (one sample
/// of each per round) so every configuration sees the same ambient
/// machine noise, and returns each configuration's `(median, min)`.
/// Blocked sampling on a busy single-core box attributes a noisy minute
/// to whichever configuration happened to run during it; interleaving
/// makes the pairwise comparison fair. Medians describe typical cost;
/// the minimum — the sample least disturbed by outside load — is the
/// noise-robust statistic the wall-clock gates compare.
fn interleaved_stats(runs: &mut [&mut dyn FnMut()]) -> Vec<(f64, f64)> {
    for run in runs.iter_mut() {
        run(); // warmup, one per configuration
    }
    let mut times: Vec<Vec<f64>> = vec![Vec::with_capacity(SAMPLES); runs.len()];
    for _ in 0..SAMPLES {
        for (i, run) in runs.iter_mut().enumerate() {
            // LINT: wall-clock — this bench measures real executor time.
            let t0 = Instant::now();
            run();
            times[i].push(t0.elapsed().as_secs_f64());
        }
    }
    times
        .into_iter()
        .map(|mut t| {
            t.sort_by(|a, b| a.total_cmp(b));
            (t[t.len() / 2], t[0])
        })
        .collect()
}

fn main() {
    let config = GenConfig::sf_1gib(2);
    // LINT: wall-clock — generation timings are reported, not simulated.
    let t0 = Instant::now();
    let flat = TpchDb::generate(config);
    let gen_flat_s = t0.elapsed().as_secs_f64();
    // LINT: wall-clock — generation timings are reported, not simulated.
    let t0 = Instant::now();
    let chunked = TpchDb::generate_chunked(config, CHUNK_ROWS);
    let gen_chunked_s = t0.elapsed().as_secs_f64();
    let lineitem_rows = flat.table("lineitem").map_or(0, |t| t.n_rows());
    let auto_degree = default_partition_degree();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "SF 1 (capped: rescale={:.3}, {} lineitem rows, {} chunks of ≤{} rows) — \
         generate {:.2}s materialized / {:.2}s streamed; {} CPU(s), auto degree {}\n",
        chunked.rescale,
        lineitem_rows,
        chunked.total_chunks(),
        CHUNK_ROWS,
        gen_flat_s,
        gen_chunked_s,
        cpus,
        auto_degree,
    );

    let queries: Vec<(&str, TwoTableQuery)> = vec![
        ("Q12", q12("MAIL", "SHIP", 1994)),
        ("Q13", q13("special", "requests")),
        ("Q14", q14(1995, 9)),
        ("Q17", q17("Brand#23", "MED BOX")),
    ];

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_rows: Vec<serde_json::Value> = Vec::new();
    let mut serial_totals = (0.0f64, 0.0f64); // (unfused, fused)
    let mut auto_speedups: Vec<(String, f64)> = Vec::new();
    for (name, q) in &queries {
        // Parity before timing: identical tables, fingerprints and work
        // profiles between the flat vectorized path and the chunk-native
        // fused path, at serial and sharded degrees.
        let mut cat = flat.catalog().clone();
        let (ref_out, ref_profiles) = q
            .execute_local(&mut cat, execute)
            .expect("unfused pipeline runs");
        for degree in PARITY_DEGREES {
            let (out, profiles) = q
                .execute_fused_chunked(chunked.version(), degree)
                .expect("fused pipeline runs");
            assert_eq!(out, ref_out, "{name}: fused table drifted at degree {degree}");
            assert_eq!(
                out.fingerprint(),
                ref_out.fingerprint(),
                "{name}: fingerprint drifted at degree {degree}"
            );
            assert_eq!(
                profiles, ref_profiles,
                "{name}: work profiles drifted at degree {degree}"
            );
        }

        // Timing: unfused whole-column vectorized (flat catalog), fused
        // chunk-native serial, fused chunk-native at the auto degree.
        let mut run_unfused = || {
            q.execute_local(&mut cat, execute).expect("runs");
        };
        let mut run_fused_serial = || {
            q.execute_fused_chunked(chunked.version(), 1).expect("runs");
        };
        let mut run_fused_auto = || {
            q.execute_fused_chunked(chunked.version(), auto_degree)
                .expect("runs");
        };
        let stats = interleaved_stats(&mut [
            &mut run_unfused,
            &mut run_fused_serial,
            &mut run_fused_auto,
        ]);
        let (unfused_s, fused_serial_s, fused_auto_s) = (stats[0].0, stats[1].0, stats[2].0);
        let speedup_serial = unfused_s / fused_serial_s;
        let speedup_auto = unfused_s / fused_auto_s;
        serial_totals.0 += stats[0].1;
        serial_totals.1 += stats[1].1;
        auto_speedups.push((name.to_string(), stats[0].1 / stats[2].1));
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", unfused_s * 1e3),
            format!("{:.1}", fused_serial_s * 1e3),
            format!("{:.1}", fused_auto_s * 1e3),
            format!("{speedup_serial:.2}x"),
            format!("{speedup_auto:.2}x"),
        ]);
        json_rows.push(serde_json::json!({
            "query": name,
            "unfused_vectorized_median_s": unfused_s,
            "fused_serial_median_s": fused_serial_s,
            "fused_auto_median_s": fused_auto_s,
            "unfused_vectorized_min_s": stats[0].1,
            "fused_serial_min_s": stats[1].1,
            "fused_auto_min_s": stats[2].1,
            "auto_degree": auto_degree,
            "speedup_fused_serial": speedup_serial,
            "speedup_fused_auto": speedup_auto,
            "speedup_fused_auto_min": stats[0].1 / stats[2].1,
        }));
    }
    print_table(
        &[
            "query",
            "unfused (ms)",
            "fused p=1 (ms)",
            &format!("fused p={auto_degree} (ms)"),
            "p=1 speedup",
            &format!("p={auto_degree} speedup"),
        ],
        &rows,
    );

    // The chunk-native database must have answered everything without a
    // single snapshot compaction.
    let compaction = chunked.version().compaction_bytes();
    assert_eq!(
        compaction, 0,
        "chunk-native execution must never compact a snapshot"
    );
    println!("\nchunk-native compaction bytes: {compaction} (gated: must be 0) — OK");

    // Always-on no-regression gate: fused serial must not lose to the
    // whole-column path it replaces, comparing per-query minima (the
    // least-disturbed samples) summed across the four queries.
    let (unfused_total, fused_total) = serial_totals;
    assert!(
        fused_total <= unfused_total * NO_REGRESSION_TOLERANCE,
        "fused serial total {fused_total:.3}s (sum of per-query minima) exceeds \
         unfused total {unfused_total:.3}s (tolerance {NO_REGRESSION_TOLERANCE})"
    );
    println!(
        "no-regression gate: fused serial total {:.3}s ≤ unfused total {:.3}s \
         (sums of per-query minima) — OK",
        fused_total, unfused_total
    );

    // Conditional speedup gate, hardware permitting.
    let gate_enforced = cpus >= GATE_MIN_CPUS;
    let cleared: Vec<&str> = auto_speedups
        .iter()
        .filter(|(_, s)| *s >= GATE_SPEEDUP)
        .map(|(n, _)| n.as_str())
        .collect();
    if gate_enforced {
        assert!(
            cleared.len() >= GATE_MIN_QUERIES,
            "only {cleared:?} cleared the {GATE_SPEEDUP}x fused speedup gate \
             (need {GATE_MIN_QUERIES} of {})",
            auto_speedups.len()
        );
        println!(
            "fused speedup gate: enforced ({cpus} CPUs) — {cleared:?} ≥ {GATE_SPEEDUP}x — OK"
        );
    } else {
        println!(
            "fused speedup gate: SKIPPED — {cpus} CPU(s) cannot overlap shards \
             (parity and the serial no-regression gate were still enforced); \
             measured {auto_speedups:?}"
        );
    }

    let no_regression_json = serde_json::json!({
        "enforced": true,
        "statistic": "sum of per-query minima over interleaved samples",
        "unfused_total_s": unfused_total,
        "fused_serial_total_s": fused_total,
        "tolerance": NO_REGRESSION_TOLERANCE,
    });
    let speedup_json = serde_json::json!({
        "min_speedup": GATE_SPEEDUP,
        "min_queries": GATE_MIN_QUERIES,
        "enforced": gate_enforced,
        "sharded_gate": if gate_enforced {
            "enforced".to_string()
        } else {
            format!("skipped (cpus={cpus})")
        },
        "cleared": cleared,
    });
    let zero_compaction_json = serde_json::json!({
        "enforced": true,
        "bytes": compaction,
    });
    let gates_json = serde_json::json!({
        "no_regression": no_regression_json,
        "speedup": speedup_json,
        "zero_compaction": zero_compaction_json,
    });
    write_json(
        "BENCH_engine_sf1",
        &serde_json::json!({
            "scale_factor": config.scale_factor,
            "rescale": chunked.rescale,
            "lineitem_rows": lineitem_rows,
            "chunk_rows": CHUNK_ROWS,
            "total_chunks": chunked.total_chunks(),
            "samples": SAMPLES,
            "unit": "seconds per full three-plan pipeline (medians and minima over interleaved samples)",
            "parity": "bit-for-bit vs unfused vectorized (table, fingerprint, profiles) at degrees [1, 3, 8]",
            "compaction_bytes": compaction,
            "cpus_available": cpus,
            "generate_materialized_s": gen_flat_s,
            "generate_streamed_s": gen_chunked_s,
            "rows": json_rows,
            "gates": gates_json,
        }),
    );
    let root_copy = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_engine_sf1.json");
    if let Err(e) = std::fs::copy("target/repro/BENCH_engine_sf1.json", &root_copy) {
        eprintln!("warning: could not copy BENCH_engine_sf1.json to repo root: {e}");
    }
}
