//! Workspace determinism lint + static-analysis counters, recorded as
//! `BENCH_static_analysis.json` (target/repro/ and repo root).
//!
//! Two halves, both registry-free:
//!
//! **1. Source lint.** Walks every non-stub crate's `src/` tree and flags
//! the three constructs that undermine the workspace's determinism and
//! containment guarantees:
//!
//! * **wall-clock** — `Instant::now` / `SystemTime` in code that is
//!   supposed to run on the simulated clock. Legitimate wall-clock use
//!   (bench timing, latency gauges that never feed deterministic state)
//!   carries a `// LINT: wall-clock` justification within the preceding
//!   lines;
//! * **lock-unwrap** — `.lock().unwrap()` / `.lock().expect(...)` outside
//!   the sanctioned poison-recovery pattern
//!   (`.lock().unwrap_or_else(PoisonError::into_inner)` or the
//!   `lock_recover` helpers): one panicking job must never cascade into a
//!   runtime-wide abort through a poisoned mutex;
//! * **panic** — `panic!` / `unreachable!` / `todo!` / `unimplemented!`
//!   in execution paths. Surviving sites are guarded internal invariants
//!   (often the ones the `engines::analyze` pre-execution analyzer
//!   discharges) and carry a `// LINT: panic-ok` justification naming the
//!   guard.
//!
//! Test code is exempt: `#[cfg(test)]` modules (brace-tracked) and
//! comment-only lines are skipped. The gate is **zero findings** —
//! verify.sh stage 11 fails on any unjustified site.
//!
//! **2. Analyzer counters + admission overhead.** Validates the paper's
//! query set (Q12/Q13/Q14/Q17) and the medical federated workload through
//! `engines::analyze` (all must be diagnostic-clean), counts the
//! rejection corpus of deliberately malformed plans (all must be
//! rejected), and measures admission-time validation cost against the
//! mean per-job service time of a mixed runtime workload — gated at
//! **< 1% of qps**, so static checking stays effectively free.

use midas::runtime::{FederationRuntime, RuntimeConfig, RuntimeJob};
use midas::{Midas, QueryPolicy};
use midas_bench::{print_table, write_json};
use midas_engines::{analyze_fragment_plans, Expr, PhysicalPlan, SchemaCatalog};
use midas_tpch::medical::{generate_medical, medical_query};
use midas_tpch::queries::{q12, q13, q14, q17};
use midas_tpch::TwoTableQuery;
use std::fs;
use std::path::{Path, PathBuf};
// LINT: wall-clock — this binary measures real validation/service time.
use std::time::Instant;

/// One lint finding: where and what.
struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    excerpt: String,
}

/// How many preceding lines a `// LINT:` justification may sit above its
/// site (multi-line justification comments).
const JUSTIFICATION_WINDOW: usize = 4;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");

    // ---- half 1: the source lint --------------------------------------
    let mut files = Vec::new();
    collect_sources(&root.join("crates"), &mut files);
    files.sort();
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    let mut justified = 0usize;
    for file in &files {
        scanned += 1;
        let Ok(text) = fs::read_to_string(file) else {
            continue;
        };
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .display()
            .to_string();
        justified += lint_file(&rel, &text, &mut findings);
    }

    // ---- half 2: analyzer counters ------------------------------------
    let db = midas_tpch::gen::TpchDb::generate(midas_tpch::gen::GenConfig::new(0.002, 7));
    let tpch_schemas = SchemaCatalog::from_catalog(db.catalog());
    let medical_catalog = generate_medical(2_000, 0.4, 7);
    let medical_schemas = SchemaCatalog::from_catalog(&medical_catalog);
    let clean_queries: Vec<(&SchemaCatalog, TwoTableQuery)> = vec![
        (&tpch_schemas, q12("MAIL", "SHIP", 1994)),
        (&tpch_schemas, q13("special", "requests")),
        (&tpch_schemas, q14(1995, 3)),
        (&tpch_schemas, q17("Brand#23", "MED BOX")),
        (&medical_schemas, medical_query(Some("CT"))),
        (&medical_schemas, medical_query(None)),
    ];
    let mut clean_rows = Vec::new();
    let mut clean_failures = 0usize;
    let mut total_warnings = 0usize;
    for (schemas, q) in &clean_queries {
        let analyses = analyze_fragment_plans(
            &[&q.left_prepare, &q.right_prepare, &q.combine],
            schemas,
        );
        let errors: usize = analyses.iter().map(|a| a.errors().count()).sum();
        let warnings: usize = analyses
            .iter()
            .map(|a| a.diagnostics.len() - a.errors().count())
            .sum();
        total_warnings += warnings;
        if errors > 0 {
            clean_failures += 1;
        }
        clean_rows.push(vec![
            q.label.clone(),
            errors.to_string(),
            warnings.to_string(),
        ]);
    }

    // The rejection corpus: every malformed plan must produce >= 1 error.
    let corpus = rejection_corpus();
    let mut rejected = 0usize;
    for (name, plans) in &corpus {
        let refs: Vec<&PhysicalPlan> = plans.iter().collect();
        let analyses = analyze_fragment_plans(&refs, &tpch_schemas);
        let errors: usize = analyses.iter().map(|a| a.errors().count()).sum();
        if errors > 0 {
            rejected += 1;
        } else {
            eprintln!("corpus plan {name:?} was NOT rejected");
        }
    }

    // ---- half 2b: admission-validation overhead -----------------------
    let (midas, _, _) = Midas::example_deployment(&["patient"], &["generalinfo"]);
    let overhead_catalog = generate_medical(12_000, 0.4, 11);
    let modalities = ["CT", "MR", "US", "XR"];
    let jobs: Vec<RuntimeJob> = (0..64)
        .map(|i| {
            RuntimeJob::new(
                &format!("hospital-{:02}", i % 8),
                medical_query(Some(modalities[i % modalities.len()])),
                QueryPolicy::balanced(),
            )
        })
        .collect();
    let n_jobs = jobs.len();
    let runtime = FederationRuntime::new(
        midas.federation(),
        midas.placement(),
        overhead_catalog.clone(),
        RuntimeConfig {
            workers: 1,
            max_vms: 2,
            ..RuntimeConfig::default()
        },
    );
    // LINT: wall-clock — measuring real service time is the point here.
    let t0 = Instant::now();
    let report = runtime.run(jobs);
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        report.completed.len(),
        n_jobs,
        "overhead workload must complete cleanly"
    );
    let mean_job_s = wall_s / n_jobs as f64;

    // Time the exact admission-validation path (schema extraction +
    // three-plan analysis) over many repetitions.
    let overhead_schemas = SchemaCatalog::from_catalog(&overhead_catalog);
    let probe = medical_query(Some("CT"));
    const VALIDATIONS: usize = 2_000;
    // LINT: wall-clock — measuring real validation time is the point here.
    let t0 = Instant::now();
    let mut error_acc = 0usize;
    for _ in 0..VALIDATIONS {
        let analyses = analyze_fragment_plans(
            &[&probe.left_prepare, &probe.right_prepare, &probe.combine],
            &overhead_schemas,
        );
        error_acc += analyses.iter().map(|a| a.errors().count()).sum::<usize>();
    }
    let mean_validation_s = t0.elapsed().as_secs_f64() / VALIDATIONS as f64;
    assert_eq!(error_acc, 0, "the probe query must validate cleanly");
    let overhead_ratio = mean_validation_s / mean_job_s;

    // ---- report -------------------------------------------------------
    println!("== repro_lint: workspace determinism lint ==\n");
    println!(
        "scanned {scanned} source files, {justified} justified sites, {} findings",
        findings.len()
    );
    for f in &findings {
        println!("  {}:{} [{}] {}", f.file, f.line, f.rule, f.excerpt);
    }
    println!();
    print_table(
        &["query", "errors", "warnings"],
        &clean_rows,
    );
    println!(
        "\nrejection corpus: {rejected}/{} malformed plans rejected",
        corpus.len()
    );
    println!(
        "admission validation: {:.2} us/plan vs {:.2} ms/job -> {:.4}% of service time",
        mean_validation_s * 1e6,
        mean_job_s * 1e3,
        overhead_ratio * 100.0
    );

    write_json(
        "BENCH_static_analysis",
        &serde_json::json!({
            "lint": serde_json::json!({
                "scanned_files": scanned,
                "justified_sites": justified,
                "findings": findings.len(),
            }),
            "analyzer": serde_json::json!({
                "clean_queries": clean_queries.len(),
                "clean_query_error_failures": clean_failures,
                "clean_query_warnings": total_warnings,
                "rejection_corpus_size": corpus.len(),
                "rejection_corpus_rejected": rejected,
            }),
            "admission_overhead": serde_json::json!({
                "mean_validation_us": mean_validation_s * 1e6,
                "mean_job_ms": mean_job_s * 1e3,
                "overhead_ratio": overhead_ratio,
                "gate_max_ratio": 0.01,
            }),
        }),
    );
    let root_copy = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_static_analysis.json");
    if let Err(e) = std::fs::copy("target/repro/BENCH_static_analysis.json", &root_copy) {
        eprintln!("warning: could not copy BENCH_static_analysis.json to repo root: {e}");
    }

    // ---- gates --------------------------------------------------------
    assert!(
        findings.is_empty(),
        "lint gate: {} unjustified finding(s)",
        findings.len()
    );
    assert_eq!(clean_failures, 0, "paper queries must validate cleanly");
    assert_eq!(rejected, corpus.len(), "every malformed plan must be rejected");
    assert!(
        overhead_ratio < 0.01,
        "admission validation must cost < 1% of mean job time \
         (measured {:.4}%)",
        overhead_ratio * 100.0
    );
    println!("\nrepro_lint: OK (0 findings, corpus rejected, overhead < 1%)");
}

/// Recursively collects `.rs` files under non-stub `crates/*/src` trees.
fn collect_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Stub crates mirror external APIs — out of scope. Integration
            // `tests/` trees are test code by definition.
            if name == "stubs" || name == "tests" || name == "target" {
                continue;
            }
            collect_sources(&path, out);
        } else if name.ends_with(".rs") && path.to_string_lossy().contains("/src/") {
            out.push(path);
        }
    }
}

/// Lints one file; pushes findings, returns the justified-site count.
fn lint_file(rel: &str, text: &str, findings: &mut Vec<Finding>) -> usize {
    // Patterns are assembled at runtime so this file never contains its
    // own needles verbatim (the lint must not flag itself).
    let bang = ["panic", "unreachable", "todo", "unimplemented"]
        .map(|m| format!("{m}{}", "!("));
    let wall = [format!("Instant{}now", "::"), format!("System{}", "Time")];
    let lock_bad = [
        format!(".lock(){}", ".unwrap()"),
        format!(".lock(){}", ".expect("),
    ];
    let lines: Vec<&str> = text.lines().collect();
    let mut justified = 0usize;
    // `#[cfg(test)]` module tracking: once the attribute is seen, skip
    // until the brace depth opened by the following item closes.
    let mut in_test = false;
    let mut pending_test_attr = false;
    let mut depth = 0i64;
    for (i, raw) in lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        if !in_test && trimmed.starts_with("#[cfg(test)]") {
            pending_test_attr = true;
            continue;
        }
        if pending_test_attr {
            depth += brace_delta(raw);
            if depth > 0 {
                in_test = true;
                pending_test_attr = false;
            }
            continue;
        }
        if in_test {
            depth += brace_delta(raw);
            if depth <= 0 {
                in_test = false;
                depth = 0;
            }
            continue;
        }
        if trimmed.starts_with("//") {
            continue; // comment-only line (incl. docs naming the macros)
        }
        // Match against the code part only; a trailing comment may hold
        // the justification.
        let code = raw.split("//").next().unwrap_or(raw);
        let rule = if bang.iter().any(|p| code.contains(p.as_str())) {
            Some("panic")
        } else if wall.iter().any(|p| code.contains(p.as_str())) {
            Some("wall-clock")
        } else if lock_bad.iter().any(|p| code.contains(p.as_str())) {
            // Always a finding: the sanctioned form is unwrap_or_else.
            findings.push(Finding {
                file: rel.to_string(),
                line: i + 1,
                rule: "lock-unwrap",
                excerpt: trimmed.to_string(),
            });
            None
        } else {
            None
        };
        if let Some(rule) = rule {
            let lo = i.saturating_sub(JUSTIFICATION_WINDOW);
            let has_justification = (lo..=i).any(|j| lines[j].contains("LINT:"));
            if has_justification {
                justified += 1;
            } else {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: i + 1,
                    rule,
                    excerpt: trimmed.to_string(),
                });
            }
        }
    }
    justified
}

/// Net brace depth change of one line (string-literal braces can skew
/// this, but test modules in this workspace close at their real end —
/// the tracker only needs "eventually returns to zero").
fn brace_delta(line: &str) -> i64 {
    let opens = line.matches('{').count() as i64;
    let closes = line.matches('}').count() as i64;
    opens - closes
}

/// Deliberately malformed fragment pipelines, each rejected by at least
/// one analyzer diagnostic (counted into the JSON so coverage regressions
/// show up as a number, not silence).
fn rejection_corpus() -> Vec<(&'static str, Vec<PhysicalPlan>)> {
    let scan = |t: &str| PhysicalPlan::Scan {
        table: t.to_string(),
    };
    vec![
        ("ghost-table", vec![scan("no_such_table")]),
        (
            "forward-frag-ref",
            vec![scan("@frag1"), scan("lineitem")],
        ),
        ("malformed-frag-ref", vec![scan("@fragX")]),
        (
            "column-out-of-bounds",
            vec![PhysicalPlan::Filter {
                input: Box::new(scan("lineitem")),
                predicate: Expr::col(999).eq(Expr::int(1)),
            }],
        ),
        (
            "type-mismatch-compare",
            vec![PhysicalPlan::Filter {
                input: Box::new(scan("lineitem")),
                // l_orderkey (Int64) vs a string literal: mixed families.
                predicate: Expr::col(0).eq(Expr::str("AIR")),
            }],
        ),
        (
            "join-key-arity",
            vec![PhysicalPlan::HashJoin {
                left: Box::new(scan("lineitem")),
                right: Box::new(scan("orders")),
                left_keys: vec![0, 1],
                right_keys: vec![0],
                join_type: midas_engines::JoinType::Inner,
            }],
        ),
        (
            "division-by-zero-literal",
            vec![PhysicalPlan::Project {
                input: Box::new(scan("lineitem")),
                exprs: vec![("d".to_string(), Expr::col(0).div(Expr::int(0)))],
            }],
        ),
        (
            "group-by-out-of-bounds",
            vec![PhysicalPlan::Aggregate {
                input: Box::new(scan("orders")),
                group_by: vec![999],
                aggs: vec![("n".to_string(), midas_engines::AggExpr::Count)],
            }],
        ),
    ]
}
