//! Scalar-vs-vectorized executor timing on the paper's two-table queries,
//! recorded as `target/repro/BENCH_engine_exec.json` (and copied to the
//! repo root as `BENCH_engine_exec.json`) so the execution engine's perf
//! trajectory is tracked across PRs.
//!
//! Each query runs its full local pipeline (left prepare, right prepare,
//! combine) over a generated TPC-H instance; we report median wall-clock
//! per run and the scalar/vectorized speedup. Results are cross-checked
//! for equality before timing, so the numbers always describe two
//! executors computing the same answer.

use midas_bench::{print_table, write_json};
use midas_engines::ops::{execute, execute_scalar};
use midas_tpch::gen::{GenConfig, TpchDb};
use midas_tpch::queries::{q12, q13, q14, q17, TwoTableQuery};
use std::time::Instant;

const SAMPLES: usize = 15;

fn median_secs(mut run: impl FnMut()) -> f64 {
    run(); // warmup
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn main() {
    let sf = 0.01;
    let db = TpchDb::generate(GenConfig::new(sf, 2));
    let queries: Vec<(&str, TwoTableQuery)> = vec![
        ("Q12", q12("MAIL", "SHIP", 1994)),
        ("Q13", q13("special", "requests")),
        ("Q14", q14(1995, 9)),
        ("Q17", q17("Brand#23", "MED BOX")),
    ];

    println!(
        "Executor comparison over TPC-H sf={sf} ({} lineitem rows), median of {SAMPLES} runs:\n",
        db.table("lineitem").map_or(0, |t| t.n_rows()),
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_rows: Vec<serde_json::Value> = Vec::new();
    for (name, q) in &queries {
        let mut cat = db.catalog().clone();
        // Equality cross-check before timing.
        let (out_v, _) = q.execute_local(&mut cat, execute).expect("vectorized runs");
        let (out_s, _) = q
            .execute_local(&mut cat, execute_scalar)
            .expect("scalar runs");
        assert_eq!(out_v, out_s, "{name}: executors disagree");

        let scalar_s = median_secs(|| {
            q.execute_local(&mut cat, execute_scalar).expect("runs");
        });
        let vector_s = median_secs(|| {
            q.execute_local(&mut cat, execute).expect("runs");
        });
        let speedup = scalar_s / vector_s;
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", scalar_s * 1e3),
            format!("{:.3}", vector_s * 1e3),
            format!("{speedup:.2}x"),
        ]);
        json_rows.push(serde_json::json!({
            "query": name,
            "scalar_median_s": scalar_s,
            "vectorized_median_s": vector_s,
            "speedup": speedup,
        }));
    }
    print_table(
        &["query", "scalar (ms)", "vectorized (ms)", "speedup"],
        &rows,
    );
    write_json(
        "BENCH_engine_exec",
        &serde_json::json!({
            "scale_factor": sf,
            "samples": SAMPLES,
            "unit": "seconds (median per full local pipeline)",
            "rows": json_rows,
        }),
    );
    // Keep a copy at the workspace root so the perf trajectory is visible
    // in the tree across PRs. Anchored to the manifest dir, not the CWD,
    // so running from inside crates/bench doesn't scatter copies.
    let root_copy = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_engine_exec.json");
    if let Err(e) = std::fs::copy("target/repro/BENCH_engine_exec.json", &root_copy) {
        eprintln!("warning: could not copy BENCH_engine_exec.json to repo root: {e}");
    }
}
