//! Scalar-vs-vectorized executor timing on the paper's two-table queries,
//! recorded as `target/repro/BENCH_engine_exec.json` (and copied to the
//! repo root as `BENCH_engine_exec.json`) so the execution engine's perf
//! trajectory is tracked across PRs.
//!
//! Each query runs its full local pipeline (left prepare, right prepare,
//! combine) over a generated TPC-H instance; we report median wall-clock
//! per run and the scalar/vectorized speedup. Results are cross-checked
//! for equality before timing, so the numbers always describe two
//! executors computing the same answer.
//!
//! A second section sweeps the **partitioned parallel join/aggregation**
//! (`execute_with_partitions`) over the *combine* fragments — the
//! single-threaded join+aggregate stage that dominates once wave
//! parallelism overlaps the scans. Two gates:
//!
//! * **parity, always**: at every swept degree the combine's result table,
//!   `WorkProfile` and fingerprint must be bit-for-bit identical to the
//!   serial path;
//! * **speedup, on parallel hardware**: with ≥ 4 CPUs available, the
//!   Q13/Q17 combines at 4 partitions must run ≥ 1.4x faster than serial.
//!   On fewer cores (e.g. a 1-CPU CI container, where OS threads cannot
//!   physically overlap) the measured numbers are still recorded, and the
//!   gate is reported as skipped rather than lying about hardware.

use midas_bench::{print_table, write_json};
use midas_engines::ops::{execute, execute_scalar, execute_with_partitions};
use midas_engines::Catalog;
use midas_tpch::gen::{GenConfig, TpchDb};
use midas_tpch::queries::{q12, q13, q14, q17, TwoTableQuery};
use std::time::Instant;

const SAMPLES: usize = 15;
/// Samples for the (heavier) partitioned-combine sweep.
const SWEEP_SAMPLES: usize = 9;
/// Scale factor of the sweep database — large enough that the combine's
/// hash join + grouped aggregation dominate thread-spawn overhead.
const SWEEP_SF: f64 = 0.05;
/// Swept partition degrees (1 = the serial baseline).
const DEGREES: [usize; 4] = [1, 2, 4, 8];
/// The gated speedup of the Q13/Q17 combines at 4 partitions.
const GATE_DEGREE: usize = 4;
const GATE_SPEEDUP: f64 = 1.4;
/// Cores needed before the wall-clock gate is meaningful.
const GATE_MIN_CPUS: usize = 4;

fn median_secs_n(samples: usize, mut run: impl FnMut()) -> f64 {
    run(); // warmup
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            // LINT: wall-clock — this bench measures real executor time.
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn median_secs(run: impl FnMut()) -> f64 {
    median_secs_n(SAMPLES, run)
}

/// The partitioned-combine sweep: prepares each query's two sides once,
/// then times (and parity-checks) the combine fragment alone at every
/// partition degree. Returns the JSON rows plus the measured
/// degree-`GATE_DEGREE` speedup per query.
fn partitioned_combine_sweep() -> (Vec<serde_json::Value>, Vec<(String, f64)>) {
    let db = TpchDb::generate(GenConfig::new(SWEEP_SF, 2));
    let queries: Vec<(&str, TwoTableQuery)> = vec![
        ("Q12", q12("MAIL", "SHIP", 1994)),
        ("Q13", q13("special", "requests")),
        ("Q14", q14(1995, 9)),
        ("Q17", q17("Brand#23", "MED BOX")),
    ];
    println!(
        "\nPartitioned combine-fragment sweep over TPC-H sf={SWEEP_SF} \
         ({} lineitem rows), median of {SWEEP_SAMPLES} runs:\n",
        db.table("lineitem").map_or(0, |t| t.n_rows()),
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_rows: Vec<serde_json::Value> = Vec::new();
    let mut gate_speedups: Vec<(String, f64)> = Vec::new();
    for (name, q) in &queries {
        // Stage the combine's inputs once: prepared sides as @frag0/@frag1.
        let mut cat: Catalog = db.catalog().clone();
        let (left, _) = execute(&q.left_prepare, &cat).expect("left prepare runs");
        let (right, _) = execute(&q.right_prepare, &cat).expect("right prepare runs");
        cat.insert("@frag0".to_string(), left);
        cat.insert("@frag1".to_string(), right);

        // Parity gate at every degree — table, profile and fingerprint.
        let (serial_out, serial_profile) = execute(&q.combine, &cat).expect("combine runs");
        for &degree in &DEGREES[1..] {
            let (out, profile) =
                execute_with_partitions(&q.combine, &cat, degree).expect("combine runs");
            assert_eq!(out, serial_out, "{name}: table drifted at degree {degree}");
            assert_eq!(
                profile, serial_profile,
                "{name}: work profile drifted at degree {degree}"
            );
            assert_eq!(out.fingerprint(), serial_out.fingerprint(), "{name}");
        }

        // Timing sweep.
        let mut medians = Vec::with_capacity(DEGREES.len());
        for &degree in &DEGREES {
            let s = median_secs_n(SWEEP_SAMPLES, || {
                execute_with_partitions(&q.combine, &cat, degree).expect("combine runs");
            });
            medians.push(s);
        }
        let gate_idx = DEGREES
            .iter()
            .position(|&d| d == GATE_DEGREE)
            .expect("gate degree is swept");
        let speedup = medians[0] / medians[gate_idx];
        gate_speedups.push((name.to_string(), speedup));
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", medians[0] * 1e3),
            format!("{:.3}", medians[1] * 1e3),
            format!("{:.3}", medians[gate_idx] * 1e3),
            format!("{:.3}", medians[3] * 1e3),
            format!("{speedup:.2}x"),
        ]);
        json_rows.push(serde_json::json!({
            "query": name,
            "degrees": DEGREES,
            "combine_median_s": medians,
            "speedup_at_gate_degree": speedup,
        }));
    }
    print_table(
        &["query", "p=1 (ms)", "p=2 (ms)", "p=4 (ms)", "p=8 (ms)", "p=4 speedup"],
        &rows,
    );
    (json_rows, gate_speedups)
}

fn main() {
    let sf = 0.01;
    let db = TpchDb::generate(GenConfig::new(sf, 2));
    let queries: Vec<(&str, TwoTableQuery)> = vec![
        ("Q12", q12("MAIL", "SHIP", 1994)),
        ("Q13", q13("special", "requests")),
        ("Q14", q14(1995, 9)),
        ("Q17", q17("Brand#23", "MED BOX")),
    ];

    println!(
        "Executor comparison over TPC-H sf={sf} ({} lineitem rows), median of {SAMPLES} runs:\n",
        db.table("lineitem").map_or(0, |t| t.n_rows()),
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_rows: Vec<serde_json::Value> = Vec::new();
    for (name, q) in &queries {
        let mut cat = db.catalog().clone();
        // Equality cross-check before timing.
        let (out_v, _) = q.execute_local(&mut cat, execute).expect("vectorized runs");
        let (out_s, _) = q
            .execute_local(&mut cat, execute_scalar)
            .expect("scalar runs");
        assert_eq!(out_v, out_s, "{name}: executors disagree");

        let scalar_s = median_secs(|| {
            q.execute_local(&mut cat, execute_scalar).expect("runs");
        });
        let vector_s = median_secs(|| {
            q.execute_local(&mut cat, execute).expect("runs");
        });
        let speedup = scalar_s / vector_s;
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", scalar_s * 1e3),
            format!("{:.3}", vector_s * 1e3),
            format!("{speedup:.2}x"),
        ]);
        json_rows.push(serde_json::json!({
            "query": name,
            "scalar_median_s": scalar_s,
            "vectorized_median_s": vector_s,
            "speedup": speedup,
        }));
    }
    print_table(
        &["query", "scalar (ms)", "vectorized (ms)", "speedup"],
        &rows,
    );

    // Partition-degree sweep over the combine fragments, parity-gated at
    // every degree; the wall-clock gate needs hardware that can actually
    // run 4 shards at once.
    let (sweep_rows, gate_speedups) = partitioned_combine_sweep();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let gate_enforced = cpus >= GATE_MIN_CPUS;
    if gate_enforced {
        for (name, speedup) in &gate_speedups {
            if name == "Q13" || name == "Q17" {
                assert!(
                    *speedup >= GATE_SPEEDUP,
                    "{name} combine at {GATE_DEGREE} partitions regressed below \
                     the {GATE_SPEEDUP}x gate: {speedup:.2}x"
                );
            }
        }
        println!("\npartitioned-combine speedup gate: enforced ({cpus} CPUs) — OK");
    } else {
        println!(
            "\npartitioned-combine speedup gate: SKIPPED — {cpus} CPU(s) cannot \
             overlap shards (parity was still gated at every degree)"
        );
    }

    let gate_json = serde_json::json!({
        "queries": ["Q13", "Q17"],
        "degree": GATE_DEGREE,
        "min_speedup": GATE_SPEEDUP,
        "enforced": gate_enforced,
        "cpus_available": cpus,
    });
    let partitioned_json = serde_json::json!({
        "scale_factor": SWEEP_SF,
        "samples": SWEEP_SAMPLES,
        "unit": "seconds (median per combine fragment)",
        "parity": "bit-for-bit at every degree (table, profile, fingerprint)",
        "gate": gate_json,
        "rows": sweep_rows,
    });
    write_json(
        "BENCH_engine_exec",
        &serde_json::json!({
            "scale_factor": sf,
            "samples": SAMPLES,
            "unit": "seconds (median per full local pipeline)",
            "rows": json_rows,
            "partitioned_combine": partitioned_json,
        }),
    );
    // Keep a copy at the workspace root so the perf trajectory is visible
    // in the tree across PRs. Anchored to the manifest dir, not the CWD,
    // so running from inside crates/bench doesn't scatter copies.
    let root_copy = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_engine_exec.json");
    if let Err(e) = std::fs::copy("target/repro/BENCH_engine_exec.json", &root_copy) {
        eprintln!("warning: could not copy BENCH_engine_exec.json to repo root: {e}");
    }
}
