//! Reproduces **Table 1**: "Example of instances pricing" — the Amazon `a1`
//! and Microsoft Azure `B` instance catalogs.
//!
//! ```text
//! cargo run --release -p midas-bench --bin repro_table1
//! ```

use midas_bench::{print_table, write_json};
use midas_cloud::{amazon_a1_catalog, azure_b_catalog, Catalog};

fn rows_of(catalog: &Catalog) -> Vec<Vec<String>> {
    catalog
        .instances()
        .iter()
        .map(|i| {
            vec![
                catalog.provider.to_string(),
                i.name.clone(),
                i.vcpus.to_string(),
                format!("{:.0}", i.memory_gib),
                i.storage.to_string(),
                format!("${:.4}/hour", i.price_per_hour.as_dollars()),
            ]
        })
        .collect()
}

fn main() {
    println!("Table 1: Example of instances pricing.");
    let mut rows = rows_of(&amazon_a1_catalog());
    rows.extend(rows_of(&azure_b_catalog()));
    print_table(
        &["Provider", "Machine", "vCPU", "Memory (GiB)", "Storage (GiB)", "Price"],
        &rows,
    );

    // The paper's observation: at comparable shapes Amazon undercuts Azure,
    // but Amazon's price excludes storage — the trade-off that makes the
    // money objective non-trivial.
    let amazon = amazon_a1_catalog();
    let azure = azure_b_catalog();
    let medium = amazon.by_name("a1.medium").expect("catalog constant");
    let b1ms = azure.by_name("B1MS").expect("catalog constant");
    println!(
        "\nComparable 1-vCPU/2-GiB shapes: {} at {} vs {} at {} — Amazon cheaper, but EBS-only.",
        medium.name,
        medium.price_per_hour,
        b1ms.name,
        b1ms.price_per_hour
    );

    write_json(
        "table1",
        &serde_json::json!({
            "amazon": amazon.instances().iter().map(|i| serde_json::json!({
                "name": i.name, "vcpus": i.vcpus, "memory_gib": i.memory_gib,
                "price_per_hour": i.price_per_hour.as_dollars(),
            })).collect::<Vec<_>>(),
            "azure": azure.instances().iter().map(|i| serde_json::json!({
                "name": i.name, "vcpus": i.vcpus, "memory_gib": i.memory_gib,
                "price_per_hour": i.price_per_hour.as_dollars(),
            })).collect::<Vec<_>>(),
        }),
    );
}
