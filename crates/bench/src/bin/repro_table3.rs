//! Reproduces **Table 3**: MRE of execution-time estimation on the 100 MiB
//! TPC-H dataset, queries 12/13/14/17, estimators BML_N/2N/3N/∞ vs DREAM.
//!
//! ```text
//! cargo run --release -p midas-bench --bin repro_table3 [seed] [--full]
//! ```
//!
//! `--full` runs the uncapped SF 0.1 database (slower, same shape).

use midas::experiments::{run_mre, MreConfig};
use midas_bench::{print_table, write_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args
        .iter()
        .filter_map(|a| a.parse().ok())
        .next()
        .unwrap_or(42);
    let full = args.iter().any(|a| a == "--full");
    let cfg = if full {
        MreConfig::table3_full(seed)
    } else {
        MreConfig::table3(seed)
    };

    eprintln!(
        "Table 3 — MRE with the 100 MiB TPC-H dataset (seed {seed}, {} warmup + {} test runs per query){}",
        cfg.warmup_runs,
        cfg.test_runs,
        if full { ", full physical rows" } else { "" }
    );
    let report = run_mre(&cfg)?;

    println!(
        "\nTable 3: Comparison of mean relative error with 100MiB TPC-H dataset \
         (nominal {} MiB generated)",
        report.db_bytes / (1024 * 1024)
    );
    let headers = ["Query", "BMLN", "BML2N", "BML3N", "BML", "DREAM", "DREAM window"];
    let mut rows = Vec::new();
    for row in &report.rows {
        let mut cells = vec![row.query.number().to_string()];
        for (_, mre) in &row.mre {
            cells.push(format!("{mre:.3}"));
        }
        cells.push(format!("{:.1}", row.dream_mean_window));
        rows.push(cells);
    }
    print_table(&headers, &rows);

    let wins = report
        .rows
        .iter()
        .filter(|r| {
            let dream = r.mre.last().map(|(_, m)| *m).unwrap_or(f64::NAN);
            r.mre[..r.mre.len() - 1].iter().all(|(_, m)| dream <= *m)
        })
        .count();
    println!(
        "\nDREAM has the smallest MRE in {wins}/{} queries (paper: 4/4).",
        report.rows.len()
    );

    write_json(
        "table3",
        &serde_json::json!({
            "seed": seed,
            "full": full,
            "db_nominal_bytes": report.db_bytes,
            "rows": report.rows.iter().map(|r| {
                serde_json::json!({
                    "query": r.query.number(),
                    "mre": r.mre.iter().map(|(k, v)| (k.to_string(), v)).collect::<Vec<_>>(),
                    "dream_mean_window": r.dream_mean_window,
                })
            }).collect::<Vec<_>>(),
        }),
    );
    Ok(())
}
