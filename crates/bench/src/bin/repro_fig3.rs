//! Reproduces **Figure 3**: the Pareto/GA MOQP pipeline vs the Weighted Sum
//! Model pipeline, measured over a sweep of user weight settings.
//!
//! ```text
//! cargo run --release -p midas-bench --bin repro_fig3 [seed]
//! ```

use midas::experiments::run_fig3;
use midas_bench::{print_table, write_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(23);
    eprintln!("Figure 3 — GA-based MOQP vs WSM-based MOQP on Q12 (seed {seed})");
    let report = run_fig3(0.01, seed)?;

    println!(
        "\nFigure 3: two MOQP pipelines over one QEP space ({} configurations; \
         NSGA-II Pareto set: {} plans)",
        report.space_size, report.pareto_size
    );
    let headers = [
        "weights (t, $)",
        "GA pick (t s, $)",
        "WSM pick (t s, $)",
        "optimal (t s, $)",
        "GA evals (cum)",
        "WSM evals (cum)",
    ];
    let fmt = |c: &[f64]| format!("({:.3}, {:.5})", c[0], c[1]);
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("({:.1}, {:.1})", r.weights.0, r.weights.1),
                fmt(&r.ga_costs),
                fmt(&r.wsm_costs),
                fmt(&r.optimal_costs),
                r.ga_cumulative_evals.to_string(),
                r.wsm_cumulative_evals.to_string(),
            ]
        })
        .collect();
    print_table(&headers, &rows);

    let last = report.rows.last().expect("sweep is non-empty");
    println!(
        "\nAfter {} weight changes the WSM pipeline has spent {} cost evaluations, the \
         GA pipeline {} — the Pareto set is computed once and re-selection (Algorithm 2) \
         is free. This is the paper's Section 2.6 argument for Pareto-based MOQP.",
        report.rows.len(),
        last.wsm_cumulative_evals,
        last.ga_cumulative_evals
    );

    write_json(
        "fig3",
        &serde_json::json!({
            "seed": seed,
            "space_size": report.space_size,
            "pareto_size": report.pareto_size,
            "rows": report.rows.iter().map(|r| serde_json::json!({
                "weights": [r.weights.0, r.weights.1],
                "ga": r.ga_costs, "wsm": r.wsm_costs, "optimal": r.optimal_costs,
                "ga_cum_evals": r.ga_cumulative_evals,
                "wsm_cum_evals": r.wsm_cumulative_evals,
            })).collect::<Vec<_>>(),
        }),
    );
    Ok(())
}
