//! The adaptive-planning tail-latency gate, recorded as
//! `target/repro/BENCH_adaptive_tail.json` (and copied to the repo root):
//! a skewed four-tenant medical workload streamed in bursts through a
//! federation whose favorite join site is congested for the whole run (an
//! admission flap pins its gate to one slot while a 20x slowdown window
//! stretches every fragment that still lands there). The same congested
//! tape is served twice — **blind** (`pressure_penalty = 0`, today's
//! planner) and **congestion-aware** (`pressure_penalty > 0`, admission
//! pressure folded into plan costs plus speculative re-planning). Gates:
//!
//! * **Adaptivity engaged** — the congested aware run triggers speculative
//!   re-plans (`replans > 0`) and routes joins away from the hot site;
//!   the blind run never re-plans. Enforced everywhere.
//! * **Blind determinism preserved** — with `pressure_penalty = 0` the
//!   per-job outcome ledger (fingerprints, attempts, pinned versions,
//!   chosen configurations) is bit-identical at 1 and 4 workers: pressure
//!   feedback off means *nothing* about today's planner changed. Enforced
//!   everywhere.
//! * **Tail improvement** — the aware run strictly improves wall-clock
//!   p95/p99 completion latency and clears a 1.3x p99 speedup. Wall tails
//!   depend on real parallelism, so this gate is only *enforced* on hosts
//!   with ≥ 4 CPUs; on smaller hosts the ratios are recorded in the JSON
//!   artifact but not asserted.

use midas::runtime::{FederationRuntime, RuntimeConfig, RuntimeJob, RuntimeReport};
use midas::{Midas, QueryPolicy};
use midas_bench::{print_table, write_json};
use midas_engines::sim::{DriftIntensity, FaultPlan};
use midas_tpch::medical::{generate_medical, medical_query};

const PATIENTS: usize = 1_500;
const ROUNDS: usize = 6;
const JOBS_PER_ROUND: usize = 9;
const PRESSURE_PENALTY: f64 = 4.0;
const REPLAN_THRESHOLD: f64 = 0.25;
const SLOWDOWN: f64 = 20.0;
const P99_SPEEDUP_TARGET: f64 = 1.3;

/// One burst of the skewed tenant mix: a heavy hospital, two medium
/// hospitals, one light clinic.
fn burst() -> Vec<RuntimeJob> {
    let mut jobs = Vec::new();
    for (tenant, modalities) in [
        ("hospital-A", &["CT", "MR", "CT", "US"][..]),
        ("hospital-B", &["CT", "XR"][..]),
        ("hospital-C", &["MR", "CT"][..]),
        ("clinic-D", &["PET"][..]),
    ] {
        for modality in modalities {
            jobs.push(RuntimeJob::new(
                tenant,
                medical_query(Some(modality)),
                QueryPolicy::balanced(),
            ));
        }
    }
    jobs
}

fn config(workers: usize, pressure_penalty: f64) -> RuntimeConfig {
    RuntimeConfig {
        workers,
        parallel_fragments: true,
        max_vms: 2,
        // Dilate simulated work into wall time so in-flight fragments
        // occupy their admission slots while later bursts are planned.
        pacing: 0.02,
        pressure_penalty,
        replan_threshold: REPLAN_THRESHOLD,
        // Flat ambient load: the tails isolate the injected congestion.
        drift: DriftIntensity::None,
        ..RuntimeConfig::default()
    }
}

fn runtime<'a>(
    midas: &'a Midas,
    faults: &FaultPlan,
    cfg: RuntimeConfig,
) -> FederationRuntime<'a> {
    FederationRuntime::new(
        midas.federation(),
        midas.placement(),
        generate_medical(PATIENTS, 0.5, 42),
        cfg,
    )
    .with_fault_plan(faults.clone())
}

/// Stream the bursts through a serving runtime, pausing between bursts so
/// earlier jobs are mid-execution when later ones are admitted — the
/// overlap is what makes admission pressure observable.
fn serve(midas: &Midas, faults: &FaultPlan, pressure_penalty: f64) -> RuntimeReport {
    let rt = runtime(midas, faults, config(4, pressure_penalty));
    let ((), report) = rt.serve(|ingress| {
        for _ in 0..ROUNDS {
            for job in burst() {
                ingress.submit(job);
            }
            std::thread::sleep(std::time::Duration::from_millis(120));
        }
    });
    report
}

/// Per-job outcomes canonicalized to the interleaving-independent fields:
/// with pressure feedback off, planning is a pure function of the pinned
/// catalog version, so chosen configurations must agree across worker
/// counts too (not just fingerprints).
fn canonical_outcomes(report: &RuntimeReport) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = report
        .completed
        .iter()
        .map(|r| {
            (
                r.sequence,
                format!(
                    "ok tenant={} attempts={} fingerprint={} pinned=v{} chosen={:?} \
                     replans={} switched={}",
                    r.tenant,
                    r.attempts,
                    r.report.result_fingerprint,
                    r.pinned_version(),
                    r.report.chosen,
                    r.replans,
                    r.plan_switched,
                ),
            )
        })
        .chain(
            report
                .failed
                .iter()
                .map(|f| (f.sequence, format!("err tenant={} {:?}", f.tenant, f.error))),
        )
        .collect();
    out.sort_by_key(|(sequence, _)| *sequence);
    out
}

/// Nearest-rank percentile over arbitrary per-job samples (the runtime's
/// own `LatencyStats` aggregates the simulated clock; the wall-clock gate
/// needs the same math over wall samples).
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latency samples are finite"));
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// Full wall-clock completion latency per job: queue wait plus service.
fn wall_samples(report: &RuntimeReport) -> Vec<f64> {
    report
        .completed
        .iter()
        .map(|r| r.queue_wait_s + r.wall_latency_s)
        .collect()
}

fn main() {
    let (midas, _, _) = Midas::example_deployment(&["patient"], &["generalinfo"]);
    let n_jobs = ROUNDS * JOBS_PER_ROUND;

    // Probe a healthy federation for the blind planner's join site — that
    // is the hot spot worth congesting.
    let probe = serve(&midas, &FaultPlan::none(), 0.0);
    assert!(probe.failed.is_empty(), "probe failed: {:?}", probe.failed);
    let hot = probe.completed[0].report.chosen.join_site;
    let faults = FaultPlan::none()
        .flap(hot, 0, n_jobs as u64)
        .slowdown(hot, 0, n_jobs as u64, SLOWDOWN);

    let blind = serve(&midas, &faults, 0.0);
    let aware = serve(&midas, &faults, PRESSURE_PENALTY);
    for (label, report) in [("blind", &blind), ("aware", &aware)] {
        assert!(report.failed.is_empty(), "{label} run failed: {:?}", report.failed);
        assert_eq!(report.completed.len(), n_jobs, "{label} run lost jobs");
    }

    // Gate: adaptivity engaged — and only in the aware run.
    assert_eq!(blind.replans, 0, "blind run must never re-plan");
    assert!(
        aware.replans > 0,
        "congested aware run never re-planned — the wait/threshold trigger is dead"
    );
    let away = |r: &RuntimeReport| {
        r.completed
            .iter()
            .filter(|c| c.report.chosen.join_site != hot)
            .count()
    };
    let (blind_away, aware_away) = (away(&blind), away(&aware));
    assert_eq!(blind_away, 0, "blind run routed joins away without a signal");
    assert!(
        aware_away > 0,
        "aware run never routed a join away from the congested site"
    );

    // Gate: blind determinism preserved — pressure_penalty = 0 is
    // bit-identical at 1 and 4 workers on the same congested batch tape.
    let batch: Vec<RuntimeJob> = (0..ROUNDS).flat_map(|_| burst()).collect();
    let blind_1 = runtime(&midas, &faults, config(1, 0.0)).run(batch.clone());
    let blind_4 = runtime(&midas, &faults, config(4, 0.0)).run(batch);
    assert_eq!(
        canonical_outcomes(&blind_1),
        canonical_outcomes(&blind_4),
        "pressure_penalty = 0 outcomes drifted across worker counts"
    );

    // Tail improvement: wall-clock completion latency, enforced only where
    // real parallelism exists.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut blind_wall = wall_samples(&blind);
    let mut aware_wall = wall_samples(&aware);
    let (b_wp95, b_wp99) = (percentile(&mut blind_wall, 95.0), percentile(&mut blind_wall, 99.0));
    let (a_wp95, a_wp99) = (percentile(&mut aware_wall, 95.0), percentile(&mut aware_wall, 99.0));
    let p99_speedup = b_wp99 / a_wp99.max(1e-9);
    let enforced = cpus >= 4;
    if enforced {
        assert!(
            a_wp95 < b_wp95 && a_wp99 < b_wp99,
            "aware run did not strictly improve wall p95/p99 \
             (blind {b_wp95:.3}/{b_wp99:.3}s vs aware {a_wp95:.3}/{a_wp99:.3}s)"
        );
        assert!(
            p99_speedup >= P99_SPEEDUP_TARGET,
            "aware p99 speedup {p99_speedup:.2}x below the {P99_SPEEDUP_TARGET}x target"
        );
    }

    let sim_work = |r: &RuntimeReport| -> f64 {
        r.completed.iter().map(|c| c.report.actual_costs[0]).sum()
    };
    let row = |label: &str, r: &RuntimeReport, wp95: f64, wp99: f64, away: usize| {
        vec![
            label.into(),
            format!("{:.1}", sim_work(r)),
            format!("{:.1}", r.latency.p50_s),
            format!("{:.1}", r.latency.p95_s),
            format!("{:.1}", r.latency.p99_s),
            format!("{wp95:.2}"),
            format!("{wp99:.2}"),
            r.replans.to_string(),
            r.plan_switches.to_string(),
            away.to_string(),
        ]
    };
    print_table(
        &[
            "mode", "sim work s", "sim p50", "sim p95", "sim p99", "wall p95 s", "wall p99 s",
            "replans", "switches", "joins away",
        ],
        &[
            row("blind", &blind, b_wp95, b_wp99, blind_away),
            row("aware", &aware, a_wp95, a_wp99, aware_away),
        ],
    );
    println!(
        "\nadaptive tail: {n_jobs} jobs over 4 tenants, hot site {} flapped + {SLOWDOWN}x slow, \
         aware re-planned {} times / switched {} plans / routed {aware_away} joins away, \
         wall p99 speedup {p99_speedup:.2}x ({}), pressure_penalty=0 ledger bit-identical \
         at 1 and 4 workers",
        hot.0,
        aware.replans,
        aware.plan_switches,
        if enforced {
            "enforced".to_string()
        } else {
            format!("recorded only: {cpus} CPU(s) < 4")
        },
    );

    write_json(
        "BENCH_adaptive_tail",
        &serde_json::json!({
            "jobs": n_jobs,
            "tenants": 4,
            "hot_site": hot.0,
            "slowdown": SLOWDOWN,
            "pressure_penalty": PRESSURE_PENALTY,
            "replan_threshold": REPLAN_THRESHOLD,
            "host_cpus": cpus,
            "latency_gate": (if enforced { "enforced" } else { "recorded-only (host < 4 CPUs)" }),
            "blind": serde_json::json!({
                "sim_work_s": sim_work(&blind),
                "sim_p50_s": blind.latency.p50_s,
                "sim_p95_s": blind.latency.p95_s,
                "sim_p99_s": blind.latency.p99_s,
                "wall_p95_s": b_wp95,
                "wall_p99_s": b_wp99,
                "replans": blind.replans,
                "joins_away": blind_away,
            }),
            "aware": serde_json::json!({
                "sim_work_s": sim_work(&aware),
                "sim_p50_s": aware.latency.p50_s,
                "sim_p95_s": aware.latency.p95_s,
                "sim_p99_s": aware.latency.p99_s,
                "wall_p95_s": a_wp95,
                "wall_p99_s": a_wp99,
                "replans": aware.replans,
                "plan_switches": aware.plan_switches,
                "joins_away": aware_away,
            }),
            "wall_p99_speedup": p99_speedup,
            "p99_speedup_target": P99_SPEEDUP_TARGET,
            "pressure_off_cross_worker_ledger": "bit-for-bit",
        }),
    );
    let root_copy = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_adaptive_tail.json");
    if let Err(e) = std::fs::copy("target/repro/BENCH_adaptive_tail.json", &root_copy) {
        eprintln!("warning: could not copy BENCH_adaptive_tail.json to repo root: {e}");
    }
}
