//! Multi-tenant cache benchmark: repeated medical queries across 16
//! hospital tenants, cold vs warm, recorded as `BENCH_cache_hit.json`.
//!
//! Protocol: two identically seeded runtimes — one with the fragment +
//! plan caches disabled, one with them on — each serve the same workload
//! twice. The first pass aligns both runtimes' simulated clocks (and
//! fills the caches on the caching side); the second pass is the
//! measured one: the cold runtime recomputes every fragment, the warm
//! runtime serves them from the shared result cache.
//!
//! Gates:
//! * warm qps >= 5x cold qps at 1 worker (the measured passes start from
//!   bit-identical runtime states, so this is a pure hit-path-vs-
//!   cold-path comparison);
//! * warm outcomes bit-identical to cold outcomes at 1 worker (including
//!   simulated cost vectors) and at 4 workers (plans, rows,
//!   fingerprints — racing workers reorder the drifting simulation, so
//!   simulated wall-clock is not comparable across runs there);
//! * a budget-bounded run stays within its byte budget while evicting.

use midas::runtime::{FederationRuntime, RuntimeConfig, RuntimeJob, RuntimeReport};
use midas::{Midas, QueryPolicy};
use midas_bench::{print_table, write_json};
use midas_tpch::medical::{generate_medical, medical_query};

const TENANTS: usize = 16;
const ROUNDS: usize = 6;
const PATIENTS: usize = 10_000;
const MIN_SPEEDUP: f64 = 5.0;

fn workload() -> Vec<RuntimeJob> {
    let modalities = ["CT", "MR", "US", "XR", "PET"];
    let mut jobs = Vec::new();
    for round in 0..ROUNDS {
        for tenant in 0..TENANTS {
            jobs.push(RuntimeJob::new(
                &format!("hospital-{tenant:02}"),
                medical_query(Some(modalities[(tenant + round) % modalities.len()])),
                QueryPolicy::balanced(),
            ));
        }
    }
    jobs
}

/// Per-job outcomes canonicalized to the service-order-independent
/// fields; with `with_costs` the simulated cost vectors are pinned too
/// (valid only between equal-worker-count, equal-clock runs).
fn canonical_outcomes(report: &RuntimeReport, with_costs: bool) -> Vec<String> {
    let mut out: Vec<(usize, String)> = report
        .completed
        .iter()
        .map(|r| {
            let mut line = format!(
                "seq={} tenant={} label={} rows={} fingerprint={} pinned=v{} chosen={:?}",
                r.sequence,
                r.tenant,
                r.report.label,
                r.report.result_rows,
                r.report.result_fingerprint,
                r.pinned_version(),
                r.report.chosen,
            );
            if with_costs {
                line.push_str(&format!(
                    " predicted={:?} actual={:?}",
                    r.report.predicted_costs, r.report.actual_costs
                ));
            }
            (r.sequence, line)
        })
        .collect();
    out.sort_by_key(|(sequence, _)| *sequence);
    out.into_iter().map(|(_, line)| line).collect()
}

struct Measured {
    cold_qps: f64,
    warm_qps: f64,
    speedup: f64,
    fragment_hit_rate: f64,
    plan_hit_rate: f64,
}

fn main() {
    let (midas, _, _) = Midas::example_deployment(&["patient"], &["generalinfo"]);
    let catalog = generate_medical(PATIENTS, 0.5, 42);
    let jobs = workload();
    let n_jobs = jobs.len();

    let mut sweep = Vec::new();
    for workers in [1usize, 4] {
        let build = |cached: bool| {
            FederationRuntime::new(
                midas.federation(),
                midas.placement(),
                catalog.clone(),
                RuntimeConfig {
                    workers,
                    parallel_fragments: workers > 1,
                    max_vms: 2,
                    fragment_cache_bytes: if cached { 64 << 20 } else { 0 },
                    plan_cache_bytes: if cached { 8 << 20 } else { 0 },
                    ..RuntimeConfig::default()
                },
            )
        };
        let cold_rt = build(false);
        let warm_rt = build(true);

        // Pass 1 aligns the simulated clocks and fills the caches.
        let cold_prime = cold_rt.run(jobs.clone());
        let warm_prime = warm_rt.run(jobs.clone());
        for (label, report) in [("cold prime", &cold_prime), ("warm prime", &warm_prime)] {
            assert!(
                report.failed.is_empty(),
                "{workers}w {label}: failures {:?}",
                report.failed
            );
        }
        let primed = warm_rt.cache_stats();

        // Pass 2 is the measurement: pure cold path vs pure hit path.
        let cold = cold_rt.run(jobs.clone());
        let warm = warm_rt.run(jobs.clone());
        assert!(cold.failed.is_empty() && warm.failed.is_empty());

        // Gate: hit-path outcomes bit-identical to the cold path. At one
        // worker the two runtimes served identical sequences from
        // identical simulated clocks, so even the cost vectors must
        // match bit-for-bit.
        let with_costs = workers == 1;
        assert_eq!(
            canonical_outcomes(&warm, with_costs),
            canonical_outcomes(&cold, with_costs),
            "{workers} workers: warm outcomes drifted from cold"
        );

        // Gate: the measured pass really was all hits (every fragment
        // and plan was primed; nothing invalidated in between).
        let stats = warm_rt.cache_stats();
        let pass_hits = stats.fragment.hits - primed.fragment.hits;
        let pass_misses = stats.fragment.misses - primed.fragment.misses;
        assert_eq!(
            pass_misses, 0,
            "{workers} workers: measured pass missed {pass_misses} fragments"
        );
        assert_eq!(pass_hits, 3 * n_jobs as u64);
        let fragment_hit_rate =
            stats.fragment.hits as f64 / (stats.fragment.hits + stats.fragment.misses) as f64;
        let plan_hit_rate =
            stats.plan.hits as f64 / (stats.plan.hits + stats.plan.misses) as f64;

        let speedup = warm.throughput_qps / cold.throughput_qps;
        sweep.push((
            workers,
            Measured {
                cold_qps: cold.throughput_qps,
                warm_qps: warm.throughput_qps,
                speedup,
                fragment_hit_rate,
                plan_hit_rate,
            },
        ));
    }

    // Gate: the warm pass clears the speedup bar at 1 worker (wall-clock
    // parallelism noise is kept out of the enforced gate; the 4-worker
    // numbers are recorded alongside).
    let serial = &sweep[0].1;
    assert!(
        serial.speedup >= MIN_SPEEDUP,
        "warm/cold speedup {:.2}x below the {MIN_SPEEDUP}x gate \
         (cold {:.1} qps, warm {:.1} qps)",
        serial.speedup,
        serial.cold_qps,
        serial.warm_qps
    );

    // Budget-bounded run: a cache two orders smaller than the resident
    // set must keep evicting yet never exceed its byte budget, and the
    // workload must still complete correctly.
    let unbounded_resident = {
        let rt = FederationRuntime::new(
            midas.federation(),
            midas.placement(),
            catalog.clone(),
            RuntimeConfig {
                workers: 1,
                max_vms: 2,
                ..RuntimeConfig::default()
            },
        );
        assert!(rt.run(jobs.clone()).failed.is_empty());
        rt.cache_stats().fragment.resident_bytes
    };
    let budget = (unbounded_resident / 2).max(1);
    let bounded_rt = FederationRuntime::new(
        midas.federation(),
        midas.placement(),
        catalog.clone(),
        RuntimeConfig {
            workers: 1,
            max_vms: 2,
            fragment_cache_bytes: budget,
            ..RuntimeConfig::default()
        },
    );
    let bounded = bounded_rt.run(jobs.clone());
    assert!(bounded.failed.is_empty());
    let bounded_stats = bounded_rt.cache_stats().fragment;
    assert!(
        bounded_stats.resident_bytes <= budget,
        "cache exceeded its byte budget: {} > {budget}",
        bounded_stats.resident_bytes
    );
    assert!(
        bounded_stats.evictions > 0,
        "halved budget never evicted: {bounded_stats:?}"
    );

    print_table(
        &["workers", "cold qps", "warm qps", "speedup", "frag hit rate", "plan hit rate"],
        &sweep
            .iter()
            .map(|(workers, m)| {
                vec![
                    workers.to_string(),
                    format!("{:.1}", m.cold_qps),
                    format!("{:.1}", m.warm_qps),
                    format!("{:.2}x", m.speedup),
                    format!("{:.1}%", m.fragment_hit_rate * 100.0),
                    format!("{:.1}%", m.plan_hit_rate * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\ncache: {n_jobs} jobs x 2 passes over {TENANTS} tenants, warm pass all-hits \
         and bit-identical to cold, {:.2}x serial speedup (gate {MIN_SPEEDUP}x), \
         bounded run respected {budget} bytes with {} evictions",
        serial.speedup, bounded_stats.evictions
    );

    write_json(
        "BENCH_cache_hit",
        &serde_json::json!({
            "jobs_per_pass": n_jobs,
            "tenants": TENANTS,
            "rounds": ROUNDS,
            "patients": PATIENTS,
            "scope": "federation-global",
            "sweep": sweep
                .iter()
                .map(|(workers, m)| {
                    serde_json::json!({
                        "workers": workers,
                        "cold_qps": m.cold_qps,
                        "warm_qps": m.warm_qps,
                        "speedup": m.speedup,
                        "fragment_hit_rate": m.fragment_hit_rate,
                        "plan_hit_rate": m.plan_hit_rate,
                    })
                })
                .collect::<Vec<_>>(),
            "bounded": serde_json::json!({
                "budget_bytes": budget,
                "resident_bytes": bounded_stats.resident_bytes,
                "evictions": bounded_stats.evictions,
                "budget_respected": true,
            }),
            "gates": serde_json::json!({
                "speedup": serde_json::json!({
                    "min": MIN_SPEEDUP,
                    "workers": 1,
                    "enforced": true,
                }),
                "bit_identical_outcomes": "1 worker incl. simulated costs; 4 workers plans/rows/fingerprints",
                "all_hits_measured_pass": true,
                "byte_budget": "enforced",
            }),
        }),
    );
    let root_copy = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_cache_hit.json");
    if let Err(e) = std::fs::copy("target/repro/BENCH_cache_hit.json", &root_copy) {
        eprintln!("warning: could not copy BENCH_cache_hit.json to repo root: {e}");
    }
}
