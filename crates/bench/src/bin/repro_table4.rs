//! Reproduces **Table 4**: MRE of execution-time estimation on the 1 GiB
//! TPC-H dataset — the same protocol as Table 3 at SF 1.0.
//!
//! ```text
//! cargo run --release -p midas-bench --bin repro_table4 [seed] [--full]
//! ```

use midas::experiments::{run_mre, MreConfig};
use midas_bench::{print_table, write_json};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args
        .iter()
        .filter_map(|a| a.parse().ok())
        .next()
        .unwrap_or(42);
    let full = args.iter().any(|a| a == "--full");
    let cfg = if full {
        MreConfig::table4_full(seed)
    } else {
        MreConfig::table4(seed)
    };

    eprintln!(
        "Table 4 — MRE with the 1 GiB TPC-H dataset (seed {seed}, {} warmup + {} test runs per query)",
        cfg.warmup_runs, cfg.test_runs
    );
    let report = run_mre(&cfg)?;

    println!(
        "\nTable 4: Comparison of mean relative error with 1GiB TPC-H dataset \
         (nominal {} MiB generated, physical rows capped and rescaled)",
        report.db_bytes / (1024 * 1024)
    );
    let headers = ["Query", "BMLN", "BML2N", "BML3N", "BML", "DREAM", "DREAM window"];
    let mut rows = Vec::new();
    for row in &report.rows {
        let mut cells = vec![row.query.number().to_string()];
        for (_, mre) in &row.mre {
            cells.push(format!("{mre:.3}"));
        }
        cells.push(format!("{:.1}", row.dream_mean_window));
        rows.push(cells);
    }
    print_table(&headers, &rows);

    write_json(
        "table4",
        &serde_json::json!({
            "seed": seed,
            "full": full,
            "db_nominal_bytes": report.db_bytes,
            "rows": report.rows.iter().map(|r| {
                serde_json::json!({
                    "query": r.query.number(),
                    "mre": r.mre.iter().map(|(k, v)| (k.to_string(), v)).collect::<Vec<_>>(),
                    "dream_mean_window": r.dream_mean_window,
                })
            }).collect::<Vec<_>>(),
        }),
    );
    Ok(())
}
