//! Reproduces **Example 3.1**: a 70-vCPU/260-GiB pool yields 18 200
//! equivalent QEP configurations for a single query — and measures what that
//! implies for estimation cost.
//!
//! ```text
//! cargo run --release -p midas-bench --bin repro_example31
//! ```

use midas::experiments::run_example31;
use midas_bench::write_json;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    eprintln!("Example 3.1 — the equivalent-QEP explosion");
    let report = run_example31(0.01, 200, 42)?;

    println!("\nExample 3.1: equivalent QEPs from one resource pool");
    println!(
        "  pool of 70 vCPU x 260 GiB  =>  {} configurations (paper: 18,200)",
        report.pool_configurations
    );
    println!(
        "  costing all of them analytically: {:.3} s  ({:.0} configs/s)",
        report.evaluation_seconds, report.configs_per_second
    );
    println!(
        "  DREAM fit on a {}-point history: {:.3} ms (window chosen: {})",
        report.history_len,
        report.dream_fit_seconds * 1e3,
        report.dream_window
    );
    println!(
        "  full-history BML fit on the same history: {:.3} ms  ({:.1}x DREAM)",
        report.bml_fit_seconds * 1e3,
        report.bml_fit_seconds / report.dream_fit_seconds.max(1e-12)
    );
    println!(
        "\nWith thousands of equivalent QEPs per query, a model that is cheap to \
         (re)train and evaluate is a requirement, not a nicety — DREAM's small window \
         keeps the estimation step negligible."
    );

    write_json(
        "example31",
        &serde_json::json!({
            "pool_configurations": report.pool_configurations,
            "evaluation_seconds": report.evaluation_seconds,
            "configs_per_second": report.configs_per_second,
            "dream_fit_seconds": report.dream_fit_seconds,
            "bml_fit_seconds": report.bml_fit_seconds,
            "history_len": report.history_len,
            "dream_window": report.dream_window,
        }),
    );
    Ok(())
}
