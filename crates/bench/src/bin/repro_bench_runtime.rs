//! Multi-worker throughput of the concurrent [`FederationRuntime`] on a
//! mixed Q12/Q13/Q14/Q17 multi-tenant workload, recorded as
//! `target/repro/BENCH_runtime_throughput.json` (and copied to the repo
//! root) so the runtime's scaling trajectory is tracked across PRs.
//!
//! Methodology: the same fixed-seed workload — four hospital tenants, each
//! with its own split-seed parameter stream — is pushed through fresh
//! runtimes at 1, 2 and 4 workers. *Nominal site occupancy* (each
//! fragment's work profile at unit load, a pure function of plan and data)
//! is dilated into wall-clock (`pacing` wall seconds per nominal simulated
//! second, calibrated from a probe run so the one-worker batch takes a few
//! seconds): while a fragment "runs" on a site it holds one of that site's
//! admission slots and the submitting worker waits, exactly as a
//! federation broker waits on a remote engine. Because the nominal base is
//! deterministic, every worker count pays the same total paced wall-clock,
//! so throughput measures what the runtime architecture actually controls
//! — how well independent tenants' queries overlap across sites under
//! per-site capacity limits — rather than raw single-core arithmetic
//! (which no worker count can multiply) or luck in how thread interleaving
//! assigns the drifting environment's noise draws (which *does* make the
//! multi-worker simulated cost totals differ run to run).

use midas::runtime::{FederationRuntime, RuntimeConfig, RuntimeJob};
use midas::{Midas, QueryPolicy};
use midas_bench::{print_table, write_json};
use midas_engines::sim::split_seed;
use midas_tpch::gen::{GenConfig, TpchDb};
use midas_tpch::queries::QueryId;
use midas_tpch::WorkloadGenerator;

const SEED: u64 = 42;
const ROUNDS: usize = 8; // per tenant
const TARGET_ONE_WORKER_WALL_S: f64 = 6.0;

/// Four tenants, each cycling through the paper's four query classes with
/// its own deterministic parameter stream (split seeds keep the streams
/// independent of tenant count and worker interleaving).
fn workload() -> Vec<RuntimeJob> {
    let tenants = ["hospital-A", "hospital-B", "hospital-C", "hospital-D"];
    let classes = QueryId::PAPER_SET;
    let policies = [
        QueryPolicy::balanced(),
        QueryPolicy::fastest(),
        QueryPolicy::cheapest(),
        QueryPolicy::balanced().with_money_budget(100.0),
    ];
    let mut jobs = Vec::new();
    for round in 0..ROUNDS {
        for (t, tenant) in tenants.iter().enumerate() {
            let stream = WorkloadGenerator::new(split_seed(SEED, t as u64));
            let class = classes[(round + t) % classes.len()];
            let instance = stream
                .instances(class, round + 1)
                .pop()
                .expect("non-empty stream");
            jobs.push(RuntimeJob::new(
                tenant,
                instance.query,
                policies[t % policies.len()].clone(),
            ));
        }
    }
    jobs
}

fn runtime<'a>(
    midas: &'a Midas,
    db: &'a TpchDb,
    workers: usize,
    pacing: f64,
) -> FederationRuntime<'a> {
    FederationRuntime::new(
        midas.federation(),
        midas.placement(),
        db.tables(),
        RuntimeConfig {
            workers,
            seed: SEED,
            pacing,
            ..Default::default()
        },
    )
}

fn main() {
    let sf = 0.005;
    let db = TpchDb::generate(GenConfig::new(sf, 2));
    let (midas, _, _) = Midas::example_deployment(&["lineitem", "customer"], &["orders", "part"]);
    let jobs = workload();
    let n_jobs = jobs.len();

    // Probe: one un-paced single-worker run estimates the batch's site
    // time (observed costs ≈ nominal occupancy up to load/noise factors),
    // so pacing lands the one-worker batch near TARGET_ONE_WORKER_WALL_S
    // of wall-clock. Calibration precision is irrelevant to the speedup
    // ratio — every worker count sleeps the same nominal total.
    let probe = runtime(&midas, &db, 1, 0.0).run(jobs.clone());
    assert!(probe.failed.is_empty(), "probe failures: {:?}", probe.failed);
    let sim_total_s: f64 = probe
        .completed
        .iter()
        .map(|r| r.report.actual_costs[0])
        .sum();
    let pacing = TARGET_ONE_WORKER_WALL_S / sim_total_s.max(1e-9);

    println!(
        "Runtime throughput over TPC-H sf={sf}: {n_jobs} jobs, 4 tenants, \
         {} simulated seconds of site work, pacing {pacing:.6} wall-s per sim-s\n",
        sim_total_s.round(),
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_runs: Vec<serde_json::Value> = Vec::new();
    let mut qps_by_workers: Vec<(usize, f64)> = Vec::new();
    for workers in [1usize, 2, 4] {
        let report = runtime(&midas, &db, workers, pacing).run(jobs.clone());
        assert!(
            report.failed.is_empty(),
            "failures at {workers} workers: {:?}",
            report.failed
        );
        assert_eq!(report.completed.len(), n_jobs);
        let mean_latency_s = report
            .completed
            .iter()
            .map(|r| r.wall_latency_s)
            .sum::<f64>()
            / n_jobs as f64;
        let queue_wait_s: f64 = report
            .admission
            .iter()
            .map(|(_, s)| s.total_wait_s)
            .sum();
        qps_by_workers.push((workers, report.throughput_qps));
        rows.push(vec![
            workers.to_string(),
            format!("{:.2}", report.wall_s),
            format!("{:.2}", report.throughput_qps),
            format!("{:.3}", mean_latency_s),
            format!("{:.2}", queue_wait_s),
        ]);
        json_runs.push(serde_json::json!({
            "workers": workers,
            "wall_s": report.wall_s,
            "throughput_qps": report.throughput_qps,
            "mean_latency_s": mean_latency_s,
            "admission_queue_wait_s": queue_wait_s,
            "sim_clock_s": report.sim_clock_s,
        }));
    }
    print_table(
        &["workers", "wall (s)", "qps", "mean latency (s)", "queue wait (s)"],
        &rows,
    );

    let qps_1 = qps_by_workers[0].1;
    let qps_4 = qps_by_workers.last().unwrap().1;
    let speedup = qps_4 / qps_1;
    println!("\n4-worker speedup over 1 worker: {speedup:.2}x");
    // The acceptance gate of the concurrent runtime: scripts/verify.sh runs
    // this binary, so a change that serializes the worker pool fails loudly
    // instead of silently recording a regression.
    assert!(
        speedup >= 2.0,
        "4-worker throughput regressed below the 2x gate: {speedup:.2}x"
    );

    write_json(
        "BENCH_runtime_throughput",
        &serde_json::json!({
            "scale_factor": sf,
            "jobs": n_jobs,
            "tenants": 4,
            "query_mix": ["Q12", "Q13", "Q14", "Q17"],
            "pacing_wall_s_per_sim_s": pacing,
            "unit": "completed queries per wall-clock second",
            "runs": json_runs,
            "speedup_4_workers_vs_1": speedup,
        }),
    );
    // Keep a copy at the workspace root so the perf trajectory is visible
    // in the tree across PRs.
    let root_copy = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_runtime_throughput.json");
    if let Err(e) = std::fs::copy("target/repro/BENCH_runtime_throughput.json", &root_copy) {
        eprintln!("warning: could not copy BENCH_runtime_throughput.json to repo root: {e}");
    }
}
