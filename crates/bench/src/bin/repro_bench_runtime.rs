//! Multi-worker throughput of the concurrent [`FederationRuntime`] on a
//! mixed Q12/Q13/Q14/Q17 multi-tenant workload, recorded as
//! `target/repro/BENCH_runtime_throughput.json` (and copied to the repo
//! root) so the runtime's scaling trajectory is tracked across PRs.
//!
//! Methodology: the same fixed-seed workload — four hospital tenants, each
//! with its own split-seed parameter stream — is pushed through fresh
//! runtimes at 1, 2 and 4 workers. *Nominal site occupancy* (each
//! fragment's work profile at unit load, a pure function of plan and data)
//! is dilated into wall-clock (`pacing` wall seconds per nominal simulated
//! second, calibrated from a probe run so the one-worker batch takes a few
//! seconds): while a fragment "runs" on a site it holds one of that site's
//! admission slots and the submitting worker waits, exactly as a
//! federation broker waits on a remote engine. Because the nominal base is
//! deterministic, every worker count pays the same total paced wall-clock,
//! so throughput measures what the runtime architecture actually controls
//! — how well independent tenants' queries overlap across sites under
//! per-site capacity limits — rather than raw single-core arithmetic
//! (which no worker count can multiply) or luck in how thread interleaving
//! assigns the drifting environment's noise draws (which *does* make the
//! multi-worker simulated cost totals differ run to run).
//!
//! On top of the worker sweep, the bench gates the zero-copy data plane:
//!
//! * **Catalog bytes cloned per query** must be exactly zero — catalog
//!   seeding is `Arc::clone` only (`MidasReport::catalog_cloned_bytes`).
//! * **Fragment parallelism** (independent scan fragments of one query
//!   overlapping under their site permits) must deliver a measurable qps
//!   gain at a fixed worker count, while a one-worker run stays
//!   *bit-for-bit* identical to the serial-fragment run — parallel
//!   fragments overlap wall-clock, never simulation.
//!
//! The default Hive↔PostgreSQL placement is engine-asymmetric (the
//! PostgreSQL scan is nearly free next to Hive's startup), so the overlap
//! window there is small by construction; its speedup is recorded but the
//! gate runs on a *balanced* placement (Hive on both sites), where the two
//! scan fragments have comparable occupancy and overlapping them is worth
//! tens of percent.
//!
//! A second record, `target/repro/BENCH_ingest_throughput.json` (also
//! copied to the repo root), measures the *streaming* half: the same
//! tenant mix submitted through the live `Ingress` while hospital delta
//! batches publish new copy-on-write catalog versions mid-flight. Its
//! gates: every append carries the prior chunks forward as shared `Arc`
//! bytes, pin-time compaction is paid **at most once per version**
//! (repeated pins never re-pay it), and — with 4 workers and parallel
//! fragments on — every query's result is **bit-identical** to executing
//! it alone against the catalog version it pinned at admission (snapshot
//! isolation), with catalog bytes cloned still 0.

use midas::runtime::{FederationRuntime, RuntimeConfig, RuntimeJob, RuntimeReport};
use midas::{Midas, QueryPolicy};
use midas_bench::{print_table, write_json};
use midas_cloud::Federation;
use midas_engines::sim::split_seed;
use midas_engines::{EngineKind, Placement};
use midas_tpch::gen::{GenConfig, TpchDb};
use midas_tpch::queries::QueryId;
use midas_tpch::stream::{streaming_workload, StreamEvent, StreamSpec};
use midas_tpch::WorkloadGenerator;

const SEED: u64 = 42;
const ROUNDS: usize = 8; // per tenant
const TARGET_ONE_WORKER_WALL_S: f64 = 6.0;

/// Four tenants, each cycling through the paper's four query classes with
/// its own deterministic parameter stream (split seeds keep the streams
/// independent of tenant count and worker interleaving).
fn workload() -> Vec<RuntimeJob> {
    let tenants = ["hospital-A", "hospital-B", "hospital-C", "hospital-D"];
    let classes = QueryId::PAPER_SET;
    let policies = [
        QueryPolicy::balanced(),
        QueryPolicy::fastest(),
        QueryPolicy::cheapest(),
        QueryPolicy::balanced().with_money_budget(100.0),
    ];
    let mut jobs = Vec::new();
    for round in 0..ROUNDS {
        for (t, tenant) in tenants.iter().enumerate() {
            let stream = WorkloadGenerator::new(split_seed(SEED, t as u64));
            let class = classes[(round + t) % classes.len()];
            let instance = stream
                .instances(class, round + 1)
                .pop()
                .expect("non-empty stream");
            jobs.push(RuntimeJob::new(
                tenant,
                instance.query,
                policies[t % policies.len()].clone(),
            ));
        }
    }
    jobs
}

fn runtime<'a>(
    midas: &'a Midas,
    db: &TpchDb,
    workers: usize,
    pacing: f64,
    parallel_fragments: bool,
    partition_degree: usize,
) -> FederationRuntime<'a> {
    FederationRuntime::new(
        midas.federation(),
        midas.placement(),
        db.catalog().clone(),
        RuntimeConfig {
            workers,
            seed: SEED,
            pacing,
            parallel_fragments,
            partition_degree,
            // This bench measures execution-path scaling: repeated queries
            // must recompute, not hit the result cache (repro_bench_cache
            // covers the cached path).
            fragment_cache_bytes: 0,
            plan_cache_bytes: 0,
            ..Default::default()
        },
    )
}

/// Total base-table bytes deep-copied into per-query catalogs across the
/// batch — the zero-copy gate.
fn cloned_bytes(report: &RuntimeReport) -> u64 {
    report
        .completed
        .iter()
        .map(|r| r.report.catalog_cloned_bytes)
        .sum()
}

/// Fragment-parallel speedup on a *balanced* placement (Hive everywhere):
/// one worker, serial vs parallel fragments, with its own pacing probe
/// targeting `target_wall_s` for the serial run. Returns
/// `(serial qps, parallel qps)`.
fn balanced_fragment_runs(
    federation: &Federation,
    db: &TpchDb,
    jobs: &[RuntimeJob],
    target_wall_s: f64,
) -> (f64, f64) {
    let mut placement = Placement::new();
    let sites: Vec<_> = federation.site_ids().collect();
    let (a, b) = (sites[0], sites[1]);
    for table in ["lineitem", "customer"] {
        placement.place(table, a, EngineKind::Hive);
    }
    for table in ["orders", "part"] {
        placement.place(table, b, EngineKind::Hive);
    }
    let runtime = |pacing: f64, parallel: bool| {
        FederationRuntime::new(
            federation,
            &placement,
            db.catalog().clone(),
            RuntimeConfig {
                workers: 1,
                seed: SEED,
                pacing,
                parallel_fragments: parallel,
                // Overlap gate: every fragment must actually execute.
                fragment_cache_bytes: 0,
                plan_cache_bytes: 0,
                ..Default::default()
            },
        )
    };
    let probe = runtime(0.0, false).run(jobs.to_vec());
    assert!(probe.failed.is_empty(), "balanced probe: {:?}", probe.failed);
    let sim_total_s: f64 = probe
        .completed
        .iter()
        .map(|r| r.report.actual_costs[0])
        .sum();
    let pacing = target_wall_s / sim_total_s.max(1e-9);
    let serial = runtime(pacing, false).run(jobs.to_vec());
    let parallel = runtime(pacing, true).run(jobs.to_vec());
    assert!(serial.failed.is_empty() && parallel.failed.is_empty());
    assert_eq!(cloned_bytes(&serial) + cloned_bytes(&parallel), 0);
    (serial.throughput_qps, parallel.throughput_qps)
}

/// The streaming-ingest bench: the four-hospital Q12–Q17 tape with delta
/// batches spliced in every third query, consumed by a 4-worker
/// fragment-parallel runtime through the live [`Ingress`] while the
/// producer keeps submitting. Gates:
///
/// * **appends share, pins compact once** — appending a delta chunk
///   `Arc`-shares every prior chunk's bytes, and the chunk-merge cost of
///   pinning a multi-chunk version is paid at most once per version
///   (repeated pins of the same version return the cached snapshot);
/// * **snapshot isolation, bit-for-bit** — with ≥ 2 workers and parallel
///   fragments, every completed query's result fingerprint equals its
///   standalone execution against the exact catalog version it pinned at
///   admission;
/// * **catalog bytes cloned per query == 0** — version pinning keeps the
///   zero-copy seeding path intact.
///
/// Returns the JSON blob recorded as `BENCH_ingest_throughput.json`.
///
/// [`Ingress`]: midas::runtime::Ingress
fn ingest_bench(midas: &Midas, db: &TpchDb, target_wall_s: f64) -> serde_json::Value {
    let spec = StreamSpec::hospitals(SEED, 6);
    let tape = streaming_workload(db, &spec);
    let policies = [
        QueryPolicy::balanced(),
        QueryPolicy::fastest(),
        QueryPolicy::cheapest(),
        QueryPolicy::balanced().with_money_budget(100.0),
    ];
    let policy_of = |tenant: &str| {
        let t = spec
            .tenants
            .iter()
            .position(|name| name == tenant)
            .expect("tape tenant is in the spec");
        policies[t % policies.len()].clone()
    };
    let runtime = |workers: usize, pacing: f64| {
        FederationRuntime::new(
            midas.federation(),
            midas.placement(),
            db.catalog().clone(),
            RuntimeConfig {
                workers,
                seed: SEED,
                pacing,
                parallel_fragments: true,
                // The snapshot-isolation gate replays each query against the
                // exact `CatalogVersion` it pinned, so keep the handles.
                retain_pinned_snapshots: true,
                // Ingest qps with every query recomputing (the cached path
                // has its own bench + gates in repro_bench_cache).
                fragment_cache_bytes: 0,
                plan_cache_bytes: 0,
                ..Default::default()
            },
        )
    };
    let drive = |rt: &FederationRuntime<'_>, with_ingest: bool| {
        let mut queries = Vec::new();
        let ((), report) = rt.serve(|ingress| {
            for event in &tape {
                match event {
                    StreamEvent::Query { tenant, query, .. } => {
                        queries.push((**query).clone());
                        ingress.submit(RuntimeJob::new(
                            tenant,
                            (**query).clone(),
                            policy_of(tenant),
                        ));
                    }
                    StreamEvent::Ingest { deltas, .. } if with_ingest => {
                        let receipt = ingress
                            .ingest_batch(deltas.clone())
                            .expect("delta batches share the base schema");
                        assert!(
                            receipt.stats.shared_bytes > 0,
                            "append failed to Arc-share prior-chunk bytes"
                        );
                    }
                    StreamEvent::Ingest { .. } => {}
                }
            }
        });
        assert!(report.failed.is_empty(), "failures: {:?}", report.failed);
        assert_eq!(report.completed.len(), queries.len());
        (queries, report)
    };

    // Probe (unpaced, 1 worker, no ingest) calibrates pacing so the
    // streaming runs take a few wall seconds, as in the worker sweep.
    let probe = drive(&runtime(1, 0.0), false).1;
    let sim_total_s: f64 = probe
        .completed
        .iter()
        .map(|r| r.report.actual_costs[0])
        .sum();
    let pacing = target_wall_s / sim_total_s.max(1e-9);

    let baseline = drive(&runtime(4, pacing), false).1;
    let rt = runtime(4, pacing);
    let (queries, streamed) = drive(&rt, true);

    // Gate: the copy-on-write claim, measured across every append.
    let ingest = streamed.ingest;
    assert!(ingest.appends > 0 && ingest.rows_ingested > 0);
    assert!(
        ingest.bytes_shared > 0,
        "copy-on-write appends carried no prior-chunk bytes forward"
    );

    // Gate: snapshot isolation under real concurrency — every result is
    // bit-identical to standalone execution on its pinned version — and
    // pin-time compaction is paid once per version, not once per pin.
    let mut max_version = 0;
    let mut compaction_bytes_max_version = 0;
    for r in &streamed.completed {
        let pinned = r
            .pinned
            .as_ref()
            .expect("retain_pinned_snapshots is on for this runtime");
        let first_compaction = pinned.compaction_bytes();
        let expected = queries[r.sequence]
            .standalone_fingerprint(&pinned.pin())
            .expect("standalone oracle executes");
        assert_eq!(
            pinned.compaction_bytes(),
            first_compaction,
            "{}: re-pinning v{} re-paid compaction",
            r.report.label,
            r.pinned_version()
        );
        assert_eq!(
            r.report.result_fingerprint,
            expected,
            "{}: snapshot isolation violated at pinned v{}",
            r.report.label,
            r.pinned_version()
        );
        assert_eq!(r.report.catalog_cloned_bytes, 0, "{}", r.report.label);
        if r.pinned_version() > max_version {
            max_version = r.pinned_version();
            compaction_bytes_max_version = first_compaction;
        }
    }
    assert!(
        max_version > 0,
        "no job admitted after an ingest — the tape did not interleave"
    );

    println!(
        "\ningest stream: {} queries + {} delta batches ({} rows), \
         {:.2} qps under ingest vs {:.2} qps frozen, {} versions, \
         compaction paid once per version",
        streamed.completed.len(),
        ingest.versions_published,
        ingest.rows_ingested,
        streamed.throughput_qps,
        baseline.throughput_qps,
        streamed.catalog_version,
    );

    serde_json::json!({
        "workers": 4,
        "parallel_fragments": true,
        "jobs": streamed.completed.len(),
        "ingest_batches": ingest.versions_published,
        "rows_ingested": ingest.rows_ingested,
        "bytes_ingested": ingest.bytes_ingested,
        "bytes_shared_per_append": ingest.bytes_shared.checked_div(ingest.appends).unwrap_or(0),
        "compaction_bytes_max_version": compaction_bytes_max_version,
        "pacing_wall_s_per_sim_s": pacing,
        "throughput_qps_under_ingest": streamed.throughput_qps,
        "throughput_qps_frozen_catalog": baseline.throughput_qps,
        "catalog_versions_published": streamed.catalog_version,
        "max_pinned_version": max_version,
        "snapshot_isolation": "bit-for-bit",
        "unit": "completed queries per wall-clock second",
    })
}

fn main() {
    let sf = 0.005;
    let db = TpchDb::generate(GenConfig::new(sf, 2));
    let (midas, _, _) = Midas::example_deployment(&["lineitem", "customer"], &["orders", "part"]);
    let jobs = workload();
    let n_jobs = jobs.len();

    // Probe: one un-paced single-worker run estimates the batch's site
    // time (observed costs ≈ nominal occupancy up to load/noise factors),
    // so pacing lands the one-worker batch near TARGET_ONE_WORKER_WALL_S
    // of wall-clock. Calibration precision is irrelevant to the speedup
    // ratio — every worker count sleeps the same nominal total.
    let probe = runtime(&midas, &db, 1, 0.0, false, 1).run(jobs.clone());
    assert!(probe.failed.is_empty(), "probe failures: {:?}", probe.failed);
    let sim_total_s: f64 = probe
        .completed
        .iter()
        .map(|r| r.report.actual_costs[0])
        .sum();
    let pacing = TARGET_ONE_WORKER_WALL_S / sim_total_s.max(1e-9);

    println!(
        "Runtime throughput over TPC-H sf={sf}: {n_jobs} jobs, 4 tenants, \
         {} simulated seconds of site work, pacing {pacing:.6} wall-s per sim-s\n",
        sim_total_s.round(),
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_runs: Vec<serde_json::Value> = Vec::new();
    let mut qps: Vec<(usize, bool, usize, f64)> = Vec::new();
    // Every 1-worker variant (serial fragments, parallel fragments,
    // partitioned operators) must report bit-identical simulated costs.
    let mut one_worker_costs: Vec<Vec<Vec<f64>>> = Vec::new();
    let mut total_cloned = 0u64;
    let sweep = [
        (1, false, 1),
        (2, false, 1),
        (4, false, 1),
        (1, true, 1),
        (4, true, 1),
        // Intra-fragment partitioned join/aggregation, alone and composed
        // with wave parallelism at full worker count.
        (1, false, 4),
        (4, true, 4),
    ];
    for (workers, parallel, degree) in sweep {
        let report = runtime(&midas, &db, workers, pacing, parallel, degree).run(jobs.clone());
        assert!(
            report.failed.is_empty(),
            "failures at {workers} workers (parallel={parallel}, degree={degree}): {:?}",
            report.failed
        );
        assert_eq!(report.completed.len(), n_jobs);
        let mean_latency_s = report
            .completed
            .iter()
            .map(|r| r.wall_latency_s)
            .sum::<f64>()
            / n_jobs as f64;
        let queue_wait_s: f64 = report
            .admission
            .iter()
            .map(|(_, s)| s.total_wait_s)
            .sum();
        let run_cloned = cloned_bytes(&report);
        total_cloned += run_cloned;
        if workers == 1 {
            one_worker_costs.push(
                report
                    .completed
                    .iter()
                    .map(|r| r.report.actual_costs.clone())
                    .collect(),
            );
        }
        qps.push((workers, parallel, degree, report.throughput_qps));
        rows.push(vec![
            workers.to_string(),
            if parallel { "yes" } else { "no" }.to_string(),
            degree.to_string(),
            format!("{:.2}", report.wall_s),
            format!("{:.2}", report.throughput_qps),
            format!("{:.3}", mean_latency_s),
            format!("{:.2}", queue_wait_s),
            run_cloned.to_string(),
        ]);
        json_runs.push(serde_json::json!({
            "workers": workers,
            "parallel_fragments": parallel,
            "partition_degree": degree,
            "wall_s": report.wall_s,
            "throughput_qps": report.throughput_qps,
            "mean_latency_s": mean_latency_s,
            "admission_queue_wait_s": queue_wait_s,
            "sim_clock_s": report.sim_clock_s,
            "catalog_cloned_bytes": run_cloned,
        }));
    }
    print_table(
        &[
            "workers",
            "frag-par",
            "part-deg",
            "wall (s)",
            "qps",
            "mean latency (s)",
            "queue wait (s)",
            "bytes cloned",
        ],
        &rows,
    );

    // Zero-copy gate: catalog seeding must never deep-copy a base table.
    assert_eq!(
        total_cloned, 0,
        "base tables were deep-copied into per-query catalogs"
    );

    // One-worker parity gate: neither fragment parallelism nor partitioned
    // operators may perturb a single-worker run's simulated outcomes by a
    // single bit.
    assert_eq!(one_worker_costs.len(), 3);
    assert_eq!(
        one_worker_costs[0], one_worker_costs[1],
        "parallel fragments changed 1-worker simulated costs"
    );
    assert_eq!(
        one_worker_costs[0], one_worker_costs[2],
        "partitioned join/aggregation changed 1-worker simulated costs"
    );

    let find = |w: usize, p: bool, d: usize| {
        qps.iter()
            .find(|&&(workers, parallel, degree, _)| {
                workers == w && parallel == p && degree == d
            })
            .expect("run recorded")
            .3
    };
    let speedup = find(4, false, 1) / find(1, false, 1);
    println!("\n4-worker speedup over 1 worker: {speedup:.2}x");
    // The acceptance gate of the concurrent runtime: scripts/verify.sh runs
    // this binary, so a change that serializes the worker pool fails loudly
    // instead of silently recording a regression.
    assert!(
        speedup >= 2.0,
        "4-worker throughput regressed below the 2x gate: {speedup:.2}x"
    );

    // Intra-query parallelism on the default (engine-asymmetric)
    // placement: recorded for the trajectory; the overlap window is small
    // because the PostgreSQL scan is nearly free next to Hive's startup.
    let frag_speedup_1w = find(1, true, 1) / find(1, false, 1);
    let frag_speedup_4w = find(4, true, 1) / find(4, false, 1);
    println!(
        "fragment-parallel speedup (asymmetric placement): {frag_speedup_1w:.2}x \
         at 1 worker, {frag_speedup_4w:.2}x at 4 workers"
    );

    // The gated measurement: with comparable scan occupancies (Hive on
    // both sites), overlapping a query's independent fragments must be
    // worth a solid double-digit percentage.
    let (balanced_serial_qps, balanced_parallel_qps) =
        balanced_fragment_runs(midas.federation(), &db, &jobs, 4.0);
    let frag_speedup_balanced = balanced_parallel_qps / balanced_serial_qps;
    println!("fragment-parallel speedup (balanced placement): {frag_speedup_balanced:.2}x");
    assert!(
        frag_speedup_balanced >= 1.15,
        "parallel fragments regressed below the 1.15x balanced gate: \
         {frag_speedup_balanced:.2}x"
    );

    // Streaming ingest: the live-data half of the runtime, recorded (and
    // gated) separately as BENCH_ingest_throughput.json.
    let ingest_json = ingest_bench(&midas, &db, 3.0);
    write_json("BENCH_ingest_throughput", &ingest_json);

    write_json(
        "BENCH_runtime_throughput",
        &serde_json::json!({
            "scale_factor": sf,
            "jobs": n_jobs,
            "tenants": 4,
            "query_mix": ["Q12", "Q13", "Q14", "Q17"],
            "pacing_wall_s_per_sim_s": pacing,
            "unit": "completed queries per wall-clock second",
            "runs": json_runs,
            "speedup_4_workers_vs_1": speedup,
            "fragment_parallel_speedup_1_worker": frag_speedup_1w,
            "fragment_parallel_speedup_4_workers": frag_speedup_4w,
            "partition_degree_4_qps_1_worker": find(1, false, 4),
            "partition_degree_4_qps_4_workers_parallel": find(4, true, 4),
            "one_worker_partition_parity": "bit-for-bit",
            "fragment_parallel_speedup_balanced_placement": frag_speedup_balanced,
            "catalog_cloned_bytes_per_query": total_cloned as f64 / (sweep.len() * n_jobs) as f64,
            "one_worker_parallel_parity": "bit-for-bit",
        }),
    );
    // Keep copies at the workspace root so the perf trajectories are
    // visible in the tree across PRs.
    for name in ["BENCH_runtime_throughput", "BENCH_ingest_throughput"] {
        let root_copy = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(format!("{name}.json"));
        if let Err(e) = std::fs::copy(format!("target/repro/{name}.json"), &root_copy) {
            eprintln!("warning: could not copy {name}.json to repo root: {e}");
        }
    }
}
