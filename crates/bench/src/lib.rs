//! # midas-bench
//!
//! Criterion benchmarks plus the `repro_*` binaries that regenerate every
//! table and figure of the paper. This tiny library holds the shared
//! formatting/reporting helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

pub use report::{print_table, write_json};
