//! Property-based tests for the MLR core and Algorithm 1.

use midas_dream::{
    estimate_cost_value, mlr, DreamConfig, History, SolveMethod,
};
use proptest::prelude::*;

/// Strategy: a well-conditioned regression problem with L features and
/// M >= L+2 rows, plus true coefficients.
fn regression_problem() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>, Vec<f64>)> {
    (1usize..4).prop_flat_map(|l| {
        let m = (l + 2)..24usize;
        m.prop_flat_map(move |m| {
            (
                proptest::collection::vec(
                    proptest::collection::vec(-10.0..10.0f64, l),
                    m,
                ),
                proptest::collection::vec(-5.0..5.0f64, l + 1),
            )
                .prop_map(|(feats, coefs)| {
                    let targets: Vec<f64> = feats
                        .iter()
                        .map(|row| {
                            coefs[0]
                                + row
                                    .iter()
                                    .zip(&coefs[1..])
                                    .map(|(x, b)| x * b)
                                    .sum::<f64>()
                        })
                        .collect();
                    (feats, coefs, targets)
                })
        })
    })
}

proptest! {
    /// On noise-free linear data the fit is exact: R² = 1 (unless the target
    /// is ~constant, where our convention still yields 1 on an exact fit) and
    /// predictions reproduce the generating function.
    #[test]
    fn exact_fit_on_linear_data((feats, coefs, targets) in regression_problem()) {
        let refs: Vec<&[f64]> = feats.iter().map(|r| r.as_slice()).collect();
        if let Ok(model) = mlr::fit(&refs, &targets, SolveMethod::Qr) {
            prop_assert!(model.r_squared > 1.0 - 1e-6,
                "R² = {} on noise-free data", model.r_squared);
            // Spot-check a prediction at a fresh point.
            let probe: Vec<f64> = (0..feats[0].len()).map(|i| 0.5 + i as f64).collect();
            let want = coefs[0] + probe.iter().zip(&coefs[1..]).map(|(x, b)| x * b).sum::<f64>();
            let got = model.predict(&probe).unwrap();
            prop_assert!((got - want).abs() < 1e-4 * (1.0 + want.abs()),
                "predict {} vs true {}", got, want);
        }
    }

    /// R² never exceeds 1 (by definition 1 - SSE/SST with SSE >= 0) on any
    /// data, noisy or not.
    #[test]
    fn r_squared_at_most_one(
        feats in proptest::collection::vec(proptest::collection::vec(-100.0..100.0f64, 2), 4..20),
        noise in proptest::collection::vec(-50.0..50.0f64, 20),
    ) {
        let refs: Vec<&[f64]> = feats.iter().map(|r| r.as_slice()).collect();
        let targets: Vec<f64> = feats.iter().enumerate()
            .map(|(i, r)| r[0] - r[1] + noise[i % noise.len()])
            .collect();
        if let Ok(model) = mlr::fit(&refs, &targets, SolveMethod::NormalEquations) {
            prop_assert!(model.r_squared <= 1.0 + 1e-9);
            prop_assert!(model.sse >= -1e-9);
            prop_assert!(model.sst >= -1e-9);
        }
    }

    /// The two solvers agree on well-conditioned problems.
    #[test]
    fn solvers_agree((feats, _coefs, mut targets) in regression_problem()) {
        // Perturb targets so the problem is not exactly singular-friendly.
        for (i, t) in targets.iter_mut().enumerate() {
            *t += (i as f64 * 0.7).sin() * 0.1;
        }
        let refs: Vec<&[f64]> = feats.iter().map(|r| r.as_slice()).collect();
        let ne = mlr::fit(&refs, &targets, SolveMethod::NormalEquations);
        let qr = mlr::fit(&refs, &targets, SolveMethod::Qr);
        if let (Ok(a), Ok(b)) = (ne, qr) {
            // Compare fitted values rather than raw coefficients: collinear
            // designs admit many coefficient vectors with identical fits.
            let probe: Vec<f64> = feats[0].clone();
            let pa = a.predict(&probe).unwrap();
            let pb = b.predict(&probe).unwrap();
            let scale = 1.0 + pa.abs().max(pb.abs());
            prop_assert!((pa - pb).abs() / scale < 1e-3, "{} vs {}", pa, pb);
        }
    }

    /// Algorithm 1 invariants: the window is within [L+2, min(Mmax, M)], and
    /// when `satisfied` every metric's R² meets the requirement.
    #[test]
    fn dream_window_invariants(
        n_obs in 6usize..60,
        m_max in 4usize..80,
        r2_req in 0.0..1.0f64,
        seed in 0u64..1000,
    ) {
        let mut h = History::new(1, 1);
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
        for i in 0..n_obs {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            let noise = ((s % 2000) as f64 / 1000.0) - 1.0;
            h.record(&[i as f64], &[3.0 + 0.5 * i as f64 + noise]).unwrap();
        }
        let cfg = DreamConfig {
            r2_required: vec![r2_req],
            m_max,
            ..DreamConfig::uniform(r2_req, 1, m_max)
        };
        if h.len() >= h.minimum_window() {
            let out = estimate_cost_value(&h, &cfg).unwrap();
            prop_assert!(out.window >= h.minimum_window());
            prop_assert!(out.window <= m_max.max(h.minimum_window()));
            prop_assert!(out.window <= h.len());
            if out.satisfied {
                for model in &out.models {
                    prop_assert!(model.r_squared >= r2_req - 1e-12);
                }
            }
        }
    }

    /// DREAM is idempotent: re-running on the same history yields the same
    /// window and coefficients (determinism requirement of the trait).
    #[test]
    fn dream_is_deterministic(n_obs in 6usize..40, seed in 0u64..500) {
        let mut h = History::new(1, 1);
        let mut s = seed | 1;
        for i in 0..n_obs {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            let noise = ((s % 2000) as f64 / 1000.0) - 1.0;
            h.record(&[i as f64], &[2.0 * i as f64 + noise]).unwrap();
        }
        let cfg = DreamConfig::uniform(0.9, 1, 30);
        let a = estimate_cost_value(&h, &cfg).unwrap();
        let b = estimate_cost_value(&h, &cfg).unwrap();
        prop_assert_eq!(a.window, b.window);
        prop_assert_eq!(a.models[0].coefficients.clone(), b.models[0].coefficients.clone());
    }
}
