//! Exact reproduction of the paper's Table 2.
//!
//! Table 2 ("Using MLR in different size of dataset") lists a 10-observation,
//! 2-variable dataset and the R² of the MLR fitted on the first M rows for
//! M = 4..10. The paper prints R² to four decimals; our fit must match every
//! row to that rounding. This is the one *deterministic* oracle the paper
//! provides for the estimation core, so it doubles as the acceptance test for
//! `midas_dream::mlr`.

use midas_dream::mlr::{fit, SolveMethod};

/// (cost, x1, x2) — copied verbatim from Table 2.
const TABLE2_DATA: [(f64, f64, f64); 10] = [
    (20.640, 0.4916, 0.2977),
    (15.557, 0.6313, 0.0482),
    (20.971, 0.9481, 0.8232),
    (24.878, 0.4855, 2.7056),
    (23.274, 0.0125, 2.7268),
    (30.216, 0.9029, 2.6456),
    (29.978, 0.7233, 3.0640),
    (31.702, 0.8749, 4.2847),
    (20.860, 0.3354, 2.1082),
    (32.836, 0.8521, 4.8217),
];

/// (M, R²) — the right-hand columns of Table 2.
const TABLE2_R2: [(usize, f64); 7] = [
    (4, 0.7571),
    (5, 0.7705),
    (6, 0.8371),
    (7, 0.8788),
    (8, 0.8876),
    (9, 0.8751),
    (10, 0.8945),
];

fn r2_for_prefix(m: usize, method: SolveMethod) -> f64 {
    let rows: Vec<Vec<f64>> = TABLE2_DATA[..m].iter().map(|(_, a, b)| vec![*a, *b]).collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let targets: Vec<f64> = TABLE2_DATA[..m].iter().map(|(c, _, _)| *c).collect();
    fit(&refs, &targets, method).expect("Table 2 prefixes are full rank").r_squared
}

#[test]
fn table2_r2_matches_paper_normal_equations() {
    for &(m, expected) in &TABLE2_R2 {
        let r2 = r2_for_prefix(m, SolveMethod::NormalEquations);
        assert!(
            (r2 - expected).abs() < 5.5e-4,
            "M={m}: computed R²={r2:.4}, paper says {expected:.4}"
        );
    }
}

#[test]
fn table2_r2_matches_paper_qr() {
    for &(m, expected) in &TABLE2_R2 {
        let r2 = r2_for_prefix(m, SolveMethod::Qr);
        assert!(
            (r2 - expected).abs() < 5.5e-4,
            "M={m}: computed R²={r2:.4}, paper says {expected:.4}"
        );
    }
}

#[test]
fn table2_r2_is_mostly_increasing_in_m() {
    // The paper's observation: "In general, R² increases in parallel with M"
    // — with the single dip at M=9 present in their data too.
    let r2s: Vec<f64> = TABLE2_R2
        .iter()
        .map(|&(m, _)| r2_for_prefix(m, SolveMethod::NormalEquations))
        .collect();
    let increases = r2s.windows(2).filter(|w| w[1] > w[0]).count();
    assert!(increases >= 5, "expected a broadly increasing R² series");
    // And the paper's headline: R² crosses 0.8 at M = 6.
    assert!(r2s[1] < 0.8 && r2s[2] >= 0.8);
}

#[test]
fn table2_smallest_dataset_rule() {
    // M = L + 2 = 4 is fittable, M = 3 is not.
    let rows: Vec<Vec<f64>> = TABLE2_DATA[..3].iter().map(|(_, a, b)| vec![*a, *b]).collect();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let targets: Vec<f64> = TABLE2_DATA[..3].iter().map(|(c, _, _)| *c).collect();
    assert!(fit(&refs, &targets, SolveMethod::NormalEquations).is_err());
}
