//! Scenario tests for Algorithm 1: the behaviours the paper sells,
//! exercised end to end on synthetic histories with known structure.

use midas_dream::{
    estimate_cost_value, estimate_cost_value_incremental, CostEstimator, DreamConfig,
    DreamEstimator, GrowthPolicy, History, SolveMethod,
};

/// Deterministic pseudo-noise in [-a, a].
fn noise(i: usize, a: f64) -> f64 {
    let mut s = (i as u64).wrapping_mul(0x9e3779b97f4a7c15) | 1;
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    ((s % 2000) as f64 / 1000.0 - 1.0) * a
}

/// A history with one regime shift at `shift`: slope doubles, intercept
/// jumps. Observations after the shift are the "fresh" regime.
fn shifted_history(n: usize, shift: usize) -> History {
    let mut h = History::new(1, 1);
    for i in 0..n {
        let x = (i % 13) as f64 * 2.0;
        let y = if i < shift {
            20.0 + 1.0 * x
        } else {
            5.0 + 2.0 * x
        } + noise(i, 0.2);
        h.record(&[x], &[y]).expect("arity");
    }
    h
}

#[test]
fn recovers_the_fresh_regime_right_after_a_shift() {
    // 50 old-regime points, 8 fresh ones: the fitted model must describe
    // the fresh regime, not the 50-point-deep stale one.
    let h = shifted_history(58, 50);
    let cfg = DreamConfig::uniform(0.8, 1, 40);
    let out = estimate_cost_value(&h, &cfg).expect("fits");
    let pred = out.predict(&[10.0]).expect("fitted")[0];
    let fresh_truth = 5.0 + 2.0 * 10.0;
    let stale_truth = 20.0 + 1.0 * 10.0;
    assert!(
        (pred - fresh_truth).abs() < (pred - stale_truth).abs(),
        "prediction {pred} is closer to the stale regime"
    );
    assert!(out.window <= 8, "window {} reaches into the old regime", out.window);
}

#[test]
fn exploits_long_stability_when_noise_demands_it() {
    // Stationary but noisy: a strict R² requirement forces a window well
    // beyond the minimum, averaging the noise down.
    let mut h = History::new(1, 1);
    for i in 0..60 {
        let x = (i % 11) as f64;
        h.record(&[x], &[3.0 + 4.0 * x + noise(i, 2.0)]).expect("arity");
    }
    let loose = DreamConfig::uniform(0.5, 1, 60);
    let strict = DreamConfig::uniform(0.995, 1, 60);
    let out_loose = estimate_cost_value(&h, &loose).expect("fits");
    let out_strict = estimate_cost_value(&h, &strict).expect("fits");
    assert!(
        out_strict.window > out_loose.window,
        "strict requirement should demand more data: {} vs {}",
        out_strict.window,
        out_loose.window
    );
}

#[test]
fn per_metric_requirements_gate_jointly() {
    // Metric 0 is clean, metric 1 is pure noise: the joint gate can only be
    // satisfied when metric 1's requirement is trivial.
    let mut h = History::new(1, 2);
    for i in 0..40 {
        let x = (i % 9) as f64;
        h.record(&[x], &[1.0 + 2.0 * x, noise(i, 5.0)]).expect("arity");
    }
    let strict_both = DreamConfig {
        r2_required: vec![0.9, 0.9],
        ..DreamConfig::uniform(0.9, 2, 30)
    };
    let strict_one = DreamConfig {
        r2_required: vec![0.9, -f64::INFINITY],
        ..DreamConfig::uniform(0.9, 2, 30)
    };
    let both = estimate_cost_value(&h, &strict_both).expect("fits");
    let one = estimate_cost_value(&h, &strict_one).expect("fits");
    assert!(!both.satisfied, "noise metric cannot reach 0.9");
    assert!(one.satisfied, "trivial requirement on the noise metric passes");
    assert!(one.window <= both.window);
}

#[test]
fn m_max_bounds_work_even_with_doubling_growth() {
    let h = shifted_history(100, 0);
    for growth in [GrowthPolicy::Increment, GrowthPolicy::Doubling] {
        let cfg = DreamConfig {
            growth,
            ..DreamConfig::uniform(0.99999, 1, 17)
        };
        let out = estimate_cost_value(&h, &cfg).expect("fits");
        assert!(out.window <= 17, "{growth:?} exceeded Mmax: {}", out.window);
    }
}

#[test]
fn incremental_and_reference_agree_on_the_shift_scenario() {
    let h = shifted_history(58, 50);
    let cfg = DreamConfig::uniform(0.8, 1, 40);
    let a = estimate_cost_value(&h, &cfg).expect("fits");
    let b = estimate_cost_value_incremental(&h, &cfg).expect("fits");
    assert_eq!(a.window, b.window);
    assert_eq!(a.satisfied, b.satisfied);
}

#[test]
fn estimator_refit_tracks_new_observations() {
    let mut h = shifted_history(50, 50); // old regime only so far
    let mut est = DreamEstimator::new(DreamConfig::uniform(0.8, 1, 30));
    est.fit(&h).expect("fits");
    let before = est.predict(&[10.0]).expect("fitted")[0];
    // Fresh regime arrives; refit must move the prediction.
    for i in 50..60 {
        let x = (i % 13) as f64 * 2.0;
        h.record(&[x], &[5.0 + 2.0 * x + noise(i, 0.2)]).expect("arity");
    }
    est.fit(&h).expect("fits");
    let after = est.predict(&[10.0]).expect("fitted")[0];
    assert!((after - 25.0).abs() < 2.0, "after-refit prediction {after}");
    assert!((before - 30.0).abs() < 2.0, "before-refit prediction {before}");
}

#[test]
fn ridge_and_normal_equations_agree_on_well_conditioned_windows() {
    let h = shifted_history(40, 0);
    let ne = DreamConfig::uniform(0.8, 1, 30);
    let ridge = DreamConfig {
        solver: SolveMethod::Ridge(1e-6),
        ..DreamConfig::uniform(0.8, 1, 30)
    };
    let a = estimate_cost_value(&h, &ne).expect("fits");
    let b = estimate_cost_value(&h, &ridge).expect("fits");
    let pa = a.predict(&[7.0]).expect("fitted")[0];
    let pb = b.predict(&[7.0]).expect("fitted")[0];
    assert!((pa - pb).abs() < 0.05 * (1.0 + pa.abs()), "{pa} vs {pb}");
}

#[test]
fn rounds_accounting_matches_growth_policy() {
    let mut h = History::new(1, 1);
    for i in 0..34 {
        h.record(&[(i % 5) as f64], &[noise(i, 10.0)]).expect("arity");
    }
    // Unsatisfiable: walks every window up to Mmax.
    let inc = DreamConfig::uniform(0.99999, 1, 32);
    let out = estimate_cost_value(&h, &inc).expect("fits");
    // m = 3..=32 inclusive: minimum is L+2 = 3, so 30 rounds.
    assert_eq!(out.rounds, 30);
    let dbl = DreamConfig {
        growth: GrowthPolicy::Doubling,
        ..inc
    };
    let out = estimate_cost_value(&h, &dbl).expect("fits");
    // m = 3, 6, 12, 24, 32: 5 rounds.
    assert_eq!(out.rounds, 5);
}
