//! Multiple Linear Regression — the model family of paper Section 2.5.
//!
//! The fitted equation is `ĉ = β̂₀ + β̂₁x₁ + … + β̂_Lx_L` (Eq. 6). The paper
//! solves the normal equations `B = (AᵀA)⁻¹AᵀC` (Eq. 12); we factor `AᵀA`
//! with Cholesky (it is SPD for full-rank designs), fall back to a tiny ridge
//! regularizer when the design is rank-deficient, and also expose a
//! Householder-QR path for the solver ablation.

use crate::estimator::EstimationError;
use midas_linalg::{qr::QrDecomposition, stats, Cholesky, Matrix};
use serde::{Deserialize, Serialize};

/// Which numeric route computes the least-squares coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum SolveMethod {
    /// The paper's Eq. 12: Cholesky on the Gram matrix, with a `1e-8` ridge
    /// retry when the design matrix is rank-deficient.
    #[default]
    NormalEquations,
    /// Householder QR on the design matrix itself — numerically safer for
    /// ill-conditioned designs, ~2x the flops.
    Qr,
    /// Ridge regression on *standardized* features with penalty `λ·m`.
    ///
    /// Execution histories in a slowly-evolving federation are locally
    /// collinear (all table sizes grow together within a short window), so
    /// unregularized slopes can explode and extrapolate to absurd costs at
    /// volume cliffs. Standardized ridge shrinks exactly the ill-determined
    /// directions while biasing well-determined ones by `O(λ)`. The
    /// intercept is never penalized. `λ ≈ 0.05` is a good default for
    /// DREAM-style small windows.
    Ridge(f64),
}

/// A fitted MLR model for one cost metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlrModel {
    /// `β̂₀, β̂₁, …, β̂_L` — intercept first.
    pub coefficients: Vec<f64>,
    /// Coefficient of determination `R² = 1 − SSE/SST` (Eq. 14) on the
    /// training window.
    pub r_squared: f64,
    /// Sum of squared errors on the training window (Eq. 11).
    pub sse: f64,
    /// Total sum of squares of the training targets.
    pub sst: f64,
    /// Number of training observations `M`.
    pub n_samples: usize,
}

impl MlrModel {
    /// Number of regressors `L` (excludes the intercept).
    pub fn n_features(&self) -> usize {
        self.coefficients.len() - 1
    }

    /// Evaluates `ĉ(x)` for a feature vector of length `L`.
    pub fn predict(&self, features: &[f64]) -> Result<f64, EstimationError> {
        if features.len() != self.n_features() {
            return Err(EstimationError::FeatureArity {
                expected: self.n_features(),
                got: features.len(),
            });
        }
        Ok(self.coefficients[0]
            + self.coefficients[1..]
                .iter()
                .zip(features.iter())
                .map(|(b, x)| b * x)
                .sum::<f64>())
    }
}

/// Builds the design matrix `A` of Eq. 8: a leading column of ones followed
/// by the feature columns, one row per observation.
fn design_matrix(features: &[&[f64]]) -> Matrix {
    let m = features.len();
    let l = features.first().map_or(0, |f| f.len());
    let mut data = Vec::with_capacity(m * (l + 1));
    for row in features {
        data.push(1.0);
        data.extend_from_slice(row);
    }
    Matrix::from_vec(m, l + 1, data).expect("design dimensions are consistent by construction")
}

/// Solves for the coefficient vector with the requested method.
fn solve_coefficients(
    a: &Matrix,
    targets: &[f64],
    method: SolveMethod,
) -> Result<Vec<f64>, EstimationError> {
    match method {
        SolveMethod::NormalEquations => {
            let gram = a.gram();
            let aty = a
                .transpose_matvec(targets)
                .map_err(|e| EstimationError::Numeric(e.to_string()))?;
            match Cholesky::decompose(&gram).and_then(|ch| ch.solve(&aty)) {
                Ok(b) => Ok(b),
                Err(_) => {
                    // Rank-deficient design: retry with a tiny ridge so DREAM
                    // can keep growing the window instead of aborting. The
                    // penalty is scaled to the Gram matrix's own magnitude —
                    // an absolute epsilon would vanish against features like
                    // row counts in the millions.
                    let mut ridged = gram;
                    let p = ridged.rows();
                    let trace: f64 = (0..p).map(|i| ridged[(i, i)]).sum();
                    let epsilon = (trace / p as f64).max(1.0) * 1e-8;
                    for i in 0..p {
                        ridged[(i, i)] += epsilon;
                    }
                    Cholesky::decompose(&ridged)
                        .and_then(|ch| ch.solve(&aty))
                        .map_err(|e| EstimationError::Numeric(e.to_string()))
                }
            }
        }
        SolveMethod::Qr => QrDecomposition::decompose(a)
            .and_then(|qr| qr.solve_least_squares(targets))
            .map_err(|e| EstimationError::Numeric(e.to_string())),
        SolveMethod::Ridge(lambda) => ridge_coefficients(a, targets, lambda),
    }
}

/// Standardized ridge: center/scale the feature columns (skipping the
/// leading intercept column of ones), solve `(ZᵀZ + λ·m·I)w = Zᵀy_c`, and
/// map the coefficients back to the raw scale.
fn ridge_coefficients(
    a: &Matrix,
    targets: &[f64],
    lambda: f64,
) -> Result<Vec<f64>, EstimationError> {
    let m = a.rows();
    let p = a.cols(); // 1 + L
    let l = p - 1;
    let mf = m as f64;

    // Column means and stds of the feature columns (col 0 is the intercept).
    let mut means = vec![0.0; l];
    let mut stds = vec![0.0; l];
    for j in 0..l {
        let mut s = 0.0;
        for r in 0..m {
            s += a[(r, j + 1)];
        }
        means[j] = s / mf;
    }
    for j in 0..l {
        let mut s = 0.0;
        for r in 0..m {
            let d = a[(r, j + 1)] - means[j];
            s += d * d;
        }
        stds[j] = (s / mf).sqrt().max(1e-12);
    }
    let y_mean = targets.iter().sum::<f64>() / mf;

    // Standardized Gram and right-hand side.
    let mut g = Matrix::zeros(l, l);
    let mut rhs = vec![0.0; l];
    for r in 0..m {
        let yc = targets[r] - y_mean;
        for i in 0..l {
            let zi = (a[(r, i + 1)] - means[i]) / stds[i];
            rhs[i] += zi * yc;
            for j in i..l {
                let zj = (a[(r, j + 1)] - means[j]) / stds[j];
                g[(i, j)] += zi * zj;
            }
        }
    }
    for i in 0..l {
        for j in (i + 1)..l {
            g[(j, i)] = g[(i, j)];
        }
        g[(i, i)] += lambda.max(0.0) * mf;
    }

    let w = Cholesky::decompose(&g)
        .and_then(|ch| ch.solve(&rhs))
        .map_err(|e| EstimationError::Numeric(e.to_string()))?;

    // Back to raw coefficients.
    let mut beta = vec![0.0; p];
    for j in 0..l {
        beta[j + 1] = w[j] / stds[j];
    }
    beta[0] = y_mean
        - beta[1..]
            .iter()
            .zip(means.iter())
            .map(|(b, mu)| b * mu)
            .sum::<f64>();
    Ok(beta)
}

/// Fits an MLR model on `(features[i], targets[i])` pairs.
///
/// Requires `targets.len() >= L + 2` — the paper's smallest meaningful
/// dataset (Section 3, citing Soong) — and equal-length rows.
///
/// Degenerate targets (all identical, `SST ≈ 0`) yield `R² = 1` when the fit
/// is exact and `R² = 0` otherwise, so Algorithm 1's `R²` test remains
/// well-defined instead of dividing by zero.
pub fn fit(
    features: &[&[f64]],
    targets: &[f64],
    method: SolveMethod,
) -> Result<MlrModel, EstimationError> {
    let m = targets.len();
    if features.len() != m {
        return Err(EstimationError::Numeric(format!(
            "features ({}) and targets ({}) disagree",
            features.len(),
            m
        )));
    }
    let l = features.first().map_or(0, |f| f.len());
    if m < l + 2 {
        return Err(EstimationError::NotEnoughData {
            required: l + 2,
            available: m,
        });
    }
    if features.iter().any(|f| f.len() != l) {
        return Err(EstimationError::Numeric(
            "ragged feature rows".to_string(),
        ));
    }

    let a = design_matrix(features);
    let coefficients = solve_coefficients(&a, targets, method)?;

    let fitted = a
        .matvec(&coefficients)
        .map_err(|e| EstimationError::Numeric(e.to_string()))?;
    let sse: f64 = targets
        .iter()
        .zip(fitted.iter())
        .map(|(c, f)| (c - f) * (c - f))
        .sum();
    let mean = stats::mean(targets).expect("m >= L+2 >= 2 guarantees non-empty");
    let sst: f64 = targets.iter().map(|c| (c - mean) * (c - mean)).sum();

    let r_squared = if sst <= f64::EPSILON * m as f64 {
        if sse <= 1e-10 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - sse / sst
    };

    Ok(MlrModel {
        coefficients,
        r_squared,
        sse,
        sst,
        n_samples: m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(v: &[Vec<f64>]) -> Vec<&[f64]> {
        v.iter().map(|r| r.as_slice()).collect()
    }

    #[test]
    fn exact_linear_data_gives_r2_one() {
        // c = 2 + 3x1 - x2, noise-free.
        let feats: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![i as f64, (i * i) as f64 * 0.1])
            .collect();
        let targets: Vec<f64> = feats.iter().map(|f| 2.0 + 3.0 * f[0] - f[1]).collect();
        for method in [SolveMethod::NormalEquations, SolveMethod::Qr] {
            let m = fit(&rows(&feats), &targets, method).unwrap();
            assert!((m.r_squared - 1.0).abs() < 1e-9, "{method:?}");
            assert!((m.coefficients[0] - 2.0).abs() < 1e-8);
            assert!((m.coefficients[1] - 3.0).abs() < 1e-8);
            assert!((m.coefficients[2] + 1.0).abs() < 1e-8);
            assert!(m.sse < 1e-12);
        }
    }

    #[test]
    fn predict_checks_arity() {
        let feats: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..5).map(|i| i as f64).collect();
        let m = fit(&rows(&feats), &targets, SolveMethod::default()).unwrap();
        assert!(m.predict(&[1.0, 2.0]).is_err());
        assert!((m.predict(&[3.0]).unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn minimum_window_enforced() {
        // L = 2 requires at least 4 observations.
        let feats: Vec<Vec<f64>> = (0..3).map(|i| vec![i as f64, 1.0]).collect();
        let targets = vec![1.0, 2.0, 3.0];
        assert!(matches!(
            fit(&rows(&feats), &targets, SolveMethod::default()),
            Err(EstimationError::NotEnoughData {
                required: 4,
                available: 3
            })
        ));
    }

    #[test]
    fn constant_target_handled() {
        let feats: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let targets = vec![5.0; 6];
        let m = fit(&rows(&feats), &targets, SolveMethod::default()).unwrap();
        // Exact fit of a constant: slope 0, intercept 5, R² defined as 1.
        assert!((m.r_squared - 1.0).abs() < 1e-9);
        assert!((m.predict(&[100.0]).unwrap() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn collinear_features_survive_via_ridge() {
        // x2 = 2*x1 makes AᵀA singular; the ridge retry must still fit.
        let feats: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![i as f64, 2.0 * i as f64])
            .collect();
        let targets: Vec<f64> = (0..8).map(|i| 1.0 + 4.0 * i as f64).collect();
        let m = fit(&rows(&feats), &targets, SolveMethod::NormalEquations).unwrap();
        assert!(m.r_squared > 0.999);
        // Prediction along the collinear manifold is still accurate.
        assert!((m.predict(&[3.0, 6.0]).unwrap() - 13.0).abs() < 1e-3);
    }

    #[test]
    fn qr_and_normal_equations_agree() {
        let feats: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![(i as f64).sin() + 2.0, (i as f64) * 0.37])
            .collect();
        let targets: Vec<f64> = feats
            .iter()
            .enumerate()
            .map(|(i, f)| 1.0 + 2.0 * f[0] - 0.5 * f[1] + (i % 3) as f64 * 0.01)
            .collect();
        let ne = fit(&rows(&feats), &targets, SolveMethod::NormalEquations).unwrap();
        let qr = fit(&rows(&feats), &targets, SolveMethod::Qr).unwrap();
        for (a, b) in ne.coefficients.iter().zip(qr.coefficients.iter()) {
            assert!((a - b).abs() < 1e-7);
        }
        assert!((ne.r_squared - qr.r_squared).abs() < 1e-9);
    }

    #[test]
    fn ridge_matches_ols_on_well_conditioned_data() {
        let feats: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i as f64 * 1.3).sin() * 5.0, (i % 4) as f64])
            .collect();
        let targets: Vec<f64> = feats.iter().map(|f| 3.0 + 2.0 * f[0] - f[1]).collect();
        let ols = fit(&rows(&feats), &targets, SolveMethod::NormalEquations).unwrap();
        let ridge = fit(&rows(&feats), &targets, SolveMethod::Ridge(1e-6)).unwrap();
        let probe = [2.0, 1.0];
        let po = ols.predict(&probe).unwrap();
        let pr = ridge.predict(&probe).unwrap();
        assert!((po - pr).abs() < 1e-3 * (1.0 + po.abs()), "{po} vs {pr}");
    }

    #[test]
    fn ridge_tames_collinear_extrapolation() {
        // Two near-collinear features over a narrow range, with noise, then
        // predict far below the training range — the archive-cliff case.
        let feats: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                let f = 0.8 + 0.04 * i as f64;
                vec![1000.0 * f, 50_000.0 * f + if i % 2 == 0 { 300.0 } else { -300.0 }]
            })
            .collect();
        let targets: Vec<f64> = feats
            .iter()
            .enumerate()
            .map(|(i, f)| 10.0 + 0.0002 * f[1] + if i % 2 == 0 { 0.4 } else { -0.4 })
            .collect();
        let probe = [400.0, 20_000.0]; // far outside the window
        let ols = fit(&rows(&feats), &targets, SolveMethod::NormalEquations).unwrap();
        let ridge = fit(&rows(&feats), &targets, SolveMethod::Ridge(0.05)).unwrap();
        let truth = 10.0 + 0.0002 * probe[1];
        let ols_err = (ols.predict(&probe).unwrap() - truth).abs();
        let ridge_err = (ridge.predict(&probe).unwrap() - truth).abs();
        assert!(
            ridge_err < ols_err * 0.9 + 1.0,
            "ridge {ridge_err} should beat OLS {ols_err} out of range"
        );
        assert!(ridge.predict(&probe).unwrap() > 0.0, "cost stays positive");
    }

    #[test]
    fn ragged_rows_rejected() {
        let r1 = vec![1.0, 2.0];
        let r2 = vec![1.0];
        let rows_bad: Vec<&[f64]> = vec![&r1, &r2, &r1, &r1];
        assert!(fit(&rows_bad, &[1.0, 2.0, 3.0, 4.0], SolveMethod::default()).is_err());
    }
}
