//! The `CostEstimator` abstraction shared by DREAM and the IReS baselines.
//!
//! The IReS Modelling module (paper Section 2.4) is pluggable: it trains one
//! or more predictors on execution history and serves multi-metric cost
//! estimates to the multi-objective optimizer. Everything downstream —
//! plan enumeration, Pareto search, plan selection — only sees this trait.

use crate::history::History;
use std::fmt;

/// Errors produced while fitting or predicting.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimationError {
    /// An observation didn't match the history schema.
    ArityMismatch {
        /// Features the history expects.
        expected_features: usize,
        /// Features the observation carried.
        got_features: usize,
        /// Metrics the history expects.
        expected_metrics: usize,
        /// Metrics the observation carried.
        got_metrics: usize,
    },
    /// Not enough observations to fit: need at least `required`, got `available`.
    NotEnoughData {
        /// Minimum observations the model needs.
        required: usize,
        /// Observations actually available.
        available: usize,
    },
    /// The underlying numeric routine failed (singular design matrix, …).
    Numeric(String),
    /// Predict was called before a successful fit.
    NotFitted,
    /// A feature vector of the wrong length was passed to predict.
    FeatureArity {
        /// Expected length.
        expected: usize,
        /// Received length.
        got: usize,
    },
}

impl fmt::Display for EstimationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimationError::ArityMismatch {
                expected_features,
                got_features,
                expected_metrics,
                got_metrics,
            } => write!(
                f,
                "observation arity mismatch: features {got_features} (expected \
                 {expected_features}), metrics {got_metrics} (expected {expected_metrics})"
            ),
            EstimationError::NotEnoughData {
                required,
                available,
            } => write!(
                f,
                "not enough history: need {required} observations, have {available}"
            ),
            EstimationError::Numeric(msg) => write!(f, "numeric failure: {msg}"),
            EstimationError::NotFitted => write!(f, "predict called before fit"),
            EstimationError::FeatureArity { expected, got } => {
                write!(f, "feature vector length {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for EstimationError {}

/// Outcome summary of a fit, used for logging and the experiment harness.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// How many of the latest observations the model actually trained on.
    pub window_used: usize,
    /// Per-metric coefficient of determination of the fitted models, when the
    /// model family defines one (MLR does; kNN reports `None`).
    pub r_squared: Vec<Option<f64>>,
    /// True when every metric reached the estimator's internal quality bar
    /// (always true for estimators without one).
    pub satisfied: bool,
}

/// A multi-metric cost model: train on history, predict a cost vector.
///
/// Implementations must be deterministic given the same history (stochastic
/// learners seed from fixed state) so experiments are reproducible.
///
/// The `Send + Sync` supertraits let a boxed estimator live inside the
/// lock-guarded per-query-class Modelling modules that concurrent federation
/// workers share; estimators are plain data (no interior mutability), so
/// every implementor satisfies the bounds structurally.
pub trait CostEstimator: Send + Sync {
    /// Short human-readable name ("DREAM", "BML-2N", …) used in reports.
    fn name(&self) -> String;

    /// Trains on the supplied history. Returns a [`FitReport`] describing the
    /// fit, or an error when the history cannot support one.
    fn fit(&mut self, history: &History) -> Result<FitReport, EstimationError>;

    /// Predicts the cost vector (one entry per metric) for a feature vector.
    fn predict(&self, features: &[f64]) -> Result<Vec<f64>, EstimationError>;

    /// Number of cost metrics the estimator produces once fitted.
    fn n_metrics(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        let e = EstimationError::NotEnoughData {
            required: 6,
            available: 2,
        };
        assert!(e.to_string().contains("need 6"));
        let e = EstimationError::NotFitted;
        assert!(e.to_string().contains("before fit"));
        let e = EstimationError::FeatureArity {
            expected: 3,
            got: 1,
        };
        assert!(e.to_string().contains("expected 3"));
    }
}
