//! # midas-dream
//!
//! The paper's primary contribution: **DREAM** (Dynamic REgression AlgorithM).
//!
//! DREAM estimates the cost vector of a query execution plan (QEP) in a cloud
//! federation — execution time, monetary cost, intermediate-data volume, … —
//! from a *dynamically sized window* of the most recent execution history.
//! The model is Multiple Linear Regression (paper Section 2.5, Eq. 5–12):
//!
//! ```text
//! ĉ = β̂₀ + β̂₁·x₁ + … + β̂_L·x_L          (Eq. 6)
//! B = (AᵀA)⁻¹ AᵀC                        (Eq. 12, normal equations)
//! R² = 1 − SSE/SST                       (Eq. 14)
//! ```
//!
//! Rather than training on *all* history (which in a drifting federation mixes
//! in expired observations) or on a fixed window (which may be too small for a
//! reliable fit), Algorithm 1 starts from the statistical minimum window
//! `m = L + 2` and grows it until every cost metric's `R²` reaches the
//! user-required threshold (default 0.8) or a cap `Mmax` is hit. See
//! [`dream::estimate_cost_value`] and [`dream::DreamEstimator`].
//!
//! Crate layout:
//!
//! * [`history`] — `(feature vector, cost vector)` observations kept in
//!   arrival order, with cheap recency windows.
//! * [`mlr`] — the MLR fit itself, through the paper's normal equations
//!   (Cholesky on the Gram matrix with ridge fallback) or Householder QR.
//! * [`estimator`] — the [`estimator::CostEstimator`] trait shared with the
//!   baseline learners in `midas-mlearn` and consumed by the IReS Modelling
//!   module.
//! * [`dream`] — Algorithm 1 and its configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dream;
pub mod estimator;
pub mod history;
pub mod incremental;
pub mod mlr;

pub use crate::dream::{
    estimate_cost_value, DreamConfig, DreamEstimator, DreamOutcome, FitPath, GrowthPolicy,
    QualityMetric,
};
pub use estimator::{CostEstimator, EstimationError, FitReport};
pub use incremental::estimate_cost_value_incremental;
pub use history::{History, Observation};
pub use mlr::{MlrModel, SolveMethod};
