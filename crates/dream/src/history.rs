//! Execution history: the training data every estimator learns from.
//!
//! IReS records one [`Observation`] per executed operator/plan: the feature
//! vector `x` (sizes of the input tables, number of VMs per cloud, …) and the
//! measured cost vector `c` (execution time, monetary cost, …). Observations
//! are kept in arrival order so "the latest m" — the quantity Algorithm 1
//! reasons about — is just a suffix.

use crate::estimator::EstimationError;
use serde::{Deserialize, Serialize};

/// One executed-plan measurement: features and the observed costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Independent variables `x₁..x_L` of Eq. 5 (data sizes, node counts, …).
    pub features: Vec<f64>,
    /// One observed value per cost metric (time, money, …).
    pub costs: Vec<f64>,
}

impl Observation {
    /// Builds an observation; both slices are copied.
    pub fn new(features: &[f64], costs: &[f64]) -> Self {
        Observation {
            features: features.to_vec(),
            costs: costs.to_vec(),
        }
    }
}

/// Arrival-ordered training history with fixed feature/metric arity.
///
/// The oldest observation sits at index 0; [`History::latest`] returns the
/// most recent `m` — the "new training set" of the paper's Figure 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct History {
    n_features: usize,
    n_metrics: usize,
    observations: Vec<Observation>,
    /// Optional retention bound; `None` keeps everything.
    capacity: Option<usize>,
}

impl History {
    /// Creates an empty history for `n_features` regressors and `n_metrics`
    /// cost metrics, retaining all observations.
    pub fn new(n_features: usize, n_metrics: usize) -> Self {
        History {
            n_features,
            n_metrics,
            observations: Vec::new(),
            capacity: None,
        }
    }

    /// Like [`History::new`] but discarding the oldest observations beyond
    /// `capacity` (the "observation window" of the IReS baselines).
    pub fn with_capacity_bound(n_features: usize, n_metrics: usize, capacity: usize) -> Self {
        History {
            n_features,
            n_metrics,
            observations: Vec::new(),
            capacity: Some(capacity),
        }
    }

    /// Number of regressors `L`.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of cost metrics `N`.
    pub fn n_metrics(&self) -> usize {
        self.n_metrics
    }

    /// Number of stored observations `M`.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// True when no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The minimum window DREAM may fit on: `L + 2` (paper, Section 3).
    pub fn minimum_window(&self) -> usize {
        self.n_features + 2
    }

    /// Appends an observation, evicting the oldest if a capacity bound is set.
    ///
    /// Fails when the observation arity does not match the history schema.
    pub fn push(&mut self, obs: Observation) -> Result<(), EstimationError> {
        if obs.features.len() != self.n_features || obs.costs.len() != self.n_metrics {
            return Err(EstimationError::ArityMismatch {
                expected_features: self.n_features,
                got_features: obs.features.len(),
                expected_metrics: self.n_metrics,
                got_metrics: obs.costs.len(),
            });
        }
        self.observations.push(obs);
        if let Some(cap) = self.capacity {
            if self.observations.len() > cap {
                let excess = self.observations.len() - cap;
                self.observations.drain(..excess);
            }
        }
        Ok(())
    }

    /// Convenience push from raw slices.
    pub fn record(&mut self, features: &[f64], costs: &[f64]) -> Result<(), EstimationError> {
        self.push(Observation::new(features, costs))
    }

    /// All observations, oldest first.
    pub fn all(&self) -> &[Observation] {
        &self.observations
    }

    /// The latest `m` observations (or all if fewer exist), oldest first.
    pub fn latest(&self, m: usize) -> &[Observation] {
        let n = self.observations.len();
        let start = n.saturating_sub(m);
        &self.observations[start..]
    }

    /// Target values of metric `k` over a window, in window order.
    pub fn targets_of(window: &[Observation], metric: usize) -> Vec<f64> {
        window.iter().map(|o| o.costs[metric]).collect()
    }

    /// Drops every stored observation, keeping the schema.
    pub fn clear(&mut self) {
        self.observations.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(x: f64, c: f64) -> Observation {
        Observation::new(&[x, x + 1.0], &[c])
    }

    #[test]
    fn push_and_len() {
        let mut h = History::new(2, 1);
        assert!(h.is_empty());
        h.push(obs(1.0, 10.0)).unwrap();
        h.push(obs(2.0, 20.0)).unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h.n_features(), 2);
        assert_eq!(h.n_metrics(), 1);
    }

    #[test]
    fn arity_is_enforced() {
        let mut h = History::new(2, 1);
        let bad = Observation::new(&[1.0], &[1.0]);
        assert!(matches!(
            h.push(bad),
            Err(EstimationError::ArityMismatch { .. })
        ));
        let bad_metrics = Observation::new(&[1.0, 2.0], &[1.0, 2.0]);
        assert!(h.push(bad_metrics).is_err());
    }

    #[test]
    fn latest_returns_suffix_in_order() {
        let mut h = History::new(2, 1);
        for i in 0..5 {
            h.push(obs(i as f64, i as f64 * 10.0)).unwrap();
        }
        let w = h.latest(2);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].costs[0], 30.0);
        assert_eq!(w[1].costs[0], 40.0);
        // Requesting more than available returns everything.
        assert_eq!(h.latest(99).len(), 5);
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        let mut h = History::with_capacity_bound(2, 1, 3);
        for i in 0..5 {
            h.push(obs(i as f64, i as f64)).unwrap();
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.all()[0].costs[0], 2.0);
        assert_eq!(h.all()[2].costs[0], 4.0);
    }

    #[test]
    fn minimum_window_is_l_plus_2() {
        let h = History::new(4, 2);
        assert_eq!(h.minimum_window(), 6);
    }

    #[test]
    fn targets_extracts_metric_column() {
        let mut h = History::new(1, 2);
        h.record(&[1.0], &[10.0, 100.0]).unwrap();
        h.record(&[2.0], &[20.0, 200.0]).unwrap();
        let w = h.latest(2);
        assert_eq!(History::targets_of(w, 0), vec![10.0, 20.0]);
        assert_eq!(History::targets_of(w, 1), vec![100.0, 200.0]);
    }

    #[test]
    fn clear_keeps_schema() {
        let mut h = History::new(1, 1);
        h.record(&[1.0], &[1.0]).unwrap();
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.n_features(), 1);
    }
}
