//! Algorithm 1 — the Dynamic REgression AlgorithM itself.
//!
//! ```text
//! function ESTIMATECOSTVALUE(R²_require, X, Mmax)
//!     for n = 1..N: R²_n ← ∅
//!     m = L + 2                          // the smallest meaningful window
//!     while (any R²_n < R²_require,n) and m < Mmax:
//!         for each cost function ĉ_n:
//!             fit MLR on the latest m observations
//!             R²_n = 1 − SSE/SST
//!         m = m + 1
//!     return ĉ_N
//! ```
//!
//! The window only ever contains the *most recent* observations, so growing
//! `m` trades recency for statistical support; stopping at the first window
//! that satisfies `R²` keeps the training set small (the paper measures it
//! staying near `N = L + 2`) and excludes expired measurements.

use crate::estimator::{CostEstimator, EstimationError, FitReport};
use crate::history::{History, Observation};
use crate::mlr::{self, MlrModel, SolveMethod};
use serde::{Deserialize, Serialize};

/// How Algorithm 1 enlarges the candidate window between quality tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum GrowthPolicy {
    /// The paper's `m = m + 1`.
    #[default]
    Increment,
    /// Geometric growth `m = ⌈m·2⌉` — the ablation variant; fewer refits at
    /// the price of possibly overshooting the smallest satisfying window.
    Doubling,
}

impl GrowthPolicy {
    fn next(self, m: usize) -> usize {
        match self {
            GrowthPolicy::Increment => m + 1,
            GrowthPolicy::Doubling => m.saturating_mul(2),
        }
    }
}

/// Which fit-quality statistic gates the window test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum QualityMetric {
    /// The paper's plain coefficient of determination (Eq. 14).
    #[default]
    R2,
    /// Adjusted `R²`: `1 − (1 − R²)·(m − 1)/(m − L − 1)`.
    ///
    /// At the minimum window `m = L + 2` a plain `R²` has a single residual
    /// degree of freedom and is spuriously close to 1 on almost any data,
    /// which would freeze Algorithm 1 at the smallest (highest-variance)
    /// window. The adjustment penalizes exactly that; it degenerates to the
    /// plain `R²` as `m` grows. The `ablation` bench quantifies the
    /// difference.
    AdjustedR2,
}

impl QualityMetric {
    /// Evaluates the statistic for a fit of `m` samples over `l` features.
    pub fn evaluate(&self, r_squared: f64, m: usize, l: usize) -> f64 {
        match self {
            QualityMetric::R2 => r_squared,
            QualityMetric::AdjustedR2 => {
                if m > l + 1 {
                    1.0 - (1.0 - r_squared) * (m as f64 - 1.0) / (m as f64 - l as f64 - 1.0)
                } else {
                    // No residual degrees of freedom: treat as uninformative.
                    f64::NEG_INFINITY
                }
            }
        }
    }
}

/// Which Algorithm 1 implementation a [`DreamEstimator`] runs per fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FitPath {
    /// Use the incremental `O(Mmax·L³)` window growth
    /// ([`crate::incremental::estimate_cost_value_incremental`]) whenever the
    /// solver supports it (normal equations), falling back to the reference
    /// per-window refit otherwise. This is the default **online** path: a
    /// scheduler refitting after every executed query never rebuilds Gram
    /// matrices from scratch.
    #[default]
    IncrementalAuto,
    /// Always refit every candidate window from scratch (the literal
    /// Algorithm 1 of the paper; used by equivalence tests and ablations).
    Reference,
}

/// Configuration of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DreamConfig {
    /// Required `R²` per cost metric (`R²_require`). The paper recommends
    /// 0.8 for "a sufficient quality of service level".
    pub r2_required: Vec<f64>,
    /// Upper bound on the window size (`Mmax`).
    pub m_max: usize,
    /// Window enlargement policy; the paper uses [`GrowthPolicy::Increment`].
    pub growth: GrowthPolicy,
    /// Least-squares solver; the paper's normal equations by default.
    pub solver: SolveMethod,
    /// Quality statistic compared against `r2_required`; plain `R²` by
    /// default (paper-faithful).
    #[serde(default)]
    pub quality: QualityMetric,
    /// Implementation the [`DreamEstimator`] dispatches to on each fit;
    /// incremental-when-possible by default.
    #[serde(default)]
    pub fit_path: FitPath,
}

impl DreamConfig {
    /// Config with the same `R²` requirement for every one of `n_metrics`.
    pub fn uniform(r2_required: f64, n_metrics: usize, m_max: usize) -> Self {
        DreamConfig {
            r2_required: vec![r2_required; n_metrics],
            m_max,
            growth: GrowthPolicy::default(),
            solver: SolveMethod::default(),
            quality: QualityMetric::default(),
            fit_path: FitPath::default(),
        }
    }

    /// The paper's defaults: `R² ≥ 0.8` for every metric, `Mmax = 100`.
    pub fn paper_defaults(n_metrics: usize) -> Self {
        Self::uniform(0.8, n_metrics, 100)
    }

    /// Switches the window test to adjusted `R²` (builder style).
    pub fn with_adjusted_r2(mut self) -> Self {
        self.quality = QualityMetric::AdjustedR2;
        self
    }

    /// Next window size under the configured growth policy (used by the
    /// incremental implementation to stay in lockstep with Algorithm 1).
    pub fn growth_next(&self, m: usize) -> usize {
        self.growth.next(m)
    }
}

/// Result of one run of Algorithm 1.
#[derive(Debug, Clone)]
pub struct DreamOutcome {
    /// One fitted MLR model per cost metric, trained on the final window.
    pub models: Vec<MlrModel>,
    /// Size of the final training window (the paper's `m`).
    pub window: usize,
    /// True when every metric met its `R²` requirement before `Mmax`.
    pub satisfied: bool,
    /// Number of windows tried (fit rounds), for the computational-cost
    /// accounting of Section 3.
    pub rounds: usize,
}

impl DreamOutcome {
    /// Predicts the full cost vector for a feature vector.
    pub fn predict(&self, features: &[f64]) -> Result<Vec<f64>, EstimationError> {
        self.models.iter().map(|m| m.predict(features)).collect()
    }

    /// Per-metric `R²` of the final fit.
    pub fn r_squared(&self) -> Vec<f64> {
        self.models.iter().map(|m| m.r_squared).collect()
    }
}

fn fit_window(
    window: &[Observation],
    n_metrics: usize,
    solver: SolveMethod,
) -> Result<Vec<MlrModel>, EstimationError> {
    let feats: Vec<&[f64]> = window.iter().map(|o| o.features.as_slice()).collect();
    (0..n_metrics)
        .map(|k| {
            let targets = History::targets_of(window, k);
            mlr::fit(&feats, &targets, solver)
        })
        .collect()
}

/// Algorithm 1: fits per-metric MLR models on the smallest recent window
/// whose `R²` satisfies the configuration.
///
/// Needs at least `L + 2` observations in the history. When even the full
/// history (capped at `Mmax`) cannot satisfy the requirement, the models of
/// the largest tried window are returned with `satisfied = false` — the
/// paper's Modelling module still needs *some* estimate to hand the
/// optimizer.
pub fn estimate_cost_value(
    history: &History,
    config: &DreamConfig,
) -> Result<DreamOutcome, EstimationError> {
    if config.r2_required.len() != history.n_metrics() {
        return Err(EstimationError::ArityMismatch {
            expected_features: history.n_features(),
            got_features: history.n_features(),
            expected_metrics: history.n_metrics(),
            got_metrics: config.r2_required.len(),
        });
    }
    let minimum = history.minimum_window();
    if history.len() < minimum {
        return Err(EstimationError::NotEnoughData {
            required: minimum,
            available: history.len(),
        });
    }

    let limit = config.m_max.min(history.len()).max(minimum);
    let mut m = minimum;
    let mut rounds = 0usize;
    let mut best: Option<(Vec<MlrModel>, usize)> = None;

    let l = history.n_features();
    loop {
        rounds += 1;
        let window = history.latest(m);
        match fit_window(window, history.n_metrics(), config.solver) {
            Ok(models) => {
                let ok = models
                    .iter()
                    .zip(config.r2_required.iter())
                    .all(|(model, req)| {
                        config.quality.evaluate(model.r_squared, m, l) >= *req
                    });
                if ok {
                    return Ok(DreamOutcome {
                        models,
                        window: m,
                        satisfied: true,
                        rounds,
                    });
                }
                // Fallback when no window ever satisfies the requirement
                // (e.g. right after a load-regime shift the Modelling module
                // still needs *some* estimate): keep the *smallest* fittable
                // window. Failure usually means the recent history mixes
                // regimes, and the most recent observations are the least
                // expired — a larger window can score a higher in-sample R²
                // merely because the old regime dominates it, which is the
                // trap DREAM exists to avoid (Figure 2's recency principle).
                if best.is_none() {
                    best = Some((models, m));
                }
            }
            Err(EstimationError::Numeric(_)) => {
                // Singular window (e.g. duplicated feature rows): grow past it.
            }
            Err(e) => return Err(e),
        }

        if m >= limit {
            break;
        }
        m = config.growth.next(m).min(limit);
    }

    match best {
        Some((models, window)) => Ok(DreamOutcome {
            models,
            window,
            satisfied: false,
            rounds,
        }),
        None => Err(EstimationError::Numeric(
            "every candidate window was numerically singular".to_string(),
        )),
    }
}

/// [`CostEstimator`] adapter: DREAM as a drop-in Modelling-module predictor.
#[derive(Debug, Clone)]
pub struct DreamEstimator {
    config: DreamConfig,
    outcome: Option<DreamOutcome>,
    n_metrics: usize,
}

impl DreamEstimator {
    /// Builds an unfitted estimator from an Algorithm 1 configuration.
    pub fn new(config: DreamConfig) -> Self {
        let n_metrics = config.r2_required.len();
        DreamEstimator {
            config,
            outcome: None,
            n_metrics,
        }
    }

    /// The paper-default estimator (`R² ≥ 0.8`, `Mmax = 100`).
    pub fn paper_defaults(n_metrics: usize) -> Self {
        Self::new(DreamConfig::paper_defaults(n_metrics))
    }

    /// The outcome of the most recent fit, if any.
    pub fn last_outcome(&self) -> Option<&DreamOutcome> {
        self.outcome.as_ref()
    }

    /// The configuration in use.
    pub fn config(&self) -> &DreamConfig {
        &self.config
    }
}

impl CostEstimator for DreamEstimator {
    fn name(&self) -> String {
        "DREAM".to_string()
    }

    fn fit(&mut self, history: &History) -> Result<FitReport, EstimationError> {
        // Online path: rank-1 Gram updates instead of per-window refits.
        // Only the normal-equation solver shares sums across windows; other
        // solvers (ridge, QR) take the reference path.
        let incremental = self.config.fit_path == FitPath::IncrementalAuto
            && self.config.solver == SolveMethod::NormalEquations;
        let outcome = if incremental {
            crate::incremental::estimate_cost_value_incremental(history, &self.config)?
        } else {
            estimate_cost_value(history, &self.config)?
        };
        let report = FitReport {
            window_used: outcome.window,
            r_squared: outcome.r_squared().into_iter().map(Some).collect(),
            satisfied: outcome.satisfied,
        };
        self.outcome = Some(outcome);
        Ok(report)
    }

    fn predict(&self, features: &[f64]) -> Result<Vec<f64>, EstimationError> {
        self.outcome
            .as_ref()
            .ok_or(EstimationError::NotFitted)?
            .predict(features)
    }

    fn n_metrics(&self) -> usize {
        self.n_metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// History whose most recent `k` points follow one linear regime and the
    /// earlier points another — the drift scenario DREAM is built for.
    fn drifting_history(old: usize, new: usize) -> History {
        let mut h = History::new(2, 2);
        for i in 0..old {
            let x = [i as f64, (i % 5) as f64];
            // Old regime: time = 100 + x0, money = 50 + x1.
            h.record(&x, &[100.0 + x[0], 50.0 + x[1]]).unwrap();
        }
        for i in 0..new {
            let x = [(old + i) as f64, (i % 7) as f64];
            // New regime: time = 5 + 2*x0 + x1, money = 1 + 0.5*x0.
            h.record(&x, &[5.0 + 2.0 * x[0] + x[1], 1.0 + 0.5 * x[0]])
                .unwrap();
        }
        h
    }

    #[test]
    fn stops_at_minimum_window_on_clean_data() {
        let h = drifting_history(0, 30);
        let cfg = DreamConfig::uniform(0.8, 2, 100);
        let out = estimate_cost_value(&h, &cfg).unwrap();
        assert!(out.satisfied);
        assert_eq!(out.window, h.minimum_window());
        assert_eq!(out.rounds, 1);
        // The fitted model recovers the new regime exactly.
        let pred = out.predict(&[40.0, 3.0]).unwrap();
        assert!((pred[0] - (5.0 + 80.0 + 3.0)).abs() < 1e-6);
        assert!((pred[1] - (1.0 + 20.0)).abs() < 1e-6);
    }

    #[test]
    fn window_stays_small_under_drift() {
        let h = drifting_history(50, 12);
        let cfg = DreamConfig::uniform(0.8, 2, 100);
        let out = estimate_cost_value(&h, &cfg).unwrap();
        assert!(out.satisfied);
        // DREAM must not need more than the fresh-regime points.
        assert!(out.window <= 12, "window {} exceeds fresh regime", out.window);
    }

    #[test]
    fn unsatisfiable_requirement_returns_best_effort() {
        // Pure noise: R² ~ 0 at any window size.
        let mut h = History::new(1, 1);
        let mut state = 1234u64;
        for i in 0..40 {
            // Cheap deterministic pseudo-noise (xorshift).
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let noise = (state % 1000) as f64 / 1000.0;
            h.record(&[(i % 4) as f64], &[noise]).unwrap();
        }
        let cfg = DreamConfig::uniform(0.99, 1, 30);
        let out = estimate_cost_value(&h, &cfg).unwrap();
        assert!(!out.satisfied);
        assert!(out.window <= 30);
        assert!(out.rounds > 1);
    }

    #[test]
    fn not_enough_data_is_reported() {
        let mut h = History::new(2, 1);
        h.record(&[1.0, 2.0], &[3.0]).unwrap();
        let cfg = DreamConfig::uniform(0.8, 1, 10);
        assert!(matches!(
            estimate_cost_value(&h, &cfg),
            Err(EstimationError::NotEnoughData { required: 4, .. })
        ));
    }

    #[test]
    fn config_metric_mismatch_rejected() {
        let h = drifting_history(0, 10);
        let cfg = DreamConfig::uniform(0.8, 3, 10); // history has 2 metrics
        assert!(estimate_cost_value(&h, &cfg).is_err());
    }

    #[test]
    fn doubling_growth_reaches_satisfaction_with_fewer_rounds() {
        // Noisy-but-linear data where the minimum window fails but a larger
        // one succeeds.
        let mut h = History::new(1, 1);
        for i in 0..64 {
            let x = i as f64;
            let wiggle = if i % 2 == 0 { 3.0 } else { -3.0 };
            h.record(&[x], &[10.0 + 2.0 * x + wiggle]).unwrap();
        }
        let mut inc = DreamConfig::uniform(0.97, 1, 64);
        inc.growth = GrowthPolicy::Increment;
        let mut dbl = inc.clone();
        dbl.growth = GrowthPolicy::Doubling;
        let out_inc = estimate_cost_value(&h, &inc).unwrap();
        let out_dbl = estimate_cost_value(&h, &dbl).unwrap();
        assert!(out_inc.satisfied && out_dbl.satisfied);
        assert!(out_dbl.rounds <= out_inc.rounds);
        assert!(out_inc.window <= out_dbl.window);
    }

    #[test]
    fn estimator_trait_roundtrip() {
        let h = drifting_history(0, 20);
        let mut est = DreamEstimator::paper_defaults(2);
        assert!(matches!(
            est.predict(&[1.0, 2.0]),
            Err(EstimationError::NotFitted)
        ));
        let report = est.fit(&h).unwrap();
        assert!(report.satisfied);
        assert_eq!(report.r_squared.len(), 2);
        assert_eq!(est.n_metrics(), 2);
        assert_eq!(est.name(), "DREAM");
        let pred = est.predict(&[10.0, 1.0]).unwrap();
        assert_eq!(pred.len(), 2);
        assert!(est.last_outcome().is_some());
    }

    #[test]
    fn estimator_default_online_path_is_incremental() {
        // The two paths agree to floating-point associativity; the estimator
        // must produce the same windows and near-identical predictions under
        // either dispatch, with IncrementalAuto the default.
        let h = drifting_history(30, 25);
        let cfg = DreamConfig::paper_defaults(2);
        assert_eq!(cfg.fit_path, FitPath::IncrementalAuto);
        let mut auto = DreamEstimator::new(cfg.clone());
        let mut reference = DreamEstimator::new(DreamConfig {
            fit_path: FitPath::Reference,
            ..cfg
        });
        let ra = auto.fit(&h).unwrap();
        let rr = reference.fit(&h).unwrap();
        assert_eq!(ra.window_used, rr.window_used);
        assert_eq!(ra.satisfied, rr.satisfied);
        let pa = auto.predict(&[60.0, 2.0]).unwrap();
        let pr = reference.predict(&[60.0, 2.0]).unwrap();
        for (a, b) in pa.iter().zip(pr.iter()) {
            let scale = 1.0 + a.abs().max(b.abs());
            assert!((a - b).abs() / scale < 1e-7, "{a} vs {b}");
        }
        // A non-normal-equation solver silently falls back to the reference
        // implementation rather than erroring.
        let mut ridge = DreamEstimator::new(DreamConfig {
            solver: SolveMethod::Ridge(0.05),
            ..DreamConfig::paper_defaults(2)
        });
        ridge.fit(&h).unwrap();
    }

    #[test]
    fn adjusted_r2_penalizes_the_minimum_window() {
        // Plain R² at m = L + 2 is spuriously high; adjusted R² grows the
        // window on noisy-but-linear data.
        let mut h = History::new(1, 1);
        let mut s = 77u64;
        for i in 0..40 {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let noise = ((s % 2000) as f64 / 1000.0 - 1.0) * 4.0;
            h.record(&[i as f64], &[50.0 + 2.0 * i as f64 + noise]).unwrap();
        }
        let plain = DreamConfig::uniform(0.8, 1, 40);
        let adjusted = plain.clone().with_adjusted_r2();
        let out_plain = estimate_cost_value(&h, &plain).unwrap();
        let out_adj = estimate_cost_value(&h, &adjusted).unwrap();
        assert!(out_adj.window >= out_plain.window);
    }

    #[test]
    fn quality_metric_math() {
        // Adjusted R² equals plain R² asymptotically and is harsher at
        // small m.
        let q = QualityMetric::AdjustedR2;
        assert!(q.evaluate(0.9, 4, 2) < 0.9);
        assert!((q.evaluate(0.9, 1000, 2) - 0.9).abs() < 1e-2);
        assert_eq!(q.evaluate(0.5, 3, 2), f64::NEG_INFINITY);
        assert_eq!(QualityMetric::R2.evaluate(0.73, 4, 2), 0.73);
    }

    #[test]
    fn m_max_caps_the_window() {
        let h = drifting_history(50, 4); // fresh regime too small to fit alone
        let cfg = DreamConfig::uniform(0.999, 2, 8);
        let out = estimate_cost_value(&h, &cfg).unwrap();
        assert!(out.window <= 8);
    }
}
