//! Incremental Algorithm 1: window growth without refitting from scratch.
//!
//! Algorithm 1 evaluates windows `m = L+2, L+3, …` over the *most recent*
//! observations; consecutive windows differ by exactly one (older)
//! observation. All the quantities the MLR fit needs are sums over the
//! window:
//!
//! ```text
//! G  = AᵀA      (Gram, (L+1)×(L+1))          G  += a·aᵀ
//! v  = AᵀC      ((L+1) vector)               v  += c·a
//! s₁ = Σc, s₂ = Σc²  (for SST and SSE)       s₁ += c ; s₂ += c²
//! ```
//!
//! where `a = (1, x₁, …, x_L)` is the incoming row. After each rank-1
//! update the coefficients come from one `(L+1)×(L+1)` solve and
//!
//! ```text
//! SSE = s₂ − 2·Bᵀv + Bᵀ(G·B)      SST = s₂ − s₁²/m
//! ```
//!
//! so one growth round costs `O(L³)` instead of `O(m·L²)` — the whole
//! Algorithm 1 loop drops from `O(Mmax²·L²)` to `O(Mmax·L³)`. For the
//! paper's `L ≤ 4` this is a ~10–40x speedup at `Mmax = 100` (see the
//! `mlr_fit` bench group `dream_incremental`).
//!
//! Produces the *same* windows, rounds and models as
//! [`crate::dream::estimate_cost_value`] (same solver path, same gating) up
//! to floating-point associativity; the equivalence test pins coefficients
//! to a 1e-7 relative tolerance.

use crate::dream::{DreamConfig, DreamOutcome};
use crate::estimator::EstimationError;
use crate::history::History;
use crate::mlr::{MlrModel, SolveMethod};
use midas_linalg::{Cholesky, Matrix};

/// Running sums of one cost metric over the current window.
#[derive(Debug, Clone)]
struct MetricSums {
    /// `AᵀC`.
    v: Vec<f64>,
    /// `Σ c`.
    s1: f64,
    /// `Σ c²`.
    s2: f64,
}

/// Incremental variant of Algorithm 1.
///
/// Restrictions: supports the [`SolveMethod::NormalEquations`] path (the
/// paper's Eq. 12). Ridge and QR callers should use the reference
/// implementation — ridge re-standardizes per window, which breaks the
/// shared-sums trick.
pub fn estimate_cost_value_incremental(
    history: &History,
    config: &DreamConfig,
) -> Result<DreamOutcome, EstimationError> {
    if config.solver != SolveMethod::NormalEquations {
        return Err(EstimationError::Numeric(
            "incremental Algorithm 1 supports the normal-equation solver only".to_string(),
        ));
    }
    if config.r2_required.len() != history.n_metrics() {
        return Err(EstimationError::ArityMismatch {
            expected_features: history.n_features(),
            got_features: history.n_features(),
            expected_metrics: history.n_metrics(),
            got_metrics: config.r2_required.len(),
        });
    }
    let minimum = history.minimum_window();
    if history.len() < minimum {
        return Err(EstimationError::NotEnoughData {
            required: minimum,
            available: history.len(),
        });
    }

    let l = history.n_features();
    let p = l + 1;
    let n_metrics = history.n_metrics();
    let limit = config.m_max.min(history.len()).max(minimum);
    let all = history.all();

    // Accumulators over the newest `m` observations.
    let mut gram = Matrix::zeros(p, p);
    let mut sums: Vec<MetricSums> = (0..n_metrics)
        .map(|_| MetricSums {
            v: vec![0.0; p],
            s1: 0.0,
            s2: 0.0,
        })
        .collect();

    let newest = all.len();
    let mut absorbed = 0usize; // observations folded into the sums so far

    let absorb = |gram: &mut Matrix, sums: &mut Vec<MetricSums>, idx: usize| {
        let obs = &all[idx];
        // a = (1, x…)
        let mut a = Vec::with_capacity(p);
        a.push(1.0);
        a.extend_from_slice(&obs.features);
        for i in 0..p {
            for j in i..p {
                gram[(i, j)] += a[i] * a[j];
            }
        }
        for (k, sums_k) in sums.iter_mut().enumerate() {
            let c = obs.costs[k];
            for (vi, ai) in sums_k.v.iter_mut().zip(a.iter()) {
                *vi += c * ai;
            }
            sums_k.s1 += c;
            sums_k.s2 += c * c;
        }
    };

    let mut m = minimum;
    // Fold in the newest `minimum` observations.
    while absorbed < m {
        absorb(&mut gram, &mut sums, newest - 1 - absorbed);
        absorbed += 1;
    }

    let mut rounds = 0usize;
    let mut best: Option<(Vec<MlrModel>, usize)> = None;

    loop {
        rounds += 1;
        match fit_from_sums(&gram, &sums, m, l) {
            Ok(models) => {
                let ok = models
                    .iter()
                    .zip(config.r2_required.iter())
                    .all(|(model, req)| config.quality.evaluate(model.r_squared, m, l) >= *req);
                if ok {
                    return Ok(DreamOutcome {
                        models,
                        window: m,
                        satisfied: true,
                        rounds,
                    });
                }
                if best.is_none() {
                    best = Some((models, m));
                }
            }
            Err(EstimationError::Numeric(_)) => {}
            Err(e) => return Err(e),
        }
        if m >= limit {
            break;
        }
        // Grow by the configured policy, absorbing the next-older rows.
        let next = config.growth_next(m).min(limit);
        while absorbed < next {
            absorb(&mut gram, &mut sums, newest - 1 - absorbed);
            absorbed += 1;
        }
        m = next;
    }

    match best {
        Some((models, window)) => Ok(DreamOutcome {
            models,
            window,
            satisfied: false,
            rounds,
        }),
        None => Err(EstimationError::Numeric(
            "every candidate window was numerically singular".to_string(),
        )),
    }
}

/// Solves one window's models from the running sums.
fn fit_from_sums(
    gram: &Matrix,
    sums: &[MetricSums],
    m: usize,
    l: usize,
) -> Result<Vec<MlrModel>, EstimationError> {
    let p = l + 1;
    // Mirror the lower triangle (the accumulator fills the upper half).
    let mut g = Matrix::zeros(p, p);
    for i in 0..p {
        for j in i..p {
            g[(i, j)] = gram[(i, j)];
            g[(j, i)] = gram[(i, j)];
        }
    }
    let chol = match Cholesky::decompose(&g) {
        Ok(c) => c,
        Err(_) => {
            // Same trace-scaled ridge retry as the reference solver.
            let trace: f64 = (0..p).map(|i| g[(i, i)]).sum();
            let eps = (trace / p as f64).max(1.0) * 1e-8;
            let mut ridged = g.clone();
            for i in 0..p {
                ridged[(i, i)] += eps;
            }
            Cholesky::decompose(&ridged)
                .map_err(|e| EstimationError::Numeric(e.to_string()))?
        }
    };

    sums.iter()
        .map(|sk| {
            let beta = chol
                .solve(&sk.v)
                .map_err(|e| EstimationError::Numeric(e.to_string()))?;
            // SSE = s2 - 2 βᵀv + βᵀ G β ; SST = s2 - s1²/m.
            let gb = g.matvec(&beta).map_err(|e| EstimationError::Numeric(e.to_string()))?;
            let btgb: f64 = beta.iter().zip(gb.iter()).map(|(a, b)| a * b).sum();
            let btv: f64 = beta.iter().zip(sk.v.iter()).map(|(a, b)| a * b).sum();
            let sse = (sk.s2 - 2.0 * btv + btgb).max(0.0);
            let sst = (sk.s2 - sk.s1 * sk.s1 / m as f64).max(0.0);
            let r_squared = if sst <= f64::EPSILON * m as f64 {
                if sse <= 1e-10 {
                    1.0
                } else {
                    0.0
                }
            } else {
                1.0 - sse / sst
            };
            Ok(MlrModel {
                coefficients: beta,
                r_squared,
                sse,
                sst,
                n_samples: m,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dream::estimate_cost_value;

    fn drifting_history(n: usize) -> History {
        let mut h = History::new(2, 2);
        let mut s = 42u64;
        for i in 0..n {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let noise = ((s % 2000) as f64 / 1000.0 - 1.0) * 2.0;
            let x = [i as f64, (i % 7) as f64 * 3.0];
            h.record(&x, &[10.0 + 2.0 * x[0] + x[1] + noise, 1.0 + 0.1 * x[0]])
                .expect("arity");
        }
        h
    }

    #[test]
    fn matches_the_reference_implementation() {
        let h = drifting_history(60);
        for req in [0.5, 0.8, 0.95, 0.999] {
            let cfg = DreamConfig::uniform(req, 2, 40);
            let reference = estimate_cost_value(&h, &cfg).expect("fits");
            let incremental = estimate_cost_value_incremental(&h, &cfg).expect("fits");
            assert_eq!(reference.window, incremental.window, "req {req}");
            assert_eq!(reference.satisfied, incremental.satisfied);
            assert_eq!(reference.rounds, incremental.rounds);
            for (a, b) in reference.models.iter().zip(incremental.models.iter()) {
                for (x, y) in a.coefficients.iter().zip(b.coefficients.iter()) {
                    // Summation order differs (per-window rebuild vs
                    // newest-first accumulation), so compare relatively.
                    let scale = 1.0 + x.abs().max(y.abs());
                    assert!((x - y).abs() / scale < 1e-7, "req {req}: {x} vs {y}");
                }
                assert!((a.r_squared - b.r_squared).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn matches_reference_with_adjusted_r2_and_doubling() {
        let h = drifting_history(64);
        let cfg = DreamConfig {
            growth: crate::dream::GrowthPolicy::Doubling,
            ..DreamConfig::uniform(0.9, 2, 64).with_adjusted_r2()
        };
        let reference = estimate_cost_value(&h, &cfg).expect("fits");
        let incremental = estimate_cost_value_incremental(&h, &cfg).expect("fits");
        assert_eq!(reference.window, incremental.window);
        assert_eq!(reference.rounds, incremental.rounds);
    }

    #[test]
    fn rejects_non_normal_equation_solvers() {
        let h = drifting_history(20);
        let cfg = DreamConfig {
            solver: SolveMethod::Ridge(0.05),
            ..DreamConfig::uniform(0.8, 2, 20)
        };
        assert!(estimate_cost_value_incremental(&h, &cfg).is_err());
    }

    #[test]
    fn not_enough_data_reported() {
        let mut h = History::new(2, 1);
        h.record(&[1.0, 2.0], &[1.0]).expect("arity");
        let cfg = DreamConfig::uniform(0.8, 1, 10);
        assert!(matches!(
            estimate_cost_value_incremental(&h, &cfg),
            Err(EstimationError::NotEnoughData { .. })
        ));
    }
}
