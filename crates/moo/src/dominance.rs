//! Pareto dominance over cost vectors (minimization everywhere).
//!
//! Plan `p1` dominates `p2` when it is no worse on every cost metric
//! (paper Eq. 1) and strictly dominates when it is better on every metric
//! (Eq. 3). The optimizer additionally needs "dominates and is not equal",
//! which is the classic Pareto-improvement relation used by NSGA-II.

/// Pairwise relation between two cost vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dominance {
    /// `a` is no worse everywhere and strictly better somewhere.
    Dominates,
    /// `b` is no worse everywhere and strictly better somewhere.
    DominatedBy,
    /// Identical cost vectors.
    Equal,
    /// Each wins on at least one metric.
    Incomparable,
}

/// Classifies the dominance relation between `a` and `b` (minimization).
///
/// Panics in debug builds when the lengths differ — cost vectors of one
/// optimization problem always share arity.
pub fn compare(a: &[f64], b: &[f64]) -> Dominance {
    debug_assert_eq!(a.len(), b.len(), "cost vectors must share arity");
    let mut a_better = false;
    let mut b_better = false;
    for (x, y) in a.iter().zip(b.iter()) {
        if x < y {
            a_better = true;
        } else if y < x {
            b_better = true;
        }
    }
    match (a_better, b_better) {
        (true, false) => Dominance::Dominates,
        (false, true) => Dominance::DominatedBy,
        (false, false) => Dominance::Equal,
        (true, true) => Dominance::Incomparable,
    }
}

/// Weak dominance of Eq. 1: `a` ⪯ `b` — no metric of `a` is worse.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    matches!(compare(a, b), Dominance::Dominates | Dominance::Equal)
}

/// Strict dominance of Eq. 3: every metric of `a` is strictly better.
pub fn strictly_dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).all(|(x, y)| x < y)
}

/// The Pareto-improvement relation NSGA-II sorts by: no worse everywhere and
/// strictly better somewhere.
pub fn pareto_dominates(a: &[f64], b: &[f64]) -> bool {
    compare(a, b) == Dominance::Dominates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_cases() {
        assert_eq!(compare(&[1.0, 1.0], &[2.0, 2.0]), Dominance::Dominates);
        assert_eq!(compare(&[2.0, 2.0], &[1.0, 1.0]), Dominance::DominatedBy);
        assert_eq!(compare(&[1.0, 2.0], &[1.0, 2.0]), Dominance::Equal);
        assert_eq!(compare(&[1.0, 3.0], &[2.0, 1.0]), Dominance::Incomparable);
    }

    #[test]
    fn weak_vs_strict() {
        // Equal on one coordinate: weakly dominates, not strictly.
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!strictly_dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(strictly_dominates(&[0.5, 2.0], &[1.0, 3.0]));
        // Equal vectors weakly dominate each other.
        assert!(dominates(&[1.0], &[1.0]));
        assert!(!pareto_dominates(&[1.0], &[1.0]));
    }

    #[test]
    fn pareto_dominates_requires_strict_improvement_somewhere() {
        assert!(pareto_dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!pareto_dominates(&[1.0, 3.0], &[1.0, 3.0]));
        assert!(!pareto_dominates(&[2.0, 1.0], &[1.0, 2.0]));
    }
}
