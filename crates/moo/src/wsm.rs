//! The Weighted Sum Model — the paper's optimization baseline.
//!
//! The original IReS approach (and Helff & Orazio 2016, the paper's ref \[17\])
//! scalarizes the cost vector with user weights and minimizes the scalar.
//! Section 2.6 lists its drawbacks: a weight change forces a whole new
//! optimization run, and nearby weights can produce wildly different plans.
//! Figure 3 contrasts this pipeline against the Pareto/GA one; the
//! `repro_fig3` binary uses both sides of this module.

use crate::nsga2::{MooProblem, Nsga2Config};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Computes the raw weighted sum `Σ wᵢ·cᵢ` without normalization.
pub fn weighted_sum(costs: &[f64], weights: &[f64]) -> f64 {
    debug_assert_eq!(costs.len(), weights.len());
    costs.iter().zip(weights.iter()).map(|(c, w)| c * w).sum()
}

/// A weighted-sum scalarizer with min–max normalization over a candidate set.
///
/// Normalization matters: execution time (seconds) and monetary cost
/// (dollars) live on different scales, and the WSM literature normalizes
/// each objective to `[0,1]` over the candidate set before weighting.
#[derive(Debug, Clone)]
pub struct WeightedSumModel {
    weights: Vec<f64>,
}

impl WeightedSumModel {
    /// Builds a model; weights are normalized to sum to 1.
    ///
    /// Panics when `weights` is empty or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weights must be non-empty with positive sum"
        );
        WeightedSumModel {
            weights: weights.iter().map(|w| w / total).collect(),
        }
    }

    /// The normalized weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Scores every candidate: min–max normalize each objective over the
    /// set, then apply the weighted sum. Returns one score per candidate.
    pub fn scores(&self, candidates: &[Vec<f64>]) -> Vec<f64> {
        if candidates.is_empty() {
            return Vec::new();
        }
        let m = self.weights.len();
        let mut lo = vec![f64::INFINITY; m];
        let mut hi = vec![f64::NEG_INFINITY; m];
        for c in candidates {
            for k in 0..m {
                lo[k] = lo[k].min(c[k]);
                hi[k] = hi[k].max(c[k]);
            }
        }
        candidates
            .iter()
            .map(|c| {
                (0..m)
                    .map(|k| {
                        let range = hi[k] - lo[k];
                        let z = if range <= 0.0 {
                            0.0
                        } else {
                            (c[k] - lo[k]) / range
                        };
                        z * self.weights[k]
                    })
                    .sum()
            })
            .collect()
    }

    /// Index of the best (lowest-score) candidate, `None` when empty.
    pub fn best_index(&self, candidates: &[Vec<f64>]) -> Option<usize> {
        let scores = self.scores(candidates);
        scores
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("NaN score"))
            .map(|(i, _)| i)
    }
}

/// Outcome of a WSM-driven single-objective GA run (the left branch of
/// Figure 3: optimize the scalarized objective directly).
#[derive(Debug, Clone)]
pub struct WsmGaOutcome<G> {
    /// The best genome found.
    pub genome: G,
    /// Its (vector) costs.
    pub costs: Vec<f64>,
    /// Its scalar score under the run's weights.
    pub score: f64,
    /// Objective evaluations spent.
    pub evaluations: usize,
}

/// Runs a single-objective GA on `weighted_sum(costs, weights)` over the same
/// problem NSGA-II would search.
///
/// This is the "Multi-Objective Optimization based on Weighted Sum Model"
/// branch of Figure 3: every weight change requires re-running this whole
/// loop, while the NSGA-II branch reuses its Pareto set.
pub fn optimize_scalarized<P: MooProblem>(
    problem: &P,
    weights: &[f64],
    config: Nsga2Config,
) -> WsmGaOutcome<P::Genome> {
    assert_eq!(weights.len(), problem.n_objectives());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let pop_size = config.population.max(2);
    let mut evaluations = 0usize;

    let mut genomes: Vec<P::Genome> = (0..pop_size)
        .map(|_| problem.random_genome(&mut rng))
        .collect();
    let mut costs: Vec<Vec<f64>> = genomes
        .iter()
        .map(|g| {
            evaluations += 1;
            problem.evaluate(g)
        })
        .collect();
    let mut scores: Vec<f64> = costs.iter().map(|c| weighted_sum(c, weights)).collect();

    for _ in 0..config.generations {
        let mut children = Vec::with_capacity(pop_size);
        for _ in 0..pop_size {
            let a = tournament(&scores, &mut rng);
            let b = tournament(&scores, &mut rng);
            let mut child = if rng.gen_bool(config.crossover_prob) {
                problem.crossover(&genomes[a], &genomes[b], &mut rng)
            } else {
                genomes[a].clone()
            };
            if rng.gen_bool(config.mutation_prob) {
                problem.mutate(&mut child, &mut rng);
            }
            children.push(child);
        }
        for child in children {
            let c = problem.evaluate(&child);
            evaluations += 1;
            let s = weighted_sum(&c, weights);
            // Steady-state replacement of the current worst.
            let (worst, _) = scores
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("NaN"))
                .expect("population non-empty");
            if s < scores[worst] {
                genomes[worst] = child;
                costs[worst] = c;
                scores[worst] = s;
            }
        }
    }

    let (best, _) = scores
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("NaN"))
        .expect("population non-empty");
    WsmGaOutcome {
        genome: genomes[best].clone(),
        costs: costs[best].clone(),
        score: scores[best],
        evaluations,
    }
}

fn tournament(scores: &[f64], rng: &mut StdRng) -> usize {
    let a = rng.gen_range(0..scores.len());
    let b = rng.gen_range(0..scores.len());
    if scores[a] <= scores[b] {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nsga2::IntBoxProblem;

    #[test]
    fn raw_weighted_sum() {
        assert_eq!(weighted_sum(&[2.0, 3.0], &[0.5, 1.0]), 4.0);
    }

    #[test]
    fn weights_are_normalized() {
        let wsm = WeightedSumModel::new(&[2.0, 2.0]);
        assert_eq!(wsm.weights(), &[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn zero_weights_panic() {
        let _ = WeightedSumModel::new(&[0.0, 0.0]);
    }

    #[test]
    fn best_index_picks_the_scalar_optimum() {
        let candidates = vec![
            vec![10.0, 1.0], // fast? no: slow-cheap
            vec![1.0, 10.0], // fast-expensive
            vec![5.0, 5.0],  // middle
        ];
        // All weight on objective 0: candidate 1 wins.
        let wsm = WeightedSumModel::new(&[1.0, 0.0]);
        assert_eq!(wsm.best_index(&candidates), Some(1));
        // All weight on objective 1: candidate 0 wins.
        let wsm = WeightedSumModel::new(&[0.0, 1.0]);
        assert_eq!(wsm.best_index(&candidates), Some(0));
        assert_eq!(wsm.best_index(&[]), None);
    }

    #[test]
    fn normalization_makes_scales_comparable() {
        // Objective 0 in thousands, objective 1 in units; equal weights must
        // not be swamped by the big scale.
        let candidates = vec![vec![1000.0, 9.0], vec![9000.0, 1.0], vec![5000.0, 5.0]];
        let wsm = WeightedSumModel::new(&[0.5, 0.5]);
        let scores = wsm.scores(&candidates);
        // Symmetric corners should tie (both are 0.5 after normalization).
        assert!((scores[0] - scores[1]).abs() < 1e-12);
        assert!((scores[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scalarized_ga_finds_the_weighted_optimum() {
        // Cost = (x, 20 - x): the scalar optimum sits at an extreme that
        // depends on the weights.
        let p = IntBoxProblem::new(vec![21], 2, |g| {
            let x = g[0] as f64;
            vec![x, 20.0 - x]
        });
        let cfg = Nsga2Config {
            population: 20,
            generations: 20,
            ..Nsga2Config::default()
        };
        let out = optimize_scalarized(&p, &[0.9, 0.1], cfg);
        assert_eq!(out.genome, vec![0], "weights favour objective 0");
        let out = optimize_scalarized(&p, &[0.1, 0.9], cfg);
        assert_eq!(out.genome, vec![20], "weights favour objective 1");
        assert!(out.evaluations > 0);
    }
}
