//! NSGA-II — the fast elitist multi-objective genetic algorithm
//! (Deb, Pratap, Agarwal, Meyarivan 2002), the optimizer the paper plugs
//! into the IReS Multi-Objective Optimizer.

use crate::pareto::{crowding_distance, fast_non_dominated_sort};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A multi-objective problem NSGA-II can search.
///
/// Genomes are opaque; the problem supplies sampling, variation and
/// evaluation. All randomness flows through the provided RNG so runs are
/// reproducible from the seed in [`Nsga2Config`].
pub trait MooProblem {
    /// Genome representation.
    type Genome: Clone;

    /// Number of (minimized) objectives.
    fn n_objectives(&self) -> usize;

    /// Samples a random genome.
    fn random_genome(&self, rng: &mut StdRng) -> Self::Genome;

    /// Evaluates a genome to its cost vector (all metrics minimized).
    fn evaluate(&self, genome: &Self::Genome) -> Vec<f64>;

    /// Recombines two parents into one child.
    fn crossover(&self, a: &Self::Genome, b: &Self::Genome, rng: &mut StdRng) -> Self::Genome;

    /// Mutates a genome in place.
    fn mutate(&self, genome: &mut Self::Genome, rng: &mut StdRng);
}

/// NSGA-II tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct Nsga2Config {
    /// Population size (also the offspring count per generation).
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Probability of applying crossover (else the first parent is cloned).
    pub crossover_prob: f64,
    /// Probability of mutating each child.
    pub mutation_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Nsga2Config {
            population: 60,
            generations: 50,
            crossover_prob: 0.9,
            mutation_prob: 0.3,
            seed: 42,
        }
    }
}

/// An evaluated individual in the final population.
#[derive(Debug, Clone)]
pub struct RankedIndividual<G> {
    /// The genome.
    pub genome: G,
    /// Its cost vector.
    pub costs: Vec<f64>,
    /// Non-domination rank (0 = Pareto front of the final population).
    pub rank: usize,
}

/// The NSGA-II runner.
pub struct Nsga2<'p, P: MooProblem> {
    problem: &'p P,
    config: Nsga2Config,
}

impl<'p, P: MooProblem> Nsga2<'p, P> {
    /// Binds the algorithm to a problem.
    pub fn new(problem: &'p P, config: Nsga2Config) -> Self {
        Nsga2 { problem, config }
    }

    /// Runs the GA and returns the final population, rank-annotated and
    /// sorted best-first (rank, then crowding). `evaluations` out-param via
    /// the returned tuple counts objective evaluations performed.
    pub fn run(&self) -> (Vec<RankedIndividual<P::Genome>>, usize) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let pop_size = self.config.population.max(2);
        let mut evaluations = 0usize;

        let mut genomes: Vec<P::Genome> = (0..pop_size)
            .map(|_| self.problem.random_genome(&mut rng))
            .collect();
        let mut costs: Vec<Vec<f64>> = genomes
            .iter()
            .map(|g| {
                evaluations += 1;
                self.problem.evaluate(g)
            })
            .collect();

        for _ in 0..self.config.generations {
            let (ranks, crowd) = rank_and_crowd(&costs);

            // Variation: binary tournaments pick parents, crossover+mutation
            // produce pop_size children.
            let mut child_genomes = Vec::with_capacity(pop_size);
            for _ in 0..pop_size {
                let a = tournament(&ranks, &crowd, &mut rng);
                let b = tournament(&ranks, &crowd, &mut rng);
                let mut child = if rng.gen_bool(self.config.crossover_prob) {
                    self.problem.crossover(&genomes[a], &genomes[b], &mut rng)
                } else {
                    genomes[a].clone()
                };
                if rng.gen_bool(self.config.mutation_prob) {
                    self.problem.mutate(&mut child, &mut rng);
                }
                child_genomes.push(child);
            }
            let child_costs: Vec<Vec<f64>> = child_genomes
                .iter()
                .map(|g| {
                    evaluations += 1;
                    self.problem.evaluate(g)
                })
                .collect();

            // Environmental selection over parents + children.
            genomes.extend(child_genomes);
            costs.extend(child_costs);
            let survivors = select_survivors(&costs, pop_size);
            genomes = survivors.iter().map(|&i| genomes[i].clone()).collect();
            costs = survivors.iter().map(|&i| costs[i].clone()).collect();
        }

        // Final ranking for the caller.
        let fronts = fast_non_dominated_sort(&costs);
        let mut rank_of = vec![0usize; costs.len()];
        for (r, front) in fronts.iter().enumerate() {
            for &i in front {
                rank_of[i] = r;
            }
        }
        let (_, crowd) = rank_and_crowd(&costs);
        let mut order: Vec<usize> = (0..costs.len()).collect();
        order.sort_by(|&a, &b| {
            rank_of[a]
                .cmp(&rank_of[b])
                .then(crowd[b].partial_cmp(&crowd[a]).expect("NaN crowding"))
        });
        let result = order
            .into_iter()
            .map(|i| RankedIndividual {
                genome: genomes[i].clone(),
                costs: costs[i].clone(),
                rank: rank_of[i],
            })
            .collect();
        (result, evaluations)
    }

    /// Runs the GA and returns only the final Pareto front (rank 0).
    pub fn pareto_front(&self) -> Vec<RankedIndividual<P::Genome>> {
        let (pop, _) = self.run();
        pop.into_iter().filter(|ind| ind.rank == 0).collect()
    }
}

/// Computes (rank per index, crowding per index) for a whole population.
fn rank_and_crowd(costs: &[Vec<f64>]) -> (Vec<usize>, Vec<f64>) {
    let fronts = fast_non_dominated_sort(costs);
    let mut rank = vec![0usize; costs.len()];
    let mut crowd = vec![0.0f64; costs.len()];
    for (r, front) in fronts.iter().enumerate() {
        let refs: Vec<&[f64]> = front.iter().map(|&i| costs[i].as_slice()).collect();
        let d = crowding_distance(&refs);
        for (&i, &di) in front.iter().zip(d.iter()) {
            rank[i] = r;
            crowd[i] = di;
        }
    }
    (rank, crowd)
}

/// Binary tournament on (rank asc, crowding desc).
fn tournament(ranks: &[usize], crowd: &[f64], rng: &mut StdRng) -> usize {
    let n = ranks.len();
    let a = rng.gen_range(0..n);
    let b = rng.gen_range(0..n);
    if ranks[a] < ranks[b] {
        a
    } else if ranks[b] < ranks[a] {
        b
    } else if crowd[a] >= crowd[b] {
        a
    } else {
        b
    }
}

/// NSGA-II environmental selection: fill by fronts, break the last front by
/// crowding distance. Returns the selected indices.
fn select_survivors(costs: &[Vec<f64>], target: usize) -> Vec<usize> {
    let fronts = fast_non_dominated_sort(costs);
    let mut chosen = Vec::with_capacity(target);
    for front in fronts {
        if chosen.len() + front.len() <= target {
            chosen.extend(front);
            if chosen.len() == target {
                break;
            }
        } else {
            let refs: Vec<&[f64]> = front.iter().map(|&i| costs[i].as_slice()).collect();
            let d = crowding_distance(&refs);
            let mut by_crowd: Vec<usize> = (0..front.len()).collect();
            by_crowd.sort_by(|&a, &b| d[b].partial_cmp(&d[a]).expect("NaN crowding"));
            for &k in by_crowd.iter().take(target - chosen.len()) {
                chosen.push(front[k]);
            }
            break;
        }
    }
    chosen
}

/// A ready-made [`MooProblem`] over integer boxes: genomes are `Vec<usize>`
/// with per-gene cardinalities and a caller-supplied evaluator.
///
/// This matches QEP search spaces exactly: gene 0 = engine assignment,
/// gene 1 = VM count on cloud A, gene 2 = instance type, …
pub struct IntBoxProblem<F>
where
    F: Fn(&[usize]) -> Vec<f64>,
{
    cardinalities: Vec<usize>,
    n_objectives: usize,
    evaluator: F,
}

impl<F> IntBoxProblem<F>
where
    F: Fn(&[usize]) -> Vec<f64>,
{
    /// Builds a problem where gene `i` ranges over `0..cardinalities[i]`.
    ///
    /// Panics if any cardinality is zero.
    pub fn new(cardinalities: Vec<usize>, n_objectives: usize, evaluator: F) -> Self {
        assert!(
            cardinalities.iter().all(|&c| c > 0),
            "every gene needs at least one value"
        );
        IntBoxProblem {
            cardinalities,
            n_objectives,
            evaluator,
        }
    }

    /// Total size of the search space (product of cardinalities), saturating.
    pub fn space_size(&self) -> usize {
        self.cardinalities
            .iter()
            .fold(1usize, |acc, &c| acc.saturating_mul(c))
    }
}

impl<F> MooProblem for IntBoxProblem<F>
where
    F: Fn(&[usize]) -> Vec<f64>,
{
    type Genome = Vec<usize>;

    fn n_objectives(&self) -> usize {
        self.n_objectives
    }

    fn random_genome(&self, rng: &mut StdRng) -> Vec<usize> {
        self.cardinalities
            .iter()
            .map(|&c| rng.gen_range(0..c))
            .collect()
    }

    fn evaluate(&self, genome: &Vec<usize>) -> Vec<f64> {
        (self.evaluator)(genome)
    }

    fn crossover(&self, a: &Vec<usize>, b: &Vec<usize>, rng: &mut StdRng) -> Vec<usize> {
        // Uniform crossover.
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| if rng.gen_bool(0.5) { x } else { y })
            .collect()
    }

    fn mutate(&self, genome: &mut Vec<usize>, rng: &mut StdRng) {
        // Reset one random gene.
        let i = rng.gen_range(0..genome.len());
        genome[i] = rng.gen_range(0..self.cardinalities[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic 2-objective test problem on a discretized segment:
    /// f1 = x, f2 = 1 - x over x in {0, 1/K, ..., 1}. The whole space is
    /// Pareto-optimal, so NSGA-II should spread across it.
    fn segment_problem() -> IntBoxProblem<impl Fn(&[usize]) -> Vec<f64>> {
        const K: usize = 100;
        IntBoxProblem::new(vec![K + 1], 2, move |g| {
            let x = g[0] as f64 / K as f64;
            vec![x, 1.0 - x]
        })
    }

    /// Problem with a unique optimum so convergence is checkable:
    /// f1 = f2 = distance from (3, 4).
    fn convex_problem() -> IntBoxProblem<impl Fn(&[usize]) -> Vec<f64>> {
        IntBoxProblem::new(vec![10, 10], 2, |g| {
            let d = ((g[0] as f64 - 3.0).powi(2) + (g[1] as f64 - 4.0).powi(2)).sqrt();
            vec![d + g[0] as f64 * 0.01, d + g[1] as f64 * 0.01]
        })
    }

    #[test]
    fn finds_the_unique_optimum() {
        let p = convex_problem();
        let nsga = Nsga2::new(&p, Nsga2Config::default());
        let front = nsga.pareto_front();
        assert!(!front.is_empty());
        assert!(
            front.iter().any(|ind| ind.genome == vec![3, 4]),
            "optimum not found; front = {:?}",
            front.iter().map(|i| i.genome.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn front_is_mutually_non_dominated() {
        let p = segment_problem();
        let nsga = Nsga2::new(&p, Nsga2Config::default());
        let front = nsga.pareto_front();
        for a in &front {
            for b in &front {
                assert!(!crate::dominance::pareto_dominates(&a.costs, &b.costs));
            }
        }
    }

    #[test]
    fn front_spreads_over_the_segment() {
        let p = segment_problem();
        let nsga = Nsga2::new(
            &p,
            Nsga2Config {
                population: 40,
                generations: 30,
                ..Nsga2Config::default()
            },
        );
        let front = nsga.pareto_front();
        let xs: Vec<f64> = front.iter().map(|i| i.costs[0]).collect();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 0.5, "front collapsed: [{min}, {max}]");
    }

    #[test]
    fn deterministic_given_seed() {
        let p = convex_problem();
        let cfg = Nsga2Config {
            seed: 7,
            ..Nsga2Config::default()
        };
        let (a, ea) = Nsga2::new(&p, cfg).run();
        let (b, eb) = Nsga2::new(&p, cfg).run();
        assert_eq!(ea, eb);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.genome, y.genome);
            assert_eq!(x.costs, y.costs);
        }
    }

    #[test]
    fn evaluation_budget_is_accounted() {
        let p = convex_problem();
        let cfg = Nsga2Config {
            population: 10,
            generations: 5,
            ..Nsga2Config::default()
        };
        let (_, evals) = Nsga2::new(&p, cfg).run();
        // init pop + one offspring batch per generation
        assert_eq!(evals, 10 + 10 * 5);
    }

    #[test]
    fn space_size_saturates() {
        let p = IntBoxProblem::new(vec![usize::MAX, 2], 1, |_| vec![0.0]);
        assert_eq!(p.space_size(), usize::MAX);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn zero_cardinality_panics() {
        let _ = IntBoxProblem::new(vec![0], 1, |_| vec![0.0]);
    }
}
