//! MOEA/D — multi-objective evolutionary algorithm based on decomposition
//! (Zhang & Li 2007, the paper's reference \[36\]).
//!
//! The multi-objective problem is decomposed into `population` scalar
//! subproblems, one per weight vector spread over the simplex; each
//! subproblem keeps one incumbent and mates within a neighbourhood of
//! similar weights. We use the Tchebycheff scalarization
//! `g(x|w, z*) = max_k w_k·|f_k(x) − z*_k|` with the running ideal point
//! `z*`, which can reach non-convex front regions a weighted sum misses.

use crate::nsga2::{MooProblem, RankedIndividual};
use crate::pareto::fast_non_dominated_sort;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// MOEA/D tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct MoeadConfig {
    /// Number of subproblems (== population size).
    pub population: usize,
    /// Generations.
    pub generations: usize,
    /// Neighbourhood size (mating pool per subproblem).
    pub neighbours: usize,
    /// Probability of applying crossover.
    pub crossover_prob: f64,
    /// Probability of mutating each child.
    pub mutation_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MoeadConfig {
    fn default() -> Self {
        MoeadConfig {
            population: 60,
            generations: 50,
            neighbours: 8,
            crossover_prob: 0.9,
            mutation_prob: 0.3,
            seed: 42,
        }
    }
}

/// The MOEA/D runner (bi-objective and up; weights are spread uniformly
/// for 2 objectives and sampled low-discrepancy for more).
pub struct Moead<'p, P: MooProblem> {
    problem: &'p P,
    config: MoeadConfig,
}

impl<'p, P: MooProblem> Moead<'p, P> {
    /// Binds the algorithm to a problem.
    pub fn new(problem: &'p P, config: MoeadConfig) -> Self {
        Moead { problem, config }
    }

    /// Runs the algorithm; returns the final incumbents annotated with their
    /// non-domination rank, best-first, plus the evaluation count.
    pub fn run(&self) -> (Vec<RankedIndividual<P::Genome>>, usize) {
        let cfg = self.config;
        let n = cfg.population.max(2);
        let m = self.problem.n_objectives();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut evaluations = 0usize;

        // Weight vectors: uniform spread for 2 objectives, seeded simplex
        // samples otherwise.
        let weights: Vec<Vec<f64>> = if m == 2 {
            (0..n)
                .map(|i| {
                    let w = i as f64 / (n - 1) as f64;
                    vec![w.max(1e-6), (1.0 - w).max(1e-6)]
                })
                .collect()
        } else {
            (0..n)
                .map(|_| {
                    let mut w: Vec<f64> = (0..m).map(|_| rng.gen_range(0.01..1.0)).collect();
                    let s: f64 = w.iter().sum();
                    w.iter_mut().for_each(|x| *x /= s);
                    w
                })
                .collect()
        };

        // Neighbourhoods: the T closest weight vectors (Euclidean).
        let t = cfg.neighbours.clamp(2, n);
        let neighbourhoods: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| {
                    dist2(&weights[i], &weights[a])
                        .partial_cmp(&dist2(&weights[i], &weights[b]))
                        .expect("finite weights")
                });
                order.truncate(t);
                order
            })
            .collect();

        // Initial incumbents and the ideal point.
        let mut genomes: Vec<P::Genome> = (0..n)
            .map(|_| self.problem.random_genome(&mut rng))
            .collect();
        let mut costs: Vec<Vec<f64>> = genomes
            .iter()
            .map(|g| {
                evaluations += 1;
                self.problem.evaluate(g)
            })
            .collect();
        let mut ideal: Vec<f64> = (0..m)
            .map(|k| costs.iter().map(|c| c[k]).fold(f64::INFINITY, f64::min))
            .collect();

        for _ in 0..cfg.generations {
            for i in 0..n {
                // Mate within the neighbourhood.
                let hood = &neighbourhoods[i];
                let a = hood[rng.gen_range(0..hood.len())];
                let b = hood[rng.gen_range(0..hood.len())];
                let mut child = if rng.gen_bool(cfg.crossover_prob) {
                    self.problem.crossover(&genomes[a], &genomes[b], &mut rng)
                } else {
                    genomes[a].clone()
                };
                if rng.gen_bool(cfg.mutation_prob) {
                    self.problem.mutate(&mut child, &mut rng);
                }
                let child_cost = self.problem.evaluate(&child);
                evaluations += 1;
                for k in 0..m {
                    ideal[k] = ideal[k].min(child_cost[k]);
                }
                // Update neighbours whose subproblem the child improves.
                for &j in hood {
                    let incumbent = tchebycheff(&costs[j], &weights[j], &ideal);
                    let challenger = tchebycheff(&child_cost, &weights[j], &ideal);
                    if challenger < incumbent {
                        genomes[j] = child.clone();
                        costs[j] = child_cost.clone();
                    }
                }
            }
        }

        // Rank the final incumbents for the caller.
        let fronts = fast_non_dominated_sort(&costs);
        let mut rank = vec![0usize; n];
        for (r, front) in fronts.iter().enumerate() {
            for &i in front {
                rank[i] = r;
            }
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| rank[i]);
        let pop = order
            .into_iter()
            .map(|i| RankedIndividual {
                genome: genomes[i].clone(),
                costs: costs[i].clone(),
                rank: rank[i],
            })
            .collect();
        (pop, evaluations)
    }

    /// Runs the algorithm and keeps only the final Pareto front.
    pub fn pareto_front(&self) -> Vec<RankedIndividual<P::Genome>> {
        let (pop, _) = self.run();
        pop.into_iter().filter(|ind| ind.rank == 0).collect()
    }
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Tchebycheff scalarization with ideal point `z*`.
fn tchebycheff(costs: &[f64], weights: &[f64], ideal: &[f64]) -> f64 {
    costs
        .iter()
        .zip(weights.iter())
        .zip(ideal.iter())
        .map(|((c, w), z)| w * (c - z).abs())
        .fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nsga2::IntBoxProblem;

    /// Concave front: f1 = x/K, f2 = sqrt(1 - f1²)-ish — regions plain WSM
    /// cannot reach but Tchebycheff can.
    fn concave_problem() -> IntBoxProblem<impl Fn(&[usize]) -> Vec<f64>> {
        const K: usize = 100;
        IntBoxProblem::new(vec![K + 1], 2, move |g| {
            let x = g[0] as f64 / K as f64;
            vec![x, (1.0 - x * x).max(0.0).sqrt()]
        })
    }

    #[test]
    fn covers_the_concave_front() {
        let p = concave_problem();
        let front = Moead::new(&p, MoeadConfig::default()).pareto_front();
        assert!(front.len() > 10, "front too small: {}", front.len());
        // Mid-front coverage: some member near f1 ≈ 0.7 (the concave bulge).
        assert!(
            front.iter().any(|ind| (ind.costs[0] - 0.7).abs() < 0.1),
            "no member near the concave middle"
        );
        // Mutual non-domination.
        for a in &front {
            for b in &front {
                assert!(!crate::dominance::pareto_dominates(&a.costs, &b.costs));
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let p = concave_problem();
        let (a, ea) = Moead::new(&p, MoeadConfig::default()).run();
        let (b, eb) = Moead::new(&p, MoeadConfig::default()).run();
        assert_eq!(ea, eb);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.genome, y.genome);
        }
    }

    #[test]
    fn ideal_point_tracking_reaches_extremes() {
        let p = concave_problem();
        let front = Moead::new(
            &p,
            MoeadConfig {
                population: 40,
                generations: 40,
                ..MoeadConfig::default()
            },
        )
        .pareto_front();
        let min_f1 = front.iter().map(|i| i.costs[0]).fold(f64::INFINITY, f64::min);
        let min_f2 = front.iter().map(|i| i.costs[1]).fold(f64::INFINITY, f64::min);
        assert!(min_f1 < 0.05, "extreme of objective 1 missed: {min_f1}");
        assert!(min_f2 < 0.1, "extreme of objective 2 missed: {min_f2}");
    }

    #[test]
    fn tchebycheff_math() {
        assert_eq!(tchebycheff(&[2.0, 5.0], &[1.0, 1.0], &[0.0, 0.0]), 5.0);
        assert_eq!(tchebycheff(&[2.0, 5.0], &[1.0, 0.1], &[0.0, 0.0]), 2.0);
        // At the ideal point the scalarization is zero.
        assert_eq!(tchebycheff(&[1.0, 1.0], &[0.5, 0.5], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn three_objective_smoke() {
        let p = IntBoxProblem::new(vec![10, 10, 10], 3, |g| {
            vec![g[0] as f64, g[1] as f64, g[2] as f64]
        });
        let front = Moead::new(
            &p,
            MoeadConfig {
                population: 30,
                generations: 20,
                ..MoeadConfig::default()
            },
        )
        .pareto_front();
        // The all-zero point dominates everything else; it must be found.
        assert!(front.iter().any(|i| i.costs == vec![0.0, 0.0, 0.0]));
    }
}
