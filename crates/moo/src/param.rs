//! Parametric dominance — Eq. 2–4 of the paper, on a discretized parameter
//! space.
//!
//! In multi-objective *parametric* query optimization (Trummer & Koch, the
//! paper's ref \[32\]), plan costs depend on parameters unknown at optimization
//! time (selectivities, data sizes, cluster load). The paper defines:
//!
//! * `Dom(p1, p2) ⊆ X` — the parameter region where `p1` weakly dominates
//!   `p2` (Eq. 2),
//! * `StriDom(p1, p2)` — strict version (Eq. 3),
//! * `PaReg(p)` — the Pareto region of `p`: parameters where *no* plan
//!   strictly dominates it (Eq. 4).
//!
//! We realize `X` as an explicit grid of sample points, which is how such
//! regions are computed in practice for non-linear cost functions.

use crate::dominance;

/// A discretized parameter space: explicit sample points of `X ⊆ R^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParameterGrid {
    points: Vec<Vec<f64>>,
}

impl ParameterGrid {
    /// Builds a grid from explicit points (all must share one dimension).
    ///
    /// Panics on ragged input.
    pub fn new(points: Vec<Vec<f64>>) -> Self {
        if let Some(first) = points.first() {
            assert!(
                points.iter().all(|p| p.len() == first.len()),
                "grid points must share dimensionality"
            );
        }
        ParameterGrid { points }
    }

    /// Cartesian product of per-axis sample values.
    pub fn cartesian(axes: &[Vec<f64>]) -> Self {
        let mut points: Vec<Vec<f64>> = vec![Vec::new()];
        for axis in axes {
            let mut next = Vec::with_capacity(points.len() * axis.len());
            for p in &points {
                for &v in axis {
                    let mut q = p.clone();
                    q.push(v);
                    next.push(q);
                }
            }
            points = next;
        }
        ParameterGrid { points }
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The sample points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }
}

/// A plan whose cost vector is a function of the parameter vector `x`.
pub trait ParametricPlan {
    /// Evaluates the cost vector at parameter point `x`.
    fn costs_at(&self, x: &[f64]) -> Vec<f64>;
}

impl<F> ParametricPlan for F
where
    F: Fn(&[f64]) -> Vec<f64>,
{
    fn costs_at(&self, x: &[f64]) -> Vec<f64> {
        self(x)
    }
}

/// `Dom(p1, p2)` (Eq. 2): indices of grid points where `p1` weakly dominates
/// `p2` on every metric.
pub fn dom_region<P1: ParametricPlan, P2: ParametricPlan>(
    p1: &P1,
    p2: &P2,
    grid: &ParameterGrid,
) -> Vec<usize> {
    grid.points()
        .iter()
        .enumerate()
        .filter(|(_, x)| dominance::dominates(&p1.costs_at(x), &p2.costs_at(x)))
        .map(|(i, _)| i)
        .collect()
}

/// `StriDom(p1, p2)` (Eq. 3): grid points where `p1` strictly dominates `p2`.
pub fn stridom_region<P1: ParametricPlan, P2: ParametricPlan>(
    p1: &P1,
    p2: &P2,
    grid: &ParameterGrid,
) -> Vec<usize> {
    grid.points()
        .iter()
        .enumerate()
        .filter(|(_, x)| dominance::strictly_dominates(&p1.costs_at(x), &p2.costs_at(x)))
        .map(|(i, _)| i)
        .collect()
}

/// `PaReg(p)` (Eq. 4): grid points where no alternative plan strictly
/// dominates `p` — i.e. `X \ ∪_{p*} StriDom(p*, p)`.
pub fn pareto_region<P: ParametricPlan + ?Sized>(
    plan: &P,
    alternatives: &[&dyn ParametricPlan],
    grid: &ParameterGrid,
) -> Vec<usize> {
    grid.points()
        .iter()
        .enumerate()
        .filter(|(_, x)| {
            let c = plan.costs_at(x);
            !alternatives
                .iter()
                .any(|alt| dominance::strictly_dominates(&alt.costs_at(x), &c))
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two linear plans crossing at x = 5 (single parameter, single metric
    /// pair): p1 = (x, 10), p2 = (10 - ... ) etc.
    fn plan_a(x: &[f64]) -> Vec<f64> {
        vec![x[0], 10.0]
    }
    fn plan_b(x: &[f64]) -> Vec<f64> {
        vec![10.0 - x[0], 10.0]
    }

    fn unit_grid() -> ParameterGrid {
        ParameterGrid::cartesian(&[(0..=10).map(|i| i as f64).collect()])
    }

    #[test]
    fn cartesian_grid_size() {
        let g = ParameterGrid::cartesian(&[vec![0.0, 1.0], vec![0.0, 1.0, 2.0]]);
        assert_eq!(g.len(), 6);
        assert!(!g.is_empty());
        assert_eq!(g.points()[0].len(), 2);
    }

    #[test]
    fn dom_region_is_the_halfspace() {
        let g = unit_grid();
        // a dominates b where x <= 10 - x, i.e. x <= 5.
        let region = dom_region(&plan_a, &plan_b, &g);
        let xs: Vec<f64> = region.iter().map(|&i| g.points()[i][0]).collect();
        assert_eq!(xs, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn stridom_excludes_ties() {
        let g = unit_grid();
        // Second metric always ties, so strict dominance never holds.
        let region = stridom_region(&plan_a, &plan_b, &g);
        assert!(region.is_empty());

        // Drop the tying metric: strict dominance where x < 5.
        let a = |x: &[f64]| vec![x[0]];
        let b = |x: &[f64]| vec![10.0 - x[0]];
        let region = stridom_region(&a, &b, &g);
        let xs: Vec<f64> = region.iter().map(|&i| g.points()[i][0]).collect();
        assert_eq!(xs, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn pareto_region_covers_everything_with_ties() {
        let g = unit_grid();
        let alts: Vec<&dyn ParametricPlan> = vec![&plan_b];
        // plan_a is never strictly dominated (metric 2 ties), so PaReg = X.
        let region = pareto_region(&plan_a, &alts, &g);
        assert_eq!(region.len(), g.len());
    }

    #[test]
    fn pareto_region_shrinks_under_strict_competition() {
        let g = unit_grid();
        let a = |x: &[f64]| vec![x[0], x[0]];
        let b = |x: &[f64]| vec![10.0 - x[0], 10.0 - x[0]];
        let alts: Vec<&dyn ParametricPlan> = vec![&b];
        // b strictly dominates a where 10 - x < x, i.e. x > 5.
        let region = pareto_region(&a, &alts, &g);
        let xs: Vec<f64> = region.iter().map(|&i| g.points()[i][0]).collect();
        assert_eq!(xs, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn pareto_regions_of_all_plans_cover_the_grid() {
        // Union over plans of PaReg(p) must be X: at every point some plan
        // is non-dominated.
        let g = unit_grid();
        let a = |x: &[f64]| vec![x[0], 10.0 - x[0]];
        let b = |x: &[f64]| vec![10.0 - x[0], x[0]];
        let c = |_x: &[f64]| vec![5.0, 5.0];
        let plans: Vec<&dyn ParametricPlan> = vec![&a, &b, &c];
        let mut covered = vec![false; g.len()];
        for (i, p) in plans.iter().enumerate() {
            let alts: Vec<&dyn ParametricPlan> = plans
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, q)| *q)
                .collect();
            for idx in pareto_region(*p, &alts, &g) {
                covered[idx] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "a grid point has no Pareto plan");
    }

    #[test]
    #[should_panic(expected = "share dimensionality")]
    fn ragged_grid_panics() {
        let _ = ParameterGrid::new(vec![vec![1.0], vec![1.0, 2.0]]);
    }
}
