//! Front-quality indicators used by the Figure 3 experiment and the
//! optimizer ablation benches.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Exact 2-D hypervolume of a front w.r.t. a reference point (minimization):
/// the area dominated by the front and bounded by `reference`.
///
/// Points not strictly better than the reference in both coordinates
/// contribute nothing. Returns 0 for an empty front.
pub fn hypervolume_2d(front: &[Vec<f64>], reference: &[f64; 2]) -> f64 {
    let mut pts: Vec<(f64, f64)> = front
        .iter()
        .filter(|c| c[0] < reference[0] && c[1] < reference[1])
        .map(|c| (c[0], c[1]))
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    // Sort by first objective ascending; sweep keeping the best (lowest)
    // second objective so dominated points add no area.
    pts.sort_by(|a, b| a.partial_cmp(b).expect("NaN cost"));
    let mut volume = 0.0;
    let mut prev_y = reference[1];
    let mut prev_x = f64::NEG_INFINITY;
    for (x, y) in pts {
        if x == prev_x {
            continue; // same x: only the first (lowest y) matters
        }
        if y < prev_y {
            volume += (reference[0] - x) * (prev_y - y);
            prev_y = y;
            prev_x = x;
        }
    }
    volume
}

/// Monte-Carlo hypervolume for any dimensionality (seeded, deterministic).
///
/// Samples `n_samples` points uniformly in the box `[ideal, reference]` and
/// returns the dominated fraction times the box volume. `ideal` defaults to
/// the component-wise minimum of the front when `None`.
pub fn hypervolume_mc(
    front: &[Vec<f64>],
    reference: &[f64],
    ideal: Option<&[f64]>,
    n_samples: usize,
    seed: u64,
) -> f64 {
    if front.is_empty() || n_samples == 0 {
        return 0.0;
    }
    let m = reference.len();
    let ideal: Vec<f64> = match ideal {
        Some(v) => v.to_vec(),
        None => (0..m)
            .map(|k| {
                front
                    .iter()
                    .map(|c| c[k])
                    .fold(f64::INFINITY, f64::min)
            })
            .collect(),
    };
    let box_volume: f64 = reference
        .iter()
        .zip(ideal.iter())
        .map(|(r, i)| (r - i).max(0.0))
        .product();
    if box_volume <= 0.0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dominated = 0usize;
    let mut sample = vec![0.0; m];
    for _ in 0..n_samples {
        for k in 0..m {
            sample[k] = rng.gen_range(ideal[k]..=reference[k]);
        }
        if front
            .iter()
            .any(|c| c.iter().zip(sample.iter()).all(|(ci, si)| ci <= si))
        {
            dominated += 1;
        }
    }
    box_volume * dominated as f64 / n_samples as f64
}

/// Schott's spacing metric: standard deviation of nearest-neighbour
/// (L1) distances within the front. 0 means perfectly even spacing;
/// `None` for fronts with fewer than 2 points.
pub fn spacing(front: &[Vec<f64>]) -> Option<f64> {
    if front.len() < 2 {
        return None;
    }
    let d: Vec<f64> = front
        .iter()
        .enumerate()
        .map(|(i, a)| {
            front
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, b)| {
                    a.iter()
                        .zip(b.iter())
                        .map(|(x, y)| (x - y).abs())
                        .sum::<f64>()
                })
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let mean = d.iter().sum::<f64>() / d.len() as f64;
    let var = d.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / d.len() as f64;
    Some(var.sqrt())
}

/// Coverage (Zitzler's C-metric): the fraction of `b` weakly dominated by at
/// least one member of `a`. `C(a,b) = 1` means `a` covers all of `b`.
pub fn coverage(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    if b.is_empty() {
        return 0.0;
    }
    let covered = b
        .iter()
        .filter(|bc| a.iter().any(|ac| crate::dominance::dominates(ac, bc)))
        .count();
    covered as f64 / b.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hv2d_single_point() {
        let hv = hypervolume_2d(&[vec![1.0, 1.0]], &[3.0, 3.0]);
        assert!((hv - 4.0).abs() < 1e-12);
    }

    #[test]
    fn hv2d_staircase() {
        // Two points forming an L: (1,2) and (2,1) with ref (3,3).
        let hv = hypervolume_2d(&[vec![1.0, 2.0], vec![2.0, 1.0]], &[3.0, 3.0]);
        // Area = 2x1 rectangle + 1x2 rectangle - 1x1 overlap = 3.
        assert!((hv - 3.0).abs() < 1e-12);
    }

    #[test]
    fn hv2d_dominated_point_adds_nothing() {
        let base = hypervolume_2d(&[vec![1.0, 1.0]], &[3.0, 3.0]);
        let with_dom = hypervolume_2d(&[vec![1.0, 1.0], vec![2.0, 2.0]], &[3.0, 3.0]);
        assert!((base - with_dom).abs() < 1e-12);
    }

    #[test]
    fn hv2d_point_outside_reference_is_ignored() {
        let hv = hypervolume_2d(&[vec![4.0, 4.0]], &[3.0, 3.0]);
        assert_eq!(hv, 0.0);
        assert_eq!(hypervolume_2d(&[], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn hv_mc_approximates_exact_2d() {
        let front = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let exact = hypervolume_2d(&front, &[3.0, 3.0]);
        let approx = hypervolume_mc(&front, &[3.0, 3.0], Some(&[0.0, 0.0]), 40_000, 99);
        assert!(
            (exact - approx).abs() / exact < 0.05,
            "exact {exact} vs mc {approx}"
        );
    }

    #[test]
    fn hv_mc_is_deterministic() {
        let front = vec![vec![1.0, 1.0, 1.0]];
        let a = hypervolume_mc(&front, &[2.0, 2.0, 2.0], None, 1000, 5);
        let b = hypervolume_mc(&front, &[2.0, 2.0, 2.0], None, 1000, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn spacing_uniform_front_is_zero() {
        let front = vec![vec![0.0, 3.0], vec![1.0, 2.0], vec![2.0, 1.0], vec![3.0, 0.0]];
        let s = spacing(&front).unwrap();
        assert!(s.abs() < 1e-12);
        assert!(spacing(&[vec![1.0]]).is_none());
    }

    #[test]
    fn coverage_basics() {
        let strong = vec![vec![0.0, 0.0]];
        let weak = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        assert_eq!(coverage(&strong, &weak), 1.0);
        assert_eq!(coverage(&weak, &strong), 0.0);
        assert_eq!(coverage(&strong, &[]), 0.0);
    }
}
