//! Algorithm 2 — `BestInPareto`: final plan selection from a Pareto set.
//!
//! ```text
//! function BESTINPARETO(P, S, B)
//!     PB ← { p ∈ P | ∀n ≤ |B| : cn(p) ≤ Bn }
//!     if PB ≠ ∅: return argmin_{p ∈ PB} WeightSum(p, S)
//!     else:      return argmin_{p ∈ P } WeightSum(p, S)
//! ```
//!
//! `B` is the user's per-metric budget (constraints), `S` the weighted-sum
//! preferences of the user policy. When no plan satisfies every budget, the
//! paper falls back to the weighted-sum best of the whole Pareto set.

use crate::wsm::WeightedSumModel;

/// Per-metric upper bounds; `None` leaves a metric unconstrained.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Constraints {
    bounds: Vec<Option<f64>>,
}

impl Constraints {
    /// No constraints on any of `n_metrics` metrics.
    pub fn none(n_metrics: usize) -> Self {
        Constraints {
            bounds: vec![None; n_metrics],
        }
    }

    /// Constraints from explicit optional bounds.
    pub fn from_bounds(bounds: Vec<Option<f64>>) -> Self {
        Constraints { bounds }
    }

    /// Sets an upper bound for one metric (builder style).
    pub fn with_bound(mut self, metric: usize, bound: f64) -> Self {
        if metric >= self.bounds.len() {
            self.bounds.resize(metric + 1, None);
        }
        self.bounds[metric] = Some(bound);
        self
    }

    /// True when `costs` satisfies every bound.
    pub fn satisfied_by(&self, costs: &[f64]) -> bool {
        self.bounds
            .iter()
            .zip(costs.iter())
            .all(|(b, c)| b.is_none_or(|bound| *c <= bound))
    }

    /// The raw bounds.
    pub fn bounds(&self) -> &[Option<f64>] {
        &self.bounds
    }
}

/// Algorithm 2: picks the best plan index from `pareto_costs`.
///
/// Returns `None` only when `pareto_costs` is empty. The weighted-sum scores
/// are min–max normalized over whichever candidate subset is being ranked
/// (the budget-satisfying subset when non-empty, the full set otherwise).
pub fn best_in_pareto(
    pareto_costs: &[Vec<f64>],
    weights: &WeightedSumModel,
    constraints: &Constraints,
) -> Option<usize> {
    if pareto_costs.is_empty() {
        return None;
    }
    let feasible: Vec<usize> = (0..pareto_costs.len())
        .filter(|&i| constraints.satisfied_by(&pareto_costs[i]))
        .collect();
    let pool: Vec<usize> = if feasible.is_empty() {
        (0..pareto_costs.len()).collect()
    } else {
        feasible
    };
    let subset: Vec<Vec<f64>> = pool.iter().map(|&i| pareto_costs[i].clone()).collect();
    weights.best_index(&subset).map(|k| pool[k])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn front() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 100.0], // fastest, most expensive
            vec![5.0, 40.0],
            vec![10.0, 10.0],
            vec![30.0, 2.0], // slowest, cheapest
        ]
    }

    #[test]
    fn unconstrained_follows_weights() {
        let wsm_time = WeightedSumModel::new(&[1.0, 0.0]);
        let wsm_money = WeightedSumModel::new(&[0.0, 1.0]);
        let none = Constraints::none(2);
        assert_eq!(best_in_pareto(&front(), &wsm_time, &none), Some(0));
        assert_eq!(best_in_pareto(&front(), &wsm_money, &none), Some(3));
    }

    #[test]
    fn budget_filters_candidates() {
        // Money budget of 20 rules out the two expensive plans.
        let wsm_time = WeightedSumModel::new(&[1.0, 0.0]);
        let budget = Constraints::none(2).with_bound(1, 20.0);
        assert_eq!(best_in_pareto(&front(), &wsm_time, &budget), Some(2));
    }

    #[test]
    fn infeasible_budget_falls_back_to_whole_set() {
        // Nothing satisfies time <= 0.5; Algorithm 2 then ranks the full set.
        let wsm = WeightedSumModel::new(&[0.5, 0.5]);
        let impossible = Constraints::none(2).with_bound(0, 0.5);
        let got = best_in_pareto(&front(), &wsm, &impossible);
        let unconstrained = best_in_pareto(&front(), &wsm, &Constraints::none(2));
        assert_eq!(got, unconstrained);
    }

    #[test]
    fn empty_front_returns_none() {
        let wsm = WeightedSumModel::new(&[1.0]);
        assert_eq!(best_in_pareto(&[], &wsm, &Constraints::none(1)), None);
    }

    #[test]
    fn constraints_builder_and_check() {
        let c = Constraints::none(1).with_bound(2, 7.0);
        assert_eq!(c.bounds().len(), 3);
        assert!(c.satisfied_by(&[100.0, 100.0, 7.0]));
        assert!(!c.satisfied_by(&[0.0, 0.0, 7.1]));
        let all = Constraints::from_bounds(vec![Some(1.0), None]);
        assert!(all.satisfied_by(&[1.0, 999.0]));
        assert!(!all.satisfied_by(&[1.1, 0.0]));
    }

    #[test]
    fn single_feasible_plan_wins_regardless_of_weights() {
        let wsm = WeightedSumModel::new(&[1.0, 0.0]);
        let budget = Constraints::none(2).with_bound(0, 31.0).with_bound(1, 3.0);
        assert_eq!(best_in_pareto(&front(), &wsm, &budget), Some(3));
    }
}
