//! NSGA-G — NSGA with Grid-based selection.
//!
//! The paper's reference \[22\] is the authors' own BPOD@BigData 2018
//! algorithm: keep NSGA-II's non-dominated sorting but replace the
//! crowding-distance tie-break of the *last* front with a grid partition of
//! objective space — members of sparsely populated grid cells survive first,
//! which costs less than crowding sort and keeps diversity on many-objective
//! problems. We implement that selection rule on top of the [`crate::nsga2`]
//! machinery.

use crate::nsga2::{MooProblem, Nsga2Config, RankedIndividual};
use crate::pareto::fast_non_dominated_sort;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// NSGA-G tuning knobs: the NSGA-II knobs plus the grid resolution.
#[derive(Debug, Clone, Copy)]
pub struct NsgaGConfig {
    /// Shared GA parameters.
    pub base: Nsga2Config,
    /// Number of grid divisions per objective.
    pub divisions: usize,
}

impl Default for NsgaGConfig {
    fn default() -> Self {
        NsgaGConfig {
            base: Nsga2Config::default(),
            divisions: 8,
        }
    }
}

/// The NSGA-G runner.
pub struct NsgaG<'p, P: MooProblem> {
    problem: &'p P,
    config: NsgaGConfig,
}

impl<'p, P: MooProblem> NsgaG<'p, P> {
    /// Binds the algorithm to a problem.
    pub fn new(problem: &'p P, config: NsgaGConfig) -> Self {
        NsgaG { problem, config }
    }

    /// Runs the GA; returns the final population sorted by rank and the
    /// number of objective evaluations.
    pub fn run(&self) -> (Vec<RankedIndividual<P::Genome>>, usize) {
        let cfg = self.config.base;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let pop_size = cfg.population.max(2);
        let mut evaluations = 0usize;

        let mut genomes: Vec<P::Genome> = (0..pop_size)
            .map(|_| self.problem.random_genome(&mut rng))
            .collect();
        let mut costs: Vec<Vec<f64>> = genomes
            .iter()
            .map(|g| {
                evaluations += 1;
                self.problem.evaluate(g)
            })
            .collect();

        for _ in 0..cfg.generations {
            let ranks = rank_of(&costs);
            let mut children = Vec::with_capacity(pop_size);
            for _ in 0..pop_size {
                let a = tournament_by_rank(&ranks, &mut rng);
                let b = tournament_by_rank(&ranks, &mut rng);
                let mut child = if rng.gen_bool(cfg.crossover_prob) {
                    self.problem.crossover(&genomes[a], &genomes[b], &mut rng)
                } else {
                    genomes[a].clone()
                };
                if rng.gen_bool(cfg.mutation_prob) {
                    self.problem.mutate(&mut child, &mut rng);
                }
                children.push(child);
            }
            let child_costs: Vec<Vec<f64>> = children
                .iter()
                .map(|g| {
                    evaluations += 1;
                    self.problem.evaluate(g)
                })
                .collect();
            genomes.extend(children);
            costs.extend(child_costs);

            let keep = grid_select(&costs, pop_size, self.config.divisions, &mut rng);
            genomes = keep.iter().map(|&i| genomes[i].clone()).collect();
            costs = keep.iter().map(|&i| costs[i].clone()).collect();
        }

        let fronts = fast_non_dominated_sort(&costs);
        let mut rank = vec![0usize; costs.len()];
        for (r, front) in fronts.iter().enumerate() {
            for &i in front {
                rank[i] = r;
            }
        }
        let mut order: Vec<usize> = (0..costs.len()).collect();
        order.sort_by_key(|&i| rank[i]);
        let result = order
            .into_iter()
            .map(|i| RankedIndividual {
                genome: genomes[i].clone(),
                costs: costs[i].clone(),
                rank: rank[i],
            })
            .collect();
        (result, evaluations)
    }

    /// Runs the GA and keeps only the final Pareto front.
    pub fn pareto_front(&self) -> Vec<RankedIndividual<P::Genome>> {
        let (pop, _) = self.run();
        pop.into_iter().filter(|ind| ind.rank == 0).collect()
    }
}

fn rank_of(costs: &[Vec<f64>]) -> Vec<usize> {
    let fronts = fast_non_dominated_sort(costs);
    let mut rank = vec![0usize; costs.len()];
    for (r, front) in fronts.iter().enumerate() {
        for &i in front {
            rank[i] = r;
        }
    }
    rank
}

fn tournament_by_rank(ranks: &[usize], rng: &mut StdRng) -> usize {
    let n = ranks.len();
    let a = rng.gen_range(0..n);
    let b = rng.gen_range(0..n);
    if ranks[a] <= ranks[b] {
        a
    } else {
        b
    }
}

/// Grid cell id of a cost vector under `divisions` per-objective bins within
/// `[lo, hi]` bounds.
fn cell_of(c: &[f64], lo: &[f64], hi: &[f64], divisions: usize) -> Vec<usize> {
    c.iter()
        .zip(lo.iter().zip(hi.iter()))
        .map(|(&v, (&l, &h))| {
            if h <= l {
                0
            } else {
                (((v - l) / (h - l) * divisions as f64) as usize).min(divisions - 1)
            }
        })
        .collect()
}

/// NSGA-G environmental selection: fill whole fronts, then resolve the
/// overflowing front by repeatedly picking a random occupied grid cell and
/// taking one member from it — members of sparse cells thus enjoy higher
/// survival probability.
fn grid_select(
    costs: &[Vec<f64>],
    target: usize,
    divisions: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let fronts = fast_non_dominated_sort(costs);
    let mut keep = Vec::with_capacity(target);
    for front in fronts {
        if keep.len() + front.len() <= target {
            keep.extend(front);
            if keep.len() == target {
                break;
            }
            continue;
        }
        // Partition the overflowing front into grid cells.
        let m = costs[front[0]].len();
        let mut lo = vec![f64::INFINITY; m];
        let mut hi = vec![f64::NEG_INFINITY; m];
        for &i in &front {
            for k in 0..m {
                lo[k] = lo[k].min(costs[i][k]);
                hi[k] = hi[k].max(costs[i][k]);
            }
        }
        let mut cells: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
        for &i in &front {
            let id = cell_of(&costs[i], &lo, &hi, divisions.max(1));
            match cells.iter_mut().find(|(cid, _)| *cid == id) {
                Some((_, members)) => members.push(i),
                None => cells.push((id, vec![i])),
            }
        }
        while keep.len() < target {
            let c = rng.gen_range(0..cells.len());
            let members = &mut cells[c].1;
            if members.is_empty() {
                cells.swap_remove(c);
                continue;
            }
            let j = rng.gen_range(0..members.len());
            keep.push(members.swap_remove(j));
            if members.is_empty() {
                cells.swap_remove(c);
            }
            if cells.is_empty() {
                break;
            }
        }
        break;
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nsga2::IntBoxProblem;

    fn convex_problem() -> IntBoxProblem<impl Fn(&[usize]) -> Vec<f64>> {
        IntBoxProblem::new(vec![12, 12], 2, |g| {
            let x = g[0] as f64;
            let y = g[1] as f64;
            vec![(x - 5.0).abs() + 0.1 * y, (y - 5.0).abs() + 0.1 * x]
        })
    }

    #[test]
    fn converges_near_the_good_region() {
        let p = convex_problem();
        let (pop, _) = NsgaG::new(&p, NsgaGConfig::default()).run();
        assert_eq!(pop[0].rank, 0);
        // The sweet spot is around (5,5): both costs ≈ 0.5. The front may
        // legitimately contain extreme trade-offs too, so check that *some*
        // front member sits near the knee.
        let knee = pop
            .iter()
            .filter(|ind| ind.rank == 0)
            .map(|ind| ind.costs[0] + ind.costs[1])
            .fold(f64::INFINITY, f64::min);
        assert!(knee < 4.0, "NSGA-G front has no point near the knee: {knee}");
    }

    #[test]
    fn front_is_mutually_non_dominated() {
        let p = convex_problem();
        let front = NsgaG::new(&p, NsgaGConfig::default()).pareto_front();
        for a in &front {
            for b in &front {
                assert!(!crate::dominance::pareto_dominates(&a.costs, &b.costs));
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let p = convex_problem();
        let cfg = NsgaGConfig::default();
        let (a, _) = NsgaG::new(&p, cfg).run();
        let (b, _) = NsgaG::new(&p, cfg).run();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.genome, y.genome);
        }
    }

    #[test]
    fn grid_select_respects_target() {
        let mut rng = StdRng::seed_from_u64(1);
        let costs: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 7) as f64, (i % 11) as f64])
            .collect();
        let keep = grid_select(&costs, 15, 4, &mut rng);
        assert_eq!(keep.len(), 15);
        // No duplicates.
        let mut sorted = keep.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 15);
    }

    #[test]
    fn cell_of_degenerate_bounds() {
        let id = cell_of(&[1.0, 2.0], &[1.0, 0.0], &[1.0, 4.0], 4);
        assert_eq!(id[0], 0); // degenerate axis collapses to cell 0
        assert_eq!(id[1], 2);
    }
}
