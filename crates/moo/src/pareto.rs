//! Pareto-front extraction, fast non-dominated sort, crowding distance.
//!
//! These are the NSGA-II primitives (Deb et al. 2002) and also what the IReS
//! Multi-Objective Optimizer uses to turn a set of estimated plan-cost
//! vectors into a Pareto plan set.

use crate::dominance::pareto_dominates;

/// Indices of the non-dominated cost vectors (the Pareto front).
///
/// Duplicated cost vectors are all kept — they do not dominate each other.
pub fn pareto_front_indices(costs: &[Vec<f64>]) -> Vec<usize> {
    (0..costs.len())
        .filter(|&i| {
            !costs
                .iter()
                .enumerate()
                .any(|(j, c)| j != i && pareto_dominates(c, &costs[i]))
        })
        .collect()
}

/// Fast non-dominated sort: partitions indices into fronts `F₁, F₂, …` where
/// `F₁` is the Pareto front, `F₂` the front once `F₁` is removed, and so on.
///
/// Runs in `O(M·n²)` like the original formulation.
pub fn fast_non_dominated_sort(costs: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = costs.len();
    if n == 0 {
        return Vec::new();
    }
    // dominated_by[i] = set of indices i dominates; counts[i] = #dominators.
    let mut dominated: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut counts = vec![0usize; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if pareto_dominates(&costs[i], &costs[j]) {
                dominated[i].push(j);
                counts[j] += 1;
            } else if pareto_dominates(&costs[j], &costs[i]) {
                dominated[j].push(i);
                counts[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| counts[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominated[i] {
                counts[j] -= 1;
                if counts[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
    }
    fronts
}

/// NSGA-II crowding distance of each member of one front.
///
/// Boundary members per objective get `f64::INFINITY`; inner members get the
/// sum of normalized neighbour gaps. Degenerate objectives (all equal)
/// contribute zero.
pub fn crowding_distance(front_costs: &[&[f64]]) -> Vec<f64> {
    let n = front_costs.len();
    let mut dist = vec![0.0; n];
    if n == 0 {
        return dist;
    }
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    let m = front_costs[0].len();
    let mut order: Vec<usize> = (0..n).collect();
    for k in 0..m {
        order.sort_by(|&a, &b| {
            front_costs[a][k]
                .partial_cmp(&front_costs[b][k])
                .expect("NaN cost")
        });
        let lo = front_costs[order[0]][k];
        let hi = front_costs[order[n - 1]][k];
        dist[order[0]] = f64::INFINITY;
        dist[order[n - 1]] = f64::INFINITY;
        let range = hi - lo;
        if range <= 0.0 {
            continue;
        }
        for w in 1..(n - 1) {
            let gap = front_costs[order[w + 1]][k] - front_costs[order[w - 1]][k];
            dist[order[w]] += gap / range;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 5.0], // front 1
            vec![2.0, 3.0], // front 1
            vec![4.0, 1.0], // front 1
            vec![3.0, 4.0], // dominated by [2,3]
            vec![5.0, 5.0], // dominated by everything above
        ]
    }

    #[test]
    fn front_indices() {
        let f = pareto_front_indices(&costs());
        assert_eq!(f, vec![0, 1, 2]);
    }

    #[test]
    fn duplicates_stay_on_front() {
        let cs = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        assert_eq!(pareto_front_indices(&cs), vec![0, 1]);
    }

    #[test]
    fn sort_produces_ordered_fronts() {
        let fronts = fast_non_dominated_sort(&costs());
        assert_eq!(fronts.len(), 3);
        let mut f0 = fronts[0].clone();
        f0.sort_unstable();
        assert_eq!(f0, vec![0, 1, 2]);
        assert_eq!(fronts[1], vec![3]);
        assert_eq!(fronts[2], vec![4]);
    }

    #[test]
    fn sort_empty_and_single() {
        assert!(fast_non_dominated_sort(&[]).is_empty());
        let fronts = fast_non_dominated_sort(&[vec![1.0]]);
        assert_eq!(fronts, vec![vec![0]]);
    }

    #[test]
    fn every_front_is_mutually_non_dominated() {
        let cs: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let x = (i as f64 * 0.7).sin().abs() * 10.0;
                let y = (i as f64 * 1.3).cos().abs() * 10.0;
                vec![x, y]
            })
            .collect();
        for front in fast_non_dominated_sort(&cs) {
            for &i in &front {
                for &j in &front {
                    assert!(
                        !crate::dominance::pareto_dominates(&cs[i], &cs[j]),
                        "front member {i} dominates {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn crowding_boundaries_are_infinite() {
        let cs = [
            vec![1.0, 5.0],
            vec![2.0, 3.0],
            vec![3.0, 2.0],
            vec![4.0, 1.0],
        ];
        let refs: Vec<&[f64]> = cs.iter().map(|c| c.as_slice()).collect();
        let d = crowding_distance(&refs);
        assert!(d[0].is_infinite());
        assert!(d[3].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
        assert!(d[2].is_finite() && d[2] > 0.0);
    }

    #[test]
    fn crowding_small_fronts() {
        let cs = [vec![1.0, 2.0]];
        let refs: Vec<&[f64]> = cs.iter().map(|c| c.as_slice()).collect();
        assert_eq!(crowding_distance(&refs), vec![f64::INFINITY]);
        assert!(crowding_distance(&[]).is_empty());
    }

    #[test]
    fn crowding_degenerate_objective() {
        // Second objective constant: only the first contributes.
        let cs = [
            vec![1.0, 7.0],
            vec![2.0, 7.0],
            vec![5.0, 7.0],
        ];
        let refs: Vec<&[f64]> = cs.iter().map(|c| c.as_slice()).collect();
        let d = crowding_distance(&refs);
        assert!(d[0].is_infinite() && d[2].is_infinite());
        assert!((d[1] - 1.0).abs() < 1e-12); // (5-1)/(5-1)
    }
}
