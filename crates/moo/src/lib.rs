//! # midas-moo
//!
//! Multi-objective optimization for Multi-Objective Query Processing (MOQP).
//!
//! The paper's pipeline (Section 3, Figure 3): after the Modelling module
//! predicts a cost *vector* per candidate query execution plan, a
//! multi-objective optimizer builds a **Pareto plan set**, and Algorithm 2
//! (`BestInPareto`) picks the final plan with the user's constraints `B` and
//! weighted-sum scores `S`. The paper motivates NSGA-II over a pure Weighted
//! Sum Model because re-weighting a WSM requires a fresh optimization run and
//! small weight changes can swing the result.
//!
//! Contents:
//!
//! * [`dominance`] — Pareto dominance over cost vectors (all metrics
//!   minimized), Eq. 1–3.
//! * [`pareto`] — Pareto-front extraction, fast non-dominated sort and
//!   crowding distance (the NSGA-II building blocks).
//! * [`nsga2`] — NSGA-II (Deb et al. 2002) over a pluggable
//!   [`nsga2::MooProblem`].
//! * [`nsgag`] — NSGA-G (Le, Kantere, d'Orazio 2018): NSGA-II with
//!   grid-based survival selection, the authors' own follow-up baseline.
//! * [`moead`] — MOEA/D (Zhang & Li 2007, the paper's ref \[36\]):
//!   Tchebycheff decomposition with neighbourhood mating.
//! * [`wsm`] — the Weighted Sum Model (Helff & Orazio 2016) with
//!   min–max normalization, plus a scalarized GA for the Figure 3 contrast.
//! * [`select`] — Algorithm 2: `BestInPareto` under constraints.
//! * [`param`] — parametric dominance over a parameter space: `Dom`,
//!   `StriDom` and the Pareto region `PaReg` of Eq. 2–4 on a discretized
//!   grid (after Trummer & Koch's multi-objective parametric optimization).
//! * [`indicators`] — front-quality indicators (2-D exact hypervolume,
//!   Monte-Carlo hypervolume for higher dimensions, spacing, coverage).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Objective-wise loops index on purpose (k-th objective of every member).
#![allow(clippy::needless_range_loop)]

pub mod dominance;
pub mod indicators;
pub mod moead;
pub mod nsga2;
pub mod nsgag;
pub mod param;
pub mod pareto;
pub mod select;
pub mod wsm;

pub use dominance::{dominates, strictly_dominates, Dominance};
pub use nsga2::{IntBoxProblem, MooProblem, Nsga2, Nsga2Config, RankedIndividual};
pub use moead::{Moead, MoeadConfig};
pub use nsgag::{NsgaG, NsgaGConfig};
pub use pareto::{crowding_distance, fast_non_dominated_sort, pareto_front_indices};
pub use select::{best_in_pareto, Constraints};
pub use wsm::{weighted_sum, WeightedSumModel};
