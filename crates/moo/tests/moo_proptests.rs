//! Property-based tests of the multi-objective machinery.

use midas_moo::indicators::{hypervolume_2d, spacing};
use midas_moo::select::Constraints;
use midas_moo::{
    best_in_pareto, crowding_distance, dominates, fast_non_dominated_sort, strictly_dominates,
    WeightedSumModel,
};
use proptest::prelude::*;

fn cost_vecs(dims: usize, n: impl Into<proptest::collection::SizeRange>) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0..100.0f64, dims), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dominance is a partial order: reflexive (weakly), antisymmetric in
    /// the strict form, and transitive.
    #[test]
    fn dominance_laws(
        a in proptest::collection::vec(0.0..10.0f64, 3),
        b in proptest::collection::vec(0.0..10.0f64, 3),
        c in proptest::collection::vec(0.0..10.0f64, 3),
    ) {
        prop_assert!(dominates(&a, &a), "weak dominance is reflexive");
        prop_assert!(!strictly_dominates(&a, &a), "strict dominance is irreflexive");
        if strictly_dominates(&a, &b) {
            prop_assert!(!strictly_dominates(&b, &a), "antisymmetry");
        }
        if dominates(&a, &b) && dominates(&b, &c) {
            prop_assert!(dominates(&a, &c), "transitivity");
        }
    }

    /// Fronts are a partition: every index appears exactly once, and
    /// members of front k+1 are each dominated by someone in front k.
    #[test]
    fn sort_partitions_and_layers(costs in cost_vecs(2, 1..25)) {
        let fronts = fast_non_dominated_sort(&costs);
        let mut seen = vec![false; costs.len()];
        for front in &fronts {
            for &i in front {
                prop_assert!(!seen[i], "index {} in two fronts", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some index missing");
        for w in fronts.windows(2) {
            for &j in &w[1] {
                prop_assert!(
                    w[0].iter().any(|&i| midas_moo::dominance::pareto_dominates(&costs[i], &costs[j])),
                    "front member {} not dominated by the previous layer", j
                );
            }
        }
    }

    /// Crowding distances are non-negative and at least two members of any
    /// front (size >= 2) are boundary-infinite.
    #[test]
    fn crowding_properties(costs in cost_vecs(2, 2..20)) {
        let front = midas_moo::pareto_front_indices(&costs);
        let refs: Vec<&[f64]> = front.iter().map(|&i| costs[i].as_slice()).collect();
        let d = crowding_distance(&refs);
        prop_assert!(d.iter().all(|&x| x >= 0.0));
        let infinite = d.iter().filter(|x| x.is_infinite()).count();
        prop_assert!(infinite >= 2.min(d.len()));
    }

    /// Adding a dominated point never changes the 2-D hypervolume.
    #[test]
    fn hypervolume_ignores_dominated_points(costs in cost_vecs(2, 1..15)) {
        let reference = [150.0, 150.0];
        let hv = hypervolume_2d(&costs, &reference);
        // Duplicate the worst point, shifted to be strictly dominated.
        let mut extended = costs.clone();
        let worst: Vec<f64> = (0..2)
            .map(|k| costs.iter().map(|c| c[k]).fold(0.0f64, f64::max) + 1.0)
            .collect();
        extended.push(worst);
        let hv2 = hypervolume_2d(&extended, &reference);
        prop_assert!((hv - hv2).abs() < 1e-9);
        // Hypervolume is monotone: adding any point cannot shrink it.
        prop_assert!(hv2 + 1e-12 >= hv);
    }

    /// Algorithm 2 always returns a feasible plan when one exists.
    #[test]
    fn best_in_pareto_feasibility(
        costs in cost_vecs(2, 1..20),
        bound in 10.0..90.0f64,
        w in 0.05..0.95f64,
    ) {
        let weights = WeightedSumModel::new(&[w, 1.0 - w]);
        let constraints = Constraints::none(2).with_bound(0, bound);
        let pick = best_in_pareto(&costs, &weights, &constraints).expect("non-empty");
        let any_feasible = costs.iter().any(|c| c[0] <= bound);
        if any_feasible {
            prop_assert!(costs[pick][0] <= bound + 1e-12,
                "picked infeasible plan though feasible ones exist");
        }
    }

    /// WSM scores are scale-invariant thanks to min-max normalization.
    #[test]
    fn wsm_scale_invariance(costs in cost_vecs(2, 2..15), scale in 1.0..1000.0f64) {
        let weights = WeightedSumModel::new(&[0.4, 0.6]);
        let best_a = weights.best_index(&costs);
        let scaled: Vec<Vec<f64>> = costs.iter()
            .map(|c| vec![c[0] * scale, c[1]])
            .collect();
        let best_b = weights.best_index(&scaled);
        // The argmin may tie, so compare achieved scores instead of indices.
        if let (Some(a), Some(b)) = (best_a, best_b) {
            let sa = weights.scores(&costs)[a];
            let sb = weights.scores(&scaled)[b];
            prop_assert!((sa - sb).abs() < 1e-9, "{sa} vs {sb}");
        }
    }

    /// Spacing is zero for two-point fronts and finite otherwise.
    #[test]
    fn spacing_sanity(costs in cost_vecs(2, 2..12)) {
        if let Some(s) = spacing(&costs) {
            prop_assert!(s.is_finite());
            prop_assert!(s >= 0.0);
        }
        prop_assert_eq!(spacing(&costs[..1]), None);
    }
}
