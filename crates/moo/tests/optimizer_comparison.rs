//! Cross-algorithm integration tests: NSGA-II, NSGA-G and MOEA/D on shared
//! benchmark problems, judged by the indicators module.

use midas_moo::indicators::{coverage, hypervolume_2d};
use midas_moo::{
    IntBoxProblem, Moead, MoeadConfig, Nsga2, Nsga2Config, NsgaG, NsgaGConfig, WeightedSumModel,
};

/// Discretized ZDT1-flavoured problem: convex front f2 = 1 - sqrt(f1).
fn zdt1ish() -> IntBoxProblem<impl Fn(&[usize]) -> Vec<f64>> {
    const K: usize = 200;
    IntBoxProblem::new(vec![K + 1, 5], 2, move |g| {
        let x = g[0] as f64 / K as f64;
        let noise = g[1] as f64 * 0.02; // a second gene that only hurts
        vec![x + noise, 1.0 - x.sqrt() + noise]
    })
}

fn front_of(costs: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    costs
}

#[test]
fn all_three_algorithms_cover_the_convex_front() {
    let p = zdt1ish();
    let reference = [2.0, 2.0];

    let nsga2_front = front_of(
        Nsga2::new(&p, Nsga2Config::default())
            .pareto_front()
            .into_iter()
            .map(|i| i.costs)
            .collect(),
    );
    let nsgag_front = front_of(
        NsgaG::new(&p, NsgaGConfig::default())
            .pareto_front()
            .into_iter()
            .map(|i| i.costs)
            .collect(),
    );
    let moead_front = front_of(
        Moead::new(&p, MoeadConfig::default())
            .pareto_front()
            .into_iter()
            .map(|i| i.costs)
            .collect(),
    );

    // The true front's hypervolume w.r.t. (2,2) is ~3.67; all three
    // algorithms must come reasonably close.
    for (name, front) in [
        ("nsga2", &nsga2_front),
        ("nsga_g", &nsgag_front),
        ("moea_d", &moead_front),
    ] {
        let hv = hypervolume_2d(front, &reference);
        assert!(hv > 3.3, "{name} hypervolume {hv} too low ({} pts)", front.len());
    }
}

#[test]
fn nsga2_is_not_dominated_wholesale_by_the_others() {
    let p = zdt1ish();
    let nsga2_front: Vec<Vec<f64>> = Nsga2::new(&p, Nsga2Config::default())
        .pareto_front()
        .into_iter()
        .map(|i| i.costs)
        .collect();
    let moead_front: Vec<Vec<f64>> = Moead::new(&p, MoeadConfig::default())
        .pareto_front()
        .into_iter()
        .map(|i| i.costs)
        .collect();
    // Neither front fully covers the other (both are decent approximations).
    let c_ab = coverage(&nsga2_front, &moead_front);
    let c_ba = coverage(&moead_front, &nsga2_front);
    assert!(c_ab < 1.0 || c_ba < 1.0);
    // And each covers at least part of the other.
    assert!(c_ab + c_ba > 0.0);
}

#[test]
fn weighted_sum_cannot_reach_a_concave_front_interior() {
    // Concave front: f2 = sqrt(1 - f1^2). WSM over the *true front points*
    // always selects an extreme; Tchebycheff-based MOEA/D keeps interior
    // points. This is the classic WSM limitation the paper's Section 2.6
    // alludes to.
    const K: usize = 100;
    let front: Vec<Vec<f64>> = (0..=K)
        .map(|i| {
            let x = i as f64 / K as f64;
            vec![x, (1.0 - x * x).sqrt()]
        })
        .collect();
    for w in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let wsm = WeightedSumModel::new(&[w, 1.0 - w]);
        // Raw weighted sum over the concave front: optimum at an endpoint.
        let best = front
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let sa = w * a[0] + (1.0 - w) * a[1];
                let sb = w * b[0] + (1.0 - w) * b[1];
                sa.partial_cmp(&sb).expect("finite")
            })
            .map(|(i, _)| i)
            .expect("front non-empty");
        assert!(
            best == 0 || best == K,
            "raw weighted sum picked interior point {best} at w={w}"
        );
        let _ = wsm; // normalized scores are exercised elsewhere
    }
}

#[test]
fn ranked_population_is_sorted_by_rank() {
    let p = zdt1ish();
    let (pop, _) = NsgaG::new(&p, NsgaGConfig::default()).run();
    for w in pop.windows(2) {
        assert!(w[0].rank <= w[1].rank);
    }
    let (pop, _) = Moead::new(&p, MoeadConfig::default()).run();
    for w in pop.windows(2) {
        assert!(w[0].rank <= w[1].rank);
    }
}
