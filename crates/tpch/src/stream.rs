//! The streaming medical workload: hospitals ingest while tenants query.
//!
//! The paper's setting is a *live* federation — new records keep arriving
//! as hospitals admit patients, while other tenants run their analytic
//! queries. This module turns that into a deterministic event tape:
//! interleaved **ingest events** (delta batches from a
//! [`DeltaStream`] — new orders plus their lineitems, one atomic catalog
//! version bump each) and **query events** (Q12–Q17 instances drawn from
//! per-tenant split-seeded [`WorkloadGenerator`] streams, exactly the mix
//! the runtime benches use).
//!
//! The tape is a pure function of `(db shape, spec)`: a streaming runtime
//! consuming it concurrently and a sequential oracle replaying it
//! event-by-event see bit-identical deltas and bit-identical query
//! parameters — which is what makes the snapshot-isolation harnesses able
//! to pin results against per-version standalone execution.

use crate::gen::{DeltaStream, TpchDb};
use crate::queries::QueryId;
use crate::workload::WorkloadGenerator;
use midas_engines::data::Table;
use midas_engines::sim::split_seed;
use crate::TwoTableQuery;

/// One event of the streaming tape.
#[derive(Debug, Clone)]
pub enum StreamEvent {
    /// A hospital ingest wave: `(table, delta)` pairs to publish as one
    /// atomic catalog version bump.
    Ingest {
        /// Index of the ingest batch in the tape (0-based).
        batch: u64,
        /// The delta tables.
        deltas: Vec<(String, Table)>,
    },
    /// A tenant query submission.
    Query {
        /// The submitting tenant.
        tenant: String,
        /// Position of this query in the tape's submission order.
        sequence: usize,
        /// The bound query instance.
        query: Box<TwoTableQuery>,
    },
}

/// Shape of a [`streaming_workload`] tape.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Base seed; split per tenant and per delta batch.
    pub seed: u64,
    /// Tenant names; tenant `t` cycles through the paper's query classes
    /// with its own parameter stream.
    pub tenants: Vec<String>,
    /// Rounds; each round submits one query per tenant.
    pub rounds: usize,
    /// Emit an ingest event after every `ingest_every` queries (0 = never).
    pub ingest_every: usize,
    /// New orders per ingest batch.
    pub orders_per_batch: usize,
}

impl StreamSpec {
    /// The default four-hospital mix used by the benches.
    pub fn hospitals(seed: u64, rounds: usize) -> Self {
        StreamSpec {
            seed,
            tenants: ["hospital-A", "hospital-B", "hospital-C", "hospital-D"]
                .map(String::from)
                .to_vec(),
            rounds,
            ingest_every: 3,
            orders_per_batch: 60,
        }
    }
}

/// Builds the deterministic event tape for `spec` over `db` (see the
/// module docs). Queries appear in round-robin tenant order per round;
/// after every `ingest_every` queries the next [`DeltaStream`] batch is
/// spliced in.
pub fn streaming_workload(db: &TpchDb, spec: &StreamSpec) -> Vec<StreamEvent> {
    let classes = QueryId::PAPER_SET;
    let mut deltas = DeltaStream::new(db, split_seed(spec.seed, 0xD417A));
    // One instance stream per (tenant, class), generated once up front
    // (round `r` takes element `r` — identical to popping the last of the
    // first `r + 1`, without regenerating the prefix every round).
    let instances: Vec<Vec<_>> = (0..spec.tenants.len())
        .map(|t| {
            let stream = WorkloadGenerator::new(split_seed(spec.seed, t as u64));
            classes
                .iter()
                .map(|&class| stream.instances(class, spec.rounds))
                .collect::<Vec<_>>()
        })
        .collect();
    let mut events = Vec::new();
    let mut sequence = 0usize;
    // `round` both indexes the per-class streams *and* rotates the class
    // pick, so an iterator rewrite would obscure the tape definition.
    #[allow(clippy::needless_range_loop)]
    for round in 0..spec.rounds {
        for (t, tenant) in spec.tenants.iter().enumerate() {
            let class_idx = (round + t) % classes.len();
            let instance = instances[t][class_idx][round].clone();
            events.push(StreamEvent::Query {
                tenant: tenant.clone(),
                sequence,
                query: Box::new(instance.query),
            });
            sequence += 1;
            if spec.ingest_every > 0 && sequence.is_multiple_of(spec.ingest_every) {
                let delta = deltas.next_batch(spec.orders_per_batch);
                events.push(StreamEvent::Ingest {
                    batch: delta.batch,
                    deltas: delta.into_batch(),
                });
            }
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenConfig;

    fn tape() -> (TpchDb, Vec<StreamEvent>) {
        let db = TpchDb::generate(GenConfig::new(0.002, 5));
        let events = streaming_workload(&db, &StreamSpec::hospitals(7, 3));
        (db, events)
    }

    #[test]
    fn tape_interleaves_queries_and_ingest() {
        let (_, events) = tape();
        let queries = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Query { .. }))
            .count();
        let ingests = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Ingest { .. }))
            .count();
        assert_eq!(queries, 12, "3 rounds x 4 tenants");
        assert_eq!(ingests, 4, "one ingest per 3 queries");
        // Sequences are the query submission order.
        let seqs: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                StreamEvent::Query { sequence, .. } => Some(*sequence),
                _ => None,
            })
            .collect();
        assert_eq!(seqs, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn tape_is_deterministic_and_applies_cleanly() {
        let (db, events) = tape();
        let again = streaming_workload(&db, &StreamSpec::hospitals(7, 3));
        assert_eq!(events.len(), again.len());
        for (a, b) in events.iter().zip(again.iter()) {
            match (a, b) {
                (
                    StreamEvent::Query {
                        tenant: ta,
                        query: qa,
                        ..
                    },
                    StreamEvent::Query {
                        tenant: tb,
                        query: qb,
                        ..
                    },
                ) => {
                    assert_eq!(ta, tb);
                    assert_eq!(qa.label, qb.label);
                }
                (
                    StreamEvent::Ingest { deltas: da, .. },
                    StreamEvent::Ingest { deltas: db_, .. },
                ) => {
                    assert_eq!(da, db_);
                }
                // LINT: panic-ok — replay-oracle assertion in a test
                // helper: two identically seeded tapes must agree.
                _ => panic!("tapes diverged in event kind"),
            }
        }
        // Every ingest batch appends cleanly as one version bump.
        let versioned = db.versioned_catalog();
        for event in events {
            if let StreamEvent::Ingest { deltas, .. } = event {
                let receipt = versioned.append_batch(deltas).unwrap();
                assert!(receipt.stats.shared_bytes > 0);
            }
        }
        assert_eq!(versioned.version(), 4);
    }

    #[test]
    fn tenants_draw_distinct_parameter_streams() {
        let (_, events) = tape();
        let mut labels_by_tenant: std::collections::HashMap<&str, Vec<&str>> =
            std::collections::HashMap::new();
        for e in &events {
            if let StreamEvent::Query { tenant, query, .. } = e {
                labels_by_tenant
                    .entry(tenant.as_str())
                    .or_default()
                    .push(query.label.as_str());
            }
        }
        assert_eq!(labels_by_tenant.len(), 4);
        let a = &labels_by_tenant["hospital-A"];
        let b = &labels_by_tenant["hospital-B"];
        assert_ne!(a, b, "tenants must not share one parameter stream");
    }
}
