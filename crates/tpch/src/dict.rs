//! Dictionaries for the low-cardinality string columns.
//!
//! Ship modes (7 values), order priorities (5), part brands (25) and part
//! containers (40) are tiny, closed domains; storing them as UTF-8 strings
//! makes every predicate and group-by on them compare byte strings. Under
//! [`crate::gen::StringEncoding::Dictionary`] the generator emits these
//! columns as integer *codes* instead (stored in the engine's native
//! `Int64` columns), so predicates and group-by compare machine words, and
//! this module holds the code ↔ string mappings.
//!
//! Code assignment is positional in the spec's value order — the same order
//! the generator draws from — so encoding never perturbs the generated RNG
//! stream: a plain and a dictionary-encoded database from one seed hold the
//! same logical rows, which is what the `dictionary_differential` test
//! pins.

use crate::gen::{CONTAINER_KINDS, CONTAINER_SIZES, PRIORITIES, SHIP_MODES};
use std::collections::HashMap;

/// An ordered, closed value domain with positional codes.
#[derive(Debug, Clone)]
pub struct Dictionary {
    values: Vec<String>,
    index: HashMap<String, u32>,
}

impl Dictionary {
    /// Builds a dictionary; a value's code is its position.
    pub fn new(values: impl IntoIterator<Item = String>) -> Self {
        let values: Vec<String> = values.into_iter().collect();
        let index = values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i as u32))
            .collect();
        Dictionary { values, index }
    }

    /// The code of a value, if it belongs to the domain.
    pub fn code(&self, value: &str) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// The value of a code, if in range.
    pub fn decode(&self, code: u32) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }

    /// Domain cardinality.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for an empty domain.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The values in code order.
    pub fn values(&self) -> &[String] {
        &self.values
    }
}

/// The four dictionary-encoded TPC-H column domains.
#[derive(Debug, Clone)]
pub struct TpchDictionaries {
    /// `l_shipmode` (7 values).
    pub ship_mode: Dictionary,
    /// `o_orderpriority` (5 values).
    pub priority: Dictionary,
    /// `p_brand` (25 values, `Brand#MN` with `M, N ∈ 1..=5`).
    pub brand: Dictionary,
    /// `p_container` (40 values, size × kind).
    pub container: Dictionary,
}

impl TpchDictionaries {
    /// The process-wide cached instance of [`TpchDictionaries::spec`] —
    /// query builders consult it on every construction, so the 77 domain
    /// strings and their hash indices are built exactly once.
    pub fn cached() -> &'static Self {
        static SPEC: std::sync::OnceLock<TpchDictionaries> = std::sync::OnceLock::new();
        SPEC.get_or_init(Self::spec)
    }

    /// The spec-ordered dictionaries matching the generator's code layout.
    pub fn spec() -> Self {
        let brand = (1..=5)
            .flat_map(|m| (1..=5).map(move |n| format!("Brand#{m}{n}")))
            .collect::<Vec<_>>();
        let container = CONTAINER_SIZES
            .iter()
            .flat_map(|s| CONTAINER_KINDS.iter().map(move |k| format!("{s} {k}")))
            .collect::<Vec<_>>();
        TpchDictionaries {
            ship_mode: Dictionary::new(SHIP_MODES.iter().map(|s| s.to_string())),
            priority: Dictionary::new(PRIORITIES.iter().map(|s| s.to_string())),
            brand: Dictionary::new(brand),
            container: Dictionary::new(container),
        }
    }

    /// The dictionary backing a `(table, column)` pair, if that column is
    /// dictionary-encoded.
    pub fn for_column(&self, table: &str, column: &str) -> Option<&Dictionary> {
        match (table, column) {
            ("lineitem", "l_shipmode") => Some(&self.ship_mode),
            ("orders", "o_orderpriority") => Some(&self.priority),
            ("part", "p_brand") => Some(&self.brand),
            ("part", "p_container") => Some(&self.container),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_positional_and_roundtrip() {
        let d = TpchDictionaries::spec();
        assert_eq!(d.ship_mode.len(), 7);
        assert_eq!(d.priority.len(), 5);
        assert_eq!(d.brand.len(), 25);
        assert_eq!(d.container.len(), 40);
        for dict in [&d.ship_mode, &d.priority, &d.brand, &d.container] {
            assert!(!dict.is_empty());
            for (i, v) in dict.values().iter().enumerate() {
                assert_eq!(dict.code(v), Some(i as u32));
                assert_eq!(dict.decode(i as u32), Some(v.as_str()));
            }
            assert_eq!(dict.code("no such value"), None);
            assert_eq!(dict.decode(dict.len() as u32), None);
        }
    }

    #[test]
    fn brand_and_container_codes_match_the_generator_formula() {
        let d = TpchDictionaries::spec();
        // Generator draws m, n in 1..=5 and codes (m-1)*5 + (n-1).
        assert_eq!(d.brand.code("Brand#11"), Some(0));
        assert_eq!(d.brand.code("Brand#23"), Some(7));
        assert_eq!(d.brand.code("Brand#55"), Some(24));
        // Generator draws size s in 0..5, kind k in 0..8 and codes s*8 + k.
        assert_eq!(d.container.code("SM CASE"), Some(0));
        assert_eq!(d.container.code("MED BOX"), Some(9));
        assert_eq!(d.container.code("WRAP DRUM"), Some(39));
    }

    #[test]
    fn column_lookup_covers_exactly_the_encoded_columns() {
        let d = TpchDictionaries::spec();
        assert!(d.for_column("lineitem", "l_shipmode").is_some());
        assert!(d.for_column("orders", "o_orderpriority").is_some());
        assert!(d.for_column("part", "p_brand").is_some());
        assert!(d.for_column("part", "p_container").is_some());
        assert!(d.for_column("part", "p_type").is_none());
        assert!(d.for_column("orders", "o_comment").is_none());
    }
}
