//! The paper's four two-table TPC-H queries as federated plan templates.
//!
//! Section 4.2: "In TPC-H benchmark, the queries related to two tables are
//! 12, 13, 14 and 17. These queries with two tables in two different
//! databases, such as Hive and PostgreSQL, are studied."
//!
//! Each query is factored into three plans:
//!
//! * `left_prepare` — scan + pushed-down filters + projection over the left
//!   base table, executed where that table lives;
//! * `right_prepare` — likewise for the right table;
//! * `combine` — the join and everything above it, executed at the chosen
//!   join site, reading the prepared sides as `@frag0` / `@frag1`.
//!
//! One deviation is documented inline: Q13's `o_comment NOT LIKE
//! '%special%requests%'` (ordered wildcards) is approximated with
//! `NOT (contains 'special' AND contains 'requests')`, which has comparable
//! selectivity under our comment generator.

use crate::dates::{add_months, ymd};
use crate::dict::TpchDictionaries;
use crate::gen::StringEncoding;
use midas_engines::data::Table;
use midas_engines::error::EngineError;
use midas_engines::expr::Expr;
use midas_engines::ops::{AggExpr, JoinType, PhysicalPlan, WorkProfile};
use midas_engines::version::CatalogVersion;
use midas_engines::{execute_fused_versioned, execute_fused_with_partitions, Catalog, Value};

/// Which of the paper's queries a template instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryId {
    /// Q12 — shipping modes and order priority.
    Q12,
    /// Q13 — customer order-count distribution.
    Q13,
    /// Q14 — promotion effect.
    Q14,
    /// Q17 — small-quantity-order revenue.
    Q17,
}

impl QueryId {
    /// The four queries of the paper's evaluation, in paper order.
    pub const PAPER_SET: [QueryId; 4] = [QueryId::Q12, QueryId::Q13, QueryId::Q14, QueryId::Q17];

    /// Display number ("12", "13", …).
    pub fn number(&self) -> u32 {
        match self {
            QueryId::Q12 => 12,
            QueryId::Q13 => 13,
            QueryId::Q14 => 14,
            QueryId::Q17 => 17,
        }
    }
}

/// A parameterized two-table federated query.
#[derive(Debug, Clone)]
pub struct TwoTableQuery {
    /// Which TPC-H query this is.
    pub id: QueryId,
    /// Human-readable label including the parameter binding.
    pub label: String,
    /// Left base table name.
    pub left_table: String,
    /// Right base table name.
    pub right_table: String,
    /// Site-local plan over the left table.
    pub left_prepare: PhysicalPlan,
    /// Site-local plan over the right table.
    pub right_prepare: PhysicalPlan,
    /// Join-site plan over `@frag0` (prepared left) and `@frag1` (right).
    pub combine: PhysicalPlan,
}

impl TwoTableQuery {
    /// The query class ("Q12", "Medical", …) under which executions are
    /// recorded and learned: the label up to its parameter binding. The
    /// sequential session and the concurrent runtime both key their
    /// Modelling state by this, so it must have exactly one definition.
    pub fn class(&self) -> &str {
        self.label.split('(').next().unwrap_or(&self.label)
    }

    /// Runs the whole three-plan pipeline locally through `exec` (either
    /// [`midas_engines::ops::execute`] or
    /// [`midas_engines::ops::execute_scalar`]), wiring the prepared sides
    /// into the catalog as `@frag0` / `@frag1`.
    ///
    /// `catalog` must hold the query's base tables; the fragment entries
    /// are (re)inserted in place, so repeated calls — as in the
    /// scalar-vs-vectorized benchmarks — don't re-clone the base data.
    /// Returns the final table plus the three work profiles in execution
    /// order (left prepare, right prepare, combine).
    pub fn execute_local<E>(
        &self,
        catalog: &mut Catalog,
        exec: E,
    ) -> Result<(Table, [WorkProfile; 3]), EngineError>
    where
        E: Fn(&PhysicalPlan, &Catalog) -> Result<(Table, WorkProfile), EngineError>,
    {
        let (left, left_profile) = exec(&self.left_prepare, catalog)?;
        let (right, right_profile) = exec(&self.right_prepare, catalog)?;
        catalog.insert("@frag0".to_string(), left);
        catalog.insert("@frag1".to_string(), right);
        let (out, combine_profile) = exec(&self.combine, catalog)?;
        Ok((out, [left_profile, right_profile, combine_profile]))
    }

    /// Runs the whole three-plan pipeline **chunk-native**: both prepares
    /// execute against `version` through the morsel-driven fused executor
    /// (scans iterate chunks directly — no snapshot is ever compacted),
    /// and the combine runs fused over the prepared `@frag0` / `@frag1`
    /// fragments. Results and work profiles are bit-identical to
    /// [`TwoTableQuery::execute_local`] with the vectorized executor on
    /// the pinned flat catalog.
    pub fn execute_fused_chunked(
        &self,
        version: &CatalogVersion,
        partition_degree: usize,
    ) -> Result<(Table, [WorkProfile; 3]), EngineError> {
        let (left, left_profile) =
            execute_fused_versioned(&self.left_prepare, version, partition_degree)?;
        let (right, right_profile) =
            execute_fused_versioned(&self.right_prepare, version, partition_degree)?;
        let mut frags = Catalog::new();
        frags.insert("@frag0".to_string(), left);
        frags.insert("@frag1".to_string(), right);
        let (out, combine_profile) =
            execute_fused_with_partitions(&self.combine, &frags, partition_degree)?;
        Ok((out, [left_profile, right_profile, combine_profile]))
    }

    /// Fingerprint of the query's result executed *standalone* against
    /// `catalog` — no federation, simulation or scheduling involved. The
    /// relational result is a pure function of `(query, catalog)`, which
    /// makes this the **snapshot-isolation oracle**: a runtime's
    /// `result_fingerprint` for a job must equal this, evaluated on the
    /// catalog version the job pinned at admission. Defined once here so
    /// the bench gate and the integration tests can never assert against
    /// diverging oracles.
    pub fn standalone_fingerprint(&self, catalog: &Catalog) -> Result<u64, EngineError> {
        let mut catalog = catalog.clone();
        let (out, _) = self.execute_local(&mut catalog, midas_engines::ops::execute)?;
        Ok(out.fingerprint())
    }
}

fn scan(t: &str) -> Box<PhysicalPlan> {
    Box::new(PhysicalPlan::Scan {
        table: t.to_string(),
    })
}

/// A literal from a dictionary-encodable column domain: the value's code
/// under [`StringEncoding::Dictionary`], or the string itself when plain.
///
/// A value outside the domain encodes as `-1`, a code no row carries — the
/// exact analogue of a string literal no row equals — so both encodings
/// agree that an unknown parameter selects nothing.
fn domain_literal(encoding: StringEncoding, dict: &crate::dict::Dictionary, value: &str) -> Value {
    match encoding {
        StringEncoding::Plain => Value::Utf8(value.to_string()),
        StringEncoding::Dictionary => {
            Value::Int64(dict.code(value).map_or(-1, |code| code as i64))
        }
    }
}

/// TPC-H Q12: for lineitems shipped by two given modes and received within a
/// year, count lines from high-priority vs other orders, per ship mode.
pub fn q12(mode1: &str, mode2: &str, year: i32) -> TwoTableQuery {
    q12_with(StringEncoding::Plain, mode1, mode2, year)
}

/// [`q12`] against a database of the given string encoding: under
/// [`StringEncoding::Dictionary`] the ship-mode and priority predicates (and
/// the ship-mode group-by) compare dictionary codes instead of strings.
///
/// `encoding` must match the database's layout
/// ([`crate::gen::TpchDb::encoding`]); a mismatch type-mismatches every
/// domain predicate and silently selects nothing.
pub fn q12_with(encoding: StringEncoding, mode1: &str, mode2: &str, year: i32) -> TwoTableQuery {
    let dicts = TpchDictionaries::cached();
    // lineitem columns: 0 okey 1 pkey 2 skey 3 qty 4 extprice 5 disc
    //                   6 shipdate 7 commitdate 8 receiptdate 9 shipmode
    let left_prepare = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::Filter {
            input: scan("lineitem"),
            predicate: Expr::col(9)
                .in_list(vec![
                    domain_literal(encoding, &dicts.ship_mode, mode1),
                    domain_literal(encoding, &dicts.ship_mode, mode2),
                ])
                .and(Expr::col(7).lt(Expr::col(8)))
                .and(Expr::col(6).lt(Expr::col(7)))
                .and(Expr::col(8).ge(Expr::date(ymd(year, 1, 1))))
                .and(Expr::col(8).lt(Expr::date(ymd(year + 1, 1, 1)))),
        }),
        exprs: vec![
            ("l_orderkey".to_string(), Expr::col(0)),
            ("l_shipmode".to_string(), Expr::col(9)),
        ],
    };
    // orders columns: 0 okey 1 custkey 2 odate 3 priority 4 comment
    let right_prepare = PhysicalPlan::Project {
        input: scan("orders"),
        exprs: vec![
            ("o_orderkey".to_string(), Expr::col(0)),
            ("o_orderpriority".to_string(), Expr::col(3)),
        ],
    };
    let high = Expr::col(3).in_list(vec![
        domain_literal(encoding, &dicts.priority, "1-URGENT"),
        domain_literal(encoding, &dicts.priority, "2-HIGH"),
    ]);
    let combine = PhysicalPlan::Sort {
        input: Box::new(PhysicalPlan::Aggregate {
            // join output: 0 l_orderkey 1 l_shipmode 2 o_orderkey 3 o_orderpriority
            input: Box::new(PhysicalPlan::HashJoin {
                left: scan("@frag0"),
                right: scan("@frag1"),
                left_keys: vec![0],
                right_keys: vec![0],
                join_type: JoinType::Inner,
            }),
            group_by: vec![1],
            aggs: vec![
                ("high_line_count".to_string(), AggExpr::CountIf(high.clone())),
                ("low_line_count".to_string(), AggExpr::CountIf(high.negate())),
            ],
        }),
        by: vec![(0, false)],
    };
    TwoTableQuery {
        id: QueryId::Q12,
        label: format!("Q12(mode1={mode1}, mode2={mode2}, year={year})"),
        left_table: "lineitem".to_string(),
        right_table: "orders".to_string(),
        left_prepare,
        right_prepare,
        combine,
    }
}

/// TPC-H Q13: distribution of customers by order count, excluding orders
/// whose comment mentions both `word1` and `word2`.
pub fn q13(word1: &str, word2: &str) -> TwoTableQuery {
    // customer: 0 custkey 1 name 2 nationkey 3 mktsegment 4 acctbal
    let left_prepare = PhysicalPlan::Project {
        input: scan("customer"),
        exprs: vec![("c_custkey".to_string(), Expr::col(0))],
    };
    // orders: filter the comment, keep custkey. Deviation: the spec pattern
    // '%special%requests%' is ordered; we test conjunctive containment.
    let right_prepare = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::Filter {
            input: scan("orders"),
            predicate: Expr::col(4)
                .contains(word1)
                .and(Expr::col(4).contains(word2))
                .negate(),
        }),
        exprs: vec![("o_custkey".to_string(), Expr::col(1))],
    };
    let combine = PhysicalPlan::Sort {
        input: Box::new(PhysicalPlan::Aggregate {
            // inner agg output: 0 c_custkey 1 c_count
            input: Box::new(PhysicalPlan::Aggregate {
                // join output: 0 c_custkey 1 o_custkey (NULL when no orders)
                input: Box::new(PhysicalPlan::HashJoin {
                    left: scan("@frag0"),
                    right: scan("@frag1"),
                    left_keys: vec![0],
                    right_keys: vec![0],
                    join_type: JoinType::LeftOuter,
                }),
                group_by: vec![0],
                aggs: vec![(
                    "c_count".to_string(),
                    AggExpr::CountIf(Expr::col(1).is_null().negate()),
                )],
            }),
            group_by: vec![1],
            aggs: vec![("custdist".to_string(), AggExpr::Count)],
        }),
        // custdist desc, c_count desc — agg output: 0 c_count 1 custdist.
        by: vec![(1, true), (0, true)],
    };
    TwoTableQuery {
        id: QueryId::Q13,
        label: format!("Q13(word1={word1}, word2={word2})"),
        left_table: "customer".to_string(),
        right_table: "orders".to_string(),
        left_prepare,
        right_prepare,
        combine,
    }
}

/// TPC-H Q14: percentage of revenue from promotional parts in one month.
pub fn q14(year: i32, month: u32) -> TwoTableQuery {
    let start = ymd(year, month, 1);
    let end = add_months(start, 1);
    let left_prepare = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::Filter {
            input: scan("lineitem"),
            predicate: Expr::col(6)
                .ge(Expr::date(start))
                .and(Expr::col(6).lt(Expr::date(end))),
        }),
        exprs: vec![
            ("l_partkey".to_string(), Expr::col(1)),
            (
                "revenue".to_string(),
                Expr::col(4).mul(Expr::float(1.0).sub(Expr::col(5))),
            ),
        ],
    };
    // part: 0 partkey 1 brand 2 type 3 container 4 retailprice
    let right_prepare = PhysicalPlan::Project {
        input: scan("part"),
        exprs: vec![
            ("p_partkey".to_string(), Expr::col(0)),
            ("p_type".to_string(), Expr::col(2)),
        ],
    };
    let combine = PhysicalPlan::Project {
        // agg output: 0 promo 1 total
        input: Box::new(PhysicalPlan::Aggregate {
            // join output: 0 l_partkey 1 revenue 2 p_partkey 3 p_type
            input: Box::new(PhysicalPlan::HashJoin {
                left: scan("@frag0"),
                right: scan("@frag1"),
                left_keys: vec![0],
                right_keys: vec![0],
                join_type: JoinType::Inner,
            }),
            group_by: vec![],
            aggs: vec![
                (
                    "promo".to_string(),
                    AggExpr::SumIf {
                        value: Expr::col(1),
                        predicate: Expr::col(3).contains("PROMO"),
                    },
                ),
                ("total".to_string(), AggExpr::Sum(Expr::col(1))),
            ],
        }),
        exprs: vec![(
            "promo_revenue".to_string(),
            Expr::float(100.0).mul(Expr::col(0)).div(Expr::col(1)),
        )],
    };
    TwoTableQuery {
        id: QueryId::Q14,
        label: format!("Q14(year={year}, month={month})"),
        left_table: "lineitem".to_string(),
        right_table: "part".to_string(),
        left_prepare,
        right_prepare,
        combine,
    }
}

/// TPC-H Q17: average yearly revenue lost if small-quantity orders for one
/// brand/container were no longer taken.
pub fn q17(brand: &str, container: &str) -> TwoTableQuery {
    q17_with(StringEncoding::Plain, brand, container)
}

/// [`q17`] against a database of the given string encoding: under
/// [`StringEncoding::Dictionary`] the brand and container predicates compare
/// dictionary codes instead of strings.
///
/// `encoding` must match the database's layout
/// ([`crate::gen::TpchDb::encoding`]); a mismatch type-mismatches every
/// domain predicate and silently selects nothing.
pub fn q17_with(encoding: StringEncoding, brand: &str, container: &str) -> TwoTableQuery {
    let dicts = TpchDictionaries::cached();
    let left_prepare = PhysicalPlan::Project {
        input: scan("lineitem"),
        exprs: vec![
            ("l_partkey".to_string(), Expr::col(1)),
            ("l_quantity".to_string(), Expr::col(3)),
            ("l_extendedprice".to_string(), Expr::col(4)),
        ],
    };
    let right_prepare = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::Filter {
            input: scan("part"),
            predicate: Expr::col(1)
                .eq(Expr::Lit(domain_literal(encoding, &dicts.brand, brand)))
                .and(
                    Expr::col(3)
                        .eq(Expr::Lit(domain_literal(encoding, &dicts.container, container))),
                ),
        }),
        exprs: vec![("p_partkey".to_string(), Expr::col(0))],
    };
    // j1: 0 l_partkey 1 l_quantity 2 l_extendedprice 3 p_partkey
    let j1 = PhysicalPlan::HashJoin {
        left: scan("@frag0"),
        right: scan("@frag1"),
        left_keys: vec![0],
        right_keys: vec![0],
        join_type: JoinType::Inner,
    };
    // Correlated subquery: avg quantity per partkey over all lineitems.
    let avg_q = PhysicalPlan::Aggregate {
        input: scan("@frag0"),
        group_by: vec![0],
        aggs: vec![("avg_qty".to_string(), AggExpr::Avg(Expr::col(1)))],
    };
    // j2: 0..3 from j1, 4 r.l_partkey, 5 avg_qty
    let combine = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::HashJoin {
                    left: Box::new(j1),
                    right: Box::new(avg_q),
                    left_keys: vec![0],
                    right_keys: vec![0],
                    join_type: JoinType::Inner,
                }),
                predicate: Expr::col(1).lt(Expr::float(0.2).mul(Expr::col(5))),
            }),
            group_by: vec![],
            aggs: vec![("total".to_string(), AggExpr::Sum(Expr::col(2)))],
        }),
        exprs: vec![(
            "avg_yearly".to_string(),
            Expr::col(0).div(Expr::float(7.0)),
        )],
    };
    TwoTableQuery {
        id: QueryId::Q17,
        label: format!("Q17(brand={brand}, container={container})"),
        left_table: "lineitem".to_string(),
        right_table: "part".to_string(),
        left_prepare,
        right_prepare,
        combine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenConfig, TpchDb};
    use midas_engines::ops::execute;
    use midas_engines::Value;

    /// Runs the three plans of a template locally (no federation), as the
    /// combine plan would see them.
    fn run_locally(q: &TwoTableQuery, db: &TpchDb) -> midas_engines::Table {
        let mut catalog = db.catalog().clone();
        let (left, _) = execute(&q.left_prepare, &catalog).unwrap();
        let (right, _) = execute(&q.right_prepare, &catalog).unwrap();
        catalog.insert("@frag0".to_string(), left);
        catalog.insert("@frag1".to_string(), right);
        let (out, _) = execute(&q.combine, &catalog).unwrap();
        out
    }

    fn db() -> TpchDb {
        TpchDb::generate(GenConfig::new(0.005, 42))
    }

    #[test]
    fn q12_produces_per_mode_counts() {
        let db = db();
        let out = run_locally(&q12("MAIL", "SHIP", 1994), &db);
        assert!(out.n_rows() <= 2, "at most the two ship modes");
        assert!(out.n_rows() >= 1, "1994 receipts by MAIL/SHIP must exist");
        for i in 0..out.n_rows() {
            let row = out.row(i);
            let mode = match &row[0] {
                Value::Utf8(s) => s.clone(),
                other => panic!("mode column wrong: {other:?}"),
            };
            assert!(mode == "MAIL" || mode == "SHIP");
            let (high, low) = (&row[1], &row[2]);
            assert!(matches!(high, Value::Int64(_)));
            assert!(matches!(low, Value::Int64(_)));
        }
        // Sorted ascending by mode.
        if out.n_rows() == 2 {
            assert_eq!(out.row(0)[0], Value::Utf8("MAIL".into()));
            assert_eq!(out.row(1)[0], Value::Utf8("SHIP".into()));
        }
    }

    #[test]
    fn q12_priority_counts_sum_to_join_size() {
        let db = db();
        let out = run_locally(&q12("AIR", "TRUCK", 1995), &db);
        let mut total = 0i64;
        for i in 0..out.n_rows() {
            if let (Value::Int64(h), Value::Int64(l)) = (&out.row(i)[1], &out.row(i)[2]) {
                total += h + l;
            }
        }
        assert!(total > 0);
    }

    #[test]
    fn q13_customers_with_zero_orders_appear() {
        let db = db();
        let out = run_locally(&q13("special", "requests"), &db);
        // Output: (c_count, custdist). The distribution covers every
        // customer exactly once.
        let mut customers = 0i64;
        let mut has_zero_bucket = false;
        for i in 0..out.n_rows() {
            if let (Value::Int64(count), Value::Int64(dist)) = (&out.row(i)[0], &out.row(i)[1]) {
                customers += dist;
                if *count == 0 {
                    has_zero_bucket = true;
                }
            }
        }
        assert_eq!(customers as usize, db.table("customer").unwrap().n_rows());
        // With 10 orders/customer a zero bucket is unlikely but possible;
        // just assert the distribution is sorted by custdist descending.
        let _ = has_zero_bucket;
        let dists: Vec<i64> = (0..out.n_rows())
            .map(|i| match out.row(i)[1] {
                Value::Int64(d) => d,
                _ => panic!(),
            })
            .collect();
        let mut sorted = dists.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(dists, sorted);
    }

    #[test]
    fn q13_comment_filter_reduces_orders() {
        let db = db();
        let orders = db.table("orders").unwrap().n_rows();
        let mut catalog = db.catalog().clone();
        let q = q13("special", "requests");
        let (right, _) = execute(&q.right_prepare, &catalog).unwrap();
        assert!(right.n_rows() < orders, "filter must drop some orders");
        assert!(right.n_rows() > orders / 2, "but only a small fraction");
        catalog.clear();
    }

    #[test]
    fn q14_returns_a_percentage() {
        let db = db();
        let out = run_locally(&q14(1995, 9), &db);
        assert_eq!(out.n_rows(), 1);
        match out.row(0)[0] {
            Value::Float64(pct) => {
                assert!((0.0..=100.0).contains(&pct), "promo share {pct}");
                // PROMO is 1 of 6 type prefixes: expect roughly 1/6.
                assert!((5.0..35.0).contains(&pct), "promo share {pct} implausible");
            }
            ref other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn q17_small_quantity_revenue() {
        let db = db();
        let out = run_locally(&q17("Brand#23", "MED BOX"), &db);
        assert_eq!(out.n_rows(), 1);
        match out.row(0)[0] {
            // A sparse brand/container pair can legitimately yield NULL
            // (no qualifying rows) at tiny scale; accept both.
            Value::Float64(v) => assert!(v >= 0.0),
            Value::Null => {}
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn paper_set_is_the_documented_four() {
        let numbers: Vec<u32> = QueryId::PAPER_SET.iter().map(|q| q.number()).collect();
        assert_eq!(numbers, vec![12, 13, 14, 17]);
    }

    #[test]
    fn labels_carry_parameters() {
        assert!(q12("MAIL", "SHIP", 1994).label.contains("1994"));
        assert!(q17("Brand#12", "SM CASE").label.contains("Brand#12"));
    }
}
