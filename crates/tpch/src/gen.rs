//! Deterministic TPC-H-style data generation.
//!
//! Cardinalities follow the spec's ratios per scale factor SF: 150k·SF
//! customers, 10 orders per customer, 1–7 lineitems per order, 200k·SF parts,
//! 10k·SF suppliers, 80k·SF·10 partsupp rows, fixed nation/region. Columns
//! are restricted to those the reproduced queries (plus obvious filler)
//! touch; the substitution is documented in DESIGN.md.
//!
//! **Row cap.** Generating SF 1 verbatim means ~6 M lineitems. When
//! [`GenConfig::max_lineitem_rows`] is set and the expected lineitem count
//! exceeds it, *every* table is rescaled by the same ratio, preserving join
//! fan-outs and selectivities. The effective scale factor is reported so
//! experiments can label results honestly.
//!
//! **Streaming generation.** [`TpchDb::generate_chunked`] produces the
//! same database chunk-at-a-time, dbgen-style, directly into
//! [`ChunkedTable`]s — no table is ever held as one materialized `Vec`
//! run. Every generator draws from the identical RNG stream in the
//! identical row order whether it emits one chunk or many (chunking only
//! decides where accumulated rows are flushed), so the chunked database
//! is bit-for-bit the materialized one at every chunk size:
//! [`TpchDb::generate`] itself is the `chunk_rows = ∞` special case of
//! the streaming path. Chunk tables carry their table's own name, so
//! snapshots and chunk-native execution are name-identical too.

use crate::dates;
use midas_engines::data::{Column, ColumnData, Table};
use midas_engines::sim::split_seed;
use midas_engines::version::{CatalogVersion, ChunkedTable, VersionedCatalog};
use midas_engines::Catalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The seven lineitem ship modes of the spec.
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// The five order priorities of the spec.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Part type components (`p_type` = syllable1 syllable2 syllable3).
const TYPE_S1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_S2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_S3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// Container size components (`p_container` = size kind).
pub const CONTAINER_SIZES: [&str; 5] = ["SM", "MED", "LG", "JUMBO", "WRAP"];

/// Container kind components (`p_container` = size kind).
pub const CONTAINER_KINDS: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// Lexicon for comment columns; "special" + "requests" drive Q13.
const WORDS: [&str; 16] = [
    "special", "requests", "pending", "furious", "express", "deposits", "packages", "accounts",
    "theodolites", "instructions", "dependencies", "foxes", "ideas", "platelets", "asymptotes",
    "pinto",
];

/// How the generator materializes low-cardinality string columns.
///
/// Dictionary encoding never changes the generated *logical* rows — codes
/// are positional in the same spec value order the generator draws from,
/// and the RNG stream is identical under both encodings — only the physical
/// column type changes (`Utf8` strings vs `Int64` codes). The code ↔ value
/// mappings live in [`crate::dict::TpchDictionaries`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StringEncoding {
    /// UTF-8 string columns (the original layout).
    #[default]
    Plain,
    /// Integer dictionary codes for `l_shipmode`, `o_orderpriority`,
    /// `p_brand` and `p_container`, so predicates and group-by on them
    /// compare machine words instead of byte strings. High-cardinality
    /// strings (comments, part types, names) stay UTF-8.
    Dictionary,
}

/// Generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenConfig {
    /// TPC-H scale factor (0.1 ≈ 100 MiB, 1.0 ≈ 1 GiB of raw data).
    pub scale_factor: f64,
    /// RNG seed; equal configs generate identical databases.
    pub seed: u64,
    /// Cap on physical lineitem rows; `None` generates the full count.
    pub max_lineitem_rows: Option<usize>,
    /// Physical layout of the low-cardinality string columns.
    pub encoding: StringEncoding,
}

impl GenConfig {
    /// Convenience constructor with no row cap.
    pub fn new(scale_factor: f64, seed: u64) -> Self {
        GenConfig {
            scale_factor,
            seed,
            max_lineitem_rows: None,
            encoding: StringEncoding::default(),
        }
    }

    /// Switches the low-cardinality string columns to dictionary codes
    /// (builder style).
    pub fn dictionary_encoded(mut self) -> Self {
        self.encoding = StringEncoding::Dictionary;
        self
    }

    /// The paper's 100 MiB dataset (SF 0.1), uncapped.
    pub fn sf_100mib(seed: u64) -> Self {
        Self::new(0.1, seed)
    }

    /// The paper's 1 GiB dataset (SF 1.0), capped at 1.2 M physical
    /// lineitems — the uniform-rescale substitution from DESIGN.md.
    pub fn sf_1gib(seed: u64) -> Self {
        GenConfig {
            scale_factor: 1.0,
            seed,
            max_lineitem_rows: Some(1_200_000),
            encoding: StringEncoding::default(),
        }
    }
}

/// A generated database.
///
/// Tables are held in a shared [`Catalog`] (`Arc<Table>` entries), so
/// handing the database to an executor, a cost model or a concurrent
/// runtime never copies table bytes — callers `Arc::clone` their way to
/// the data.
#[derive(Debug, Clone)]
pub struct TpchDb {
    tables: Catalog,
    /// The configuration that produced it.
    pub config: GenConfig,
    /// Ratio of physical to nominal rows after the cap (1.0 = uncapped).
    pub rescale: f64,
}

/// Row counts after scale factor and row cap, shared by the materialized
/// and streaming generation paths.
struct Cardinalities {
    n_customers: usize,
    n_orders: usize,
    n_parts: usize,
    n_suppliers: usize,
    rescale: f64,
}

fn cardinalities(config: &GenConfig) -> Cardinalities {
    let sf = config.scale_factor;
    // Nominal cardinalities.
    let nominal_customers = (150_000.0 * sf).round().max(1.0) as usize;
    let nominal_orders = nominal_customers * 10;
    let expected_lineitems = nominal_orders * 4; // E[1..=7] = 4
    let rescale = match config.max_lineitem_rows {
        Some(cap) if expected_lineitems > cap => cap as f64 / expected_lineitems as f64,
        _ => 1.0,
    };
    let n_customers = ((nominal_customers as f64 * rescale) as usize).max(1);
    Cardinalities {
        n_customers,
        n_orders: n_customers * 10,
        n_parts: (((200_000.0 * sf) * rescale) as usize).max(1),
        n_suppliers: (((10_000.0 * sf) * rescale) as usize).max(1),
        rescale,
    }
}

impl TpchDb {
    /// Generates the database.
    pub fn generate(config: GenConfig) -> Self {
        let card = cardinalities(&config);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut tables = Catalog::new();
        tables.insert("region", gen_region());
        tables.insert("nation", gen_nation());
        tables.insert("customer", gen_customer(card.n_customers, &mut rng));
        tables.insert("part", gen_part(card.n_parts, &mut rng, config.encoding));
        tables.insert("supplier", gen_supplier(card.n_suppliers, &mut rng));
        let orders = gen_orders(card.n_orders, 0, card.n_customers, &mut rng, config.encoding);
        let lineitem = gen_lineitem(
            &orders,
            card.n_parts,
            card.n_suppliers,
            &mut rng,
            config.encoding,
        );
        tables.insert(
            "partsupp",
            gen_partsupp(card.n_parts, card.n_suppliers, &mut rng),
        );
        tables.insert("orders", orders);
        tables.insert("lineitem", lineitem);

        TpchDb {
            tables,
            config,
            rescale: card.rescale,
        }
    }

    /// Generates the same database **streamed**: every table is built
    /// chunk-at-a-time (roughly `chunk_rows` rows per chunk; orders never
    /// split from their lineitem group) directly into [`ChunkedTable`]s,
    /// without a materialized whole-table intermediate. The RNG streams
    /// are the ones [`TpchDb::generate`] consumes, row for row, so the
    /// chunked database is bit-identical to the materialized one — same
    /// rows, same dictionary encodings — at every `chunk_rows`.
    pub fn generate_chunked(config: GenConfig, chunk_rows: usize) -> TpchChunkedDb {
        let chunk_rows = chunk_rows.max(1);
        let card = cardinalities(&config);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let chunked = |name: &str, chunks: Vec<Arc<Table>>| {
            ChunkedTable::from_chunks(name, chunks).expect("generated chunks share one schema")
        };
        let mut tables = Vec::with_capacity(8);
        tables.push(chunked("region", vec![Arc::new(gen_region())]));
        tables.push(chunked("nation", vec![Arc::new(gen_nation())]));
        tables.push(chunked(
            "customer",
            gen_customer_chunks(card.n_customers, chunk_rows, &mut rng),
        ));
        tables.push(chunked(
            "part",
            gen_part_chunks(card.n_parts, chunk_rows, &mut rng, config.encoding),
        ));
        tables.push(chunked(
            "supplier",
            gen_supplier_chunks(card.n_suppliers, chunk_rows, &mut rng),
        ));
        let orders = gen_orders_chunks(
            card.n_orders,
            0,
            chunk_rows,
            card.n_customers,
            &mut rng,
            config.encoding,
        );
        let lineitem = gen_lineitem_chunks(
            orders.iter().map(Arc::as_ref),
            chunk_rows,
            card.n_parts,
            card.n_suppliers,
            &mut rng,
            config.encoding,
        );
        tables.push(chunked(
            "partsupp",
            gen_partsupp_chunks(card.n_parts, card.n_suppliers, chunk_rows, &mut rng),
        ));
        tables.push(chunked("orders", orders));
        tables.push(chunked("lineitem", lineitem));

        TpchChunkedDb {
            version: CatalogVersion::from_chunked(tables),
            config,
            rescale: card.rescale,
        }
    }

    /// The physical layout of this database's low-cardinality string
    /// columns. Queries must be built for the *same* encoding
    /// ([`crate::queries::q12_with`]/[`crate::queries::q17_with`]): a plain
    /// string predicate against a code column (or vice versa) compares
    /// across types, which — like any type-mismatched predicate in the
    /// engine — matches no row and silently returns an empty result.
    pub fn encoding(&self) -> StringEncoding {
        self.config.encoding
    }

    /// The shared execution catalog, keyed by lowercase table name.
    pub fn catalog(&self) -> &Catalog {
        &self.tables
    }

    /// The database as the base version (version 0) of a copy-on-write
    /// [`VersionedCatalog`] — the live-data entry point: ingest deltas from
    /// a [`DeltaStream`] publish successor versions while pinned queries
    /// keep their snapshot. Handle copies only; no table bytes move.
    pub fn versioned_catalog(&self) -> VersionedCatalog {
        VersionedCatalog::new(self.tables.clone())
    }

    /// One table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Total estimated bytes across all tables.
    pub fn total_bytes(&self) -> u64 {
        self.tables.estimated_bytes()
    }

    /// A prefix *snapshot* of the database: every growing table truncated to
    /// the first `fraction` of its rows (clamped to `[0, 1]`; `nation` and
    /// `region` stay fixed).
    ///
    /// This models the evolving data store the paper's medical setting
    /// implies — records accumulate over time, so successive executions of
    /// one query see different data volumes. Keys are uniformly distributed,
    /// so a prefix keeps join fan-outs proportional (dangling foreign keys
    /// simply drop out of inner joins, as they would in a live system where
    /// dimension rows arrive late).
    pub fn snapshot(&self, fraction: f64) -> Catalog {
        self.snapshot_per_table(|_| fraction)
    }

    /// Like [`TpchDb::snapshot`] but with a per-table fraction.
    ///
    /// Different tables accrue at different rates in a federation (each
    /// clinic feeds its own cloud), which also keeps the size regressors of
    /// two-table queries *linearly independent* — a single global growth
    /// factor would make them collinear.
    pub fn snapshot_per_table(&self, fraction: impl Fn(&str) -> f64) -> Catalog {
        let mut out = Catalog::new();
        for (name, table) in self.tables.iter() {
            if name == "nation" || name == "region" {
                // Fixed dimensions are shared, not copied.
                out.insert_shared(name, std::sync::Arc::clone(table));
                continue;
            }
            let f = fraction(name).clamp(0.0, 1.0);
            let keep = ((table.n_rows() as f64 * f).round() as usize).min(table.n_rows());
            let indices: Vec<usize> = (0..keep).collect();
            out.insert(name, table.take(&indices));
        }
        out
    }
}

/// A database generated chunk-at-a-time by [`TpchDb::generate_chunked`],
/// held as the base [`CatalogVersion`] of chunk-native tables.
///
/// Queries run against [`TpchChunkedDb::version`] directly (e.g. through
/// `execute_fused_versioned`) without ever compacting a snapshot —
/// `self.version().compaction_bytes()` stays 0 until someone explicitly
/// pins. The logical contents are bit-identical to
/// [`TpchDb::generate`] with the same [`GenConfig`].
pub struct TpchChunkedDb {
    version: CatalogVersion,
    /// The configuration that produced it.
    pub config: GenConfig,
    /// Ratio of physical to nominal rows after the cap (1.0 = uncapped).
    pub rescale: f64,
}

impl TpchChunkedDb {
    /// The chunk-native catalog version holding every table.
    pub fn version(&self) -> &CatalogVersion {
        &self.version
    }

    /// The physical layout of the low-cardinality string columns (see
    /// [`TpchDb::encoding`]).
    pub fn encoding(&self) -> StringEncoding {
        self.config.encoding
    }

    /// Total chunks across all tables.
    pub fn total_chunks(&self) -> usize {
        self.version
            .names()
            .filter_map(|n| self.version.table(n))
            .map(|t| t.chunk_count())
            .sum()
    }
}

/// One ingest batch produced by a [`DeltaStream`]: freshly placed orders
/// and their lineitems, keyed past everything generated before.
#[derive(Debug, Clone)]
pub struct TpchDelta {
    /// Index of the batch in its stream (0-based).
    pub batch: u64,
    /// New `orders` rows.
    pub orders: Table,
    /// The new orders' `lineitem` rows.
    pub lineitem: Table,
}

impl TpchDelta {
    /// Total rows across both tables.
    pub fn rows(&self) -> usize {
        self.orders.n_rows() + self.lineitem.n_rows()
    }

    /// The batch as `(table name, delta)` pairs for
    /// [`VersionedCatalog::append_batch`] — one atomic version bump, so no
    /// admission ever observes orders without their lineitems.
    pub fn into_batch(self) -> Vec<(String, Table)> {
        vec![
            ("orders".to_string(), self.orders),
            ("lineitem".to_string(), self.lineitem),
        ]
    }
}

/// A deterministic stream of ingest deltas continuing a database's key
/// space — the "hospitals keep admitting patients" half of the streaming
/// workload.
///
/// Each batch draws from its own split-seeded RNG stream
/// (`split_seed(seed, batch_index)`), so batch `k` is a pure function of
/// `(db shape, seed, k)` no matter how batches interleave with queries:
/// the streaming runtime and its sequential replay oracle generate
/// bit-identical deltas. New orders reference *existing* customers, parts
/// and suppliers, so every query class keeps joining against them, and
/// order keys continue strictly past the keys generated so far.
#[derive(Debug, Clone)]
pub struct DeltaStream {
    seed: u64,
    next_orderkey: i64,
    n_customers: usize,
    n_parts: usize,
    n_suppliers: usize,
    encoding: StringEncoding,
    batch_index: u64,
}

impl DeltaStream {
    /// A stream continuing `db`'s key space.
    pub fn new(db: &TpchDb, seed: u64) -> Self {
        DeltaStream {
            seed,
            next_orderkey: db.table("orders").map_or(0, |t| t.n_rows() as i64),
            n_customers: db.table("customer").map_or(1, |t| t.n_rows()),
            n_parts: db.table("part").map_or(1, |t| t.n_rows()),
            n_suppliers: db.table("supplier").map_or(1, |t| t.n_rows()),
            encoding: db.encoding(),
            batch_index: 0,
        }
    }

    /// Batches generated so far.
    pub fn batches_generated(&self) -> u64 {
        self.batch_index
    }

    /// Generates the next delta batch of `n_orders` orders (plus their 1–7
    /// lineitems each).
    pub fn next_batch(&mut self, n_orders: usize) -> TpchDelta {
        let batch = self.batch_index;
        let mut rng = StdRng::seed_from_u64(split_seed(self.seed, batch));
        let orders = gen_orders(
            n_orders,
            self.next_orderkey,
            self.n_customers,
            &mut rng,
            self.encoding,
        );
        let lineitem = gen_lineitem(
            &orders,
            self.n_parts,
            self.n_suppliers,
            &mut rng,
            self.encoding,
        );
        self.next_orderkey += n_orders as i64;
        self.batch_index += 1;
        TpchDelta {
            batch,
            orders,
            lineitem,
        }
    }
}

fn gen_region() -> Table {
    let names = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
    Table::new(
        "region",
        vec![
            Column::new("r_regionkey", ColumnData::Int64((0..5).collect())),
            Column::new(
                "r_name",
                ColumnData::Utf8(names.iter().map(|s| s.to_string()).collect()),
            ),
        ],
    )
    .expect("static columns are aligned")
}

fn gen_nation() -> Table {
    // 25 nations, 5 per region as in the spec's spirit.
    let names = [
        "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY",
        "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE",
        "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
        "UNITED STATES",
    ];
    Table::new(
        "nation",
        vec![
            Column::new("n_nationkey", ColumnData::Int64((0..25).collect())),
            Column::new(
                "n_name",
                ColumnData::Utf8(names.iter().map(|s| s.to_string()).collect()),
            ),
            Column::new(
                "n_regionkey",
                ColumnData::Int64((0..25).map(|i| i % 5).collect()),
            ),
        ],
    )
    .expect("static columns are aligned")
}

fn comment(rng: &mut StdRng) -> String {
    let n = rng.gen_range(3..=7);
    let mut s = String::new();
    for i in 0..n {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    s
}

/// `[start, len)` chunk spans of at most `chunk_rows` rows over `n` rows
/// (one empty span when `n == 0`, so every table gets at least one
/// chunk). Spans only decide where a generator flushes accumulated rows;
/// its RNG draws run in global row order regardless.
fn chunk_spans(n: usize, chunk_rows: usize) -> impl Iterator<Item = (usize, usize)> {
    let mut start = 0usize;
    let mut done = false;
    std::iter::from_fn(move || {
        if done {
            return None;
        }
        let len = chunk_rows.min(n - start);
        let span = (start, len);
        start += len;
        if start >= n {
            done = true;
        }
        Some(span)
    })
}

/// Unwraps the one chunk the `chunk_rows = usize::MAX` streaming path
/// produces — the materialized generators are that special case, keeping
/// one code path (and one RNG stream) for both layouts.
fn single_chunk(mut chunks: Vec<Arc<Table>>) -> Table {
    let only = chunks.pop().expect("at least one chunk");
    debug_assert!(chunks.is_empty(), "usize::MAX chunk rows yield one chunk");
    Arc::try_unwrap(only).expect("sole handle to a fresh chunk")
}

fn gen_customer_chunks(n: usize, chunk_rows: usize, rng: &mut StdRng) -> Vec<Arc<Table>> {
    let segments = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
    chunk_spans(n, chunk_rows)
        .map(|(start, len)| {
            let mut keys = Vec::with_capacity(len);
            let mut names = Vec::with_capacity(len);
            let mut nations = Vec::with_capacity(len);
            let mut segs = Vec::with_capacity(len);
            let mut bals = Vec::with_capacity(len);
            for i in start..start + len {
                let key = i as i64 + 1;
                keys.push(key);
                names.push(format!("Customer#{key:09}"));
                nations.push(rng.gen_range(0..25i64));
                segs.push(segments[rng.gen_range(0..segments.len())].to_string());
                bals.push(rng.gen_range(-999.99..9999.99));
            }
            Arc::new(
                Table::new(
                    "customer",
                    vec![
                        Column::new("c_custkey", ColumnData::Int64(keys)),
                        Column::new("c_name", ColumnData::Utf8(names)),
                        Column::new("c_nationkey", ColumnData::Int64(nations)),
                        Column::new("c_mktsegment", ColumnData::Utf8(segs)),
                        Column::new("c_acctbal", ColumnData::Float64(bals)),
                    ],
                )
                .expect("generated columns are aligned"),
            )
        })
        .collect()
}

fn gen_customer(n: usize, rng: &mut StdRng) -> Table {
    single_chunk(gen_customer_chunks(n, usize::MAX, rng))
}

fn gen_part_chunks(
    n: usize,
    chunk_rows: usize,
    rng: &mut StdRng,
    encoding: StringEncoding,
) -> Vec<Arc<Table>> {
    chunk_spans(n, chunk_rows)
        .map(|(start, len)| {
            let mut keys = Vec::with_capacity(len);
            // Draw the low-cardinality component indices first; the same
            // draws in the same order under either encoding, so one seed
            // generates one logical database regardless of physical layout.
            let mut brand_mn = Vec::with_capacity(len);
            let mut types = Vec::with_capacity(len);
            let mut container_sk = Vec::with_capacity(len);
            let mut prices = Vec::with_capacity(len);
            for i in start..start + len {
                let key = i as i64 + 1;
                keys.push(key);
                brand_mn.push((rng.gen_range(1..=5i64), rng.gen_range(1..=5i64)));
                types.push(format!(
                    "{} {} {}",
                    TYPE_S1[rng.gen_range(0..TYPE_S1.len())],
                    TYPE_S2[rng.gen_range(0..TYPE_S2.len())],
                    TYPE_S3[rng.gen_range(0..TYPE_S3.len())]
                ));
                container_sk.push((
                    rng.gen_range(0..CONTAINER_SIZES.len()),
                    rng.gen_range(0..CONTAINER_KINDS.len()),
                ));
                prices.push(900.0 + (key % 1000) as f64 * 0.1);
            }
            let brand = match encoding {
                StringEncoding::Plain => ColumnData::Utf8(
                    brand_mn
                        .iter()
                        .map(|(m, n)| format!("Brand#{m}{n}"))
                        .collect(),
                ),
                StringEncoding::Dictionary => ColumnData::Int64(
                    brand_mn.iter().map(|(m, n)| (m - 1) * 5 + (n - 1)).collect(),
                ),
            };
            let container = match encoding {
                StringEncoding::Plain => ColumnData::Utf8(
                    container_sk
                        .iter()
                        .map(|(s, k)| format!("{} {}", CONTAINER_SIZES[*s], CONTAINER_KINDS[*k]))
                        .collect(),
                ),
                StringEncoding::Dictionary => ColumnData::Int64(
                    container_sk
                        .iter()
                        .map(|(s, k)| (s * CONTAINER_KINDS.len() + k) as i64)
                        .collect(),
                ),
            };
            Arc::new(
                Table::new(
                    "part",
                    vec![
                        Column::new("p_partkey", ColumnData::Int64(keys)),
                        Column::new("p_brand", brand),
                        Column::new("p_type", ColumnData::Utf8(types)),
                        Column::new("p_container", container),
                        Column::new("p_retailprice", ColumnData::Float64(prices)),
                    ],
                )
                .expect("generated columns are aligned"),
            )
        })
        .collect()
}

fn gen_part(n: usize, rng: &mut StdRng, encoding: StringEncoding) -> Table {
    single_chunk(gen_part_chunks(n, usize::MAX, rng, encoding))
}

fn gen_supplier_chunks(n: usize, chunk_rows: usize, rng: &mut StdRng) -> Vec<Arc<Table>> {
    chunk_spans(n, chunk_rows)
        .map(|(start, len)| {
            let mut keys = Vec::with_capacity(len);
            let mut names = Vec::with_capacity(len);
            let mut nations = Vec::with_capacity(len);
            for i in start..start + len {
                keys.push(i as i64 + 1);
                names.push(format!("Supplier#{:09}", i + 1));
                nations.push(rng.gen_range(0..25i64));
            }
            Arc::new(
                Table::new(
                    "supplier",
                    vec![
                        Column::new("s_suppkey", ColumnData::Int64(keys)),
                        Column::new("s_name", ColumnData::Utf8(names)),
                        Column::new("s_nationkey", ColumnData::Int64(nations)),
                    ],
                )
                .expect("generated columns are aligned"),
            )
        })
        .collect()
}

fn gen_supplier(n: usize, rng: &mut StdRng) -> Table {
    single_chunk(gen_supplier_chunks(n, usize::MAX, rng))
}

fn gen_partsupp_chunks(
    n_parts: usize,
    n_suppliers: usize,
    chunk_rows: usize,
    rng: &mut StdRng,
) -> Vec<Arc<Table>> {
    // 4 suppliers per part, as in the spec; chunks split on part
    // boundaries so each part's 4 rows stay together.
    let parts_per_chunk = (chunk_rows / 4).max(1);
    chunk_spans(n_parts, parts_per_chunk)
        .map(|(start, len)| {
            let mut parts = Vec::with_capacity(len * 4);
            let mut supps = Vec::with_capacity(len * 4);
            let mut avail = Vec::with_capacity(len * 4);
            for p in start..start + len {
                for s in 0..4 {
                    parts.push(p as i64 + 1);
                    supps.push(((p + s * (n_parts / 4).max(1)) % n_suppliers.max(1)) as i64 + 1);
                    avail.push(rng.gen_range(1..10_000i64));
                }
            }
            Arc::new(
                Table::new(
                    "partsupp",
                    vec![
                        Column::new("ps_partkey", ColumnData::Int64(parts)),
                        Column::new("ps_suppkey", ColumnData::Int64(supps)),
                        Column::new("ps_availqty", ColumnData::Int64(avail)),
                    ],
                )
                .expect("generated columns are aligned"),
            )
        })
        .collect()
}

fn gen_partsupp(n_parts: usize, n_suppliers: usize, rng: &mut StdRng) -> Table {
    single_chunk(gen_partsupp_chunks(n_parts, n_suppliers, usize::MAX, rng))
}

fn gen_orders_chunks(
    n: usize,
    start_key: i64,
    chunk_rows: usize,
    n_customers: usize,
    rng: &mut StdRng,
    encoding: StringEncoding,
) -> Vec<Arc<Table>> {
    let start = dates::tpch_start();
    let end = dates::tpch_end() - 151; // spec: last order date leaves room for shipping
    chunk_spans(n, chunk_rows)
        .map(|(span_start, len)| {
            let mut keys = Vec::with_capacity(len);
            let mut custs = Vec::with_capacity(len);
            let mut odates = Vec::with_capacity(len);
            let mut prio_idx = Vec::with_capacity(len);
            let mut comments = Vec::with_capacity(len);
            for i in span_start..span_start + len {
                keys.push(start_key + i as i64 + 1);
                custs.push(rng.gen_range(0..n_customers as i64) + 1);
                odates.push(rng.gen_range(start..=end));
                prio_idx.push(rng.gen_range(0..PRIORITIES.len()));
                comments.push(comment(rng));
            }
            let priority = match encoding {
                StringEncoding::Plain => ColumnData::Utf8(
                    prio_idx.iter().map(|&i| PRIORITIES[i].to_string()).collect(),
                ),
                StringEncoding::Dictionary => {
                    ColumnData::Int64(prio_idx.iter().map(|&i| i as i64).collect())
                }
            };
            Arc::new(
                Table::new(
                    "orders",
                    vec![
                        Column::new("o_orderkey", ColumnData::Int64(keys)),
                        Column::new("o_custkey", ColumnData::Int64(custs)),
                        Column::new("o_orderdate", ColumnData::Date(odates)),
                        Column::new("o_orderpriority", priority),
                        Column::new("o_comment", ColumnData::Utf8(comments)),
                    ],
                )
                .expect("generated columns are aligned"),
            )
        })
        .collect()
}

fn gen_orders(
    n: usize,
    start_key: i64,
    n_customers: usize,
    rng: &mut StdRng,
    encoding: StringEncoding,
) -> Table {
    single_chunk(gen_orders_chunks(
        n,
        start_key,
        usize::MAX,
        n_customers,
        rng,
        encoding,
    ))
}

/// Accumulates lineitem rows for one chunk; flushed on order boundaries.
#[derive(Default)]
struct LineitemBuilder {
    l_orderkey: Vec<i64>,
    l_partkey: Vec<i64>,
    l_suppkey: Vec<i64>,
    l_quantity: Vec<f64>,
    l_extendedprice: Vec<f64>,
    l_discount: Vec<f64>,
    l_shipdate: Vec<i32>,
    l_commitdate: Vec<i32>,
    l_receiptdate: Vec<i32>,
    l_shipmode: Vec<usize>,
}

impl LineitemBuilder {
    fn len(&self) -> usize {
        self.l_orderkey.len()
    }

    /// Drains the accumulated rows into one chunk table.
    fn flush(&mut self, encoding: StringEncoding) -> Arc<Table> {
        let l_shipmode = std::mem::take(&mut self.l_shipmode);
        let shipmode = match encoding {
            StringEncoding::Plain => ColumnData::Utf8(
                l_shipmode
                    .iter()
                    .map(|&i| SHIP_MODES[i].to_string())
                    .collect(),
            ),
            StringEncoding::Dictionary => {
                ColumnData::Int64(l_shipmode.iter().map(|&i| i as i64).collect())
            }
        };
        Arc::new(
            Table::new(
                "lineitem",
                vec![
                    Column::new(
                        "l_orderkey",
                        ColumnData::Int64(std::mem::take(&mut self.l_orderkey)),
                    ),
                    Column::new(
                        "l_partkey",
                        ColumnData::Int64(std::mem::take(&mut self.l_partkey)),
                    ),
                    Column::new(
                        "l_suppkey",
                        ColumnData::Int64(std::mem::take(&mut self.l_suppkey)),
                    ),
                    Column::new(
                        "l_quantity",
                        ColumnData::Float64(std::mem::take(&mut self.l_quantity)),
                    ),
                    Column::new(
                        "l_extendedprice",
                        ColumnData::Float64(std::mem::take(&mut self.l_extendedprice)),
                    ),
                    Column::new(
                        "l_discount",
                        ColumnData::Float64(std::mem::take(&mut self.l_discount)),
                    ),
                    Column::new(
                        "l_shipdate",
                        ColumnData::Date(std::mem::take(&mut self.l_shipdate)),
                    ),
                    Column::new(
                        "l_commitdate",
                        ColumnData::Date(std::mem::take(&mut self.l_commitdate)),
                    ),
                    Column::new(
                        "l_receiptdate",
                        ColumnData::Date(std::mem::take(&mut self.l_receiptdate)),
                    ),
                    Column::new("l_shipmode", shipmode),
                ],
            )
            .expect("generated columns are aligned"),
        )
    }
}

fn gen_lineitem_chunks<'o>(
    orders_chunks: impl Iterator<Item = &'o Table>,
    chunk_rows: usize,
    n_parts: usize,
    n_suppliers: usize,
    rng: &mut StdRng,
    encoding: StringEncoding,
) -> Vec<Arc<Table>> {
    let mut chunks = Vec::new();
    let mut b = LineitemBuilder::default();
    for orders in orders_chunks {
        let okeys = match &orders.column_by_name("o_orderkey").expect("schema").data {
            ColumnData::Int64(v) => v,
            // LINT: panic-ok — the orders generator in this file fixes the
            // column type.
            _ => unreachable!("o_orderkey is Int64"),
        };
        let odates = match &orders.column_by_name("o_orderdate").expect("schema").data {
            ColumnData::Date(v) => v,
            // LINT: panic-ok — the orders generator in this file fixes the
            // column type.
            _ => unreachable!("o_orderdate is Date"),
        };
        for (okey, odate) in okeys.iter().zip(odates.iter()) {
            let lines = rng.gen_range(1..=7);
            for _ in 0..lines {
                let partkey = rng.gen_range(0..n_parts as i64) + 1;
                let qty = rng.gen_range(1..=50i64);
                b.l_orderkey.push(*okey);
                b.l_partkey.push(partkey);
                b.l_suppkey.push(rng.gen_range(0..n_suppliers.max(1) as i64) + 1);
                b.l_quantity.push(qty as f64);
                // Spec-ish: extended price grows with quantity and part key.
                b.l_extendedprice
                    .push(qty as f64 * (900.0 + (partkey % 1000) as f64 * 0.1));
                b.l_discount.push(rng.gen_range(0..=10) as f64 / 100.0);
                let ship = odate + rng.gen_range(1..=121);
                let commit = odate + rng.gen_range(30..=90);
                let receipt = ship + rng.gen_range(1..=30);
                b.l_shipdate.push(ship);
                b.l_commitdate.push(commit);
                b.l_receiptdate.push(receipt);
                b.l_shipmode.push(rng.gen_range(0..SHIP_MODES.len()));
            }
            // An order's lineitems never split across chunks.
            if b.len() >= chunk_rows {
                chunks.push(b.flush(encoding));
            }
        }
    }
    if b.len() > 0 || chunks.is_empty() {
        chunks.push(b.flush(encoding));
    }
    chunks
}

fn gen_lineitem(
    orders: &Table,
    n_parts: usize,
    n_suppliers: usize,
    rng: &mut StdRng,
    encoding: StringEncoding,
) -> Table {
    single_chunk(gen_lineitem_chunks(
        std::iter::once(orders),
        usize::MAX,
        n_parts,
        n_suppliers,
        rng,
        encoding,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TpchDb {
        TpchDb::generate(GenConfig::new(0.002, 7))
    }

    #[test]
    fn cardinality_ratios_hold() {
        let db = tiny();
        let c = db.table("customer").unwrap().n_rows();
        let o = db.table("orders").unwrap().n_rows();
        let l = db.table("lineitem").unwrap().n_rows();
        assert_eq!(c, 300); // 150_000 * 0.002
        assert_eq!(o, c * 10);
        // Lineitems per order average 4 (1..=7 uniform).
        let per_order = l as f64 / o as f64;
        assert!((3.4..4.6).contains(&per_order), "lines/order = {per_order}");
        assert_eq!(db.table("nation").unwrap().n_rows(), 25);
        assert_eq!(db.table("region").unwrap().n_rows(), 5);
        assert_eq!(
            db.table("partsupp").unwrap().n_rows(),
            db.table("part").unwrap().n_rows() * 4
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TpchDb::generate(GenConfig::new(0.002, 9));
        let b = TpchDb::generate(GenConfig::new(0.002, 9));
        assert_eq!(a.table("lineitem").unwrap(), b.table("lineitem").unwrap());
        let c = TpchDb::generate(GenConfig::new(0.002, 10));
        assert_ne!(a.table("lineitem").unwrap(), c.table("lineitem").unwrap());
    }

    #[test]
    fn row_cap_rescales_uniformly() {
        let uncapped = TpchDb::generate(GenConfig::new(0.01, 3));
        let capped = TpchDb::generate(GenConfig {
            scale_factor: 0.01,
            seed: 3,
            max_lineitem_rows: Some(10_000),
            encoding: StringEncoding::default(),
        });
        assert!(capped.rescale < 1.0);
        assert!(capped.table("lineitem").unwrap().n_rows() <= 12_000);
        // Ratios survive the cap.
        let ratio = |db: &TpchDb| {
            db.table("orders").unwrap().n_rows() as f64
                / db.table("customer").unwrap().n_rows() as f64
        };
        assert_eq!(ratio(&uncapped), 10.0);
        assert_eq!(ratio(&capped), 10.0);
    }

    #[test]
    fn larger_scale_factor_means_more_bytes() {
        let small = TpchDb::generate(GenConfig::new(0.001, 1));
        let large = TpchDb::generate(GenConfig::new(0.004, 1));
        assert!(large.total_bytes() > 2 * small.total_bytes());
    }

    #[test]
    fn date_invariants_hold() {
        let db = tiny();
        let li = db.table("lineitem").unwrap();
        let ship = match &li.column_by_name("l_shipdate").unwrap().data {
            ColumnData::Date(v) => v,
            _ => panic!(),
        };
        let receipt = match &li.column_by_name("l_receiptdate").unwrap().data {
            ColumnData::Date(v) => v,
            _ => panic!(),
        };
        for (s, r) in ship.iter().zip(receipt.iter()) {
            assert!(r > s, "receipt must follow ship");
        }
    }

    #[test]
    fn orders_reference_existing_customers() {
        let db = tiny();
        let n_cust = db.table("customer").unwrap().n_rows() as i64;
        let orders = db.table("orders").unwrap();
        let custs = match &orders.column_by_name("o_custkey").unwrap().data {
            ColumnData::Int64(v) => v,
            _ => panic!(),
        };
        assert!(custs.iter().all(|&c| c >= 1 && c <= n_cust));
    }

    #[test]
    fn snapshot_truncates_growing_tables_only() {
        let db = tiny();
        let snap = db.snapshot(0.5);
        assert_eq!(
            snap.try_get("orders").unwrap().n_rows(),
            (db.table("orders").unwrap().n_rows() as f64 * 0.5).round() as usize
        );
        assert_eq!(snap.try_get("nation").unwrap().n_rows(), 25);
        assert_eq!(snap.try_get("region").unwrap().n_rows(), 5);
        // Clamping.
        assert_eq!(db.snapshot(2.0).try_get("orders").unwrap().n_rows(), db.table("orders").unwrap().n_rows());
        assert_eq!(db.snapshot(-1.0).try_get("orders").unwrap().n_rows(), 0);
        // A prefix: first rows agree.
        assert_eq!(snap.try_get("customer").unwrap().row(0), db.table("customer").unwrap().row(0));
    }

    #[test]
    fn delta_stream_continues_keys_and_replays_deterministically() {
        let db = tiny();
        let n_orders = db.table("orders").unwrap().n_rows() as i64;
        let mut stream = DeltaStream::new(&db, 3);
        let first = stream.next_batch(40);
        let second = stream.next_batch(25);
        assert_eq!(first.orders.n_rows(), 40);
        // Keys continue strictly past the base and the prior batch.
        let keys = |t: &Table| match &t.column_by_name("o_orderkey").unwrap().data {
            ColumnData::Int64(v) => v.clone(),
            _ => panic!(),
        };
        assert_eq!(keys(&first.orders)[0], n_orders + 1);
        assert_eq!(keys(&second.orders)[0], n_orders + 41);
        // Lineitems reference their own batch's orders.
        let li_keys = match &first.lineitem.column_by_name("l_orderkey").unwrap().data {
            ColumnData::Int64(v) => v.clone(),
            _ => panic!(),
        };
        assert!(li_keys.iter().all(|k| (n_orders + 1..=n_orders + 40).contains(k)));
        // Streams replay: batch k is a pure function of (db, seed, k).
        let mut replay = DeltaStream::new(&db, 3);
        assert_eq!(replay.next_batch(40).lineitem, first.lineitem);
        assert_eq!(replay.next_batch(25).orders, second.orders);
        assert_eq!(replay.batches_generated(), 2);
        // Deltas share the base schema, so they append cleanly.
        let versioned = db.versioned_catalog();
        let receipt = versioned.append_batch(first.into_batch()).unwrap();
        assert_eq!(receipt.version, 1);
        assert!(receipt.stats.shared_bytes > 0);
        assert_eq!(
            versioned.current().table_rows("orders"),
            Some(n_orders as usize + 40)
        );
    }

    #[test]
    fn ship_modes_are_from_the_domain() {
        let db = tiny();
        let li = db.table("lineitem").unwrap();
        let modes = match &li.column_by_name("l_shipmode").unwrap().data {
            ColumnData::Utf8(v) => v,
            _ => panic!(),
        };
        assert!(modes.iter().all(|m| SHIP_MODES.contains(&m.as_str())));
        // All 7 modes appear in a non-trivial dataset.
        let distinct: std::collections::HashSet<&str> =
            modes.iter().map(|s| s.as_str()).collect();
        assert_eq!(distinct.len(), 7);
    }
}
