//! Parameterized query-instance streams.
//!
//! The MRE experiments need many executions of the *same* query template
//! with *different* parameter bindings, so the sizes of the prepared inputs
//! — the features DREAM regresses on — vary run to run. The generator walks
//! the parameter domains deterministically (seeded shuffle, then round
//! robin), exactly reproducible across processes.

use crate::gen::SHIP_MODES;
use crate::queries::{q12, q13, q14, q17, QueryId, TwoTableQuery};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One run of a query template with a concrete parameter binding.
#[derive(Debug, Clone)]
pub struct QueryInstance {
    /// Position in the stream.
    pub index: usize,
    /// The bound query.
    pub query: TwoTableQuery,
}

/// Deterministic parameter streams per query class.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    seed: u64,
}

impl WorkloadGenerator {
    /// A workload generator; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        WorkloadGenerator { seed }
    }

    /// The first `n` instances of a query class.
    pub fn instances(&self, id: QueryId, n: usize) -> Vec<QueryInstance> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (id.number() as u64) << 32);
        match id {
            QueryId::Q12 => {
                // All ordered ship-mode pairs x years 1993..=1997.
                let mut params: Vec<(usize, usize, i32)> = Vec::new();
                for a in 0..SHIP_MODES.len() {
                    for b in 0..SHIP_MODES.len() {
                        if a == b {
                            continue;
                        }
                        for year in 1993..=1997 {
                            params.push((a, b, year));
                        }
                    }
                }
                params.shuffle(&mut rng);
                (0..n)
                    .map(|i| {
                        let (a, b, year) = params[i % params.len()];
                        QueryInstance {
                            index: i,
                            query: q12(SHIP_MODES[a], SHIP_MODES[b], year),
                        }
                    })
                    .collect()
            }
            QueryId::Q13 => {
                let words = [
                    "special", "requests", "pending", "express", "deposits", "packages",
                    "accounts", "instructions", "furious", "ideas",
                ];
                let mut params: Vec<(usize, usize)> = Vec::new();
                for a in 0..words.len() {
                    for b in 0..words.len() {
                        if a != b {
                            params.push((a, b));
                        }
                    }
                }
                params.shuffle(&mut rng);
                (0..n)
                    .map(|i| {
                        let (a, b) = params[i % params.len()];
                        QueryInstance {
                            index: i,
                            query: q13(words[a], words[b]),
                        }
                    })
                    .collect()
            }
            QueryId::Q14 => {
                let mut params: Vec<(i32, u32)> = Vec::new();
                for year in 1993..=1997 {
                    for month in 1..=12 {
                        params.push((year, month));
                    }
                }
                params.shuffle(&mut rng);
                (0..n)
                    .map(|i| {
                        let (y, m) = params[i % params.len()];
                        QueryInstance {
                            index: i,
                            query: q14(y, m),
                        }
                    })
                    .collect()
            }
            QueryId::Q17 => {
                let containers = [
                    "SM CASE", "MED BOX", "LG JAR", "JUMBO PKG", "WRAP BAG", "MED PACK",
                    "SM DRUM", "LG CAN",
                ];
                let mut params: Vec<(u32, u32, usize)> = Vec::new();
                for b1 in 1..=5 {
                    for b2 in 1..=5 {
                        for c in 0..containers.len() {
                            params.push((b1, b2, c));
                        }
                    }
                }
                params.shuffle(&mut rng);
                (0..n)
                    .map(|i| {
                        let (b1, b2, c) = params[i % params.len()];
                        QueryInstance {
                            index: i,
                            query: q17(&format!("Brand#{b1}{b2}"), containers[c]),
                        }
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let a = WorkloadGenerator::new(5).instances(QueryId::Q12, 10);
        let b = WorkloadGenerator::new(5).instances(QueryId::Q12, 10);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.query.label, y.query.label);
        }
        let c = WorkloadGenerator::new(6).instances(QueryId::Q12, 10);
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.query.label != y.query.label));
    }

    #[test]
    fn parameters_vary_within_a_stream() {
        for id in QueryId::PAPER_SET {
            let w = WorkloadGenerator::new(1).instances(id, 20);
            let labels: std::collections::HashSet<String> =
                w.iter().map(|i| i.query.label.clone()).collect();
            assert!(labels.len() > 10, "{id:?} stream lacks variety");
        }
    }

    #[test]
    fn indices_are_sequential() {
        let w = WorkloadGenerator::new(1).instances(QueryId::Q14, 7);
        let idx: Vec<usize> = w.iter().map(|i| i.index).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn all_instances_match_the_requested_class() {
        let w = WorkloadGenerator::new(2).instances(QueryId::Q17, 15);
        assert!(w.iter().all(|i| i.query.id == QueryId::Q17));
    }
}
