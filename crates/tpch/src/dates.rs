//! Civil-date conversion: `(year, month, day)` ↔ days since 1970-01-01.
//!
//! Uses Howard Hinnant's `days_from_civil` algorithm — exact over the whole
//! proleptic Gregorian calendar, no lookup tables.

/// Days since the epoch for a civil date. Months are 1..=12, days 1..=31.
pub fn ymd(year: i32, month: u32, day: u32) -> i32 {
    debug_assert!((1..=12).contains(&month));
    debug_assert!((1..=31).contains(&day));
    let y = i64::from(if month <= 2 { year - 1 } else { year });
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (month as i64 + 9) % 12; // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + day as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era * 146097 + doe - 719468) as i32
}

/// Civil date for a day number.
pub fn civil(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let year = if m <= 2 { y + 1 } else { y } as i32;
    (year, m, d)
}

/// Adds `months` to a day number, clamping the day-of-month when the target
/// month is shorter (SQL `date + interval 'n' month` semantics).
pub fn add_months(days: i32, months: i32) -> i32 {
    let (y, m, d) = civil(days);
    let total = (y * 12 + m as i32 - 1) + months;
    let ny = total.div_euclid(12);
    let nm = total.rem_euclid(12) as u32 + 1;
    let max_day = days_in_month(ny, nm);
    ymd(ny, nm, d.min(max_day))
}

/// Number of days in a month.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        // LINT: panic-ok — callers pass months produced by modulo-12
        // arithmetic; 1..=12 is exhaustive above.
        _ => unreachable!("month out of range"),
    }
}

/// First day of the TPC-H date domain (1992-01-01).
pub fn tpch_start() -> i32 {
    ymd(1992, 1, 1)
}

/// Last day of the TPC-H date domain (1998-12-31).
pub fn tpch_end() -> i32 {
    ymd(1998, 12, 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(ymd(1970, 1, 1), 0);
        assert_eq!(civil(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        assert_eq!(ymd(1992, 1, 1), 8035);
        assert_eq!(ymd(2000, 3, 1), 11017);
        // Leap day handling.
        assert_eq!(ymd(2000, 2, 29) + 1, ymd(2000, 3, 1));
        assert_eq!(ymd(1900, 2, 28) + 1, ymd(1900, 3, 1)); // 1900 not leap
    }

    #[test]
    fn roundtrip_over_the_tpch_domain() {
        let mut d = tpch_start();
        while d <= tpch_end() {
            let (y, m, dd) = civil(d);
            assert_eq!(ymd(y, m, dd), d);
            d += 17; // stride keeps the test fast while covering all months
        }
    }

    #[test]
    fn add_months_clamps() {
        // Jan 31 + 1 month = Feb 28/29.
        assert_eq!(civil(add_months(ymd(1993, 1, 31), 1)), (1993, 2, 28));
        assert_eq!(civil(add_months(ymd(1996, 1, 31), 1)), (1996, 2, 29));
        // Year wrap.
        assert_eq!(civil(add_months(ymd(1995, 12, 15), 1)), (1996, 1, 15));
        assert_eq!(civil(add_months(ymd(1995, 3, 15), -3)), (1994, 12, 15));
        // +12 months = next year.
        assert_eq!(add_months(ymd(1994, 6, 1), 12), ymd(1995, 6, 1));
    }

    #[test]
    fn month_lengths() {
        assert_eq!(days_in_month(1996, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1993, 4), 30);
        assert_eq!(days_in_month(1993, 12), 31);
    }
}
