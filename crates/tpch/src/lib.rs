//! # midas-tpch
//!
//! A from-scratch, deterministic TPC-H-style workload substrate.
//!
//! The paper evaluates DREAM on the TPC-H benchmark at 100 MiB and 1 GiB,
//! restricted to the queries touching exactly two tables — Q12, Q13, Q14 and
//! Q17 — because those split naturally across a two-cloud federation (one
//! table per cloud, as in Example 2.1). This crate supplies:
//!
//! * [`dates`] — civil-date ↔ day-number conversion (TPC-H dates span
//!   1992-01-01 .. 1998-12-31),
//! * [`gen`] — a seeded generator for the eight TPC-H tables with the spec's
//!   cardinality ratios and a *row cap* that rescales the database uniformly
//!   (the substitution documented in DESIGN.md),
//! * [`queries`] — plan templates for Q12/Q13/Q14/Q17 as two-table federated
//!   queries (prepare-left, prepare-right, combine),
//! * [`workload`] — parameterized query-instance streams (rotating ship
//!   modes, date windows, brands…) so input sizes vary run to run,
//! * [`medical`] — the Patient/GeneralInfo schema of Example 2.1 and its
//!   join query, for the medical examples,
//! * [`stream`] — the streaming medical workload: a deterministic tape of
//!   hospital ingest deltas interleaved with Q12–Q17 tenant queries, for
//!   the live-data (copy-on-write catalog) runtime harnesses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dates;
pub mod dict;
pub mod gen;
pub mod medical;
pub mod queries;
pub mod stream;
pub mod workload;

pub use dict::{Dictionary, TpchDictionaries};
pub use gen::{DeltaStream, GenConfig, StringEncoding, TpchChunkedDb, TpchDb, TpchDelta};
pub use queries::{QueryId, TwoTableQuery};
pub use stream::{streaming_workload, StreamEvent, StreamSpec};
pub use workload::{QueryInstance, WorkloadGenerator};
