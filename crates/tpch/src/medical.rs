//! The medical schema of Example 2.1.
//!
//! ```sql
//! SELECT p.PatientSex, i.GeneralNames
//! FROM Patient p, GeneralInfo i
//! WHERE p.UID = i.UID
//! ```
//!
//! `Patient` lives in cloud A under Hive, `GeneralInfo` in cloud B under
//! PostgreSQL. The generator emulates a DICOM-flavoured registry: a hospital
//! has a `Patient` row per admitted patient and `GeneralInfo` rows shared
//! from other clinics for a subset of them (mobile patients).

use crate::queries::{QueryId, TwoTableQuery};
use midas_engines::data::{Column, ColumnData, Table};
use midas_engines::expr::Expr;
use midas_engines::ops::{JoinType, PhysicalPlan};
use midas_engines::version::VersionedCatalog;
use midas_engines::Catalog;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `patient` and `generalinfo` tables.
///
/// `coverage` is the fraction of patients that have shared general-info
/// records (mobile patients seen elsewhere).
pub fn generate_medical(n_patients: usize, coverage: f64, seed: u64) -> Catalog {
    let (patient, generalinfo) = medical_tables(n_patients, coverage, seed, 0);
    let mut m = Catalog::new();
    m.insert("patient", patient);
    m.insert("generalinfo", generalinfo);
    m
}

/// [`generate_medical`] as the base version of a copy-on-write
/// [`VersionedCatalog`]; successive [`medical_delta`] batches publish new
/// admissions while pinned queries keep their snapshot.
pub fn generate_medical_versioned(n_patients: usize, coverage: f64, seed: u64) -> VersionedCatalog {
    VersionedCatalog::new(generate_medical(n_patients, coverage, seed))
}

/// An ingest delta of `n_new` freshly admitted patients whose UIDs start at
/// `start_uid + 1`, plus their shared general-info records (the same
/// per-patient record model as [`generate_medical`]). Returned as
/// `(table name, delta)` pairs ready for
/// [`VersionedCatalog::append_batch`], so one hospital admission wave is
/// one atomic version bump.
///
/// The batch is a pure function of its arguments — a streaming run and its
/// sequential replay oracle generate bit-identical admissions.
pub fn medical_delta(
    n_new: usize,
    coverage: f64,
    seed: u64,
    start_uid: i64,
) -> Vec<(String, Table)> {
    let (patient, generalinfo) = medical_tables(n_new, coverage, seed, start_uid);
    vec![
        ("patient".to_string(), patient),
        ("generalinfo".to_string(), generalinfo),
    ]
}

/// The shared generator body: `n_patients` patients with UIDs
/// `start_uid + 1 ..= start_uid + n_patients`, plus shared records for a
/// `coverage` fraction of them.
fn medical_tables(
    n_patients: usize,
    coverage: f64,
    seed: u64,
    start_uid: i64,
) -> (Table, Table) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sexes = ["F", "M", "O"];
    let modalities = ["CT", "MR", "US", "XR", "PET"];

    let mut uid = Vec::with_capacity(n_patients);
    let mut sex = Vec::with_capacity(n_patients);
    let mut age = Vec::with_capacity(n_patients);
    let mut modality = Vec::with_capacity(n_patients);
    for i in 0..n_patients {
        uid.push(start_uid + i as i64 + 1);
        sex.push(sexes[rng.gen_range(0..sexes.len())].to_string());
        age.push(rng.gen_range(0..100i64));
        modality.push(modalities[rng.gen_range(0..modalities.len())].to_string());
    }
    let patient = Table::new(
        "patient",
        vec![
            Column::new("UID", ColumnData::Int64(uid)),
            Column::new("PatientSex", ColumnData::Utf8(sex)),
            Column::new("PatientAge", ColumnData::Int64(age)),
            Column::new("Modality", ColumnData::Utf8(modality)),
        ],
    )
    .expect("generated columns are aligned");

    let mut gi_uid = Vec::new();
    let mut gi_names = Vec::new();
    let mut gi_hospital = Vec::new();
    for i in 0..n_patients {
        if rng.gen_bool(coverage.clamp(0.0, 1.0)) {
            // Each shared patient has 1..=3 records from other clinics.
            let patient_uid = start_uid + i as i64 + 1;
            for r in 0..rng.gen_range(1..=3) {
                gi_uid.push(patient_uid);
                gi_names.push(format!("GeneralName#{patient_uid:06}-{r}"));
                gi_hospital.push(format!("clinic-{}", rng.gen_range(1..=12)));
            }
        }
    }
    let generalinfo = Table::new(
        "generalinfo",
        vec![
            Column::new("UID", ColumnData::Int64(gi_uid)),
            Column::new("GeneralNames", ColumnData::Utf8(gi_names)),
            Column::new("Hospital", ColumnData::Utf8(gi_hospital)),
        ],
    )
    .expect("generated columns are aligned");
    (patient, generalinfo)
}

/// Example 2.1's query as a two-table federated template.
///
/// Optionally restricts to one modality (a realistic clinic filter that
/// varies the prepared-input size, like the TPC-H parameters do).
pub fn medical_query(modality: Option<&str>) -> TwoTableQuery {
    // patient: 0 UID 1 PatientSex 2 PatientAge 3 Modality
    let base = PhysicalPlan::Scan {
        table: "patient".to_string(),
    };
    let filtered = match modality {
        Some(m) => PhysicalPlan::Filter {
            input: Box::new(base),
            predicate: Expr::col(3).eq(Expr::str(m)),
        },
        None => base,
    };
    let left_prepare = PhysicalPlan::Project {
        input: Box::new(filtered),
        exprs: vec![
            ("UID".to_string(), Expr::col(0)),
            ("PatientSex".to_string(), Expr::col(1)),
        ],
    };
    // generalinfo: 0 UID 1 GeneralNames 2 Hospital
    let right_prepare = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::Scan {
            table: "generalinfo".to_string(),
        }),
        exprs: vec![
            ("UID".to_string(), Expr::col(0)),
            ("GeneralNames".to_string(), Expr::col(1)),
        ],
    };
    let combine = PhysicalPlan::Project {
        // join output: 0 UID 1 PatientSex 2 r.UID 3 GeneralNames
        input: Box::new(PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::Scan {
                table: "@frag0".to_string(),
            }),
            right: Box::new(PhysicalPlan::Scan {
                table: "@frag1".to_string(),
            }),
            left_keys: vec![0],
            right_keys: vec![0],
            join_type: JoinType::Inner,
        }),
        exprs: vec![
            ("PatientSex".to_string(), Expr::col(1)),
            ("GeneralNames".to_string(), Expr::col(3)),
        ],
    };
    TwoTableQuery {
        id: QueryId::Q12, // reuse the enum slot closest in shape; label disambiguates
        label: match modality {
            Some(m) => format!("Medical(modality={m})"),
            None => "Medical(all)".to_string(),
        },
        left_table: "patient".to_string(),
        right_table: "generalinfo".to_string(),
        left_prepare,
        right_prepare,
        combine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_engines::ops::execute;
    use midas_engines::Value;

    #[test]
    fn generator_produces_linked_tables() {
        let tables = generate_medical(500, 0.4, 11);
        let p = tables.try_get("patient").unwrap();
        let g = tables.try_get("generalinfo").unwrap();
        assert_eq!(p.n_rows(), 500);
        assert!(g.n_rows() > 100, "coverage 0.4 should share >100 records");
        // Every generalinfo UID references an existing patient.
        let max_uid = p.n_rows() as i64;
        for i in 0..g.n_rows() {
            match g.row(i)[0] {
                Value::Int64(uid) => assert!(uid >= 1 && uid <= max_uid),
                ref other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn example_21_query_joins_on_uid() {
        let tables = generate_medical(300, 0.5, 3);
        let q = medical_query(None);
        let mut catalog = tables.clone();
        let (left, _) = execute(&q.left_prepare, &catalog).unwrap();
        let (right, _) = execute(&q.right_prepare, &catalog).unwrap();
        catalog.insert("@frag0".to_string(), left);
        catalog.insert("@frag1".to_string(), right.clone());
        let (out, _) = execute(&q.combine, &catalog).unwrap();
        // Inner join: one output row per generalinfo record.
        assert_eq!(out.n_rows(), right.n_rows());
        assert_eq!(out.n_columns(), 2);
        assert_eq!(out.columns()[0].name, "PatientSex");
        assert_eq!(out.columns()[1].name, "GeneralNames");
    }

    #[test]
    fn modality_filter_shrinks_left_input() {
        let tables = generate_medical(400, 0.5, 5);
        let all = medical_query(None);
        let ct = medical_query(Some("CT"));
        let (left_all, _) = execute(&all.left_prepare, &tables).unwrap();
        let (left_ct, _) = execute(&ct.left_prepare, &tables).unwrap();
        assert!(left_ct.n_rows() < left_all.n_rows());
        assert!(left_ct.n_rows() > 0);
        assert!(ct.label.contains("CT"));
    }

    #[test]
    fn medical_delta_extends_the_registry_in_place() {
        let versioned = generate_medical_versioned(200, 0.4, 6);
        let base_patients = versioned.current().table_rows("patient").unwrap();
        let receipt = versioned
            .append_batch(medical_delta(50, 0.4, 61, base_patients as i64))
            .unwrap();
        assert_eq!(receipt.version, 1);
        assert!(receipt.stats.shared_bytes > 0);
        let head = versioned.current();
        assert_eq!(head.table_rows("patient"), Some(base_patients + 50));
        // Every generalinfo UID (old and new) references an existing patient.
        let pinned = head.pin();
        let max_uid = (base_patients + 50) as i64;
        let g = pinned.get("generalinfo").unwrap();
        for i in 0..g.n_rows() {
            match g.row(i)[0] {
                Value::Int64(uid) => assert!(uid >= 1 && uid <= max_uid),
                ref other => panic!("{other:?}"),
            }
        }
        // New admissions are joinable: some UIDs exceed the base registry.
        let has_new = (0..g.n_rows()).any(|i| match g.row(i)[0] {
            Value::Int64(uid) => uid > base_patients as i64,
            _ => false,
        });
        assert!(has_new, "delta produced no shared records past the base");
        // Deltas replay bit-for-bit.
        assert_eq!(
            medical_delta(50, 0.4, 61, base_patients as i64),
            medical_delta(50, 0.4, 61, base_patients as i64)
        );
    }

    #[test]
    fn deterministic_generation() {
        let a = generate_medical(100, 0.3, 9);
        let b = generate_medical(100, 0.3, 9);
        assert_eq!(a.try_get("generalinfo").unwrap(), b.try_get("generalinfo").unwrap());
    }
}
