//! Generator conformance: cardinality ratios, value domains, determinism
//! and query-result sanity at a fixed seed.

use midas_engines::ops::execute;
use midas_engines::Value;
use midas_tpch::gen::{GenConfig, TpchDb, PRIORITIES, SHIP_MODES};
use midas_tpch::queries::{q12, q13, q14, q17, QueryId, TwoTableQuery};
use midas_tpch::workload::WorkloadGenerator;

fn run(q: &TwoTableQuery, db: &TpchDb) -> midas_engines::Table {
    let mut catalog = db.catalog().clone();
    let (l, _) = execute(&q.left_prepare, &catalog).expect("left runs");
    let (r, _) = execute(&q.right_prepare, &catalog).expect("right runs");
    catalog.insert("@frag0".to_string(), l);
    catalog.insert("@frag1".to_string(), r);
    execute(&q.combine, &catalog).expect("combine runs").0
}

#[test]
fn cardinalities_scale_linearly_with_sf() {
    let small = TpchDb::generate(GenConfig::new(0.001, 1));
    let large = TpchDb::generate(GenConfig::new(0.004, 1));
    for table in ["customer", "orders", "part", "supplier", "partsupp"] {
        let s = small.table(table).expect("generated").n_rows();
        let l = large.table(table).expect("generated").n_rows();
        assert_eq!(l, s * 4, "{table} does not scale linearly");
    }
    // Fixed tables do not scale.
    assert_eq!(small.table("nation").expect("generated").n_rows(), 25);
    assert_eq!(large.table("region").expect("generated").n_rows(), 5);
}

#[test]
fn value_domains_match_the_spec() {
    let db = TpchDb::generate(GenConfig::new(0.002, 3));
    let orders = db.table("orders").expect("generated");
    let pr_idx = orders.column_index("o_orderpriority").expect("schema");
    for i in 0..orders.n_rows().min(500) {
        match &orders.row(i)[pr_idx] {
            Value::Utf8(p) => assert!(PRIORITIES.contains(&p.as_str()), "{p}"),
            other => panic!("{other:?}"),
        }
    }
    let li = db.table("lineitem").expect("generated");
    let quantity_idx = li.column_index("l_quantity").expect("schema");
    let disc_idx = li.column_index("l_discount").expect("schema");
    for i in 0..li.n_rows().min(500) {
        match &li.row(i)[quantity_idx] {
            Value::Float64(q) => assert!((1.0..=50.0).contains(q)),
            other => panic!("{other:?}"),
        }
        match &li.row(i)[disc_idx] {
            Value::Float64(d) => assert!((0.0..=0.1).contains(d)),
            other => panic!("{other:?}"),
        }
    }
    let _ = SHIP_MODES; // domain coverage is asserted in unit tests
}

#[test]
fn same_seed_same_bytes_across_calls() {
    let a = TpchDb::generate(GenConfig::new(0.002, 1234));
    let b = TpchDb::generate(GenConfig::new(0.002, 1234));
    assert_eq!(a.total_bytes(), b.total_bytes());
    for t in ["lineitem", "orders", "customer", "part"] {
        assert_eq!(a.table(t), b.table(t), "{t} differs across generations");
    }
}

#[test]
fn query_results_are_stable_goldens_at_fixed_seed() {
    // These row counts pin the generator + executor behaviour end-to-end;
    // they were captured once and must never drift silently.
    let db = TpchDb::generate(GenConfig::new(0.005, 42));
    let q12_out = run(&q12("MAIL", "SHIP", 1994), &db);
    assert!(q12_out.n_rows() <= 2 && q12_out.n_rows() >= 1);
    let q13_out = run(&q13("special", "requests"), &db);
    // The count distribution covers every customer exactly once.
    let mut total = 0i64;
    for i in 0..q13_out.n_rows() {
        if let Value::Int64(d) = q13_out.row(i)[1] {
            total += d;
        }
    }
    assert_eq!(total as usize, db.table("customer").expect("generated").n_rows());
    let q14_out = run(&q14(1995, 9), &db);
    assert_eq!(q14_out.n_rows(), 1);
    let q17_out = run(&q17("Brand#23", "MED BOX"), &db);
    assert_eq!(q17_out.n_rows(), 1);
}

#[test]
fn workload_streams_differ_across_query_classes() {
    let w = WorkloadGenerator::new(9);
    let a = w.instances(QueryId::Q12, 5);
    let b = w.instances(QueryId::Q14, 5);
    assert!(a.iter().zip(b.iter()).all(|(x, y)| x.query.label != y.query.label));
}

#[test]
fn snapshot_per_table_is_independent() {
    let db = TpchDb::generate(GenConfig::new(0.002, 7));
    let snap = db.snapshot_per_table(|t| match t {
        "lineitem" => 0.5,
        "orders" => 1.0,
        _ => 0.25,
    });
    let li_full = db.table("lineitem").expect("generated").n_rows();
    let cust_full = db.table("customer").expect("generated").n_rows();
    assert_eq!(snap.try_get("orders").expect("snapshot").n_rows(), db.table("orders").expect("generated").n_rows());
    assert_eq!(snap.try_get("lineitem").expect("snapshot").n_rows(), (li_full as f64 * 0.5).round() as usize);
    assert_eq!(snap.try_get("customer").expect("snapshot").n_rows(), (cust_full as f64 * 0.25).round() as usize);
}
