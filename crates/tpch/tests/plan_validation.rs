//! Every shipped query template must validate cleanly through the
//! pre-execution analyzer — zero diagnostics, warnings included — against
//! the schemas its generator produces. This is the regression net that
//! keeps the analyzer and the query library in lockstep: a template edit
//! that misnumbers a column, and an analyzer change that starts
//! false-positive-ing on real plans, both fail here.

use midas_engines::{analyze_fragment_plans, PhysicalPlan, SchemaCatalog};
use midas_tpch::gen::{GenConfig, TpchDb};
use midas_tpch::medical::{generate_medical, medical_query};
use midas_tpch::queries::{q12, q13, q14, q17, TwoTableQuery};

fn assert_clean(schemas: &SchemaCatalog, q: &TwoTableQuery) {
    let plans: Vec<&PhysicalPlan> = vec![&q.left_prepare, &q.right_prepare, &q.combine];
    let analyses = analyze_fragment_plans(&plans, schemas);
    for (i, a) in analyses.iter().enumerate() {
        assert!(
            a.diagnostics.is_empty(),
            "{} fragment {i} is not diagnostic-clean: {:?}",
            q.label,
            a.diagnostics
        );
        assert!(
            a.schema.is_some(),
            "{} fragment {i} schema must be derivable",
            q.label
        );
    }
}

#[test]
fn tpch_query_templates_validate_cleanly() {
    let db = TpchDb::generate(GenConfig::new(0.002, 7));
    let schemas = SchemaCatalog::from_catalog(db.catalog());
    for q in [
        q12("MAIL", "SHIP", 1994),
        q13("special", "requests"),
        q14(1995, 9),
        q17("Brand#23", "MED BOX"),
    ] {
        assert_clean(&schemas, &q);
    }
}

#[test]
fn medical_query_templates_validate_cleanly() {
    let catalog = generate_medical(500, 0.4, 7);
    let schemas = SchemaCatalog::from_catalog(&catalog);
    assert_clean(&schemas, &medical_query(None));
    assert_clean(&schemas, &medical_query(Some("CT")));
}

#[test]
fn a_misnumbered_template_would_be_caught() {
    // The same medical combine but probing a column past the join output:
    // the exact defect class this net exists to catch.
    let catalog = generate_medical(100, 0.4, 7);
    let schemas = SchemaCatalog::from_catalog(&catalog);
    let mut q = medical_query(None);
    if let PhysicalPlan::Project { exprs, .. } = &mut q.combine {
        exprs[0].1 = midas_engines::Expr::col(40);
    } else {
        panic!("medical combine is a Project");
    }
    let plans: Vec<&PhysicalPlan> = vec![&q.left_prepare, &q.right_prepare, &q.combine];
    let analyses = analyze_fragment_plans(&plans, &schemas);
    assert!(analyses[2]
        .errors()
        .any(|d| d.kind == midas_engines::DiagnosticKind::ColumnOutOfBounds));
}
