//! The four paper queries must produce identical results and identical
//! work profiles under the vectorized default executor and the scalar
//! reference executor, end to end over generated TPC-H data.

use midas_engines::ops::{execute, execute_scalar};
use midas_tpch::gen::{GenConfig, TpchDb};
use midas_tpch::queries::{q12, q13, q14, q17, TwoTableQuery};

fn paper_queries() -> Vec<(&'static str, TwoTableQuery)> {
    vec![
        ("q12", q12("MAIL", "SHIP", 1994)),
        ("q13", q13("special", "requests")),
        ("q14", q14(1995, 9)),
        ("q17", q17("Brand#23", "MED BOX")),
    ]
}

#[test]
fn vectorized_matches_scalar_on_paper_queries() {
    let db = TpchDb::generate(GenConfig::new(0.002, 7));
    for (name, q) in paper_queries() {
        let mut cat_v = db.catalog().clone();
        let mut cat_s = db.catalog().clone();
        let (out_v, prof_v) = q
            .execute_local(&mut cat_v, execute)
            .unwrap_or_else(|e| panic!("{name} vectorized: {e}"));
        let (out_s, prof_s) = q
            .execute_local(&mut cat_s, execute_scalar)
            .unwrap_or_else(|e| panic!("{name} scalar: {e}"));
        assert_eq!(out_v, out_s, "{name}: result tables differ");
        assert_eq!(prof_v, prof_s, "{name}: work profiles differ");
        assert!(out_v.n_rows() > 0, "{name}: degenerate empty result");
    }
}

#[test]
fn fragment_catalog_entries_are_reinserted() {
    let db = TpchDb::generate(GenConfig::new(0.001, 3));
    let q = q12("MAIL", "SHIP", 1994);
    let mut cat = db.catalog().clone();
    let (first, _) = q.execute_local(&mut cat, execute).expect("runs");
    assert!(cat.contains("@frag0") && cat.contains("@frag1"));
    // Second run over the same catalog overwrites the fragments and
    // reproduces the result — the benchmark loop relies on this.
    let (second, _) = q.execute_local(&mut cat, execute).expect("runs again");
    assert_eq!(first, second);
}
