//! Differential test: the dictionary-encoded database answers the paper's
//! queries identically to the plain string database.
//!
//! One seed generates one *logical* database under either
//! [`StringEncoding`]; only the physical layout of the four low-cardinality
//! columns differs. Every query must therefore select the same rows and
//! compute the same aggregates — with group-by keys decoding back to the
//! exact strings of the plain path.

use midas_engines::data::{ColumnData, DataType, Value};
use midas_engines::ops::execute;
use midas_tpch::gen::{GenConfig, StringEncoding, TpchDb};
use midas_tpch::queries::{q12, q12_with, q13, q14, q17_with, TwoTableQuery};
use midas_tpch::TpchDictionaries;
use std::collections::HashMap;

fn run(q: &TwoTableQuery, db: &TpchDb) -> midas_engines::Table {
    let mut catalog = db.catalog().clone();
    let (out, _) = q.execute_local(&mut catalog, execute).expect("query runs");
    out
}

fn dbs() -> (TpchDb, TpchDb) {
    let plain = TpchDb::generate(GenConfig::new(0.002, 11));
    let dict = TpchDb::generate(GenConfig::new(0.002, 11).dictionary_encoded());
    (plain, dict)
}

#[test]
fn encodings_generate_the_same_logical_rows() {
    let (plain, dict) = dbs();
    let dicts = TpchDictionaries::spec();

    // The encoded columns flipped to Int64...
    for (table, column) in [
        ("lineitem", "l_shipmode"),
        ("orders", "o_orderpriority"),
        ("part", "p_brand"),
        ("part", "p_container"),
    ] {
        let p = plain.table(table).unwrap().column_by_name(column).unwrap();
        let d = dict.table(table).unwrap().column_by_name(column).unwrap();
        assert_eq!(p.data.data_type(), DataType::Utf8, "{table}.{column}");
        assert_eq!(d.data.data_type(), DataType::Int64, "{table}.{column}");
        // ...and every code decodes to exactly the plain string.
        let domain = dicts.for_column(table, column).expect("encoded column");
        let (ColumnData::Utf8(strings), ColumnData::Int64(codes)) = (&p.data, &d.data) else {
            panic!("unexpected column layouts for {table}.{column}");
        };
        assert_eq!(strings.len(), codes.len());
        for (s, code) in strings.iter().zip(codes.iter()) {
            assert_eq!(domain.decode(*code as u32), Some(s.as_str()), "{table}.{column}");
        }
    }

    // Untouched columns are bit-identical (same RNG stream under both
    // encodings).
    for table in ["customer", "supplier", "nation", "region", "partsupp"] {
        assert_eq!(plain.table(table), dict.table(table), "{table}");
    }
    let p_type = plain.table("part").unwrap().column_by_name("p_type").unwrap();
    let d_type = dict.table("part").unwrap().column_by_name("p_type").unwrap();
    assert_eq!(p_type, d_type, "high-cardinality p_type stays UTF-8");
}

#[test]
fn q12_group_by_on_codes_matches_the_string_path() {
    let (plain, dict) = dbs();
    let dicts = TpchDictionaries::spec();
    for (m1, m2, year) in [("MAIL", "SHIP", 1994), ("AIR", "RAIL", 1995)] {
        let out_plain = run(&q12(m1, m2, year), &plain);
        let out_dict = run(&q12_with(StringEncoding::Dictionary, m1, m2, year), &dict);
        assert_eq!(out_plain.n_rows(), out_dict.n_rows(), "Q12({m1},{m2},{year})");

        // The dict result groups by ship-mode *code*; decode its rows and
        // compare as key → counts maps (the sort orders legitimately differ:
        // codes sort in spec order, strings lexicographically).
        let collect = |t: &midas_engines::Table, decode: bool| -> HashMap<String, (i64, i64)> {
            (0..t.n_rows())
                .map(|i| {
                    let row = t.row(i);
                    let key = match &row[0] {
                        Value::Utf8(s) => {
                            assert!(!decode);
                            s.clone()
                        }
                        Value::Int64(code) => {
                            assert!(decode);
                            dicts.ship_mode.decode(*code as u32).expect("valid code").to_string()
                        }
                        other => panic!("unexpected group key {other:?}"),
                    };
                    let (Value::Int64(high), Value::Int64(low)) = (&row[1], &row[2]) else {
                        panic!("unexpected count columns {row:?}");
                    };
                    (key, (*high, *low))
                })
                .collect()
        };
        assert_eq!(
            collect(&out_plain, false),
            collect(&out_dict, true),
            "Q12({m1},{m2},{year})"
        );
    }
}

#[test]
fn q17_code_predicates_match_the_string_path() {
    let (plain, dict) = dbs();
    for (brand, container) in [("Brand#23", "MED BOX"), ("Brand#12", "SM CASE")] {
        let out_plain = run(
            &q17_with(StringEncoding::Plain, brand, container),
            &plain,
        );
        let out_dict = run(
            &q17_with(StringEncoding::Dictionary, brand, container),
            &dict,
        );
        // The filtered part keys are identical, so the whole numeric
        // pipeline downstream is bit-for-bit equal.
        assert_eq!(out_plain, out_dict, "Q17({brand},{container})");
    }
}

#[test]
fn untouched_queries_are_unaffected_by_the_encoding() {
    let (plain, dict) = dbs();
    // Q13 (comments) and Q14 (part types) only touch columns that stay
    // UTF-8 under both encodings.
    for q in [q13("special", "requests"), q14(1995, 9)] {
        assert_eq!(run(&q, &plain), run(&q, &dict), "{}", q.label);
    }
}

#[test]
fn unknown_domain_values_select_nothing_under_either_encoding() {
    let (plain, dict) = dbs();
    let out_plain = run(&q17_with(StringEncoding::Plain, "Brand#99", "MED BOX"), &plain);
    let out_dict = run(
        &q17_with(StringEncoding::Dictionary, "Brand#99", "MED BOX"),
        &dict,
    );
    // Q17's aggregate over an empty join is a single all-NULL-ish row or
    // zero rows depending on plan shape; both paths must agree exactly.
    assert_eq!(out_plain, out_dict);
}
