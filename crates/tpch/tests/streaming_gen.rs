//! SF-invariance of streaming generation: `TpchDb::generate_chunked`
//! must reproduce `TpchDb::generate` **exactly** — same rows, same
//! encodings, same fingerprints — at every chunk size and under both
//! string encodings, and chunk-native query execution over the streamed
//! database must match flat execution without ever compacting a
//! snapshot.

use midas_tpch::gen::{GenConfig, StringEncoding, TpchDb};
use midas_tpch::queries::{q12_with, q13, q14, q17_with};

const TABLES: [&str; 8] = [
    "region", "nation", "customer", "part", "supplier", "partsupp", "orders", "lineitem",
];

fn configs() -> Vec<GenConfig> {
    vec![
        GenConfig::new(0.01, 42),
        GenConfig::new(0.01, 42).dictionary_encoded(),
        // A capped config exercises the rescale path too.
        GenConfig {
            scale_factor: 0.02,
            seed: 7,
            max_lineitem_rows: Some(20_000),
            encoding: StringEncoding::Plain,
        },
    ]
}

/// Streaming generation at SF 0.01 reproduces the materialized generator
/// bit-for-bit at several chunk sizes, under both encodings and under the
/// row cap — per-table contents, names and fingerprints all equal.
#[test]
fn streaming_generation_reproduces_materialized_exactly() {
    for config in configs() {
        let flat = TpchDb::generate(config);
        for chunk_rows in [97usize, 1_000, 1 << 20] {
            let chunked = TpchDb::generate_chunked(config, chunk_rows);
            assert_eq!(chunked.rescale, flat.rescale);
            assert_eq!(chunked.encoding(), flat.encoding());
            for name in TABLES {
                let reference = flat.table(name).expect("table exists");
                let ct = chunked.version().table(name).expect("table exists");
                assert_eq!(ct.name(), name);
                assert_eq!(ct.n_rows(), reference.n_rows(), "{name} rows");
                for chunk in ct.chunks() {
                    assert_eq!(chunk.name, name, "chunks carry the table name");
                }
                let snap = ct.snapshot();
                assert_eq!(
                    snap.as_ref(),
                    reference,
                    "{name} diverges at chunk_rows={chunk_rows} ({:?})",
                    config.encoding
                );
                assert_eq!(snap.fingerprint(), reference.fingerprint());
            }
            // Small chunks really do split the growing tables.
            if chunk_rows == 97 {
                let li = chunked.version().table("lineitem").expect("exists");
                assert!(
                    li.chunk_count() > 1,
                    "lineitem should be multi-chunk at chunk_rows=97"
                );
            }
        }
    }
}

/// Chunk-native execution of the paper's four queries over the streamed
/// database matches flat vectorized execution bit-for-bit — tables,
/// fingerprints and all three work profiles — and pays **zero** snapshot
/// compaction doing it.
#[test]
fn chunk_native_queries_match_flat_execution() {
    for config in [GenConfig::new(0.01, 11), GenConfig::new(0.01, 11).dictionary_encoded()] {
        let flat = TpchDb::generate(config);
        let chunked = TpchDb::generate_chunked(config, 4_096);
        let enc = config.encoding;
        let queries = [
            q12_with(enc, "MAIL", "SHIP", 1994),
            q13("special", "requests"),
            q14(1995, 9),
            q17_with(enc, "Brand#23", "MED BOX"),
        ];
        for q in &queries {
            let mut catalog = flat.catalog().clone();
            let (ref_out, ref_profiles) = q
                .execute_local(&mut catalog, midas_engines::ops::execute)
                .expect("flat execution runs");
            for degree in [1usize, 3] {
                let (out, profiles) = q
                    .execute_fused_chunked(chunked.version(), degree)
                    .expect("chunk-native execution runs");
                assert_eq!(out, ref_out, "{} diverges at degree {degree}", q.label);
                assert_eq!(out.fingerprint(), ref_out.fingerprint());
                assert_eq!(profiles, ref_profiles, "{} profiles diverge", q.label);
            }
        }
        assert_eq!(
            chunked.version().compaction_bytes(),
            0,
            "chunk-native pipeline must never compact a snapshot"
        );
    }
}
