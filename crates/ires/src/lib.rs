//! # midas-ires
//!
//! The IReS-like layer (paper Section 2.4): everything between a parsed
//! query and its execution on the federation.
//!
//! * [`modelling`] — the **Modelling module**: an execution-history store
//!   plus any [`midas_dream::CostEstimator`] (DREAM or the BML baselines)
//!   behind one facade, mirroring Figure 2's dataflow.
//! * [`enumerate`] — **QEP enumeration**: the space of equivalent plans for
//!   a two-table federated query (join site × engine × instance type × VM
//!   count), including the Example 3.1 configuration counting.
//! * [`costmodel`] — an analytic per-configuration cost evaluator built from
//!   one real execution's work profile; it powers the optimizer experiments
//!   where thousands of equivalent QEPs must be costed cheaply.
//! * [`optimizer`] — the **Multi-Objective Optimizer**: the Pareto/GA
//!   pipeline (NSGA-II → Pareto set → Algorithm 2) and the Weighted Sum
//!   Model pipeline it is compared against in Figure 3.
//! * [`scheduler`] — the submit→enumerate→estimate→select→execute→learn
//!   loop binding it all together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costmodel;
pub mod enumerate;
pub mod modelling;
pub mod optimizer;
pub mod scheduler;

pub use costmodel::{CostModelError, PlanCostModel};
pub use enumerate::{assemble, CandidateConfig, EnumerationSpace};
pub use modelling::{EstimatorFactory, Modelling, ModellingRegistry};
pub use optimizer::{moqp_ga, moqp_wsm, MoqpOutcome};
pub use scheduler::{ExecutedQuery, Scheduler, SchedulerConfig, SchedulerError};
