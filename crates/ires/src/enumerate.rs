//! QEP enumeration over the federation.
//!
//! A two-table federated query has pinned scans (tables don't move) but a
//! free join stage: which site hosts the join, which engine runs it, which
//! instance type is bought and how many VMs. Example 3.1 shows why this
//! explodes: a 70-vCPU/260-GiB pool alone yields 18 200 configurations — and
//! that is one site, one engine.

use midas_cloud::{Federation, SiteId};
use midas_engines::exec::{FederatedQuery, Fragment};
use midas_engines::{EngineError, EngineKind, Placement};
use midas_tpch::TwoTableQuery;

/// One point of the QEP configuration space.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateConfig {
    /// Site executing the join/aggregate stage.
    pub join_site: SiteId,
    /// Engine executing it.
    pub join_engine: EngineKind,
    /// Index into the join site's instance catalog.
    pub instance_idx: usize,
    /// VMs allocated to the join stage.
    pub vm_count: u32,
}

/// The enumerable configuration space of one query.
#[derive(Debug, Clone)]
pub struct EnumerationSpace {
    /// Candidate join sites (the two hosting sites by default).
    pub sites: Vec<SiteId>,
    /// Candidate engines.
    pub engines: Vec<EngineKind>,
    /// Instance-catalog size per candidate site (parallel to `sites`).
    pub instances_per_site: Vec<usize>,
    /// Maximum VM count considered.
    pub max_vms: u32,
}

impl EnumerationSpace {
    /// Builds the space for a query: join may run at either hosting site,
    /// under any engine, on any instance of that site's catalog, with
    /// 1..=`max_vms` VMs (clamped by the pool).
    pub fn for_query(
        federation: &Federation,
        placement: &Placement,
        query: &TwoTableQuery,
        max_vms: u32,
    ) -> Result<Self, EngineError> {
        let left = placement.locate(&query.left_table)?;
        let right = placement.locate(&query.right_table)?;
        let mut sites = vec![left.site];
        if right.site != left.site {
            sites.push(right.site);
        }
        let instances_per_site = sites
            .iter()
            .map(|&s| federation.site(s).catalog.instances().len())
            .collect();
        Ok(EnumerationSpace {
            sites,
            engines: EngineKind::ALL.to_vec(),
            instances_per_site,
            max_vms: max_vms.max(1),
        })
    }

    /// Genome cardinalities for the GA: `[site, engine, instance, vms]`.
    ///
    /// The instance gene spans the *largest* catalog; decoding wraps it onto
    /// the chosen site's catalog so every genome is valid.
    pub fn cardinalities(&self) -> Vec<usize> {
        let max_instances = self.instances_per_site.iter().copied().max().unwrap_or(1);
        vec![
            self.sites.len(),
            self.engines.len(),
            max_instances,
            self.max_vms as usize,
        ]
    }

    /// Decodes a GA genome into a configuration.
    pub fn decode(&self, genome: &[usize]) -> CandidateConfig {
        let site_idx = genome[0] % self.sites.len();
        CandidateConfig {
            join_site: self.sites[site_idx],
            join_engine: self.engines[genome[1] % self.engines.len()],
            instance_idx: genome[2] % self.instances_per_site[site_idx],
            vm_count: (genome[3] % self.max_vms as usize) as u32 + 1,
        }
    }

    /// Exhaustive enumeration of the whole space.
    pub fn all(&self) -> Vec<CandidateConfig> {
        let mut out = Vec::with_capacity(self.len());
        for (site_idx, &site) in self.sites.iter().enumerate() {
            for &engine in &self.engines {
                for instance_idx in 0..self.instances_per_site[site_idx] {
                    for vm in 1..=self.max_vms {
                        out.push(CandidateConfig {
                            join_site: site,
                            join_engine: engine,
                            instance_idx,
                            vm_count: vm,
                        });
                    }
                }
            }
        }
        out
    }

    /// Number of distinct configurations.
    pub fn len(&self) -> usize {
        self.instances_per_site
            .iter()
            .map(|&i| i * self.engines.len() * self.max_vms as usize)
            .sum()
    }

    /// True when the space is degenerate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Assembles the three-fragment federated query realizing a configuration.
///
/// Scan fragments run at the hosting sites on one instance of the cheapest
/// shape (index 0 of each catalog — storage-side scanning); the join
/// fragment runs per the configuration.
pub fn assemble(
    federation: &Federation,
    placement: &Placement,
    query: &TwoTableQuery,
    config: &CandidateConfig,
) -> Result<FederatedQuery, EngineError> {
    let left = placement.locate(&query.left_table)?;
    let right = placement.locate(&query.right_table)?;

    let scan_instance = |site: SiteId| -> Result<String, EngineError> {
        federation
            .site(site)
            .catalog
            .instances()
            .first()
            .map(|i| i.name.clone())
            .ok_or_else(|| EngineError::Unavailable(format!("empty catalog at site {site:?}")))
    };
    let join_instance = federation
        .site(config.join_site)
        .catalog
        .instances()
        .get(config.instance_idx)
        .map(|i| i.name.clone())
        .ok_or_else(|| {
            EngineError::Unavailable(format!(
                "instance index {} at site {:?}",
                config.instance_idx, config.join_site
            ))
        })?;

    Ok(FederatedQuery {
        fragments: vec![
            Fragment {
                plan: query.left_prepare.clone(),
                site: left.site,
                engine: left.engine,
                instance: scan_instance(left.site)?,
                vm_count: 1,
            },
            Fragment {
                plan: query.right_prepare.clone(),
                site: right.site,
                engine: right.engine,
                instance: scan_instance(right.site)?,
                vm_count: 1,
            },
            Fragment {
                plan: query.combine.clone(),
                site: config.join_site,
                engine: config.join_engine,
                instance: join_instance,
                vm_count: config.vm_count,
            },
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_cloud::federation::example_federation;
    use midas_tpch::queries::q12;

    fn setup() -> (Federation, Placement, TwoTableQuery) {
        let (fed, a, b) = example_federation();
        let mut placement = Placement::new();
        placement.place("lineitem", a, EngineKind::Hive);
        placement.place("orders", b, EngineKind::PostgreSql);
        (fed, placement, q12("MAIL", "SHIP", 1994))
    }

    #[test]
    fn space_counts_match() {
        let (fed, placement, query) = setup();
        let space = EnumerationSpace::for_query(&fed, &placement, &query, 8).unwrap();
        assert_eq!(space.sites.len(), 2);
        // cloud-A: 5 Amazon instances, cloud-B: 6 Azure instances.
        assert_eq!(space.instances_per_site, vec![5, 6]);
        // (5 + 6) instances * 3 engines * 8 vm options.
        assert_eq!(space.len(), 11 * 3 * 8);
        assert_eq!(space.all().len(), space.len());
        assert!(!space.is_empty());
    }

    #[test]
    fn decode_wraps_onto_valid_ranges() {
        let (fed, placement, query) = setup();
        let space = EnumerationSpace::for_query(&fed, &placement, &query, 4).unwrap();
        let cards = space.cardinalities();
        assert_eq!(cards, vec![2, 3, 6, 4]);
        // A genome pointing at instance 5 on the Amazon site (5 instances)
        // must wrap to a valid index.
        let cfg = space.decode(&[0, 0, 5, 0]);
        assert!(cfg.instance_idx < 5);
        assert_eq!(cfg.vm_count, 1);
        let cfg = space.decode(&[1, 2, 5, 3]);
        assert_eq!(cfg.instance_idx, 5); // Azure has 6 instances
        assert_eq!(cfg.vm_count, 4);
    }

    #[test]
    fn assemble_produces_three_pinned_fragments() {
        let (fed, placement, query) = setup();
        let space = EnumerationSpace::for_query(&fed, &placement, &query, 4).unwrap();
        let config = CandidateConfig {
            join_site: space.sites[1],
            join_engine: EngineKind::Spark,
            instance_idx: 2,
            vm_count: 3,
        };
        let fq = assemble(&fed, &placement, &query, &config).unwrap();
        assert_eq!(fq.fragments.len(), 3);
        assert_eq!(fq.fragments[0].site, space.sites[0]); // lineitem site
        assert_eq!(fq.fragments[1].site, space.sites[1]); // orders site
        assert_eq!(fq.fragments[2].site, config.join_site);
        assert_eq!(fq.fragments[2].engine, EngineKind::Spark);
        assert_eq!(fq.fragments[2].vm_count, 3);
        assert_eq!(fq.fragments[2].instance, "B2S");
        // Scan fragments use the cheapest local shape.
        assert_eq!(fq.fragments[0].instance, "a1.medium");
        assert_eq!(fq.fragments[1].instance, "B1S");
    }

    #[test]
    fn assemble_rejects_bad_instance_index() {
        let (fed, placement, query) = setup();
        let config = CandidateConfig {
            join_site: SiteId(0),
            join_engine: EngineKind::Hive,
            instance_idx: 99,
            vm_count: 1,
        };
        assert!(assemble(&fed, &placement, &query, &config).is_err());
    }

    #[test]
    fn unplaced_table_is_an_error() {
        let (fed, _, query) = setup();
        let empty = Placement::new();
        assert!(EnumerationSpace::for_query(&fed, &empty, &query, 2).is_err());
    }
}
