//! The submit → enumerate → estimate → select → execute → learn loop.
//!
//! `Scheduler` owns the executor (and therefore the drifting simulation
//! environment) plus one [`Modelling`](crate::modelling::Modelling) per query class, keyed by the query's
//! [`midas_tpch::QueryId`]-level label. Every execution feeds the history, so
//! estimators learn online exactly as IReS does.

use crate::enumerate::{assemble, CandidateConfig};
use midas_cloud::Federation;
use midas_dream::EstimationError;
use midas_engines::exec::{ExecutionOutcome, Executor};
use midas_engines::sim::{DriftIntensity, SimulationEnv};
use midas_engines::version::CatalogVersion;
use midas_engines::{Catalog, EngineError, Placement};
use midas_tpch::TwoTableQuery;

/// Scheduler construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Simulation seed.
    pub seed: u64,
    /// Environment drift intensity.
    pub drift: DriftIntensity,
    /// Logical rows per physical row (1.0 for uncapped datasets; pass
    /// `1 / rescale` for row-capped TPC-H databases).
    pub work_scale: f64,
    /// Intra-operator partition fan-out: hash joins and grouped
    /// aggregations inside every fragment run this many shards on scoped
    /// threads (1 = serial). Results are bit-identical at every degree —
    /// only wall-clock changes.
    pub partition_degree: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            seed: 42,
            drift: DriftIntensity::Strong,
            work_scale: 1.0,
            partition_degree: 1,
        }
    }
}

/// One executed query with its learning signals.
#[derive(Debug, Clone)]
pub struct ExecutedQuery {
    /// The instance label.
    pub label: String,
    /// Feature vector: rows of the prepared left and right inputs.
    pub features: Vec<f64>,
    /// Observed cost vector `(time s, money $)`.
    pub costs: Vec<f64>,
    /// The full execution record.
    pub outcome: ExecutionOutcome,
}

/// Errors the scheduler can surface.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerError {
    /// Plan construction or execution failed.
    Engine(EngineError),
    /// Estimation failed.
    Estimation(EstimationError),
    /// Cost-model pressure configuration was malformed (NaN/negative
    /// penalty knobs — see
    /// [`CostModelError`](crate::costmodel::CostModelError)).
    CostModel(crate::costmodel::CostModelError),
    /// A query referenced a base table the data catalog does not hold.
    ///
    /// Historically this was swallowed by treating the missing table as
    /// empty (`map_or(0, …)` on the lookup), which silently fed zero-row
    /// features to the learners; now it is a first-class error.
    MissingTable {
        /// The table the query asked for.
        table: String,
    },
    /// The static plan analyzer rejected the assembled federated query
    /// before execution: schema/type/DAG defects that would have surfaced
    /// as runtime `EngineError`s (or a dispatch panic) mid-flight.
    InvalidPlan {
        /// The error-severity diagnostics, in discovery order.
        diagnostics: Vec<midas_engines::PlanDiagnostic>,
    },
}

impl std::fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerError::Engine(e) => write!(f, "engine: {e}"),
            SchedulerError::Estimation(e) => write!(f, "estimation: {e}"),
            SchedulerError::CostModel(e) => write!(f, "cost model: {e}"),
            SchedulerError::MissingTable { table } => {
                write!(f, "table {table:?} is not in the data catalog")
            }
            SchedulerError::InvalidPlan { diagnostics } => {
                write!(f, "plan rejected by static analysis:")?;
                for d in diagnostics {
                    write!(f, " [{d}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SchedulerError {}

impl From<EngineError> for SchedulerError {
    fn from(e: EngineError) -> Self {
        SchedulerError::Engine(e)
    }
}

impl From<EstimationError> for SchedulerError {
    fn from(e: EstimationError) -> Self {
        SchedulerError::Estimation(e)
    }
}

impl From<crate::costmodel::CostModelError> for SchedulerError {
    fn from(e: crate::costmodel::CostModelError) -> Self {
        SchedulerError::CostModel(e)
    }
}

/// The IReS-like scheduler bound to one federation.
pub struct Scheduler<'a> {
    federation: &'a Federation,
    placement: Placement,
    executor: Executor<'a>,
    work_scale: f64,
}

impl<'a> Scheduler<'a> {
    /// Builds a scheduler; registers every federation site in the
    /// simulation environment with the configured drift.
    pub fn new(federation: &'a Federation, placement: Placement, config: SchedulerConfig) -> Self {
        let mut env = SimulationEnv::new();
        for site in federation.site_ids() {
            env.register_site(site, config.seed, config.drift);
        }
        Scheduler {
            federation,
            placement,
            executor: Executor::new(federation, env)
                .with_partition_degree(config.partition_degree),
            work_scale: if config.work_scale.is_finite() && config.work_scale > 0.0 {
                config.work_scale
            } else {
                1.0
            },
        }
    }

    /// The placement in use.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The simulated clock (seconds since the run began).
    pub fn clock_s(&self) -> f64 {
        self.executor.env().clock_s
    }

    /// Executes one query instance under an explicit configuration and
    /// returns the learning signals.
    ///
    /// Features are the "size of data" regressors of the paper's Section 3,
    /// in the spirit of Example 2.1's `x_Pa`/`x_Ge`: the raw row counts of
    /// the two base tables (known from catalog statistics) plus the two
    /// prepared-side row counts (the optimizer's cardinality estimates for
    /// the join inputs).
    pub fn execute_with_config(
        &mut self,
        query: &TwoTableQuery,
        config: &CandidateConfig,
        tables: &Catalog,
    ) -> Result<ExecutedQuery, SchedulerError> {
        let federated = assemble(self.federation, &self.placement, query, config)?;
        let left_rows = base_rows(tables, &query.left_table)?;
        let right_rows = base_rows(tables, &query.right_table)?;
        // Static validation before execution: a plan that would surface a
        // schema/type/DAG error mid-flight is rejected here with the full
        // diagnostic set instead of the first runtime error it happens to
        // hit. (Placement errors stay `Engine` — `assemble` above fails
        // first for unplaced tables.)
        let schemas = midas_engines::SchemaCatalog::from_catalog(tables);
        let analysis = midas_engines::analyze_federated(&federated, &schemas, self.federation);
        if !analysis.is_valid() {
            return Err(SchedulerError::InvalidPlan {
                diagnostics: analysis.errors(),
            });
        }
        let outcome = self
            .executor
            .run_with_scale(&federated, tables, self.work_scale)?;
        let features = features_from(left_rows, right_rows, &outcome, self.work_scale);
        let costs = outcome.cost_vector();
        Ok(ExecutedQuery {
            label: query.label.clone(),
            features,
            costs,
            outcome,
        })
    }

    /// [`Scheduler::execute_with_config`] against a pinned catalog version
    /// — the execution entry point of the live-data stack. Snapshot
    /// isolation is the version's: however many ingests publish while this
    /// runs, the query reads exactly the rows of `version`.
    pub fn execute_pinned(
        &mut self,
        query: &TwoTableQuery,
        config: &CandidateConfig,
        version: &CatalogVersion,
    ) -> Result<ExecutedQuery, SchedulerError> {
        self.execute_with_config(query, config, &version.pin())
    }

    /// Lets idle time pass: advances the environment by `ticks` drift steps
    /// of `dt_s` simulated seconds each (between-query arrival gaps).
    pub fn idle(&mut self, ticks: usize, dt_s: f64) {
        for _ in 0..ticks {
            self.executor.env_mut().tick(dt_s);
        }
    }
}

/// The "size of data" feature vector of the paper's Section 3, shared by the
/// sequential [`Scheduler`] and the concurrent federation runtime so the two
/// paths can never drift apart: raw base-table row counts plus the two
/// prepared-side output row counts. All sizes are *logical*
/// (physical × `work_scale`) so estimations transfer across
/// physically-capped datasets.
pub fn features_from(
    left_rows: f64,
    right_rows: f64,
    outcome: &ExecutionOutcome,
    work_scale: f64,
) -> Vec<f64> {
    vec![
        left_rows * work_scale,
        right_rows * work_scale,
        outcome.fragments[0].work.output_rows() as f64 * work_scale,
        outcome.fragments[1].work.output_rows() as f64 * work_scale,
    ]
}

/// Looks up a base table's row count, surfacing a missing table as a
/// [`SchedulerError::MissingTable`] instead of silently treating it as empty.
pub fn base_rows(tables: &Catalog, name: &str) -> Result<f64, SchedulerError> {
    tables
        .get(name)
        .map(|t| t.n_rows() as f64)
        .ok_or_else(|| SchedulerError::MissingTable {
            table: name.to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_cloud::federation::example_federation;
    use midas_cloud::SiteId;
    use midas_engines::EngineKind;
    use midas_tpch::gen::{GenConfig, TpchDb};
    use midas_tpch::queries::{q12, q13};

    fn setup<'a>(fed: &'a Federation) -> (Scheduler<'a>, TpchDb) {
        let mut placement = Placement::new();
        placement.place("lineitem", SiteId(0), EngineKind::Hive);
        placement.place("orders", SiteId(1), EngineKind::PostgreSql);
        placement.place("customer", SiteId(0), EngineKind::Hive);
        let sched = Scheduler::new(fed, placement, SchedulerConfig::default());
        (sched, TpchDb::generate(GenConfig::new(0.002, 77)))
    }

    fn config() -> CandidateConfig {
        CandidateConfig {
            join_site: SiteId(0),
            join_engine: EngineKind::Spark,
            instance_idx: 1,
            vm_count: 2,
        }
    }

    #[test]
    fn executes_and_extracts_features() {
        let (fed, _, _) = example_federation();
        let (mut sched, db) = setup(&fed);
        let q = q12("MAIL", "SHIP", 1994);
        let run = sched
            .execute_with_config(&q, &config(), db.catalog())
            .unwrap();
        assert_eq!(run.features.len(), 4);
        assert_eq!(
            run.features[0] as usize,
            db.table("lineitem").unwrap().n_rows(),
            "x1 is the raw left-table size"
        );
        assert!(run.features[2] > 0.0, "filtered lineitem side non-empty");
        assert!(
            run.features[2] < run.features[0],
            "prepared side is smaller than the base table"
        );
        assert_eq!(
            run.features[3] as usize,
            db.table("orders").unwrap().n_rows(),
            "orders side is unfiltered"
        );
        assert_eq!(run.costs.len(), 2);
        assert!(run.costs[0] > 0.0 && run.costs[1] > 0.0);
        assert!(run.label.contains("Q12"));
    }

    #[test]
    fn clock_and_idle_advance() {
        let (fed, _, _) = example_federation();
        let (mut sched, db) = setup(&fed);
        let q = q13("special", "requests");
        assert_eq!(sched.clock_s(), 0.0);
        sched
            .execute_with_config(&q, &config(), db.catalog())
            .unwrap();
        let after_exec = sched.clock_s();
        assert!(after_exec > 0.0);
        sched.idle(10, 30.0);
        assert!((sched.clock_s() - after_exec - 300.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_runs_vary_under_drift() {
        let (fed, _, _) = example_federation();
        let (mut sched, db) = setup(&fed);
        let q = q12("AIR", "RAIL", 1995);
        let mut times = Vec::new();
        for _ in 0..6 {
            let run = sched
                .execute_with_config(&q, &config(), db.catalog())
                .unwrap();
            times.push(run.costs[0]);
            sched.idle(5, 60.0);
        }
        // Same query, same config: observed times must not all be equal
        // (drift + noise at work).
        let first = times[0];
        assert!(times.iter().any(|t| (t - first).abs() > 1e-6), "{times:?}");
    }

    #[test]
    fn pinned_execution_matches_flat_catalog_execution() {
        use midas_engines::version::VersionedCatalog;
        let (fed, _, _) = example_federation();
        let (mut sched_flat, db) = setup(&fed);
        let q = q12("MAIL", "SHIP", 1994);
        let flat = sched_flat
            .execute_with_config(&q, &config(), db.catalog())
            .unwrap();

        let (mut sched_pinned, _) = setup(&fed);
        let versioned = VersionedCatalog::new(db.catalog().clone());
        let pinned = sched_pinned
            .execute_pinned(&q, &config(), &versioned.current())
            .unwrap();
        // Planning routes through the same pinned snapshot.
        let model_flat =
            crate::PlanCostModel::build(sched_flat.placement(), &q, db.catalog()).unwrap();
        let model_pinned =
            crate::PlanCostModel::build_pinned(sched_flat.placement(), &q, &versioned.current())
                .unwrap();
        assert_eq!(model_pinned.prepared_rows(), model_flat.prepared_rows());
        assert_eq!(
            model_pinned.cost(&fed, &config()),
            model_flat.cost(&fed, &config())
        );
        // Same seed, same data, same config: bit-for-bit equal signals.
        assert_eq!(pinned.features, flat.features);
        assert_eq!(pinned.costs, flat.costs);
        assert_eq!(
            pinned.outcome.result.fingerprint(),
            flat.outcome.result.fingerprint()
        );
    }

    #[test]
    fn missing_base_table_is_a_first_class_error() {
        let (fed, _, _) = example_federation();
        let (mut sched, db) = setup(&fed);
        let q = q12("MAIL", "SHIP", 1994);
        let mut tables = db.catalog().clone();
        tables.remove("lineitem");
        let err = sched.execute_with_config(&q, &config(), &tables);
        match err {
            Err(SchedulerError::MissingTable { table }) => assert_eq!(table, "lineitem"),
            other => panic!("expected MissingTable, got {other:?}"),
        }
    }

    #[test]
    fn unplaced_table_errors() {
        let (fed, _, _) = example_federation();
        let (mut sched, db) = setup(&fed);
        let q = midas_tpch::queries::q14(1995, 3); // part is not placed
        let err = sched.execute_with_config(&q, &config(), db.catalog());
        assert!(matches!(err, Err(SchedulerError::Engine(_))));
    }
}
