//! The Multi-Objective Optimizer — both pipelines of Figure 3.
//!
//! * **GA pipeline** (right branch): NSGA-II evolves the QEP configuration
//!   space into a Pareto plan set; Algorithm 2 (`best_in_pareto`) then
//!   applies the user's weights and budget. A weight change only re-runs
//!   Algorithm 2 — the Pareto set is reused.
//! * **WSM pipeline** (left branch): a single-objective GA minimizes the
//!   weighted sum directly. Every weight change restarts the whole GA.
//!
//! An exhaustive evaluator provides ground truth for the small spaces used
//! in tests and the Figure 3 experiment.

use crate::costmodel::PlanCostModel;
use crate::enumerate::{CandidateConfig, EnumerationSpace};
use midas_cloud::Federation;
use midas_moo::select::Constraints;
use midas_moo::wsm::optimize_scalarized;
use midas_moo::{best_in_pareto, IntBoxProblem, Nsga2, Nsga2Config, WeightedSumModel};

/// What a MOQP run produced.
#[derive(Debug, Clone)]
pub struct MoqpOutcome {
    /// The selected configuration.
    pub chosen: CandidateConfig,
    /// Its expected cost vector `(time, money)`.
    pub chosen_costs: Vec<f64>,
    /// The Pareto set the selection came from (singleton for WSM).
    pub pareto: Vec<(CandidateConfig, Vec<f64>)>,
    /// Cost-model evaluations spent.
    pub evaluations: usize,
}

/// GA pipeline: NSGA-II → Pareto set → Algorithm 2.
pub fn moqp_ga(
    space: &EnumerationSpace,
    model: &PlanCostModel,
    federation: &Federation,
    weights: &WeightedSumModel,
    constraints: &Constraints,
    ga: Nsga2Config,
) -> MoqpOutcome {
    let problem = IntBoxProblem::new(space.cardinalities(), 2, |genome: &[usize]| {
        model.cost(federation, &space.decode(genome))
    });
    let (population, evaluations) = Nsga2::new(&problem, ga).run();
    let front: Vec<_> = population.into_iter().filter(|i| i.rank == 0).collect();
    let pareto: Vec<(CandidateConfig, Vec<f64>)> = front
        .iter()
        .map(|ind| (space.decode(&ind.genome), ind.costs.clone()))
        .collect();
    let costs: Vec<Vec<f64>> = pareto.iter().map(|(_, c)| c.clone()).collect();
    let pick = best_in_pareto(&costs, weights, constraints).expect("front is non-empty");
    MoqpOutcome {
        chosen: pareto[pick].0.clone(),
        chosen_costs: pareto[pick].1.clone(),
        pareto,
        evaluations,
    }
}

/// Re-selection from an existing Pareto set under new weights/constraints —
/// the cheap path the GA pipeline enjoys when the user policy changes.
pub fn reselect(
    pareto: &[(CandidateConfig, Vec<f64>)],
    weights: &WeightedSumModel,
    constraints: &Constraints,
) -> Option<(CandidateConfig, Vec<f64>)> {
    let costs: Vec<Vec<f64>> = pareto.iter().map(|(_, c)| c.clone()).collect();
    best_in_pareto(&costs, weights, constraints)
        .map(|i| (pareto[i].0.clone(), pareto[i].1.clone()))
}

/// WSM pipeline: scalarized GA over the same space.
pub fn moqp_wsm(
    space: &EnumerationSpace,
    model: &PlanCostModel,
    federation: &Federation,
    weights: &WeightedSumModel,
    ga: Nsga2Config,
) -> MoqpOutcome {
    let problem = IntBoxProblem::new(space.cardinalities(), 2, |genome: &[usize]| {
        model.cost(federation, &space.decode(genome))
    });
    let out = optimize_scalarized(&problem, weights.weights(), ga);
    let chosen = space.decode(&out.genome);
    MoqpOutcome {
        chosen: chosen.clone(),
        chosen_costs: out.costs.clone(),
        pareto: vec![(chosen, out.costs)],
        evaluations: out.evaluations,
    }
}

/// Exhaustive ground truth: evaluates the whole space, exact Pareto set,
/// Algorithm 2 selection.
pub fn moqp_exhaustive(
    space: &EnumerationSpace,
    model: &PlanCostModel,
    federation: &Federation,
    weights: &WeightedSumModel,
    constraints: &Constraints,
) -> MoqpOutcome {
    let configs = space.all();
    let costs: Vec<Vec<f64>> = configs
        .iter()
        .map(|c| model.cost(federation, c))
        .collect();
    let front_idx = midas_moo::pareto_front_indices(&costs);
    let pareto: Vec<(CandidateConfig, Vec<f64>)> = front_idx
        .iter()
        .map(|&i| (configs[i].clone(), costs[i].clone()))
        .collect();
    let front_costs: Vec<Vec<f64>> = pareto.iter().map(|(_, c)| c.clone()).collect();
    let pick = best_in_pareto(&front_costs, weights, constraints).expect("non-empty space");
    MoqpOutcome {
        chosen: pareto[pick].0.clone(),
        chosen_costs: pareto[pick].1.clone(),
        pareto,
        evaluations: configs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_cloud::federation::example_federation;
    use midas_engines::{EngineKind, Placement};
    use midas_tpch::gen::{GenConfig, TpchDb};
    use midas_tpch::queries::q14;

    struct Fixture {
        fed: Federation,
        space: EnumerationSpace,
        model: PlanCostModel,
    }

    fn fixture() -> Fixture {
        let (fed, a, b) = example_federation();
        let mut placement = Placement::new();
        placement.place("lineitem", a, EngineKind::Hive);
        placement.place("part", b, EngineKind::PostgreSql);
        let query = q14(1995, 6);
        let db = TpchDb::generate(GenConfig::new(0.002, 5));
        let space = EnumerationSpace::for_query(&fed, &placement, &query, 6).unwrap();
        let model = PlanCostModel::build(&placement, &query, db.catalog()).unwrap();
        Fixture { fed, space, model }
    }

    fn ga_config() -> Nsga2Config {
        Nsga2Config {
            population: 40,
            generations: 30,
            seed: 3,
            ..Nsga2Config::default()
        }
    }

    #[test]
    fn ga_pipeline_approaches_exhaustive_truth() {
        let f = fixture();
        let weights = WeightedSumModel::new(&[0.5, 0.5]);
        let none = Constraints::none(2);
        let truth = moqp_exhaustive(&f.space, &f.model, &f.fed, &weights, &none);
        let ga = moqp_ga(&f.space, &f.model, &f.fed, &weights, &none, ga_config());
        // The GA pick should be within 25% of the exhaustive optimum on the
        // weighted-sum scale (small space, generous budget).
        let score = |c: &[f64]| weights.scores(&[c.to_vec(), truth.chosen_costs.clone()])[0];
        assert!(
            score(&ga.chosen_costs) <= score(&truth.chosen_costs) + 0.25,
            "GA {:?} vs truth {:?}",
            ga.chosen_costs,
            truth.chosen_costs
        );
        assert!(!ga.pareto.is_empty());
    }

    #[test]
    fn wsm_pipeline_finds_a_reasonable_plan() {
        let f = fixture();
        let weights = WeightedSumModel::new(&[0.8, 0.2]);
        let wsm = moqp_wsm(&f.space, &f.model, &f.fed, &weights, ga_config());
        let truth = moqp_exhaustive(&f.space, &f.model, &f.fed, &weights, &Constraints::none(2));
        // Raw weighted comparison: WSM result within 2x of optimum time.
        assert!(wsm.chosen_costs[0] <= truth.chosen_costs[0] * 2.0 + 5.0);
        assert_eq!(wsm.pareto.len(), 1);
        assert!(wsm.evaluations > 0);
    }

    #[test]
    fn reselect_reuses_the_front_without_evaluations() {
        let f = fixture();
        let weights_time = WeightedSumModel::new(&[1.0, 0.0]);
        let weights_money = WeightedSumModel::new(&[0.0, 1.0]);
        let none = Constraints::none(2);
        let truth = moqp_exhaustive(&f.space, &f.model, &f.fed, &weights_time, &none);
        // Re-picking under money-weights touches zero cost-model calls.
        let (cfg_money, costs_money) = reselect(&truth.pareto, &weights_money, &none).unwrap();
        let (cfg_time, costs_time) = reselect(&truth.pareto, &weights_time, &none).unwrap();
        assert!(costs_money[1] <= costs_time[1]);
        assert!(costs_time[0] <= costs_money[0]);
        // Different preferences generally pick different plans.
        if truth.pareto.len() > 1 {
            assert!(cfg_money != cfg_time || costs_money == costs_time);
        }
    }

    #[test]
    fn constraints_flow_through_algorithm2() {
        let f = fixture();
        let weights = WeightedSumModel::new(&[1.0, 0.0]);
        let none = Constraints::none(2);
        let truth = moqp_exhaustive(&f.space, &f.model, &f.fed, &weights, &none);
        // Cap money below the time-optimal plan's cost: selection must move
        // to a cheaper plan if one exists on the front.
        let cap = truth.chosen_costs[1] * 0.9;
        let constrained = Constraints::none(2).with_bound(1, cap);
        let picked = moqp_exhaustive(&f.space, &f.model, &f.fed, &weights, &constrained);
        let any_feasible = truth.pareto.iter().any(|(_, c)| c[1] <= cap);
        if any_feasible {
            assert!(picked.chosen_costs[1] <= cap + 1e-9);
        }
    }

    #[test]
    fn exhaustive_front_is_mutually_non_dominated() {
        let f = fixture();
        let truth = moqp_exhaustive(
            &f.space,
            &f.model,
            &f.fed,
            &WeightedSumModel::new(&[0.5, 0.5]),
            &Constraints::none(2),
        );
        for (_, a) in &truth.pareto {
            for (_, b) in &truth.pareto {
                assert!(!midas_moo::dominance::pareto_dominates(a, b));
            }
        }
    }
}
