//! The Modelling module: history + a pluggable estimator (paper Figure 2).
//!
//! IReS records each executed plan's features and measured costs, then
//! trains a predictor on demand. DREAM plugs in here exactly as the paper
//! describes: the training set is handed to the algorithm, which derives its
//! own (smaller) "new training set" before fitting.

use midas_dream::{CostEstimator, EstimationError, FitReport, History};

/// A history-backed, estimator-agnostic cost model for one query class.
pub struct Modelling {
    history: History,
    estimator: Box<dyn CostEstimator + Send>,
    last_fit: Option<FitReport>,
}

impl Modelling {
    /// A Modelling module over `n_features` regressors and `n_metrics` cost
    /// metrics, using the supplied estimator.
    pub fn new(
        n_features: usize,
        n_metrics: usize,
        estimator: Box<dyn CostEstimator + Send>,
    ) -> Self {
        Modelling {
            history: History::new(n_features, n_metrics),
            estimator,
            last_fit: None,
        }
    }

    /// Records one executed plan.
    pub fn record(&mut self, features: &[f64], costs: &[f64]) -> Result<(), EstimationError> {
        self.history.record(features, costs)
    }

    /// Refits the estimator on the current history.
    pub fn refit(&mut self) -> Result<FitReport, EstimationError> {
        let report = self.estimator.fit(&self.history)?;
        self.last_fit = Some(report.clone());
        Ok(report)
    }

    /// Predicts the cost vector for a feature vector (requires a prior
    /// successful [`Modelling::refit`]).
    pub fn estimate(&self, features: &[f64]) -> Result<Vec<f64>, EstimationError> {
        self.estimator.predict(features)
    }

    /// The estimator's display name.
    pub fn estimator_name(&self) -> String {
        self.estimator.name()
    }

    /// The recorded history.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The report of the most recent fit, if any.
    pub fn last_fit(&self) -> Option<&FitReport> {
        self.last_fit.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_dream::DreamEstimator;
    use midas_mlearn::{BmlEstimator, WindowSpec};

    fn feed(m: &mut Modelling, n: usize) {
        for i in 0..n {
            let x = [i as f64, (i % 3) as f64];
            m.record(&x, &[10.0 + 2.0 * x[0] + x[1], 1.0 + 0.1 * x[0]])
                .unwrap();
        }
    }

    #[test]
    fn dream_behind_the_facade() {
        let mut m = Modelling::new(2, 2, Box::new(DreamEstimator::paper_defaults(2)));
        feed(&mut m, 20);
        let report = m.refit().unwrap();
        assert!(report.satisfied);
        assert_eq!(m.estimator_name(), "DREAM");
        let est = m.estimate(&[30.0, 1.0]).unwrap();
        assert!((est[0] - 71.0).abs() < 1e-6);
        assert!(m.last_fit().is_some());
        assert_eq!(m.history().len(), 20);
    }

    #[test]
    fn bml_behind_the_facade() {
        let mut m = Modelling::new(
            2,
            2,
            Box::new(BmlEstimator::new(WindowSpec::LatestMultiple(2), 2)),
        );
        feed(&mut m, 30);
        m.refit().unwrap();
        assert_eq!(m.estimator_name(), "BML-2N");
        let est = m.estimate(&[29.0, 2.0]).unwrap();
        assert!((est[0] - 70.0).abs() < 5.0);
    }

    #[test]
    fn estimate_before_fit_fails() {
        let m = Modelling::new(1, 1, Box::new(DreamEstimator::paper_defaults(1)));
        assert!(m.estimate(&[1.0]).is_err());
    }

    #[test]
    fn refit_with_no_history_fails() {
        let mut m = Modelling::new(1, 1, Box::new(DreamEstimator::paper_defaults(1)));
        assert!(m.refit().is_err());
    }
}
