//! The Modelling module: history + a pluggable estimator (paper Figure 2).
//!
//! IReS records each executed plan's features and measured costs, then
//! trains a predictor on demand. DREAM plugs in here exactly as the paper
//! describes: the training set is handed to the algorithm, which derives its
//! own (smaller) "new training set" before fitting.

use midas_dream::{CostEstimator, DreamEstimator, EstimationError, FitReport, History};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A history-backed, estimator-agnostic cost model for one query class.
///
/// `CostEstimator` is `Send + Sync`, so a `Modelling` can sit behind an
/// `Arc<Mutex<…>>` and be fed by many runtime workers; see
/// [`ModellingRegistry`].
pub struct Modelling {
    history: History,
    estimator: Box<dyn CostEstimator>,
    last_fit: Option<FitReport>,
}

impl Modelling {
    /// A Modelling module over `n_features` regressors and `n_metrics` cost
    /// metrics, using the supplied estimator.
    pub fn new(n_features: usize, n_metrics: usize, estimator: Box<dyn CostEstimator>) -> Self {
        Modelling {
            history: History::new(n_features, n_metrics),
            estimator,
            last_fit: None,
        }
    }

    /// Records one executed plan.
    pub fn record(&mut self, features: &[f64], costs: &[f64]) -> Result<(), EstimationError> {
        self.history.record(features, costs)
    }

    /// Refits the estimator on the current history.
    pub fn refit(&mut self) -> Result<FitReport, EstimationError> {
        let report = self.estimator.fit(&self.history)?;
        self.last_fit = Some(report.clone());
        Ok(report)
    }

    /// Predicts the cost vector for a feature vector (requires a prior
    /// successful [`Modelling::refit`]).
    pub fn estimate(&self, features: &[f64]) -> Result<Vec<f64>, EstimationError> {
        self.estimator.predict(features)
    }

    /// The estimator's display name.
    pub fn estimator_name(&self) -> String {
        self.estimator.name()
    }

    /// The recorded history.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The report of the most recent fit, if any.
    pub fn last_fit(&self) -> Option<&FitReport> {
        self.last_fit.as_ref()
    }
}

/// Builds the estimator a [`ModellingRegistry`] installs for a new class;
/// called with the class's feature count.
pub type EstimatorFactory = Box<dyn Fn(usize) -> Box<dyn CostEstimator> + Send + Sync>;

/// Locks a registry map or modelling module, recovering from poisoning: a
/// worker that panicked elsewhere in its job must fail that job alone, and
/// the guarded state (a map of handles; an append-only history plus a
/// last-fit report) stays consistent between operations.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The concurrent Modelling store: one lock-guarded [`Modelling`] per query
/// class, shared by every worker of a federation runtime.
///
/// Workers executing queries of *different* classes learn fully in parallel
/// (each class has its own mutex); workers of the *same* class serialize
/// only for the record + refit critical section. Classes are created on
/// first observation; the per-class estimator comes from the registry's
/// factory (DREAM with the paper defaults unless overridden), whose default
/// online path is the incremental `O(L³)` Algorithm 1 — a concurrent
/// learner never refits its window sums from scratch.
pub struct ModellingRegistry {
    n_metrics: usize,
    factory: EstimatorFactory,
    classes: Mutex<HashMap<String, Arc<Mutex<Modelling>>>>,
}

impl ModellingRegistry {
    /// A registry producing per-class estimators from `factory`.
    pub fn new(n_metrics: usize, factory: EstimatorFactory) -> Self {
        ModellingRegistry {
            n_metrics,
            factory,
            classes: Mutex::new(HashMap::new()),
        }
    }

    /// A registry of paper-default DREAM estimators over `n_metrics` cost
    /// metrics.
    pub fn dream_defaults(n_metrics: usize) -> Self {
        Self::new(
            n_metrics,
            Box::new(move |_n_features| Box::new(DreamEstimator::paper_defaults(n_metrics))),
        )
    }

    /// The shared Modelling module of `class`, created on first use with
    /// `n_features` regressors.
    pub fn class(&self, class: &str, n_features: usize) -> Arc<Mutex<Modelling>> {
        let mut classes = lock_recover(&self.classes);
        classes
            .entry(class.to_string())
            .or_insert_with(|| {
                Arc::new(Mutex::new(Modelling::new(
                    n_features,
                    self.n_metrics,
                    (self.factory)(n_features),
                )))
            })
            .clone()
    }

    /// The shared Modelling module of `class` if it already exists.
    pub fn get(&self, class: &str) -> Option<Arc<Mutex<Modelling>>> {
        lock_recover(&self.classes).get(class).cloned()
    }

    /// Records one executed plan into its class and refits online.
    ///
    /// Returns the fit report, or `None` while the class's history is still
    /// too shallow to fit (the estimator keeps collecting). Any *other*
    /// refit failure — singular designs, NaN costs — is a real estimation
    /// problem and propagates.
    pub fn observe(
        &self,
        class: &str,
        features: &[f64],
        costs: &[f64],
    ) -> Result<Option<FitReport>, EstimationError> {
        let modelling = self.class(class, features.len());
        let mut modelling = lock_recover(&modelling);
        modelling.record(features, costs)?;
        match modelling.refit() {
            Ok(report) => Ok(Some(report)),
            Err(EstimationError::NotEnoughData { .. }) => Ok(None), // keep collecting
            Err(e) => Err(e),
        }
    }

    /// Class labels seen so far, sorted.
    pub fn class_names(&self) -> Vec<String> {
        let mut names: Vec<String> = lock_recover(&self.classes).keys().cloned().collect();
        names.sort();
        names
    }

    /// Recorded observations per class, sorted by class label.
    pub fn history_lens(&self) -> Vec<(String, usize)> {
        let classes = lock_recover(&self.classes);
        let mut out: Vec<(String, usize)> = classes
            .iter()
            .map(|(name, m)| {
                (
                    name.clone(),
                    lock_recover(m).history().len(),
                )
            })
            .collect();
        out.sort();
        out
    }

    /// Total observations across every class.
    pub fn total_observations(&self) -> usize {
        self.history_lens().iter().map(|(_, n)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_dream::DreamEstimator;
    use midas_mlearn::{BmlEstimator, WindowSpec};

    fn feed(m: &mut Modelling, n: usize) {
        for i in 0..n {
            let x = [i as f64, (i % 3) as f64];
            m.record(&x, &[10.0 + 2.0 * x[0] + x[1], 1.0 + 0.1 * x[0]])
                .unwrap();
        }
    }

    #[test]
    fn dream_behind_the_facade() {
        let mut m = Modelling::new(2, 2, Box::new(DreamEstimator::paper_defaults(2)));
        feed(&mut m, 20);
        let report = m.refit().unwrap();
        assert!(report.satisfied);
        assert_eq!(m.estimator_name(), "DREAM");
        let est = m.estimate(&[30.0, 1.0]).unwrap();
        assert!((est[0] - 71.0).abs() < 1e-6);
        assert!(m.last_fit().is_some());
        assert_eq!(m.history().len(), 20);
    }

    #[test]
    fn bml_behind_the_facade() {
        let mut m = Modelling::new(
            2,
            2,
            Box::new(BmlEstimator::new(WindowSpec::LatestMultiple(2), 2)),
        );
        feed(&mut m, 30);
        m.refit().unwrap();
        assert_eq!(m.estimator_name(), "BML-2N");
        let est = m.estimate(&[29.0, 2.0]).unwrap();
        assert!((est[0] - 70.0).abs() < 5.0);
    }

    #[test]
    fn registry_learns_per_class_concurrently() {
        let registry = ModellingRegistry::dream_defaults(2);
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let registry = &registry;
                scope.spawn(move || {
                    for i in 0..10u64 {
                        let class = if (worker + i) % 2 == 0 { "Q12" } else { "Q13" };
                        let x = [(worker * 10 + i) as f64, (i % 3) as f64];
                        registry
                            .observe(class, &x, &[10.0 + 2.0 * x[0] + x[1], 1.0 + 0.1 * x[0]])
                            .expect("observation recorded");
                    }
                });
            }
        });
        // 4 workers x 10 observations, none lost.
        assert_eq!(registry.total_observations(), 40);
        assert_eq!(registry.class_names(), vec!["Q12", "Q13"]);
        let lens = registry.history_lens();
        assert_eq!(lens.iter().map(|(_, n)| n).sum::<usize>(), 40);
        // Both classes are deep enough to fit (m >= L + 2 = 4).
        for class in ["Q12", "Q13"] {
            let m = registry.get(class).expect("class exists");
            let m = m.lock().unwrap();
            assert!(m.last_fit().is_some(), "{class} fitted online");
            assert_eq!(m.estimator_name(), "DREAM");
        }
        assert!(registry.get("Q99").is_none());
    }

    #[test]
    fn registry_surfaces_arity_errors() {
        let registry = ModellingRegistry::dream_defaults(1);
        registry.observe("Q12", &[1.0, 2.0], &[3.0]).unwrap();
        // Same class, different feature arity: the history rejects it.
        assert!(registry.observe("Q12", &[1.0], &[3.0]).is_err());
    }

    #[test]
    fn estimate_before_fit_fails() {
        let m = Modelling::new(1, 1, Box::new(DreamEstimator::paper_defaults(1)));
        assert!(m.estimate(&[1.0]).is_err());
    }

    #[test]
    fn refit_with_no_history_fails() {
        let mut m = Modelling::new(1, 1, Box::new(DreamEstimator::paper_defaults(1)));
        assert!(m.refit().is_err());
    }
}
