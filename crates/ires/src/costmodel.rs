//! Analytic per-configuration cost evaluation.
//!
//! The optimizer must cost *thousands* of equivalent QEPs (Example 3.1)
//! without executing them. `PlanCostModel` runs the three fragments of a
//! two-table query exactly once (pure relational execution, no simulation),
//! keeps their [`WorkProfile`]s, and then evaluates any configuration in
//! microseconds: engine profile + Amdahl scaling + transfer + pricing, at
//! nominal load (the optimizer plans against expected conditions; the
//! *executed* plan then experiences drift and noise).

use crate::enumerate::CandidateConfig;
use midas_cloud::{Federation, Money, SiteId};
use midas_engines::engine::EngineProfile;
use midas_engines::exec::simulate_fragment_seconds;
use midas_engines::ops::{execute, WorkProfile};
use midas_engines::version::CatalogVersion;
use midas_engines::{Catalog, EngineError, EngineKind, Placement};
use midas_tpch::TwoTableQuery;

/// A penalty argument the pressure mechanism refuses to fold in.
///
/// Penalties multiply both cost axes, so a NaN would silently corrupt
/// every downstream Pareto comparison and a negative value would turn
/// "pressure" into a discount. Both are rejected typed instead of being
/// clamped away; see [`PlanCostModel::with_hot_sites`] for the (documented)
/// clamping that *does* happen for well-formed sub-1.0 penalties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostModelError {
    /// The penalty was NaN or negative.
    InvalidPenalty {
        /// The offending value.
        penalty: f64,
    },
}

impl std::fmt::Display for CostModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostModelError::InvalidPenalty { penalty } => {
                write!(f, "invalid pressure penalty {penalty}: must be finite and >= 0")
            }
        }
    }
}

impl std::error::Error for CostModelError {}

/// Validates a penalty argument: NaN and negative values are typed errors
/// (infinity is allowed — "never place here" is a legitimate instruction).
fn check_penalty(penalty: f64) -> Result<f64, CostModelError> {
    if penalty.is_nan() || penalty < 0.0 {
        Err(CostModelError::InvalidPenalty { penalty })
    } else {
        Ok(penalty)
    }
}

/// A reusable cost evaluator for one query over one database.
#[derive(Debug, Clone)]
pub struct PlanCostModel {
    left_site: SiteId,
    right_site: SiteId,
    left_engine: EngineKind,
    right_engine: EngineKind,
    work_left: WorkProfile,
    work_right: WorkProfile,
    work_combine: WorkProfile,
    left_bytes: u64,
    right_bytes: u64,
    /// Per-site multiplicative pressure factors, each `>= 1`. A candidate
    /// placing its join at a listed site pays that site's factor on both
    /// cost axes; unlisted sites cost exactly what the unpressured model
    /// says. The discrete hot-site penalty
    /// ([`PlanCostModel::with_hot_sites`]) and the continuous congestion
    /// penalty ([`PlanCostModel::with_site_pressure`]) both compile down to
    /// entries here, and compose multiplicatively when applied in
    /// sequence.
    site_factors: Vec<(SiteId, f64)>,
}

impl PlanCostModel {
    /// Builds the model by executing the query's fragments once.
    pub fn build(
        placement: &Placement,
        query: &TwoTableQuery,
        tables: &Catalog,
    ) -> Result<Self, EngineError> {
        let left = placement.locate(&query.left_table)?;
        let right = placement.locate(&query.right_table)?;

        let (left_table, work_left) = execute(&query.left_prepare, tables)?;
        let (right_table, work_right) = execute(&query.right_prepare, tables)?;
        let left_bytes = left_table.estimated_bytes();
        let right_bytes = right_table.estimated_bytes();

        // Cloning a catalog copies Arc handles, not table bytes; only the
        // two prepared intermediates are owned here.
        let mut catalog = tables.clone();
        catalog.insert("@frag0", left_table);
        catalog.insert("@frag1", right_table);
        let (_, work_combine) = execute(&query.combine, &catalog)?;

        Ok(PlanCostModel {
            left_site: left.site,
            right_site: right.site,
            left_engine: left.engine,
            right_engine: right.engine,
            work_left,
            work_right,
            work_combine,
            left_bytes,
            right_bytes,
            site_factors: Vec::new(),
        })
    }

    /// Multiplies `factor` into a site's pressure entry (creating it at
    /// 1.0 first), keeping the factor list deduplicated per site.
    fn compose_factor(&mut self, site: SiteId, factor: f64) {
        if factor == 1.0 {
            return;
        }
        match self.site_factors.iter_mut().find(|(s, _)| *s == site) {
            Some((_, f)) => *f *= factor,
            None => self.site_factors.push((site, factor)),
        }
    }

    /// Marks `sites` as hot: any candidate placing its join at one of them
    /// has both cost axes multiplied by `penalty`. Used by the runtime's
    /// retry path: after a `SiteUnavailable`, the failed site is marked hot
    /// and the placement re-enumerated, so the retry's join routes around
    /// the outage whenever any alternative exists.
    ///
    /// **Clamping contract:** well-formed penalties in `[0, 1)` clamp to
    /// `1.0` — pressure marks a site as *worse*, never cheaper, so a
    /// sub-unit penalty degrades to a no-op rather than turning a failed
    /// site into a bargain. NaN and negative penalties are rejected with
    /// [`CostModelError::InvalidPenalty`] instead of being clamped: they
    /// are caller bugs, not soft preferences (a NaN would poison every
    /// Pareto comparison downstream). Applying hot sites on top of
    /// existing pressure (or repeatedly) composes multiplicatively per
    /// site. This is the discrete special case of
    /// [`PlanCostModel::with_site_pressure`] — every listed site at
    /// indicator pressure.
    pub fn with_hot_sites(
        mut self,
        sites: &[SiteId],
        penalty: f64,
    ) -> Result<Self, CostModelError> {
        let factor = check_penalty(penalty)?.max(1.0);
        for &site in sites {
            self.compose_factor(site, factor);
        }
        Ok(self)
    }

    /// Folds **continuous congestion scores** into the model: each
    /// `(site, score)` gauge (e.g. from `SiteAdmission::pressure` — queue
    /// depth plus slot occupancy over capacity, `0.0` = idle) multiplies
    /// both cost axes of candidates joining at that site by
    /// `1 + penalty × score`. An idle site is untouched *bit-for-bit*; a
    /// site with a deep admission queue prices itself out of the
    /// placement, and by a degree proportional to how congested it
    /// actually is — the generalized, continuous form of the binary
    /// [`PlanCostModel::with_hot_sites`] penalty (`score = 1` with
    /// `penalty = hot − 1` reproduces it exactly).
    ///
    /// `penalty` follows the same contract as `with_hot_sites`: NaN or
    /// negative is a typed error, and a resulting factor can never fall
    /// below 1. Non-finite or negative *scores* are treated as 0 (gauges
    /// are trusted but sanitized — a torn read must not veto a plan).
    /// Composes multiplicatively with prior factors.
    pub fn with_site_pressure(
        mut self,
        pressure: &[(SiteId, f64)],
        penalty: f64,
    ) -> Result<Self, CostModelError> {
        let penalty = check_penalty(penalty)?;
        for &(site, score) in pressure {
            let score = if score.is_finite() && score > 0.0 { score } else { 0.0 };
            self.compose_factor(site, (1.0 + penalty * score).max(1.0));
        }
        Ok(self)
    }

    /// The pressure factor a join at `site` would pay (`1.0` when the site
    /// carries no pressure entry).
    pub fn pressure_factor(&self, site: SiteId) -> f64 {
        self.site_factors
            .iter()
            .find(|(s, _)| *s == site)
            .map_or(1.0, |(_, f)| *f)
    }

    /// [`PlanCostModel::build`] against a pinned catalog version — the
    /// planning entry point of the live-data stack. The version's snapshot
    /// tables are borrowed by `Arc` handle (compacted at most once per
    /// version, shared with every other pin), so planning against version
    /// `v` costs exactly what planning against an immutable catalog did.
    pub fn build_pinned(
        placement: &Placement,
        query: &TwoTableQuery,
        version: &CatalogVersion,
    ) -> Result<Self, EngineError> {
        Self::build(placement, query, &version.pin())
    }

    /// Rows of the two prepared inputs — the features DREAM regresses on.
    pub fn prepared_rows(&self) -> (u64, u64) {
        (self.work_left.output_rows(), self.work_right.output_rows())
    }

    /// Expected `(time s, money $)` of one configuration at nominal load.
    pub fn cost(&self, federation: &Federation, config: &CandidateConfig) -> Vec<f64> {
        let scan_workers = |site: SiteId| -> u32 {
            federation
                .site(site)
                .catalog
                .instances()
                .first()
                .map_or(1, |i| i.vcpus)
        };

        // Scan fragments at fixed modest allocations.
        let t_left = simulate_fragment_seconds(
            &self.work_left,
            &EngineProfile::for_engine(self.left_engine),
            scan_workers(self.left_site),
            1.0,
            1.0,
        );
        let t_right = simulate_fragment_seconds(
            &self.work_right,
            &EngineProfile::for_engine(self.right_engine),
            scan_workers(self.right_site),
            1.0,
            1.0,
        );

        // Shuffle prepared sides to the join site.
        let mut t_transfer = 0.0;
        let mut egress = Money::ZERO;
        for (site, bytes) in [
            (self.left_site, self.left_bytes),
            (self.right_site, self.right_bytes),
        ] {
            if site != config.join_site {
                t_transfer += federation.transfer(site, config.join_site, bytes).seconds;
                egress += federation.transfer_cost(site, config.join_site, bytes);
            }
        }

        // Join fragment under the candidate allocation.
        let join_site = federation.site(config.join_site);
        let shape = &join_site.catalog.instances()[config.instance_idx];
        let workers = config.vm_count.max(1) * shape.vcpus.max(1);
        let t_join = simulate_fragment_seconds(
            &self.work_combine,
            &EngineProfile::for_engine(config.join_engine),
            workers,
            1.0,
            1.0,
        );

        let time = t_left + t_right + t_transfer + t_join;

        // Money: each fragment bills its site.
        let money_left = {
            let site = federation.site(self.left_site);
            let shape = &site.catalog.instances()[0];
            site.pricing.instance_cost(shape, 1, t_left)
        };
        let money_right = {
            let site = federation.site(self.right_site);
            let shape = &site.catalog.instances()[0];
            site.pricing.instance_cost(shape, 1, t_right)
        };
        let money_join = join_site
            .pricing
            .instance_cost(shape, config.vm_count.max(1), t_join + t_transfer);
        let money = money_left + money_right + money_join + egress;

        let pressure = self.pressure_factor(config.join_site);
        vec![time * pressure, money.as_dollars() * pressure]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use midas_cloud::federation::example_federation;
    use midas_tpch::gen::{GenConfig, TpchDb};
    use midas_tpch::queries::q12;

    fn setup() -> (Federation, Placement, TwoTableQuery, TpchDb) {
        let (fed, a, b) = example_federation();
        let mut placement = Placement::new();
        placement.place("lineitem", a, EngineKind::Hive);
        placement.place("orders", b, EngineKind::PostgreSql);
        (fed, placement, q12("MAIL", "SHIP", 1994), TpchDb::generate(GenConfig::new(0.003, 7)))
    }

    #[test]
    fn build_and_cost() {
        let (fed, placement, query, db) = setup();
        let model = PlanCostModel::build(&placement, &query, db.catalog()).unwrap();
        let (lr, rr) = model.prepared_rows();
        assert!(lr > 0 && rr > 0);
        let cfg = CandidateConfig {
            join_site: SiteId(0),
            join_engine: EngineKind::Spark,
            instance_idx: 1,
            vm_count: 2,
        };
        let c = model.cost(&fed, &cfg);
        assert_eq!(c.len(), 2);
        assert!(c[0] > 0.0 && c[1] > 0.0);
    }

    #[test]
    fn cost_is_deterministic() {
        let (fed, placement, query, db) = setup();
        let model = PlanCostModel::build(&placement, &query, db.catalog()).unwrap();
        let cfg = CandidateConfig {
            join_site: SiteId(1),
            join_engine: EngineKind::Hive,
            instance_idx: 0,
            vm_count: 1,
        };
        assert_eq!(model.cost(&fed, &cfg), model.cost(&fed, &cfg));
    }

    #[test]
    fn more_vms_cut_time_for_parallel_engines() {
        let (fed, placement, query, db) = setup();
        let model = PlanCostModel::build(&placement, &query, db.catalog()).unwrap();
        let mk = |vm| CandidateConfig {
            join_site: SiteId(0),
            join_engine: EngineKind::Spark,
            instance_idx: 2,
            vm_count: vm,
        };
        let c1 = model.cost(&fed, &mk(1));
        let c8 = model.cost(&fed, &mk(8));
        assert!(c8[0] < c1[0], "time should drop with VMs");
    }

    #[test]
    fn hot_sites_penalize_only_their_own_joins() {
        let (fed, placement, query, db) = setup();
        let cold = PlanCostModel::build(&placement, &query, db.catalog()).unwrap();
        let hot = cold.clone().with_hot_sites(&[SiteId(1)], 8.0).unwrap();
        let mk = |site| CandidateConfig {
            join_site: site,
            join_engine: EngineKind::PostgreSql,
            instance_idx: 0,
            vm_count: 1,
        };
        // Joining at the hot site costs 8x on both axes.
        let cold_hot_site = cold.cost(&fed, &mk(SiteId(1)));
        let hot_hot_site = hot.cost(&fed, &mk(SiteId(1)));
        assert_eq!(hot_hot_site[0], cold_hot_site[0] * 8.0);
        assert_eq!(hot_hot_site[1], cold_hot_site[1] * 8.0);
        // Joining elsewhere is bit-identical to the unpressured model.
        assert_eq!(hot.cost(&fed, &mk(SiteId(0))), cold.cost(&fed, &mk(SiteId(0))));
        // Sub-1 penalties clamp: pressure never discounts a site.
        let clamped = cold.clone().with_hot_sites(&[SiteId(1)], 0.25).unwrap();
        assert_eq!(clamped.cost(&fed, &mk(SiteId(1))), cold_hot_site);
    }

    #[test]
    fn malformed_penalties_are_typed_errors_not_silent_clamps() {
        let (_, placement, query, db) = setup();
        let model = PlanCostModel::build(&placement, &query, db.catalog()).unwrap();
        // NaN and negative penalties are caller bugs on both entry points.
        for bad in [f64::NAN, -0.5, f64::NEG_INFINITY] {
            let err = model.clone().with_hot_sites(&[SiteId(0)], bad).unwrap_err();
            assert!(matches!(err, CostModelError::InvalidPenalty { .. }), "{bad}");
            let err = model
                .clone()
                .with_site_pressure(&[(SiteId(0), 1.0)], bad)
                .unwrap_err();
            assert!(matches!(err, CostModelError::InvalidPenalty { .. }), "{bad}");
        }
        // NaN does not compare equal to itself, so pin the payload's bits.
        let err = model.clone().with_hot_sites(&[], f64::NAN).unwrap_err();
        let CostModelError::InvalidPenalty { penalty } = err;
        assert!(penalty.is_nan());
        assert!(err.to_string().contains("must be finite and >= 0"));
        // The documented edges of the valid range: 0 and +inf both pass
        // (0 clamps up to the no-op factor, +inf means "never place here").
        assert!(model.clone().with_hot_sites(&[SiteId(0)], 0.0).is_ok());
        let banned = model.clone().with_hot_sites(&[SiteId(0)], f64::INFINITY).unwrap();
        assert_eq!(banned.pressure_factor(SiteId(0)), f64::INFINITY);
    }

    #[test]
    fn continuous_pressure_scales_with_the_observed_score() {
        let (fed, placement, query, db) = setup();
        let cold = PlanCostModel::build(&placement, &query, db.catalog()).unwrap();
        let mk = |site| CandidateConfig {
            join_site: site,
            join_engine: EngineKind::PostgreSql,
            instance_idx: 0,
            vm_count: 1,
        };
        let base = cold.cost(&fed, &mk(SiteId(1)));

        // factor = 1 + penalty × score, continuously.
        let half = cold
            .clone()
            .with_site_pressure(&[(SiteId(1), 0.5)], 4.0)
            .unwrap();
        assert_eq!(half.pressure_factor(SiteId(1)), 3.0);
        assert_eq!(half.cost(&fed, &mk(SiteId(1)))[0], base[0] * 3.0);
        let deep = cold
            .clone()
            .with_site_pressure(&[(SiteId(1), 2.0)], 4.0)
            .unwrap();
        assert_eq!(deep.cost(&fed, &mk(SiteId(1)))[0], base[0] * 9.0);

        // Zero score (an idle site) and zero penalty (feedback disabled)
        // both leave every cost bit-identical to the cold model.
        let idle = cold
            .clone()
            .with_site_pressure(&[(SiteId(1), 0.0)], 4.0)
            .unwrap();
        assert_eq!(idle.cost(&fed, &mk(SiteId(1))), base);
        let off = cold
            .clone()
            .with_site_pressure(&[(SiteId(1), 3.0)], 0.0)
            .unwrap();
        assert_eq!(off.cost(&fed, &mk(SiteId(1))), base);
        // Malformed gauges sanitize to idle instead of vetoing the site.
        let torn = cold
            .clone()
            .with_site_pressure(&[(SiteId(1), f64::NAN), (SiteId(0), -2.0)], 4.0)
            .unwrap();
        assert_eq!(torn.cost(&fed, &mk(SiteId(1))), base);
        assert_eq!(torn.pressure_factor(SiteId(0)), 1.0);

        // with_hot_sites(p) is exactly with_site_pressure(score=1, p−1) —
        // the discrete special case of the continuous form.
        let discrete = cold.clone().with_hot_sites(&[SiteId(1)], 8.0).unwrap();
        let continuous = cold
            .clone()
            .with_site_pressure(&[(SiteId(1), 1.0)], 7.0)
            .unwrap();
        assert_eq!(
            discrete.cost(&fed, &mk(SiteId(1))),
            continuous.cost(&fed, &mk(SiteId(1)))
        );

        // Sequential application composes multiplicatively per site.
        let stacked = cold
            .clone()
            .with_site_pressure(&[(SiteId(1), 0.5)], 4.0)
            .unwrap()
            .with_hot_sites(&[SiteId(1)], 2.0)
            .unwrap();
        assert_eq!(stacked.pressure_factor(SiteId(1)), 6.0);
    }

    #[test]
    fn joining_at_the_remote_site_pays_transfer() {
        let (fed, placement, query, db) = setup();
        let model = PlanCostModel::build(&placement, &query, db.catalog()).unwrap();
        // Join at lineitem's site: only the (small) orders side ships.
        // Join at orders' site: the (large) lineitem side ships.
        let at_left = model.cost(
            &fed,
            &CandidateConfig {
                join_site: SiteId(0),
                join_engine: EngineKind::PostgreSql,
                instance_idx: 0,
                vm_count: 1,
            },
        );
        let at_right = model.cost(
            &fed,
            &CandidateConfig {
                join_site: SiteId(1),
                join_engine: EngineKind::PostgreSql,
                instance_idx: 0,
                vm_count: 1,
            },
        );
        // Q12 prepares a filtered (small) lineitem side and a full orders
        // side, so shipping *orders* dominates: joining at the left site is
        // the more expensive option time-wise only if orders > lineitem side.
        // Just assert both are positive and differ — the trade-off is real.
        assert!(at_left[0] > 0.0 && at_right[0] > 0.0);
        assert_ne!(at_left[0], at_right[0]);
    }
}
