//! IReS-layer integration: enumeration × assembly × cost model coherence.

use midas_cloud::federation::example_federation;
use midas_cloud::Federation;
use midas_engines::{EngineKind, Placement};
use midas_ires::{assemble, CandidateConfig, EnumerationSpace, PlanCostModel};
use midas_tpch::gen::{GenConfig, TpchDb};
use midas_tpch::queries::{q12, q13, q14, q17};

fn setup() -> (Federation, Placement, TpchDb) {
    let (fed, a, b) = example_federation();
    let mut placement = Placement::new();
    placement.place("lineitem", a, EngineKind::Hive);
    placement.place("customer", a, EngineKind::Hive);
    placement.place("orders", b, EngineKind::PostgreSql);
    placement.place("part", b, EngineKind::PostgreSql);
    (fed, placement, TpchDb::generate(GenConfig::new(0.002, 31)))
}

#[test]
fn every_enumerated_config_assembles_for_every_query() {
    let (fed, placement, _) = setup();
    for query in [
        q12("MAIL", "SHIP", 1994),
        q13("special", "requests"),
        q14(1995, 2),
        q17("Brand#11", "SM CASE"),
    ] {
        let space = EnumerationSpace::for_query(&fed, &placement, &query, 3)
            .expect("tables placed");
        for config in space.all() {
            let fq = assemble(&fed, &placement, &query, &config)
                .unwrap_or_else(|e| panic!("{}: {e} for {config:?}", query.label));
            assert_eq!(fq.fragments.len(), 3);
            assert_eq!(fq.fragments[2].site, config.join_site);
            assert_eq!(fq.fragments[2].engine, config.join_engine);
        }
    }
}

#[test]
fn genome_decoding_covers_the_whole_space() {
    let (fed, placement, _) = setup();
    let query = q12("AIR", "FOB", 1996);
    let space = EnumerationSpace::for_query(&fed, &placement, &query, 4).expect("placed");
    let cards = space.cardinalities();
    // Exhaustively decode every genome in the cardinality box and check the
    // set of decoded configs covers all() exactly.
    let mut decoded = std::collections::HashSet::new();
    let mut genome = vec![0usize; cards.len()];
    loop {
        let cfg = space.decode(&genome);
        decoded.insert(format!(
            "{:?}|{:?}|{}|{}",
            cfg.join_site, cfg.join_engine, cfg.instance_idx, cfg.vm_count
        ));
        // Odometer increment.
        let mut k = 0;
        loop {
            genome[k] += 1;
            if genome[k] < cards[k] {
                break;
            }
            genome[k] = 0;
            k += 1;
            if k == cards.len() {
                break;
            }
        }
        if k == cards.len() {
            break;
        }
    }
    let all: std::collections::HashSet<String> = space
        .all()
        .into_iter()
        .map(|cfg| {
            format!(
                "{:?}|{:?}|{}|{}",
                cfg.join_site, cfg.join_engine, cfg.instance_idx, cfg.vm_count
            )
        })
        .collect();
    assert!(decoded.is_superset(&all), "decoding misses configurations");
}

#[test]
fn cost_model_orders_engines_sensibly_on_small_inputs() {
    // On a small input the join cost is dominated by startup: PostgreSQL
    // (0.08 s) must be predicted cheaper in time than Hive (4 s) at the
    // same site/instance/VM count.
    let (fed, placement, db) = setup();
    let query = q14(1995, 7);
    let model = PlanCostModel::build(&placement, &query, db.catalog()).expect("buildable");
    let site = placement.locate("lineitem").expect("placed").site;
    let mk = |engine| CandidateConfig {
        join_site: site,
        join_engine: engine,
        instance_idx: 1,
        vm_count: 2,
    };
    let pg = model.cost(&fed, &mk(EngineKind::PostgreSql));
    let hive = model.cost(&fed, &mk(EngineKind::Hive));
    let spark = model.cost(&fed, &mk(EngineKind::Spark));
    assert!(pg[0] < hive[0], "PostgreSQL {} vs Hive {}", pg[0], hive[0]);
    assert!(spark[0] < hive[0], "Spark {} vs Hive {}", spark[0], hive[0]);
}

#[test]
fn bigger_instances_cost_more_money_per_time_saved() {
    let (fed, placement, db) = setup();
    let query = q12("MAIL", "RAIL", 1995);
    let model = PlanCostModel::build(&placement, &query, db.catalog()).expect("buildable");
    let site = placement.locate("lineitem").expect("placed").site;
    let mk = |idx| CandidateConfig {
        join_site: site,
        join_engine: EngineKind::Spark,
        instance_idx: idx,
        vm_count: 1,
    };
    let small = model.cost(&fed, &mk(0)); // a1.medium
    let large = model.cost(&fed, &mk(4)); // a1.4xlarge
    assert!(large[0] <= small[0], "bigger instance is never slower");
    assert!(large[1] >= small[1] * 0.9, "and is not much cheaper");
}

#[test]
fn prepared_rows_track_query_selectivity() {
    let (fed, placement, db) = setup();
    let narrow = PlanCostModel::build(&placement, &q14(1995, 7), db.catalog()).expect("builds");
    let wide = PlanCostModel::build(&placement, &q17("Brand#11", "SM CASE"), db.catalog())
        .expect("builds");
    // Q14 filters lineitem to one month; Q17 projects all of it.
    assert!(narrow.prepared_rows().0 < wide.prepared_rows().0);
    let _ = fed;
}
