//! Scalar expressions evaluated against table rows.
//!
//! The expression language covers what the TPC-H two-table queries need:
//! column references, literals, arithmetic, comparisons, boolean logic, an
//! `IN`-list, and `BETWEEN`-style range checks built from comparisons.
//! NULL propagates Kleene-style through comparisons and arithmetic; `AND`
//! and `OR` use three-valued logic collapsed to "NULL is not true".

use crate::data::{Table, Value};
use crate::error::EngineError;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by position.
    Col(usize),
    /// A literal value.
    Lit(Value),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// Membership in a literal list (`col IN (a, b, c)`).
    InList {
        /// The probed expression.
        expr: Box<Expr>,
        /// The candidate values.
        list: Vec<Value>,
    },
    /// True when the operand is NULL.
    IsNull(Box<Expr>),
    /// Substring containment — SQL `expr LIKE '%needle%'`.
    Contains {
        /// The probed string expression.
        expr: Box<Expr>,
        /// The literal substring.
        needle: String,
    },
}

#[allow(clippy::should_implement_trait)] // builder API mirrors SQL, not std::ops
impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Value::Int64(v))
    }

    /// Float literal.
    pub fn float(v: f64) -> Expr {
        Expr::Lit(Value::Float64(v))
    }

    /// String literal.
    pub fn str(v: &str) -> Expr {
        Expr::Lit(Value::Utf8(v.to_string()))
    }

    /// Date literal (days since epoch).
    pub fn date(days: i32) -> Expr {
        Expr::Lit(Value::Date(days))
    }

    fn bin(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Bin {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }
    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }
    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }
    /// `self / rhs`.
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, rhs)
    }
    /// `self = rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Eq, self, rhs)
    }
    /// `self <> rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Ne, self, rhs)
    }
    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Lt, self, rhs)
    }
    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Le, self, rhs)
    }
    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Gt, self, rhs)
    }
    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Ge, self, rhs)
    }
    /// `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::And, self, rhs)
    }
    /// `self OR rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Or, self, rhs)
    }
    /// `NOT self`.
    pub fn negate(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    /// `self IN (list)`.
    pub fn in_list(self, list: Vec<Value>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list,
        }
    }
    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }
    /// `self LIKE '%needle%'`.
    pub fn contains(self, needle: &str) -> Expr {
        Expr::Contains {
            expr: Box::new(self),
            needle: needle.to_string(),
        }
    }

    /// Evaluates the expression at row `row` of `table`.
    pub fn eval(&self, table: &Table, row: usize) -> Result<Value, EngineError> {
        match self {
            Expr::Col(i) => Ok(table.column(*i)?.value(row)),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Not(e) => match e.eval(table, row)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Null => Ok(Value::Null),
                other => Err(EngineError::TypeMismatch {
                    context: format!("NOT on {other:?}"),
                }),
            },
            Expr::IsNull(e) => Ok(Value::Bool(matches!(e.eval(table, row)?, Value::Null))),
            Expr::Contains { expr, needle } => match expr.eval(table, row)? {
                Value::Utf8(s) => Ok(Value::Bool(s.contains(needle.as_str()))),
                Value::Null => Ok(Value::Null),
                other => Err(EngineError::TypeMismatch {
                    context: format!("CONTAINS on {other:?}"),
                }),
            },
            Expr::InList { expr, list } => {
                let v = expr.eval(table, row)?;
                if matches!(v, Value::Null) {
                    return Ok(Value::Null);
                }
                Ok(Value::Bool(list.iter().any(|cand| values_equal(&v, cand))))
            }
            Expr::Bin { op, left, right } => {
                let l = left.eval(table, row)?;
                let r = right.eval(table, row)?;
                eval_bin(*op, l, r)
            }
        }
    }

    /// Evaluates the expression as a predicate over every row, producing a
    /// selection mask (NULL counts as not-selected, as in SQL `WHERE`).
    pub fn eval_mask(&self, table: &Table) -> Result<Vec<bool>, EngineError> {
        (0..table.n_rows())
            .map(|row| match self.eval(table, row)? {
                Value::Bool(b) => Ok(b),
                Value::Null => Ok(false),
                other => Err(EngineError::TypeMismatch {
                    context: format!("predicate produced {other:?}"),
                }),
            })
            .collect()
    }
}

fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Utf8(x), Value::Utf8(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        },
    }
}

fn eval_bin(op: BinOp, l: Value, r: Value) -> Result<Value, EngineError> {
    use BinOp::*;
    // Three-valued logic for AND/OR must look at non-NULL operands first.
    if matches!(op, And | Or) {
        let lb = as_bool_opt(&l)?;
        let rb = as_bool_opt(&r)?;
        return Ok(match (op, lb, rb) {
            (And, Some(false), _) | (And, _, Some(false)) => Value::Bool(false),
            (And, Some(true), Some(true)) => Value::Bool(true),
            (Or, Some(true), _) | (Or, _, Some(true)) => Value::Bool(true),
            (Or, Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        });
    }
    if matches!(l, Value::Null) || matches!(r, Value::Null) {
        return Ok(Value::Null);
    }
    match op {
        Add | Sub | Mul | Div => {
            let (x, y) = numeric_pair(&l, &r, op)?;
            let out = match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => {
                    if y == 0.0 {
                        return Err(EngineError::DivisionByZero);
                    }
                    x / y
                }
                _ => unreachable!(),
            };
            // Integer arithmetic stays integral except division.
            match (&l, &r, op) {
                (Value::Int64(_), Value::Int64(_), Add | Sub | Mul) => {
                    Ok(Value::Int64(out as i64))
                }
                _ => Ok(Value::Float64(out)),
            }
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            let ord = compare_values(&l, &r)?;
            let b = match op {
                Eq => ord == std::cmp::Ordering::Equal,
                Ne => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        And | Or => unreachable!("handled above"),
    }
}

fn as_bool_opt(v: &Value) -> Result<Option<bool>, EngineError> {
    match v {
        Value::Bool(b) => Ok(Some(*b)),
        Value::Null => Ok(None),
        other => Err(EngineError::TypeMismatch {
            context: format!("boolean operand expected, got {other:?}"),
        }),
    }
}

fn numeric_pair(l: &Value, r: &Value, op: BinOp) -> Result<(f64, f64), EngineError> {
    match (l.as_f64(), r.as_f64()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(EngineError::TypeMismatch {
            context: format!("{op:?} on {l:?} and {r:?}"),
        }),
    }
}

fn compare_values(l: &Value, r: &Value) -> Result<std::cmp::Ordering, EngineError> {
    match (l, r) {
        (Value::Utf8(a), Value::Utf8(b)) => Ok(a.cmp(b)),
        (Value::Bool(a), Value::Bool(b)) => Ok(a.cmp(b)),
        _ => match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => a.partial_cmp(&b).ok_or(EngineError::TypeMismatch {
                context: "NaN comparison".to_string(),
            }),
            _ => Err(EngineError::TypeMismatch {
                context: format!("compare {l:?} with {r:?}"),
            }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Column, ColumnData};

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::new("a", ColumnData::Int64(vec![1, 2, 3, 4])),
                Column::new("b", ColumnData::Float64(vec![1.5, 0.5, 3.5, 2.0])),
                Column::new(
                    "s",
                    ColumnData::Utf8(vec!["x".into(), "y".into(), "x".into(), "z".into()]),
                ),
                Column::with_validity(
                    "n",
                    ColumnData::Int64(vec![10, 0, 30, 0]),
                    vec![true, false, true, false],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn arithmetic() {
        let t = table();
        let e = Expr::col(0).add(Expr::int(10));
        assert_eq!(e.eval(&t, 0).unwrap(), Value::Int64(11));
        let e = Expr::col(0).mul(Expr::col(1));
        assert_eq!(e.eval(&t, 2).unwrap(), Value::Float64(10.5));
        let e = Expr::col(0).div(Expr::int(2));
        assert_eq!(e.eval(&t, 3).unwrap(), Value::Float64(2.0));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let t = table();
        let e = Expr::col(0).div(Expr::int(0));
        assert_eq!(e.eval(&t, 0), Err(EngineError::DivisionByZero));
    }

    #[test]
    fn comparisons_and_mask() {
        let t = table();
        let e = Expr::col(0).ge(Expr::int(3));
        assert_eq!(e.eval_mask(&t).unwrap(), vec![false, false, true, true]);
        let e = Expr::col(2).eq(Expr::str("x"));
        assert_eq!(e.eval_mask(&t).unwrap(), vec![true, false, true, false]);
    }

    #[test]
    fn boolean_logic() {
        let t = table();
        let e = Expr::col(0)
            .gt(Expr::int(1))
            .and(Expr::col(1).lt(Expr::float(3.0)));
        assert_eq!(e.eval_mask(&t).unwrap(), vec![false, true, false, true]);
        let e = Expr::col(0).eq(Expr::int(1)).or(Expr::col(2).eq(Expr::str("z")));
        assert_eq!(e.eval_mask(&t).unwrap(), vec![true, false, false, true]);
        let e = Expr::col(0).gt(Expr::int(1)).negate();
        assert_eq!(e.eval_mask(&t).unwrap(), vec![true, false, false, false]);
    }

    #[test]
    fn null_propagation() {
        let t = table();
        // n > 5: NULL rows must not be selected.
        let e = Expr::col(3).gt(Expr::int(5));
        assert_eq!(e.eval_mask(&t).unwrap(), vec![true, false, true, false]);
        // IS NULL.
        let e = Expr::col(3).is_null();
        assert_eq!(e.eval_mask(&t).unwrap(), vec![false, true, false, true]);
        // NULL AND false = false (Kleene).
        let e = Expr::col(3).gt(Expr::int(5)).and(Expr::col(0).gt(Expr::int(99)));
        assert_eq!(e.eval(&t, 1).unwrap(), Value::Bool(false));
        // NULL OR true = true.
        let e = Expr::col(3).gt(Expr::int(5)).or(Expr::col(0).ge(Expr::int(1)));
        assert_eq!(e.eval(&t, 1).unwrap(), Value::Bool(true));
    }

    #[test]
    fn in_list() {
        let t = table();
        let e = Expr::col(2).in_list(vec![Value::Utf8("x".into()), Value::Utf8("z".into())]);
        assert_eq!(e.eval_mask(&t).unwrap(), vec![true, false, true, true]);
        // NULL IN (...) is NULL -> not selected.
        let e = Expr::col(3).in_list(vec![Value::Int64(10)]);
        assert_eq!(e.eval_mask(&t).unwrap(), vec![true, false, false, false]);
    }

    #[test]
    fn type_errors_are_reported() {
        let t = table();
        let e = Expr::col(2).add(Expr::int(1));
        assert!(matches!(
            e.eval(&t, 0),
            Err(EngineError::TypeMismatch { .. })
        ));
        let e = Expr::col(0); // not a predicate
        assert!(e.eval_mask(&t).is_err());
    }

    #[test]
    fn contains_like_pattern() {
        let t = table();
        let e = Expr::col(2).contains("x");
        assert_eq!(e.eval_mask(&t).unwrap(), vec![true, false, true, false]);
        // NULL stays NULL -> unselected; non-strings are type errors.
        let e = Expr::col(3).contains("1");
        assert!(matches!(
            e.eval(&t, 0),
            Err(EngineError::TypeMismatch { .. })
        ));
        let t2 = Table::new(
            "s",
            vec![Column::with_validity(
                "s",
                ColumnData::Utf8(vec!["abc".into(), String::new()]),
                vec![true, false],
            )],
        )
        .unwrap();
        let e = Expr::col(0).contains("b");
        assert_eq!(e.eval_mask(&t2).unwrap(), vec![true, false]);
    }

    #[test]
    fn date_comparisons() {
        let t = Table::new(
            "d",
            vec![Column::new("d", ColumnData::Date(vec![100, 200, 300]))],
        )
        .unwrap();
        let e = Expr::col(0).ge(Expr::date(150)).and(Expr::col(0).lt(Expr::date(300)));
        assert_eq!(e.eval_mask(&t).unwrap(), vec![false, true, false]);
    }
}
