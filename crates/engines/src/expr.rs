//! Expressions over tables: a reference scalar evaluator and the default
//! vectorized batch evaluator.
//!
//! The expression language covers what the TPC-H two-table queries need:
//! column references, literals, arithmetic, comparisons, boolean logic, an
//! `IN`-list, and `BETWEEN`-style range checks built from comparisons.
//! NULL propagates Kleene-style through comparisons and arithmetic; `AND`
//! and `OR` use three-valued logic collapsed to "NULL is not true".
//!
//! Three evaluation paths share those semantics:
//!
//! * [`Expr::eval`] / [`Expr::eval_mask`] — row-at-a-time over `Value`s;
//!   the readable reference implementation and differential oracle;
//! * [`Expr::eval_batch`] / [`Expr::eval_sel`] — vector-at-a-time over
//!   whole columns under a selection vector, producing typed vectors plus
//!   a validity bitmask with no per-row `Value` boxing and no string
//!   cloning. This is what the default executor in [`crate::ops`] uses.
//! * [`Expr::compile`] → [`KernelPlan`] — the **kernel-plan layer**: the
//!   tree is resolved *once per operator* into a flat post-order program
//!   of register-machine steps (column loads with duplicate references
//!   deduplicated, literal broadcasts, one kernel call per node). Each
//!   batch then replays the program instead of re-walking the tree, and
//!   the plan can be bound either to a whole [`Table`] or to a sparse
//!   slice of pre-gathered columns ([`KernelCols`]) — which is how the
//!   morsel-driven executor in [`crate::fused`] evaluates expressions
//!   over deferred join output without materializing unreferenced
//!   columns.
//!
//! All three paths funnel into the same kernel functions
//! (`arith_batch`, `cmp_batch`, `kleene_batch`, …), so batch and compiled
//! evaluation are bit-identical by construction. Kernel temporaries
//! (value vectors, validity masks, selection vectors) are drawn from an
//! [`EvalScratch`] pool that callers can carry across batches, so
//! per-morsel evaluation does not allocate on the hot path.

// Kernel loops index `vals[pos]` in lockstep with operand accessors and a
// lazily-materialized validity mask; an iterator rewrite would obscure the
// parallel-array structure without changing the generated code.
#![allow(clippy::needless_range_loop)]

use crate::data::{Column, ColumnData, Table, Value};
use crate::error::EngineError;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by position.
    Col(usize),
    /// A literal value.
    Lit(Value),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// Membership in a literal list (`col IN (a, b, c)`).
    InList {
        /// The probed expression.
        expr: Box<Expr>,
        /// The candidate values.
        list: Vec<Value>,
    },
    /// True when the operand is NULL.
    IsNull(Box<Expr>),
    /// Substring containment — SQL `expr LIKE '%needle%'`.
    Contains {
        /// The probed string expression.
        expr: Box<Expr>,
        /// The literal substring.
        needle: String,
    },
}

#[allow(clippy::should_implement_trait)] // builder API mirrors SQL, not std::ops
impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Value::Int64(v))
    }

    /// Float literal.
    pub fn float(v: f64) -> Expr {
        Expr::Lit(Value::Float64(v))
    }

    /// String literal.
    pub fn str(v: &str) -> Expr {
        Expr::Lit(Value::Utf8(v.to_string()))
    }

    /// Date literal (days since epoch).
    pub fn date(days: i32) -> Expr {
        Expr::Lit(Value::Date(days))
    }

    fn bin(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Bin {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }
    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }
    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }
    /// `self / rhs`.
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, rhs)
    }
    /// `self = rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Eq, self, rhs)
    }
    /// `self <> rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Ne, self, rhs)
    }
    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Lt, self, rhs)
    }
    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Le, self, rhs)
    }
    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Gt, self, rhs)
    }
    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Ge, self, rhs)
    }
    /// `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::And, self, rhs)
    }
    /// `self OR rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Or, self, rhs)
    }
    /// `NOT self`.
    pub fn negate(self) -> Expr {
        Expr::Not(Box::new(self))
    }
    /// `self IN (list)`.
    pub fn in_list(self, list: Vec<Value>) -> Expr {
        Expr::InList {
            expr: Box::new(self),
            list,
        }
    }
    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }
    /// `self LIKE '%needle%'`.
    pub fn contains(self, needle: &str) -> Expr {
        Expr::Contains {
            expr: Box::new(self),
            needle: needle.to_string(),
        }
    }

    /// A borrowing view of a string-valued leaf: `Some(Some(s))` for a
    /// valid string, `Some(None)` for a NULL row of a Utf8 column, `None`
    /// when this expression is not a string leaf (and must go through the
    /// generic [`Expr::eval`] path).
    fn str_leaf<'a>(
        &'a self,
        table: &'a Table,
        row: usize,
    ) -> Result<Option<Option<&'a str>>, EngineError> {
        Ok(match self {
            Expr::Col(i) => table.column(*i)?.utf8_at(row),
            Expr::Lit(Value::Utf8(s)) => Some(Some(s.as_str())),
            _ => None,
        })
    }

    /// Evaluates the expression at row `row` of `table`.
    ///
    /// This is the reference scalar path, kept for goldens, property tests
    /// and as the differential oracle for the batch evaluator
    /// ([`Expr::eval_batch`]). String comparisons, `IN` lists and
    /// `CONTAINS` borrow values straight out of Utf8 columns instead of
    /// cloning them.
    pub fn eval(&self, table: &Table, row: usize) -> Result<Value, EngineError> {
        match self {
            Expr::Col(i) => Ok(table.column(*i)?.value(row)),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Not(e) => match e.eval(table, row)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Null => Ok(Value::Null),
                other => Err(EngineError::TypeMismatch {
                    context: format!("NOT on {other:?}"),
                }),
            },
            Expr::IsNull(e) => Ok(Value::Bool(matches!(e.eval(table, row)?, Value::Null))),
            Expr::Contains { expr, needle } => {
                // Borrowing fast path: no String clone for column probes.
                if let Some(sv) = expr.str_leaf(table, row)? {
                    return Ok(match sv {
                        Some(s) => Value::Bool(s.contains(needle.as_str())),
                        None => Value::Null,
                    });
                }
                match expr.eval(table, row)? {
                    Value::Utf8(s) => Ok(Value::Bool(s.contains(needle.as_str()))),
                    Value::Null => Ok(Value::Null),
                    other => Err(EngineError::TypeMismatch {
                        context: format!("CONTAINS on {other:?}"),
                    }),
                }
            }
            Expr::InList { expr, list } => {
                // Borrowing fast path for string probes: only Utf8
                // candidates can equal a string (values_equal semantics).
                if let Some(sv) = expr.str_leaf(table, row)? {
                    return Ok(match sv {
                        None => Value::Null,
                        Some(s) => Value::Bool(
                            list.iter()
                                .any(|cand| matches!(cand, Value::Utf8(c) if c == s)),
                        ),
                    });
                }
                let v = expr.eval(table, row)?;
                if matches!(v, Value::Null) {
                    return Ok(Value::Null);
                }
                Ok(Value::Bool(list.iter().any(|cand| values_equal(&v, cand))))
            }
            Expr::Bin { op, left, right } => {
                // Borrowing fast path for string comparisons: compare
                // `&str` straight out of the columns instead of cloning
                // both sides into `Value`s.
                if cmp_op(*op) {
                    if let (Some(l), Some(r)) = (
                        left.str_leaf(table, row)?,
                        right.str_leaf(table, row)?,
                    ) {
                        return Ok(match (l, r) {
                            (Some(a), Some(b)) => Value::Bool(ord_matches(*op, a.cmp(b))),
                            _ => Value::Null,
                        });
                    }
                }
                let l = left.eval(table, row)?;
                let r = right.eval(table, row)?;
                eval_bin(*op, l, r)
            }
        }
    }

    /// Evaluates the expression as a predicate over every row, producing a
    /// selection mask (NULL counts as not-selected, as in SQL `WHERE`).
    pub fn eval_mask(&self, table: &Table) -> Result<Vec<bool>, EngineError> {
        (0..table.n_rows())
            .map(|row| match self.eval(table, row)? {
                Value::Bool(b) => Ok(b),
                Value::Null => Ok(false),
                other => Err(EngineError::TypeMismatch {
                    context: format!("predicate produced {other:?}"),
                }),
            })
            .collect()
    }
}

fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Utf8(x), Value::Utf8(y)) => x == y,
        (Value::Bool(x), Value::Bool(y)) => x == y,
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        },
    }
}

fn eval_bin(op: BinOp, l: Value, r: Value) -> Result<Value, EngineError> {
    use BinOp::*;
    // Three-valued logic for AND/OR must look at non-NULL operands first.
    if matches!(op, And | Or) {
        let lb = as_bool_opt(&l)?;
        let rb = as_bool_opt(&r)?;
        return Ok(match (op, lb, rb) {
            (And, Some(false), _) | (And, _, Some(false)) => Value::Bool(false),
            (And, Some(true), Some(true)) => Value::Bool(true),
            (Or, Some(true), _) | (Or, _, Some(true)) => Value::Bool(true),
            (Or, Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        });
    }
    if matches!(l, Value::Null) || matches!(r, Value::Null) {
        return Ok(Value::Null);
    }
    match op {
        Add | Sub | Mul | Div => {
            let (x, y) = numeric_pair(&l, &r, op)?;
            let out = match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => {
                    if y == 0.0 {
                        return Err(EngineError::DivisionByZero);
                    }
                    x / y
                }
                // LINT: panic-ok — this arm is only entered for the four
                // arithmetic operators matched by the enclosing branch.
                _ => unreachable!("arith op"),
            };
            // Integer arithmetic stays integral except division.
            match (&l, &r, op) {
                (Value::Int64(_), Value::Int64(_), Add | Sub | Mul) => {
                    Ok(Value::Int64(out as i64))
                }
                _ => Ok(Value::Float64(out)),
            }
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            let ord = compare_values(&l, &r)?;
            Ok(Value::Bool(ord_matches(op, ord)))
        }
        // LINT: panic-ok — eval_bin dispatches And/Or to the short-circuit
        // path before calling this numeric/comparison tail.
        And | Or => unreachable!("handled above"),
    }
}

/// True for the six comparison operators.
fn cmp_op(op: BinOp) -> bool {
    use BinOp::*;
    matches!(op, Eq | Ne | Lt | Le | Gt | Ge)
}

/// Maps a comparison operator over an ordering.
fn ord_matches(op: BinOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering;
    match op {
        BinOp::Eq => ord == Ordering::Equal,
        BinOp::Ne => ord != Ordering::Equal,
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        // LINT: panic-ok — every caller guards with cmp_op(op).
        _ => unreachable!("not a comparison"),
    }
}

fn as_bool_opt(v: &Value) -> Result<Option<bool>, EngineError> {
    match v {
        Value::Bool(b) => Ok(Some(*b)),
        Value::Null => Ok(None),
        other => Err(EngineError::TypeMismatch {
            context: format!("boolean operand expected, got {other:?}"),
        }),
    }
}

fn numeric_pair(l: &Value, r: &Value, op: BinOp) -> Result<(f64, f64), EngineError> {
    match (l.as_f64(), r.as_f64()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(EngineError::TypeMismatch {
            context: format!("{op:?} on {l:?} and {r:?}"),
        }),
    }
}

fn compare_values(l: &Value, r: &Value) -> Result<std::cmp::Ordering, EngineError> {
    match (l, r) {
        (Value::Utf8(a), Value::Utf8(b)) => Ok(a.cmp(b)),
        (Value::Bool(a), Value::Bool(b)) => Ok(a.cmp(b)),
        _ => match (l.as_f64(), r.as_f64()) {
            (Some(a), Some(b)) => a.partial_cmp(&b).ok_or(EngineError::TypeMismatch {
                context: "NaN comparison".to_string(),
            }),
            _ => Err(EngineError::TypeMismatch {
                context: format!("compare {l:?} with {r:?}"),
            }),
        },
    }
}

// ======================= vectorized (batch) evaluation =======================
//
// The batch evaluator computes an expression against whole columns at once,
// under an optional selection vector, producing typed result vectors plus a
// validity mask. There is no per-row `Value` boxing and strings are never
// cloned: column strings are referenced in place and literal strings are
// borrowed from the expression tree. Semantics (Kleene NULL logic, numeric
// widening, error conditions) match `Expr::eval` exactly — the differential
// property tests in `tests/vectorized_differential.rs` enforce this.

/// Numeric type tag of a batch vector. Mirrors `Value`'s numeric variants:
/// arithmetic on two `Int` operands yields `Int` (except division), every
/// other combination widens to `Float`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumTy {
    /// Backed by `Value::Int64`.
    Int,
    /// Backed by `Value::Float64`.
    Float,
    /// Backed by `Value::Date`.
    Date,
}

/// Result of evaluating an expression over a batch of rows.
///
/// Vector variants hold one slot per *selected* row (position-indexed);
/// `Str` references the column storage directly and is indexed through the
/// selection vector by **original** row id. Constant variants stand for
/// the same value in every row and keep literal-heavy expressions
/// allocation-free.
#[derive(Debug)]
pub enum BatchVals<'a> {
    /// Numeric values widened to `f64` with a type tag; `valid[i] == false`
    /// marks NULL slots (whose value is unspecified).
    Num {
        /// One value per selected row.
        vals: Vec<f64>,
        /// `None` = all valid.
        valid: Option<Vec<bool>>,
        /// The logical numeric type.
        ty: NumTy,
    },
    /// Boolean values.
    Bools {
        /// One value per selected row.
        vals: Vec<bool>,
        /// `None` = all valid.
        valid: Option<Vec<bool>>,
    },
    /// A string column referenced in place, indexed by original row id.
    Str {
        /// The column's backing store.
        vals: &'a [String],
        /// The column's validity mask (by original row id).
        valid: Option<&'a [bool]>,
    },
    /// A numeric literal, widened to f64 like every batch numeric (exact
    /// only up to 2^53 for `Int`; projection materializes literals and
    /// column references from their typed source instead, so the lossy
    /// widening is confined to arithmetic/comparisons — where the scalar
    /// path widens identically).
    ConstNum {
        /// The value.
        val: f64,
        /// Its logical type.
        ty: NumTy,
    },
    /// A boolean literal.
    ConstBool(bool),
    /// A string literal, borrowed from the expression.
    ConstStr(&'a str),
    /// NULL in every row.
    ConstNull,
}

/// A selection view: resolves batch positions to original row ids.
#[derive(Clone, Copy)]
pub struct SelView<'s> {
    sel: Option<&'s [u32]>,
    base: usize,
    n: usize,
}

impl<'s> SelView<'s> {
    /// A view over `table` restricted to `sel` (`None` = all rows).
    pub fn new(table: &Table, sel: Option<&'s [u32]>) -> Self {
        SelView {
            sel,
            base: 0,
            n: sel.map_or(table.n_rows(), |s| s.len()),
        }
    }

    /// A view over `n` rows restricted to `sel` (`None` = all `n` rows),
    /// without needing a `Table` — used when evaluating against
    /// pre-gathered columns ([`KernelCols::Cols`]).
    pub fn over(n: usize, sel: Option<&'s [u32]>) -> Self {
        SelView {
            sel,
            base: 0,
            n: sel.map_or(n, |s| s.len()),
        }
    }

    /// A morsel view over the contiguous row range `base..base + n` (no
    /// selection vector needed for a dense range).
    pub fn range(base: usize, n: usize) -> Self {
        SelView { sel: None, base, n }
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The contiguous source row range this view covers, when it has no
    /// selection vector (a dense morsel or whole-table view). Lets
    /// gathers degrade to slice copies.
    #[inline]
    pub fn dense_range(&self) -> Option<std::ops::Range<usize>> {
        match self.sel {
            Some(_) => None,
            None => Some(self.base..self.base + self.n),
        }
    }

    /// Original row id of batch position `pos`.
    #[inline]
    pub fn row(&self, pos: usize) -> usize {
        match self.sel {
            Some(s) => s[pos] as usize,
            None => self.base + pos,
        }
    }
}

/// A reusable pool of kernel temporaries: value vectors, validity masks
/// and selection vectors.
///
/// Every batch kernel draws its output buffers from one of these and the
/// tree walk / plan executor returns consumed intermediates to it, so an
/// operator that carries a scratch across batches (the morsel executor
/// evaluates thousands of cache-resident batches per query) allocates
/// only on the first few morsels. A `Default`-constructed scratch is
/// always valid; pooling is purely an optimization and never changes
/// results.
#[derive(Default)]
pub struct EvalScratch {
    f64s: Vec<Vec<f64>>,
    bools: Vec<Vec<bool>>,
    sels: Vec<Vec<u32>>,
}

/// Upper bound on pooled vectors per family — enough for the deepest
/// expression trees in play while bounding idle memory.
const SCRATCH_POOL_CAP: usize = 16;

impl EvalScratch {
    /// An empty pool.
    pub fn new() -> Self {
        EvalScratch::default()
    }

    fn take_f64(&mut self, n: usize) -> Vec<f64> {
        let mut v = self.f64s.pop().unwrap_or_default();
        v.clear();
        v.resize(n, 0.0);
        v
    }

    fn take_bools(&mut self, n: usize, fill: bool) -> Vec<bool> {
        let mut v = self.bools.pop().unwrap_or_default();
        v.clear();
        v.resize(n, fill);
        v
    }

    /// A cleared selection vector from the pool.
    pub fn take_sel(&mut self) -> Vec<u32> {
        let mut v = self.sels.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Returns a selection vector to the pool.
    pub fn put_sel(&mut self, v: Vec<u32>) {
        if self.sels.len() < SCRATCH_POOL_CAP {
            self.sels.push(v);
        }
    }

    fn put_f64(&mut self, v: Vec<f64>) {
        if self.f64s.len() < SCRATCH_POOL_CAP {
            self.f64s.push(v);
        }
    }

    fn put_bools(&mut self, v: Vec<bool>) {
        if self.bools.len() < SCRATCH_POOL_CAP {
            self.bools.push(v);
        }
    }

    /// Returns a consumed batch result's buffers to the pool.
    pub fn recycle(&mut self, bv: BatchVals<'_>) {
        match bv {
            BatchVals::Num { vals, valid, .. } => {
                self.put_f64(vals);
                if let Some(v) = valid {
                    self.put_bools(v);
                }
            }
            BatchVals::Bools { vals, valid } => {
                self.put_bools(vals);
                if let Some(v) = valid {
                    self.put_bools(v);
                }
            }
            _ => {}
        }
    }
}

/// Lazily materializes an all-true validity mask from the pool, exactly
/// like the `get_or_insert_with(|| vec![true; n])` it replaces.
#[inline]
fn lazy_mask<'m>(
    valid: &'m mut Option<Vec<bool>>,
    scratch: &mut EvalScratch,
    n: usize,
) -> &'m mut Vec<bool> {
    if valid.is_none() {
        *valid = Some(scratch.take_bools(n, true));
    }
    valid.as_mut().expect("just set")
}

// Internal operand views used by the kernels below.

enum NumSide<'v> {
    Vec(&'v [f64], Option<&'v [bool]>),
    Const(f64),
}

impl NumSide<'_> {
    #[inline]
    fn at(&self, pos: usize) -> Option<f64> {
        match self {
            NumSide::Vec(vals, valid) => match valid {
                Some(v) if !v[pos] => None,
                _ => Some(vals[pos]),
            },
            NumSide::Const(c) => Some(*c),
        }
    }
}

enum BoolSide<'v> {
    Vec(&'v [bool], Option<&'v [bool]>),
    Const(bool),
}

impl BoolSide<'_> {
    #[inline]
    fn at(&self, pos: usize) -> Option<bool> {
        match self {
            BoolSide::Vec(vals, valid) => match valid {
                Some(v) if !v[pos] => None,
                _ => Some(vals[pos]),
            },
            BoolSide::Const(c) => Some(*c),
        }
    }
}

enum StrSide<'v> {
    Col(&'v [String], Option<&'v [bool]>),
    Const(&'v str),
}

impl StrSide<'_> {
    #[inline]
    fn at(&self, sv: &SelView<'_>, pos: usize) -> Option<&str> {
        match self {
            StrSide::Col(vals, valid) => {
                let row = sv.row(pos);
                match valid {
                    Some(v) if !v[row] => None,
                    _ => Some(vals[row].as_str()),
                }
            }
            StrSide::Const(c) => Some(c),
        }
    }
}

/// Type-erased operand: which family of comparison applies.
enum Side<'v> {
    N(NumSide<'v>, NumTy),
    B(BoolSide<'v>),
    S(StrSide<'v>),
    Null,
}

fn classify<'v>(bv: &'v BatchVals<'_>) -> Side<'v> {
    match bv {
        BatchVals::Num { vals, valid, ty } => Side::N(NumSide::Vec(vals, valid.as_deref()), *ty),
        BatchVals::ConstNum { val, ty } => Side::N(NumSide::Const(*val), *ty),
        BatchVals::Bools { vals, valid } => Side::B(BoolSide::Vec(vals, valid.as_deref())),
        BatchVals::ConstBool(b) => Side::B(BoolSide::Const(*b)),
        BatchVals::Str { vals, valid } => Side::S(StrSide::Col(vals, *valid)),
        BatchVals::ConstStr(s) => Side::S(StrSide::Const(s)),
        BatchVals::ConstNull => Side::Null,
    }
}

/// Is any slot of this side non-NULL? (Constants are non-NULL everywhere,
/// so any non-empty batch answers true.)
fn side_any_valid(side: &Side<'_>, sv: &SelView<'_>) -> bool {
    if sv.is_empty() {
        return false;
    }
    match side {
        Side::Null => false,
        Side::N(NumSide::Const(_), _) | Side::B(BoolSide::Const(_)) | Side::S(StrSide::Const(_)) => {
            true
        }
        Side::N(NumSide::Vec(_, valid), _) | Side::B(BoolSide::Vec(_, valid)) => match valid {
            None => true,
            Some(v) => v.iter().any(|&ok| ok),
        },
        Side::S(StrSide::Col(_, valid)) => match valid {
            None => true,
            Some(v) => (0..sv.len()).any(|pos| v[sv.row(pos)]),
        },
    }
}

/// A numeric view of a side, or `Null` when every slot is NULL; errors when
/// a non-NULL boolean/string slot would make scalar evaluation fail.
enum NumOperand<'v> {
    Op(NumSide<'v>, NumTy),
    Null,
}

fn as_num_operand<'v>(
    side: Side<'v>,
    sv: &SelView<'_>,
    op: BinOp,
) -> Result<NumOperand<'v>, EngineError> {
    match side {
        Side::N(ns, ty) => Ok(NumOperand::Op(ns, ty)),
        Side::Null => Ok(NumOperand::Null),
        other => {
            if side_any_valid(&other, sv) {
                Err(EngineError::TypeMismatch {
                    context: format!("{op:?} on non-numeric operand"),
                })
            } else {
                Ok(NumOperand::Null)
            }
        }
    }
}

/// A Kleene-boolean view of a side, or `Null` when every slot is NULL.
enum BoolOperand<'v> {
    Op(BoolSide<'v>),
    Null,
}

fn as_bool_operand<'v>(side: Side<'v>, sv: &SelView<'_>) -> Result<BoolOperand<'v>, EngineError> {
    match side {
        Side::B(bs) => Ok(BoolOperand::Op(bs)),
        Side::Null => Ok(BoolOperand::Null),
        other => {
            if side_any_valid(&other, sv) {
                Err(EngineError::TypeMismatch {
                    context: "boolean operand expected".to_string(),
                })
            } else {
                Ok(BoolOperand::Null)
            }
        }
    }
}

fn arith_batch(
    op: BinOp,
    l: NumOperand<'_>,
    r: NumOperand<'_>,
    n: usize,
    scratch: &mut EvalScratch,
) -> Result<BatchVals<'static>, EngineError> {
    use BinOp::*;
    // Zero selected rows: scalar evaluation never runs, so no value is
    // produced and no error (e.g. a constant division by zero) may be
    // raised. ConstNull is indistinguishable from any other empty batch.
    if n == 0 {
        return Ok(BatchVals::ConstNull);
    }
    let (NumOperand::Op(ls, lty), NumOperand::Op(rs, rty)) = (l, r) else {
        return Ok(BatchVals::ConstNull);
    };
    let out_ty = if lty == NumTy::Int && rty == NumTy::Int && op != Div {
        NumTy::Int
    } else {
        NumTy::Float
    };
    // Constant folding: identical per-row result, computed once.
    if let (NumSide::Const(x), NumSide::Const(y)) = (&ls, &rs) {
        if op == Div && *y == 0.0 {
            return Err(EngineError::DivisionByZero);
        }
        let val = match op {
            Add => x + y,
            Sub => x - y,
            Mul => x * y,
            Div => x / y,
            // LINT: panic-ok — arith_batch is only called with Add/Sub/Mul/Div.
            _ => unreachable!("arith op"),
        };
        return Ok(BatchVals::ConstNum { val, ty: out_ty });
    }
    let mut vals = scratch.take_f64(n);
    let mut valid: Option<Vec<bool>> = None;
    for pos in 0..n {
        match (ls.at(pos), rs.at(pos)) {
            (Some(x), Some(y)) => {
                vals[pos] = match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => {
                        if y == 0.0 {
                            return Err(EngineError::DivisionByZero);
                        }
                        x / y
                    }
                    // LINT: panic-ok — arith_batch is only called with
                    // Add/Sub/Mul/Div.
                    _ => unreachable!("arith op"),
                };
            }
            _ => lazy_mask(&mut valid, scratch, n)[pos] = false,
        }
    }
    Ok(BatchVals::Num {
        vals,
        valid,
        ty: out_ty,
    })
}

fn cmp_batch(
    op: BinOp,
    l: Side<'_>,
    r: Side<'_>,
    sv: &SelView<'_>,
    scratch: &mut EvalScratch,
) -> Result<BatchVals<'static>, EngineError> {
    let n = sv.len();
    if matches!(l, Side::Null) || matches!(r, Side::Null) {
        return Ok(BatchVals::ConstNull);
    }
    // Mixed families: scalar comparison fails on the first row where
    // both sides are non-NULL; rows with a NULL side yield NULL.
    let same_family = matches!(
        (&l, &r),
        (Side::N(..), Side::N(..)) | (Side::S(_), Side::S(_)) | (Side::B(_), Side::B(_))
    );
    if !same_family {
        if side_any_both_valid(&l, &r, sv) {
            return Err(EngineError::TypeMismatch {
                context: format!("{op:?} between incompatible types"),
            });
        }
        return Ok(BatchVals::ConstNull);
    }
    let mut vals = scratch.take_bools(n, false);
    let mut valid: Option<Vec<bool>> = None;
    match (&l, &r) {
        (Side::N(ls, _), Side::N(rs, _)) => {
            for pos in 0..n {
                match (ls.at(pos), rs.at(pos)) {
                    (Some(x), Some(y)) => {
                        let ord = x.partial_cmp(&y).ok_or(EngineError::TypeMismatch {
                            context: "NaN comparison".to_string(),
                        })?;
                        vals[pos] = ord_matches(op, ord);
                    }
                    _ => lazy_mask(&mut valid, scratch, n)[pos] = false,
                }
            }
        }
        (Side::S(ls), Side::S(rs)) => {
            for pos in 0..n {
                match (ls.at(sv, pos), rs.at(sv, pos)) {
                    (Some(x), Some(y)) => vals[pos] = ord_matches(op, x.cmp(y)),
                    _ => lazy_mask(&mut valid, scratch, n)[pos] = false,
                }
            }
        }
        (Side::B(ls), Side::B(rs)) => {
            for pos in 0..n {
                match (ls.at(pos), rs.at(pos)) {
                    (Some(x), Some(y)) => vals[pos] = ord_matches(op, x.cmp(&y)),
                    _ => lazy_mask(&mut valid, scratch, n)[pos] = false,
                }
            }
        }
        // LINT: panic-ok — the mixed-family arm above returns (error or
        // all-NULL) before this exhaustive same-family dispatch.
        _ => unreachable!("mixed families handled above"),
    }
    Ok(BatchVals::Bools { vals, valid })
}

/// Is there a row where both sides are non-NULL?
fn side_any_both_valid(l: &Side<'_>, r: &Side<'_>, sv: &SelView<'_>) -> bool {
    let valid_at = |s: &Side<'_>, pos: usize| -> bool {
        match s {
            Side::Null => false,
            Side::N(ns, _) => ns.at(pos).is_some(),
            Side::B(bs) => bs.at(pos).is_some(),
            Side::S(ss) => ss.at(sv, pos).is_some(),
        }
    };
    (0..sv.len()).any(|pos| valid_at(l, pos) && valid_at(r, pos))
}

fn kleene_batch(
    op: BinOp,
    l: BoolOperand<'_>,
    r: BoolOperand<'_>,
    n: usize,
    scratch: &mut EvalScratch,
) -> BatchVals<'static> {
    let at = |o: &BoolOperand<'_>, pos: usize| -> Option<bool> {
        match o {
            BoolOperand::Op(bs) => bs.at(pos),
            BoolOperand::Null => None,
        }
    };
    // Constant fast paths (both sides constant or NULL).
    let const_of = |o: &BoolOperand<'_>| -> Option<Option<bool>> {
        match o {
            BoolOperand::Op(BoolSide::Const(b)) => Some(Some(*b)),
            BoolOperand::Null => Some(None),
            _ => None,
        }
    };
    if let (Some(lb), Some(rb)) = (const_of(&l), const_of(&r)) {
        return match combine_kleene(op, lb, rb) {
            Some(b) => BatchVals::ConstBool(b),
            None => BatchVals::ConstNull,
        };
    }
    let mut vals = scratch.take_bools(n, false);
    let mut valid: Option<Vec<bool>> = None;
    for pos in 0..n {
        match combine_kleene(op, at(&l, pos), at(&r, pos)) {
            Some(b) => vals[pos] = b,
            None => lazy_mask(&mut valid, scratch, n)[pos] = false,
        }
    }
    BatchVals::Bools { vals, valid }
}

/// Three-valued AND/OR, exactly as `eval_bin` collapses it.
fn combine_kleene(op: BinOp, l: Option<bool>, r: Option<bool>) -> Option<bool> {
    match (op, l, r) {
        (BinOp::And, Some(false), _) | (BinOp::And, _, Some(false)) => Some(false),
        (BinOp::And, Some(true), Some(true)) => Some(true),
        (BinOp::Or, Some(true), _) | (BinOp::Or, _, Some(true)) => Some(true),
        (BinOp::Or, Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

/// `Expr::Col` kernel: gathers one column under the selection view into a
/// typed batch vector (strings stay borrowed in place).
fn col_batch<'a>(col: &'a Column, sv: &SelView<'_>, scratch: &mut EvalScratch) -> BatchVals<'a> {
    let n = sv.len();
    fn gather_valid(
        validity: &Option<Vec<bool>>,
        sv: &SelView<'_>,
        scratch: &mut EvalScratch,
    ) -> Option<Vec<bool>> {
        validity.as_ref().map(|v| {
            let n = sv.len();
            let mut out = scratch.take_bools(n, false);
            for (pos, slot) in out.iter_mut().enumerate() {
                *slot = v[sv.row(pos)];
            }
            out
        })
    }
    match &col.data {
        ColumnData::Int64(v) => {
            let mut vals = scratch.take_f64(n);
            for (pos, slot) in vals.iter_mut().enumerate() {
                *slot = v[sv.row(pos)] as f64;
            }
            BatchVals::Num {
                vals,
                valid: gather_valid(&col.validity, sv, scratch),
                ty: NumTy::Int,
            }
        }
        ColumnData::Float64(v) => {
            let mut vals = scratch.take_f64(n);
            for (pos, slot) in vals.iter_mut().enumerate() {
                *slot = v[sv.row(pos)];
            }
            BatchVals::Num {
                vals,
                valid: gather_valid(&col.validity, sv, scratch),
                ty: NumTy::Float,
            }
        }
        ColumnData::Date(v) => {
            let mut vals = scratch.take_f64(n);
            for (pos, slot) in vals.iter_mut().enumerate() {
                *slot = v[sv.row(pos)] as f64;
            }
            BatchVals::Num {
                vals,
                valid: gather_valid(&col.validity, sv, scratch),
                ty: NumTy::Date,
            }
        }
        ColumnData::Bool(v) => {
            let mut vals = scratch.take_bools(n, false);
            for (pos, slot) in vals.iter_mut().enumerate() {
                *slot = v[sv.row(pos)];
            }
            BatchVals::Bools {
                vals,
                valid: gather_valid(&col.validity, sv, scratch),
            }
        }
        ColumnData::Utf8(v) => BatchVals::Str {
            vals: v,
            valid: col.validity.as_deref(),
        },
    }
}

/// `Expr::Lit` kernel: broadcasts a literal as a constant batch.
fn lit_batch(v: &Value) -> BatchVals<'_> {
    match v {
        Value::Int64(x) => BatchVals::ConstNum {
            val: *x as f64,
            ty: NumTy::Int,
        },
        Value::Float64(x) => BatchVals::ConstNum {
            val: *x,
            ty: NumTy::Float,
        },
        Value::Date(d) => BatchVals::ConstNum {
            val: *d as f64,
            ty: NumTy::Date,
        },
        Value::Bool(b) => BatchVals::ConstBool(*b),
        Value::Utf8(s) => BatchVals::ConstStr(s.as_str()),
        Value::Null => BatchVals::ConstNull,
    }
}

/// `Expr::Not` kernel.
fn not_batch(
    inner: &BatchVals<'_>,
    sv: &SelView<'_>,
    scratch: &mut EvalScratch,
) -> Result<BatchVals<'static>, EngineError> {
    let n = sv.len();
    match as_bool_operand(classify(inner), sv)? {
        BoolOperand::Null => Ok(BatchVals::ConstNull),
        BoolOperand::Op(BoolSide::Const(b)) => Ok(BatchVals::ConstBool(!b)),
        BoolOperand::Op(bs) => {
            let mut vals = scratch.take_bools(n, false);
            let mut valid: Option<Vec<bool>> = None;
            for pos in 0..n {
                match bs.at(pos) {
                    Some(b) => vals[pos] = !b,
                    None => lazy_mask(&mut valid, scratch, n)[pos] = false,
                }
            }
            Ok(BatchVals::Bools { vals, valid })
        }
    }
}

/// `Expr::IsNull` kernel.
fn is_null_batch(
    inner: &BatchVals<'_>,
    sv: &SelView<'_>,
    scratch: &mut EvalScratch,
) -> BatchVals<'static> {
    let n = sv.len();
    match classify(inner) {
        Side::Null => BatchVals::ConstBool(true),
        Side::N(NumSide::Const(_), _)
        | Side::B(BoolSide::Const(_))
        | Side::S(StrSide::Const(_)) => BatchVals::ConstBool(false),
        Side::N(NumSide::Vec(_, valid), _) | Side::B(BoolSide::Vec(_, valid)) => match valid {
            None => BatchVals::ConstBool(false),
            Some(v) => {
                let mut vals = scratch.take_bools(n, false);
                for (pos, slot) in vals.iter_mut().enumerate() {
                    *slot = !v[pos];
                }
                BatchVals::Bools { vals, valid: None }
            }
        },
        Side::S(StrSide::Col(_, valid)) => match valid {
            None => BatchVals::ConstBool(false),
            Some(v) => {
                let mut vals = scratch.take_bools(n, false);
                for (pos, slot) in vals.iter_mut().enumerate() {
                    *slot = !v[sv.row(pos)];
                }
                BatchVals::Bools { vals, valid: None }
            }
        },
    }
}

/// `Expr::Contains` kernel.
fn contains_batch(
    inner: &BatchVals<'_>,
    needle: &str,
    sv: &SelView<'_>,
    scratch: &mut EvalScratch,
) -> Result<BatchVals<'static>, EngineError> {
    let n = sv.len();
    match classify(inner) {
        Side::Null => Ok(BatchVals::ConstNull),
        Side::S(StrSide::Const(s)) => Ok(BatchVals::ConstBool(s.contains(needle))),
        Side::S(ss) => {
            let mut vals = scratch.take_bools(n, false);
            let mut valid: Option<Vec<bool>> = None;
            for pos in 0..n {
                match ss.at(sv, pos) {
                    Some(s) => vals[pos] = s.contains(needle),
                    None => lazy_mask(&mut valid, scratch, n)[pos] = false,
                }
            }
            Ok(BatchVals::Bools { vals, valid })
        }
        other => {
            if side_any_valid(&other, sv) {
                Err(EngineError::TypeMismatch {
                    context: "CONTAINS on non-string".to_string(),
                })
            } else {
                Ok(BatchVals::ConstNull)
            }
        }
    }
}

/// `Expr::InList` kernel.
fn in_list_batch(
    inner: &BatchVals<'_>,
    list: &[Value],
    sv: &SelView<'_>,
    scratch: &mut EvalScratch,
) -> Result<BatchVals<'static>, EngineError> {
    let n = sv.len();
    match classify(inner) {
        Side::Null => Ok(BatchVals::ConstNull),
        Side::N(ns, _) => {
            // Only numeric candidates can match a numeric probe
            // (values_equal semantics).
            let cands: Vec<f64> = list.iter().filter_map(|v| v.as_f64()).collect();
            in_list_kernel(n, scratch, |pos| ns.at(pos), |x| cands.contains(&x))
        }
        Side::B(bs) => {
            let cands: Vec<bool> = list
                .iter()
                .filter_map(|v| match v {
                    Value::Bool(b) => Some(*b),
                    _ => None,
                })
                .collect();
            in_list_kernel(n, scratch, |pos| bs.at(pos), |x| cands.contains(&x))
        }
        Side::S(ss) => in_list_kernel(
            n,
            scratch,
            |pos| ss.at(sv, pos),
            |x| {
                list.iter()
                    .any(|cand| matches!(cand, Value::Utf8(c) if c.as_str() == x))
            },
        ),
    }
}

/// `Expr::Bin` kernel: dispatches arithmetic, comparison or Kleene logic
/// over two already-evaluated operands.
fn bin_batch(
    op: BinOp,
    l: &BatchVals<'_>,
    r: &BatchVals<'_>,
    sv: &SelView<'_>,
    scratch: &mut EvalScratch,
) -> Result<BatchVals<'static>, EngineError> {
    use BinOp::*;
    let n = sv.len();
    match op {
        Add | Sub | Mul | Div => {
            let lo = as_num_operand(classify(l), sv, op)?;
            let ro = as_num_operand(classify(r), sv, op)?;
            arith_batch(op, lo, ro, n, scratch)
        }
        Eq | Ne | Lt | Le | Gt | Ge => cmp_batch(op, classify(l), classify(r), sv, scratch),
        And | Or => {
            let lo = as_bool_operand(classify(l), sv)?;
            let ro = as_bool_operand(classify(r), sv)?;
            Ok(kleene_batch(op, lo, ro, n, scratch))
        }
    }
}

/// Converts a predicate's batch result into a selection vector of
/// original row ids (shared by `eval_sel` and `KernelPlan::eval_sel_into`).
fn sel_from_bools(
    bv: &BatchVals<'_>,
    sv: &SelView<'_>,
    out: &mut Vec<u32>,
) -> Result<(), EngineError> {
    out.clear();
    let n = sv.len();
    match classify(bv) {
        Side::B(BoolSide::Const(true)) => {
            out.extend((0..n).map(|pos| sv.row(pos) as u32));
            Ok(())
        }
        Side::B(BoolSide::Const(false)) | Side::Null => Ok(()),
        Side::B(bs) => {
            for pos in 0..n {
                if bs.at(pos) == Some(true) {
                    out.push(sv.row(pos) as u32);
                }
            }
            Ok(())
        }
        other => {
            if side_any_valid(&other, sv) {
                Err(EngineError::TypeMismatch {
                    context: "predicate produced a non-boolean batch".to_string(),
                })
            } else {
                Ok(())
            }
        }
    }
}

impl Expr {
    /// Evaluates the expression over the rows of `table` selected by `sel`
    /// (`None` = all rows), producing a typed batch vector.
    ///
    /// Agrees with [`Expr::eval`] row-by-row: slot `i` of the result equals
    /// `self.eval(table, sel[i])`, with NULLs carried in the validity mask.
    /// Errors are raised iff scalar evaluation of some selected row errs
    /// (the specific message may name the batch, not the row).
    pub fn eval_batch<'a>(
        &'a self,
        table: &'a Table,
        sel: Option<&[u32]>,
    ) -> Result<BatchVals<'a>, EngineError> {
        let mut scratch = EvalScratch::default();
        self.eval_batch_in(table, sel, &mut scratch)
    }

    /// [`Expr::eval_batch`] with caller-provided scratch buffers, so
    /// operators evaluating many batches reuse allocations across them.
    pub fn eval_batch_in<'a>(
        &'a self,
        table: &'a Table,
        sel: Option<&[u32]>,
        scratch: &mut EvalScratch,
    ) -> Result<BatchVals<'a>, EngineError> {
        let sv = SelView::new(table, sel);
        match self {
            Expr::Col(i) => Ok(col_batch(table.column(*i)?, &sv, scratch)),
            Expr::Lit(v) => Ok(lit_batch(v)),
            Expr::Not(e) => {
                let inner = e.eval_batch_in(table, sel, scratch)?;
                let out = not_batch(&inner, &sv, scratch);
                scratch.recycle(inner);
                out
            }
            Expr::IsNull(e) => {
                let inner = e.eval_batch_in(table, sel, scratch)?;
                let out = is_null_batch(&inner, &sv, scratch);
                scratch.recycle(inner);
                Ok(out)
            }
            Expr::Contains { expr, needle } => {
                let inner = expr.eval_batch_in(table, sel, scratch)?;
                let out = contains_batch(&inner, needle, &sv, scratch);
                scratch.recycle(inner);
                out
            }
            Expr::InList { expr, list } => {
                let inner = expr.eval_batch_in(table, sel, scratch)?;
                let out = in_list_batch(&inner, list, &sv, scratch);
                scratch.recycle(inner);
                out
            }
            Expr::Bin { op, left, right } => {
                let l = left.eval_batch_in(table, sel, scratch)?;
                let r = right.eval_batch_in(table, sel, scratch)?;
                let out = bin_batch(*op, &l, &r, &sv, scratch);
                scratch.recycle(l);
                scratch.recycle(r);
                out
            }
        }
    }

    /// Evaluates the expression as a predicate, returning the selection
    /// vector of original row ids where it is true (NULL = not selected,
    /// as in SQL `WHERE`). The batch counterpart of [`Expr::eval_mask`]:
    /// `eval_sel(t, None)` selects exactly the rows `eval_mask` marks true.
    pub fn eval_sel(&self, table: &Table, sel: Option<&[u32]>) -> Result<Vec<u32>, EngineError> {
        let mut scratch = EvalScratch::default();
        let mut out = Vec::new();
        self.eval_sel_in(table, sel, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// [`Expr::eval_sel`] with caller-provided scratch and output vector;
    /// `out` is cleared and refilled.
    pub fn eval_sel_in(
        &self,
        table: &Table,
        sel: Option<&[u32]>,
        scratch: &mut EvalScratch,
        out: &mut Vec<u32>,
    ) -> Result<(), EngineError> {
        let sv = SelView::new(table, sel);
        let bv = self.eval_batch_in(table, sel, scratch)?;
        let res = sel_from_bools(&bv, &sv, out);
        scratch.recycle(bv);
        res
    }
}

/// Shared `IN`-list loop: `get` yields the probe value per position, `hit`
/// tests membership.
fn in_list_kernel<T>(
    n: usize,
    scratch: &mut EvalScratch,
    get: impl Fn(usize) -> Option<T>,
    hit: impl Fn(T) -> bool,
) -> Result<BatchVals<'static>, EngineError> {
    let mut vals = scratch.take_bools(n, false);
    let mut valid: Option<Vec<bool>> = None;
    for pos in 0..n {
        match get(pos) {
            Some(x) => vals[pos] = hit(x),
            None => lazy_mask(&mut valid, scratch, n)[pos] = false,
        }
    }
    Ok(BatchVals::Bools { vals, valid })
}

// ========================== compiled kernel plans ===========================
//
// A `KernelPlan` is the pre-compiled form of one `Expr`: a flat post-order
// program over virtual registers, resolved once per operator instead of
// re-walking the boxed tree for every batch. Compilation also deduplicates
// column loads (an expression referencing `Col(3)` four times gathers it
// once per batch) and records the distinct referenced columns, which lets
// the fused executor bind a plan to a *sparse* set of gathered columns —
// the basis of selection-aware deferred join gathering.
//
// Step execution calls the exact same kernel functions as
// `Expr::eval_batch_in`, in the same post-order, so results and the
// ok-vs-err outcome are identical by construction.

/// One step of a compiled plan. `dst`/`src` are register indices.
enum KStep<'e> {
    /// Gather a column into a register.
    Col { col: usize, dst: usize },
    /// Broadcast a literal.
    Lit { v: &'e Value, dst: usize },
    /// Binary kernel.
    Bin {
        op: BinOp,
        l: usize,
        r: usize,
        dst: usize,
    },
    /// Logical negation.
    Not { src: usize, dst: usize },
    /// NULL test.
    IsNull { src: usize, dst: usize },
    /// Substring containment.
    Contains {
        src: usize,
        needle: &'e str,
        dst: usize,
    },
    /// Literal-list membership.
    InList {
        src: usize,
        list: &'e [Value],
        dst: usize,
    },
}

/// A compiled expression: see [`Expr::compile`].
pub struct KernelPlan<'e> {
    steps: Vec<KStep<'e>>,
    out: usize,
    n_regs: usize,
    cols: Vec<usize>,
}

/// The column binding a [`KernelPlan`] evaluates against: either a whole
/// table, or an index-aligned sparse slice of pre-gathered columns (only
/// the plan's [`KernelPlan::referenced_cols`] need be present).
pub enum KernelCols<'a> {
    /// Resolve column indices against a table.
    Table(&'a Table),
    /// Resolve column indices against a sparse, index-aligned slice.
    Cols(&'a [Option<Column>]),
}

impl<'a> KernelCols<'a> {
    fn column(&self, i: usize) -> Result<&'a Column, EngineError> {
        match self {
            KernelCols::Table(t) => t.column(i),
            KernelCols::Cols(cols) => {
                cols.get(i)
                    .and_then(|c| c.as_ref())
                    .ok_or(EngineError::ColumnIndex {
                        index: i,
                        width: cols.len(),
                    })
            }
        }
    }
}

impl Expr {
    /// Compiles the expression into a [`KernelPlan`] — done once per
    /// operator; each batch then replays the flat step program.
    pub fn compile(&self) -> KernelPlan<'_> {
        let mut plan = KernelPlan {
            steps: Vec::new(),
            out: 0,
            n_regs: 0,
            cols: Vec::new(),
        };
        let mut col_regs: Vec<(usize, usize)> = Vec::new();
        plan.out = compile_node(self, &mut plan, &mut col_regs);
        plan
    }
}

fn compile_node<'e>(
    e: &'e Expr,
    plan: &mut KernelPlan<'e>,
    col_regs: &mut Vec<(usize, usize)>,
) -> usize {
    let alloc = |plan: &mut KernelPlan<'e>| {
        let reg = plan.n_regs;
        plan.n_regs += 1;
        reg
    };
    match e {
        Expr::Col(i) => {
            // Deduplicated: the first reference gathers, later ones reuse
            // the register (the first gather also carries any column-index
            // error, matching the tree walk's first visit).
            if let Some(&(_, reg)) = col_regs.iter().find(|(c, _)| c == i) {
                return reg;
            }
            let dst = alloc(plan);
            plan.steps.push(KStep::Col { col: *i, dst });
            plan.cols.push(*i);
            col_regs.push((*i, dst));
            dst
        }
        Expr::Lit(v) => {
            let dst = alloc(plan);
            plan.steps.push(KStep::Lit { v, dst });
            dst
        }
        Expr::Not(inner) => {
            let src = compile_node(inner, plan, col_regs);
            let dst = alloc(plan);
            plan.steps.push(KStep::Not { src, dst });
            dst
        }
        Expr::IsNull(inner) => {
            let src = compile_node(inner, plan, col_regs);
            let dst = alloc(plan);
            plan.steps.push(KStep::IsNull { src, dst });
            dst
        }
        Expr::Contains { expr, needle } => {
            let src = compile_node(expr, plan, col_regs);
            let dst = alloc(plan);
            plan.steps.push(KStep::Contains { src, needle, dst });
            dst
        }
        Expr::InList { expr, list } => {
            let src = compile_node(expr, plan, col_regs);
            let dst = alloc(plan);
            plan.steps.push(KStep::InList { src, list, dst });
            dst
        }
        Expr::Bin { op, left, right } => {
            let l = compile_node(left, plan, col_regs);
            let r = compile_node(right, plan, col_regs);
            let dst = alloc(plan);
            plan.steps.push(KStep::Bin {
                op: *op,
                l,
                r,
                dst,
            });
            dst
        }
    }
}

fn reg<'r, 'a>(regs: &'r [Option<BatchVals<'a>>], i: usize) -> &'r BatchVals<'a> {
    regs[i]
        .as_ref()
        .expect("operand register written before use (post-order program)")
}

impl<'e> KernelPlan<'e> {
    /// Distinct column indices the plan reads, in first-use order.
    pub fn referenced_cols(&self) -> &[usize] {
        &self.cols
    }

    /// Evaluates the plan over the rows selected by `sv` against `cols`.
    /// Identical to [`Expr::eval_batch`] of the source expression.
    pub fn eval<'a>(
        &'a self,
        cols: &KernelCols<'a>,
        sv: &SelView<'_>,
        scratch: &mut EvalScratch,
    ) -> Result<BatchVals<'a>, EngineError> {
        let mut regs: Vec<Option<BatchVals<'a>>> = Vec::with_capacity(self.n_regs);
        regs.resize_with(self.n_regs, || None);
        for step in &self.steps {
            let (dst, bv) = match step {
                KStep::Col { col, dst } => (*dst, col_batch(cols.column(*col)?, sv, scratch)),
                KStep::Lit { v, dst } => (*dst, lit_batch(v)),
                KStep::Not { src, dst } => (*dst, not_batch(reg(&regs, *src), sv, scratch)?),
                KStep::IsNull { src, dst } => (*dst, is_null_batch(reg(&regs, *src), sv, scratch)),
                KStep::Contains { src, needle, dst } => {
                    (*dst, contains_batch(reg(&regs, *src), needle, sv, scratch)?)
                }
                KStep::InList { src, list, dst } => {
                    (*dst, in_list_batch(reg(&regs, *src), list, sv, scratch)?)
                }
                KStep::Bin { op, l, r, dst } => (
                    *dst,
                    bin_batch(*op, reg(&regs, *l), reg(&regs, *r), sv, scratch)?,
                ),
            };
            regs[dst] = Some(bv);
        }
        let out = regs[self.out]
            .take()
            .expect("plan output register is written by the last step");
        for r in regs.into_iter().flatten() {
            scratch.recycle(r);
        }
        Ok(out)
    }

    /// Evaluates the plan as a predicate, filling `out` with the selected
    /// original row ids. Identical to [`Expr::eval_sel`] of the source
    /// expression.
    pub fn eval_sel_into(
        &self,
        cols: &KernelCols<'_>,
        sv: &SelView<'_>,
        scratch: &mut EvalScratch,
        out: &mut Vec<u32>,
    ) -> Result<(), EngineError> {
        let bv = self.eval(cols, sv, scratch)?;
        let res = sel_from_bools(&bv, sv, out);
        scratch.recycle(bv);
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Column, ColumnData};

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::new("a", ColumnData::Int64(vec![1, 2, 3, 4])),
                Column::new("b", ColumnData::Float64(vec![1.5, 0.5, 3.5, 2.0])),
                Column::new(
                    "s",
                    ColumnData::Utf8(vec!["x".into(), "y".into(), "x".into(), "z".into()]),
                ),
                Column::with_validity(
                    "n",
                    ColumnData::Int64(vec![10, 0, 30, 0]),
                    vec![true, false, true, false],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn arithmetic() {
        let t = table();
        let e = Expr::col(0).add(Expr::int(10));
        assert_eq!(e.eval(&t, 0).unwrap(), Value::Int64(11));
        let e = Expr::col(0).mul(Expr::col(1));
        assert_eq!(e.eval(&t, 2).unwrap(), Value::Float64(10.5));
        let e = Expr::col(0).div(Expr::int(2));
        assert_eq!(e.eval(&t, 3).unwrap(), Value::Float64(2.0));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let t = table();
        let e = Expr::col(0).div(Expr::int(0));
        assert_eq!(e.eval(&t, 0), Err(EngineError::DivisionByZero));
    }

    #[test]
    fn comparisons_and_mask() {
        let t = table();
        let e = Expr::col(0).ge(Expr::int(3));
        assert_eq!(e.eval_mask(&t).unwrap(), vec![false, false, true, true]);
        let e = Expr::col(2).eq(Expr::str("x"));
        assert_eq!(e.eval_mask(&t).unwrap(), vec![true, false, true, false]);
    }

    #[test]
    fn boolean_logic() {
        let t = table();
        let e = Expr::col(0)
            .gt(Expr::int(1))
            .and(Expr::col(1).lt(Expr::float(3.0)));
        assert_eq!(e.eval_mask(&t).unwrap(), vec![false, true, false, true]);
        let e = Expr::col(0).eq(Expr::int(1)).or(Expr::col(2).eq(Expr::str("z")));
        assert_eq!(e.eval_mask(&t).unwrap(), vec![true, false, false, true]);
        let e = Expr::col(0).gt(Expr::int(1)).negate();
        assert_eq!(e.eval_mask(&t).unwrap(), vec![true, false, false, false]);
    }

    #[test]
    fn null_propagation() {
        let t = table();
        // n > 5: NULL rows must not be selected.
        let e = Expr::col(3).gt(Expr::int(5));
        assert_eq!(e.eval_mask(&t).unwrap(), vec![true, false, true, false]);
        // IS NULL.
        let e = Expr::col(3).is_null();
        assert_eq!(e.eval_mask(&t).unwrap(), vec![false, true, false, true]);
        // NULL AND false = false (Kleene).
        let e = Expr::col(3).gt(Expr::int(5)).and(Expr::col(0).gt(Expr::int(99)));
        assert_eq!(e.eval(&t, 1).unwrap(), Value::Bool(false));
        // NULL OR true = true.
        let e = Expr::col(3).gt(Expr::int(5)).or(Expr::col(0).ge(Expr::int(1)));
        assert_eq!(e.eval(&t, 1).unwrap(), Value::Bool(true));
    }

    #[test]
    fn in_list() {
        let t = table();
        let e = Expr::col(2).in_list(vec![Value::Utf8("x".into()), Value::Utf8("z".into())]);
        assert_eq!(e.eval_mask(&t).unwrap(), vec![true, false, true, true]);
        // NULL IN (...) is NULL -> not selected.
        let e = Expr::col(3).in_list(vec![Value::Int64(10)]);
        assert_eq!(e.eval_mask(&t).unwrap(), vec![true, false, false, false]);
    }

    #[test]
    fn type_errors_are_reported() {
        let t = table();
        let e = Expr::col(2).add(Expr::int(1));
        assert!(matches!(
            e.eval(&t, 0),
            Err(EngineError::TypeMismatch { .. })
        ));
        let e = Expr::col(0); // not a predicate
        assert!(e.eval_mask(&t).is_err());
    }

    #[test]
    fn contains_like_pattern() {
        let t = table();
        let e = Expr::col(2).contains("x");
        assert_eq!(e.eval_mask(&t).unwrap(), vec![true, false, true, false]);
        // NULL stays NULL -> unselected; non-strings are type errors.
        let e = Expr::col(3).contains("1");
        assert!(matches!(
            e.eval(&t, 0),
            Err(EngineError::TypeMismatch { .. })
        ));
        let t2 = Table::new(
            "s",
            vec![Column::with_validity(
                "s",
                ColumnData::Utf8(vec!["abc".into(), String::new()]),
                vec![true, false],
            )],
        )
        .unwrap();
        let e = Expr::col(0).contains("b");
        assert_eq!(e.eval_mask(&t2).unwrap(), vec![true, false]);
    }

    #[test]
    fn date_comparisons() {
        let t = Table::new(
            "d",
            vec![Column::new("d", ColumnData::Date(vec![100, 200, 300]))],
        )
        .unwrap();
        let e = Expr::col(0).ge(Expr::date(150)).and(Expr::col(0).lt(Expr::date(300)));
        assert_eq!(e.eval_mask(&t).unwrap(), vec![false, true, false]);
    }
}
