//! Error type for the executor and simulator.

use midas_cloud::SiteId;
use std::fmt;

/// Errors raised while building or executing plans.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A referenced column does not exist in the schema.
    UnknownColumn(String),
    /// A column index was out of bounds for the table.
    ColumnIndex {
        /// Index requested.
        index: usize,
        /// Columns available.
        width: usize,
    },
    /// An expression mixed incompatible types.
    TypeMismatch {
        /// Description of the offending operation.
        context: String,
    },
    /// Columns of one table disagree on row count.
    RaggedTable {
        /// Table in question.
        table: String,
    },
    /// A referenced table is missing from the catalog.
    UnknownTable(String),
    /// Division by zero during expression evaluation.
    DivisionByZero,
    /// The operation is undefined on an empty input.
    EmptyInput(String),
    /// Site or engine referenced by a plan is not available.
    Unavailable(String),
    /// The site a fragment was bound to is down (an injected failure
    /// window; see [`crate::sim::FaultPlan`]). Carries the site so callers
    /// can re-plan around it.
    SiteUnavailable {
        /// The unreachable site.
        site: SiteId,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            EngineError::ColumnIndex { index, width } => {
                write!(f, "column index {index} out of bounds for width {width}")
            }
            EngineError::TypeMismatch { context } => write!(f, "type mismatch: {context}"),
            EngineError::RaggedTable { table } => {
                write!(f, "table {table} has columns of differing lengths")
            }
            EngineError::UnknownTable(name) => write!(f, "unknown table: {name}"),
            EngineError::DivisionByZero => write!(f, "division by zero"),
            EngineError::EmptyInput(op) => write!(f, "{op} is undefined on empty input"),
            EngineError::Unavailable(what) => write!(f, "unavailable: {what}"),
            EngineError::SiteUnavailable { site } => {
                write!(f, "site {} is unavailable", site.0)
            }
        }
    }
}

impl std::error::Error for EngineError {}
