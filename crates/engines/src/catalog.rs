//! The shared, zero-copy execution catalog.
//!
//! Every layer of the stack — the relational executor ([`crate::ops`]), the
//! federated simulator ([`crate::exec`]), the IReS scheduler and the
//! concurrent federation runtime — resolves table names against a
//! [`Catalog`]. Entries are [`Arc<Table>`], which is what makes the whole
//! data plane zero-copy:
//!
//! * **Seeding is `Arc::clone`.** A per-query execution catalog references
//!   the base tables of the deployment-wide catalog by bumping a reference
//!   count; the table bytes are never copied (the runtime's
//!   `catalog_cloned_bytes` metric pins this at zero).
//! * **Cloning a catalog is O(entries), not O(data).** The analytic cost
//!   model can take a private copy per query and splice in its prepared
//!   intermediates without duplicating the base data.
//! * **Sharing is thread-safe.** One immutable catalog serves every worker
//!   of the federation runtime and every concurrently executing fragment of
//!   one query; `Table` holds plain column vectors, so `Arc<Table>` is
//!   `Send + Sync` for free.
//!
//! Fragment outputs (`@frag<N>`) enter a catalog as freshly `Arc::new`-ed
//! tables — owned exactly once, then shared by reference like everything
//! else.

use crate::data::Table;
use crate::error::EngineError;
use std::collections::HashMap;
use std::sync::Arc;

/// A name → [`Arc<Table>`] map: the execution-time view of a data store.
///
/// See the module docs for the sharing model. The API mirrors the
/// `HashMap<String, Table>` it replaced, with `insert` taking ownership of
/// a table (wrapping it once) and `insert_shared` adding another reference
/// to an existing one.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Wraps a table once and registers it under `name`, returning the
    /// previous entry, if any.
    pub fn insert(&mut self, name: impl Into<String>, table: Table) -> Option<Arc<Table>> {
        self.tables.insert(name.into(), Arc::new(table))
    }

    /// Registers another reference to an already-shared table — the
    /// zero-copy seeding path.
    pub fn insert_shared(
        &mut self,
        name: impl Into<String>,
        table: Arc<Table>,
    ) -> Option<Arc<Table>> {
        self.tables.insert(name.into(), table)
    }

    /// The table registered under `name`, borrowed through its `Arc`.
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(name).map(Arc::as_ref)
    }

    /// The table registered under `name`, or a typed
    /// [`EngineError::UnknownTable`] when absent — the fallible lookup
    /// callers use when a missing table is the *input's* fault rather than
    /// a programming error. (The panicking `Index<&str>` impl this
    /// replaces turned every typo into a process abort.)
    pub fn try_get(&self, name: &str) -> Result<&Table, EngineError> {
        self.get(name)
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// The shared handle registered under `name` (for `Arc::clone` seeding
    /// and pointer-identity assertions in tests).
    pub fn get_shared(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.get(name)
    }

    /// Removes and returns the entry under `name`.
    pub fn remove(&mut self, name: &str) -> Option<Arc<Table>> {
        self.tables.remove(name)
    }

    /// Drops every entry (shared tables live on in other holders).
    pub fn clear(&mut self) {
        self.tables.clear();
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no table is registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterates over `(name, shared table)` entries in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<Table>)> {
        self.tables.iter().map(|(name, table)| (name.as_str(), table))
    }

    /// Registered names in arbitrary order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Total estimated bytes across all registered tables.
    pub fn estimated_bytes(&self) -> u64 {
        self.tables.values().map(|t| t.estimated_bytes()).sum()
    }
}

impl From<HashMap<String, Table>> for Catalog {
    fn from(tables: HashMap<String, Table>) -> Self {
        tables.into_iter().collect()
    }
}

impl FromIterator<(String, Table)> for Catalog {
    fn from_iter<I: IntoIterator<Item = (String, Table)>>(iter: I) -> Self {
        Catalog {
            tables: iter
                .into_iter()
                .map(|(name, table)| (name, Arc::new(table)))
                .collect(),
        }
    }
}

impl FromIterator<(String, Arc<Table>)> for Catalog {
    fn from_iter<I: IntoIterator<Item = (String, Arc<Table>)>>(iter: I) -> Self {
        Catalog {
            tables: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Column, ColumnData};

    fn table(name: &str, rows: i64) -> Table {
        Table::new(
            name,
            vec![Column::new("k", ColumnData::Int64((0..rows).collect()))],
        )
        .unwrap()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut cat = Catalog::new();
        assert!(cat.is_empty());
        cat.insert("t", table("t", 4));
        assert_eq!(cat.len(), 1);
        assert!(cat.contains("t"));
        assert_eq!(cat.get("t").unwrap().n_rows(), 4);
        assert_eq!(cat.try_get("t").unwrap().n_rows(), 4);
        assert_eq!(cat.remove("t").unwrap().n_rows(), 4);
        assert!(cat.get("t").is_none());
        assert_eq!(
            cat.try_get("t"),
            Err(EngineError::UnknownTable("t".to_string()))
        );
    }

    #[test]
    fn clone_shares_tables_instead_of_copying() {
        let mut cat = Catalog::new();
        cat.insert("t", table("t", 8));
        let copy = cat.clone();
        assert!(Arc::ptr_eq(
            cat.get_shared("t").unwrap(),
            copy.get_shared("t").unwrap()
        ));
    }

    #[test]
    fn insert_shared_adds_a_reference() {
        let shared = Arc::new(table("t", 2));
        let mut cat = Catalog::new();
        cat.insert_shared("t", Arc::clone(&shared));
        assert_eq!(Arc::strong_count(&shared), 2);
        assert!(Arc::ptr_eq(cat.get_shared("t").unwrap(), &shared));
        drop(cat);
        assert_eq!(Arc::strong_count(&shared), 1);
    }

    #[test]
    fn built_from_owned_maps_and_iterators() {
        let mut m = HashMap::new();
        m.insert("a".to_string(), table("a", 1));
        m.insert("b".to_string(), table("b", 2));
        let cat = Catalog::from(m);
        assert_eq!(cat.len(), 2);
        let mut names: Vec<&str> = cat.names().collect();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "b"]);
        assert!(cat.estimated_bytes() > 0);
    }
}
