//! Static plan analysis: schema inference, expression type checking, and
//! fragment-DAG validation — **before** a single row is touched.
//!
//! Today a malformed plan is only caught deep inside execution, after
//! admission slots, cache lookups and retry budget have been spent, via a
//! runtime [`EngineError`] (or, for a handful of internal invariants, a
//! panic). This module is the binder/validator layer in front of all of
//! that: it derives every plan node's output schema without executing,
//! type-checks expression trees against those schemas, and validates
//! federated fragment DAGs (`@frag` reference resolution, acyclicity,
//! site-placement validity) — producing structured [`PlanDiagnostic`]s
//! that carry a node path, a severity, and the runtime error kind the
//! defect would have surfaced as.
//!
//! # The contract
//!
//! The analyzer is **sound with respect to schema/type/DAG errors**: if
//! [`PlanAnalysis::is_valid`] holds for a plan (no [`Severity::Error`]
//! diagnostics), executing it — scalar, vectorized, partitioned, or fused —
//! never returns [`EngineError::UnknownColumn`], [`EngineError::UnknownTable`],
//! [`EngineError::TypeMismatch`], [`EngineError::ColumnIndex`] or
//! [`EngineError::RaggedTable`], and never reaches one of the executor's
//! `unreachable!` invariants. (Data-dependent *value* errors —
//! division by a non-constant zero, NaN comparisons — are out of scope;
//! division by a **constant** zero is caught statically.) The property is
//! pinned by the soundness/completeness proptests in
//! `crates/engines/tests/analyzer.rs`.
//!
//! The converse is deliberately conservative: the executor's type errors
//! are *data-dependent* (NULL short-circuits before type checks, key
//! columns resolve lazily on non-empty inputs), so a plan the analyzer
//! rejects may happen to run cleanly on an empty or all-NULL table. The
//! analyzer treats every **may-error** construct as [`Severity::Error`]:
//! rejecting a plan that only errors on half its inputs is the point.
//! Constructs that can never error but can never do useful work either
//! (mismatched join-key families silently produce an empty join,
//! `IN`-lists no candidate can match) are [`Severity::Warning`]s.
//!
//! # Entry points
//!
//! * [`analyze_plan`] — one plan against a [`SchemaCatalog`];
//! * [`analyze_fragment_plans`] — an ordered fragment pipeline where plan
//!   `i` may scan `@frag<j>` for `j < i` (the
//!   [`TwoTableQuery`](crate::exec::FederatedQuery) shape: left prepare,
//!   right prepare, combine);
//! * [`analyze_federated`] — a full [`FederatedQuery`] against a
//!   [`Federation`]: everything above plus site-id bounds (an out-of-range
//!   [`SiteId`] would *panic* at dispatch) and instance-name resolution
//!   against each site's machine catalog.
//!
//! The federation runtime and the IReS scheduler run these at admission and
//! reject invalid plans with typed errors before any slot is taken — see
//! `midas::RuntimeError::InvalidPlan` / `midas_ires::SchedulerError::InvalidPlan`.

use crate::catalog::Catalog;
use crate::data::DataType;
use crate::error::EngineError;
use crate::expr::{BinOp, Expr};
use crate::ops::{AggExpr, PhysicalPlan};
use crate::version::CatalogVersion;
use midas_cloud::Federation;
use std::collections::HashMap;
use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The plan executes without schema/type/DAG errors but cannot be
    /// doing what its author meant (an always-false predicate, join keys
    /// whose families can never match). Warnings do not fail validation.
    Warning,
    /// Executing the plan can (and on non-degenerate data will) surface a
    /// runtime `EngineError` or panic. Any Error diagnostic makes the plan
    /// invalid.
    Error,
}

/// What kind of defect a diagnostic describes. Each kind documents the
/// runtime behaviour it predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagnosticKind {
    /// A scan references a table that is neither in the catalog nor a
    /// fragment output. Runtime: [`EngineError::UnknownTable`] on every
    /// execution path.
    UnknownTable,
    /// A scan name starts with `@frag` but does not parse as `@frag<N>`
    /// (`"@fragx"`, `"@frag2abc"`). The federated executor's reference
    /// collector skips such names entirely — they are neither dependencies
    /// nor base tables — so the scan falls through to a catalog lookup and
    /// fails as [`EngineError::UnknownTable`] (and, silently worse, the
    /// name is excluded from cache fingerprint closures).
    MalformedFragmentRef,
    /// Fragment `i` scans `@frag<j>` with `j >= i` (forward or dangling
    /// reference). Runtime: [`EngineError::Unavailable`] from the
    /// dependency analysis. Because references may only point backward,
    /// rejecting these is also the acyclicity and
    /// dependency-closure-completeness proof for the whole DAG.
    ForwardFragmentRef,
    /// A column index is out of bounds for its input schema. Runtime:
    /// [`EngineError::ColumnIndex`] wherever the column is resolved
    /// (expressions, sort keys, join/group keys on non-empty inputs,
    /// aggregate output assembly unconditionally).
    ColumnOutOfBounds,
    /// An expression mixes type families the evaluator refuses: comparing
    /// numeric against string/bool, arithmetic on non-numerics, boolean
    /// logic over non-booleans, `CONTAINS` on a non-string, or a filter
    /// predicate that is not boolean. Runtime:
    /// [`EngineError::TypeMismatch`] on the first row where the offending
    /// operands are non-NULL.
    TypeMismatch,
    /// `left_keys.len() != right_keys.len()` on a hash join. Runtime:
    /// [`EngineError::TypeMismatch`] ("join key arity mismatch"), checked
    /// before any data is touched.
    JoinKeyArity,
    /// Paired join keys come from different type families. The join never
    /// errors — keys of different families simply never compare equal — so
    /// the join is silently empty (inner) or all-NULL-padded (left outer).
    JoinKeyTypeMismatch,
    /// Division by a literal zero. Runtime: [`EngineError::DivisionByZero`]
    /// on the first row where the numerator is non-NULL (immediately, on
    /// the vectorized path, when both operands are literals).
    DivisionByConstantZero,
    /// A predicate that can never be true: a false literal comparison, a
    /// contradictory conjunction of range bounds on one column, or an
    /// `IN`-list none of whose candidates share the probed expression's
    /// family. Executes fine; selects nothing.
    AlwaysFalsePredicate,
    /// A numeric aggregate (`SUM`/`AVG`/`MIN`/`MAX`) over an expression
    /// statically typed non-numeric. The executor silently skips values
    /// that do not coerce to f64, so the aggregate is NULL/0-ish rather
    /// than an error — almost certainly not what was meant.
    AggregateNonNumeric,
    /// A fragment's [`SiteId`](midas_cloud::SiteId) is out of range for
    /// the federation. Runtime: an index **panic** at dispatch — the one
    /// defect class with no typed runtime error to fall back on.
    UnknownSite,
    /// A fragment names an instance type its site's machine catalog does
    /// not offer. Runtime: [`EngineError::Unavailable`] during wave
    /// resolution.
    UnknownInstance,
}

impl fmt::Display for DiagnosticKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DiagnosticKind::UnknownTable => "unknown-table",
            DiagnosticKind::MalformedFragmentRef => "malformed-fragment-ref",
            DiagnosticKind::ForwardFragmentRef => "forward-fragment-ref",
            DiagnosticKind::ColumnOutOfBounds => "column-out-of-bounds",
            DiagnosticKind::TypeMismatch => "type-mismatch",
            DiagnosticKind::JoinKeyArity => "join-key-arity",
            DiagnosticKind::JoinKeyTypeMismatch => "join-key-type-mismatch",
            DiagnosticKind::DivisionByConstantZero => "division-by-constant-zero",
            DiagnosticKind::AlwaysFalsePredicate => "always-false-predicate",
            DiagnosticKind::AggregateNonNumeric => "aggregate-non-numeric",
            DiagnosticKind::UnknownSite => "unknown-site",
            DiagnosticKind::UnknownInstance => "unknown-instance",
        };
        f.write_str(name)
    }
}

/// One structured finding: where in the plan, how bad, what kind, and a
/// human-readable account of what the executor would have done.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanDiagnostic {
    /// [`Severity::Error`] invalidates the plan; warnings ride along.
    pub severity: Severity,
    /// The defect class (documents the predicted runtime error).
    pub kind: DiagnosticKind,
    /// Node path from the analysis root, e.g.
    /// `fragment[2]/Filter.predicate` or `Aggregate/HashJoin.left/Scan`.
    pub path: String,
    /// Full description with the offending names/indices/types.
    pub message: String,
}

impl fmt::Display for PlanDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{sev}[{}] at {}: {}", self.kind, self.path, self.message)
    }
}

/// A statically inferred output schema: one `(name, type)` per column.
/// `None` types mean "provably all-NULL" (a bare NULL literal, arithmetic
/// over one) — they unify with every type, exactly as NULL propagation
/// short-circuits every runtime type check.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanSchema {
    /// Output columns in order.
    pub columns: Vec<(String, Option<DataType>)>,
}

impl PlanSchema {
    /// Number of output columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    fn ty(&self, i: usize) -> Option<DataType> {
        self.columns.get(i).and_then(|(_, t)| *t)
    }

    /// Schema of a concrete table: every column has a definite type.
    pub fn of_table(table: &crate::data::Table) -> PlanSchema {
        PlanSchema {
            columns: table
                .schema()
                .into_iter()
                .map(|(name, ty)| (name.to_string(), Some(ty)))
                .collect(),
        }
    }
}

/// The name → schema environment plans are analyzed against. Built from a
/// [`Catalog`], a [`CatalogVersion`] (without pinning — chunked tables
/// carry their schema on every chunk), or by hand; fragment analyses
/// extend it with `@frag<N>` entries as outputs are inferred.
#[derive(Debug, Clone, Default)]
pub struct SchemaCatalog {
    /// `None` marks a name that is known to exist but whose schema could
    /// not be derived (a fragment whose own analysis failed): scans of it
    /// resolve, and downstream column checks are suppressed instead of
    /// cascading bogus diagnostics.
    tables: HashMap<String, Option<PlanSchema>>,
}

impl SchemaCatalog {
    /// An empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schemas of every table in an execution catalog.
    pub fn from_catalog(catalog: &Catalog) -> Self {
        let mut out = Self::new();
        for (name, table) in catalog.iter() {
            out.tables
                .insert(name.to_string(), Some(PlanSchema::of_table(table)));
        }
        out
    }

    /// Schemas of every table in a versioned catalog snapshot. Reads the
    /// first chunk's schema — **no pin, no compaction** — so admission-time
    /// validation never pays the snapshot cost.
    pub fn from_version(version: &CatalogVersion) -> Self {
        let mut out = Self::new();
        for name in version.names() {
            let schema = version
                .table(name)
                .and_then(|t| t.chunks().first().map(|c| PlanSchema::of_table(c)));
            out.tables.insert(name.to_string(), schema);
        }
        out
    }

    /// Registers (or replaces) a table's schema.
    pub fn insert(&mut self, name: impl Into<String>, schema: PlanSchema) {
        self.tables.insert(name.into(), Some(schema));
    }

    /// Registers a name whose schema is unknown: scans of it resolve but
    /// produce no column information.
    pub fn insert_opaque(&mut self, name: impl Into<String>) {
        self.tables.insert(name.into(), None);
    }

    /// The schema registered under `name`, if any (`Some(None)` = known
    /// but opaque).
    pub fn get(&self, name: &str) -> Option<Option<&PlanSchema>> {
        self.tables.get(name).map(Option::as_ref)
    }
}

/// What analyzing one plan produced.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanAnalysis {
    /// Everything found, in discovery (pre-order walk) order.
    pub diagnostics: Vec<PlanDiagnostic>,
    /// The plan's inferred output schema; `None` when an error made it
    /// underivable.
    pub schema: Option<PlanSchema>,
}

impl PlanAnalysis {
    /// True when no [`Severity::Error`] diagnostic was found. Warnings do
    /// not invalidate a plan.
    pub fn is_valid(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The error-severity diagnostics only.
    pub fn errors(&self) -> impl Iterator<Item = &PlanDiagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }
}

/// The result of analyzing a whole [`FederatedQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct FederatedAnalysis {
    /// Per-fragment plan analyses, in fragment order.
    pub fragments: Vec<PlanAnalysis>,
    /// DAG-level and placement-level diagnostics (site bounds, instance
    /// resolution) that belong to fragments rather than plan nodes.
    pub diagnostics: Vec<PlanDiagnostic>,
}

impl FederatedAnalysis {
    /// True when neither the DAG checks nor any fragment analysis found an
    /// error.
    pub fn is_valid(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
            && self.fragments.iter().all(PlanAnalysis::is_valid)
    }

    /// Every diagnostic — DAG-level first, then per fragment in order.
    pub fn all_diagnostics(&self) -> Vec<PlanDiagnostic> {
        let mut out = self.diagnostics.clone();
        for f in &self.fragments {
            out.extend(f.diagnostics.iter().cloned());
        }
        out
    }

    /// Every error-severity diagnostic, in [`FederatedAnalysis::all_diagnostics`] order.
    pub fn errors(&self) -> Vec<PlanDiagnostic> {
        self.all_diagnostics()
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }
}

/// Analyzes one plan against a schema environment.
pub fn analyze_plan(plan: &PhysicalPlan, schemas: &SchemaCatalog) -> PlanAnalysis {
    analyze_plan_at(plan, schemas, "")
}

/// [`analyze_plan`] with an explicit root path prefix (used by the
/// fragment-pipeline analyses so diagnostics say which fragment they are
/// from).
pub fn analyze_plan_at(plan: &PhysicalPlan, schemas: &SchemaCatalog, root: &str) -> PlanAnalysis {
    let mut cx = Ctx {
        schemas,
        diagnostics: Vec::new(),
    };
    let schema = cx.infer(plan, root);
    PlanAnalysis {
        diagnostics: cx.diagnostics,
        schema,
    }
}

/// Analyzes an ordered fragment pipeline: plan `i` may scan `@frag<j>` for
/// `j < i` (the convention of [`crate::exec::run_federated`] and
/// `TwoTableQuery` — left prepare `@frag0`, right prepare `@frag1`,
/// combine last). Each plan's inferred output schema is registered before
/// the next plan is analyzed; forward and dangling `@frag` references are
/// rejected as [`DiagnosticKind::ForwardFragmentRef`].
pub fn analyze_fragment_plans(
    plans: &[&PhysicalPlan],
    schemas: &SchemaCatalog,
) -> Vec<PlanAnalysis> {
    let mut env = schemas.clone();
    let mut out = Vec::with_capacity(plans.len());
    for (i, plan) in plans.iter().enumerate() {
        let analysis = analyze_plan_at(plan, &env, &format!("fragment[{i}]"));
        match &analysis.schema {
            Some(schema) => env.insert(format!("@frag{i}"), schema.clone()),
            None => env.insert_opaque(format!("@frag{i}")),
        }
        out.push(analysis);
    }
    out
}

/// Analyzes a full federated query against a federation: the fragment
/// pipeline checks of [`analyze_fragment_plans`] plus, per fragment,
/// site-id bounds (an out-of-range site would panic at dispatch) and
/// instance-name resolution against the site's machine catalog.
pub fn analyze_federated(
    query: &crate::exec::FederatedQuery,
    schemas: &SchemaCatalog,
    federation: &Federation,
) -> FederatedAnalysis {
    let mut diagnostics = Vec::new();
    for (i, fragment) in query.fragments.iter().enumerate() {
        if fragment.site.0 >= federation.n_sites() {
            diagnostics.push(PlanDiagnostic {
                severity: Severity::Error,
                kind: DiagnosticKind::UnknownSite,
                path: format!("fragment[{i}].site"),
                message: format!(
                    "site {} is out of range for a federation of {} sites \
                     (dispatch would panic)",
                    fragment.site.0,
                    federation.n_sites()
                ),
            });
        } else if federation
            .site(fragment.site)
            .catalog
            .by_name(&fragment.instance)
            .is_none()
        {
            diagnostics.push(PlanDiagnostic {
                severity: Severity::Error,
                kind: DiagnosticKind::UnknownInstance,
                path: format!("fragment[{i}].instance"),
                message: format!(
                    "instance {:?} is not in site {:?}'s machine catalog",
                    fragment.instance,
                    federation.site(fragment.site).name
                ),
            });
        }
    }
    let plans: Vec<&PhysicalPlan> = query.fragments.iter().map(|f| &f.plan).collect();
    FederatedAnalysis {
        fragments: analyze_fragment_plans(&plans, schemas),
        diagnostics,
    }
}

/// The three type families the evaluator distinguishes. `Int64`,
/// `Float64` and `Date` all compare and combine through `as_f64`; `Utf8`
/// and `Bool` only meet their own kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    Numeric,
    Text,
    Boolean,
}

fn family(ty: DataType) -> Family {
    match ty {
        DataType::Int64 | DataType::Float64 | DataType::Date => Family::Numeric,
        DataType::Utf8 => Family::Text,
        DataType::Bool => Family::Boolean,
    }
}

fn ty_name(ty: Option<DataType>) -> &'static str {
    match ty {
        None => "NULL",
        Some(DataType::Int64) => "Int64",
        Some(DataType::Float64) => "Float64",
        Some(DataType::Utf8) => "Utf8",
        Some(DataType::Date) => "Date",
        Some(DataType::Bool) => "Bool",
    }
}

/// One analysis pass's mutable state.
struct Ctx<'a> {
    schemas: &'a SchemaCatalog,
    diagnostics: Vec<PlanDiagnostic>,
}

impl Ctx<'_> {
    fn push(&mut self, severity: Severity, kind: DiagnosticKind, path: &str, message: String) {
        self.diagnostics.push(PlanDiagnostic {
            severity,
            kind,
            path: path.to_string(),
            message,
        });
    }

    /// Infers `plan`'s output schema, recording diagnostics along the way.
    /// `None` means "underivable here" — the scan failed to resolve or the
    /// input was already underivable; column checks against a `None`
    /// schema are suppressed rather than cascaded.
    fn infer(&mut self, plan: &PhysicalPlan, path: &str) -> Option<PlanSchema> {
        let seg = |node: &str| -> String {
            if path.is_empty() {
                node.to_string()
            } else {
                format!("{path}/{node}")
            }
        };
        match plan {
            PhysicalPlan::Scan { table } => self.resolve_scan(table, &seg("Scan")),
            PhysicalPlan::PrunedScan { table, predicate } => {
                let p = seg("PrunedScan");
                let schema = self.resolve_scan(table, &p);
                self.check_predicate(predicate, schema.as_ref(), &format!("{p}.predicate"));
                schema
            }
            PhysicalPlan::Filter { input, predicate } => {
                let p = seg("Filter");
                let schema = self.infer(input, &p);
                self.check_predicate(predicate, schema.as_ref(), &format!("{p}.predicate"));
                schema
            }
            PhysicalPlan::Project { input, exprs } => {
                let p = seg("Project");
                let input_schema = self.infer(input, &p);
                let mut columns = Vec::with_capacity(exprs.len());
                for (i, (name, expr)) in exprs.iter().enumerate() {
                    let ty = self.type_expr(
                        expr,
                        input_schema.as_ref(),
                        &format!("{p}.exprs[{i}]"),
                    );
                    columns.push((name.clone(), ty));
                }
                // A project's output is always derivable: its width is the
                // expression list, and unresolvable expression types are
                // individually None.
                Some(PlanSchema { columns })
            }
            PhysicalPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                join_type: _,
            } => {
                let p = seg("HashJoin");
                let ls = self.infer(left, &format!("{p}.left"));
                let rs = self.infer(right, &format!("{p}.right"));
                if left_keys.len() != right_keys.len() {
                    self.push(
                        Severity::Error,
                        DiagnosticKind::JoinKeyArity,
                        &p,
                        format!(
                            "{} left keys vs {} right keys — the join rejects \
                             mismatched arity before touching data",
                            left_keys.len(),
                            right_keys.len()
                        ),
                    );
                }
                self.check_keys(left_keys, ls.as_ref(), &format!("{p}.left_keys"));
                self.check_keys(right_keys, rs.as_ref(), &format!("{p}.right_keys"));
                // Family-compatible key pairs: incompatible ones never
                // match, so the join silently degenerates.
                if let (Some(ls), Some(rs)) = (&ls, &rs) {
                    for (slot, (&lk, &rk)) in
                        left_keys.iter().zip(right_keys.iter()).enumerate()
                    {
                        if let (Some(lt), Some(rt)) = (ls.ty(lk), rs.ty(rk)) {
                            if family(lt) != family(rt) {
                                self.push(
                                    Severity::Warning,
                                    DiagnosticKind::JoinKeyTypeMismatch,
                                    &p,
                                    format!(
                                        "key pair {slot} joins {} against {} — \
                                         different families never compare equal, \
                                         so the join matches nothing",
                                        ty_name(Some(lt)),
                                        ty_name(Some(rt))
                                    ),
                                );
                            }
                        }
                    }
                }
                // Output: all left columns then all right columns.
                match (ls, rs) {
                    (Some(mut ls), Some(rs)) => {
                        ls.columns.extend(rs.columns);
                        Some(ls)
                    }
                    _ => None,
                }
            }
            PhysicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let p = seg("Aggregate");
                let input_schema = self.infer(input, &p);
                self.check_keys(group_by, input_schema.as_ref(), &format!("{p}.group_by"));
                let mut columns = Vec::with_capacity(group_by.len() + aggs.len());
                for &g in group_by {
                    match &input_schema {
                        Some(s) if g < s.width() => columns.push(s.columns[g].clone()),
                        _ => columns.push((format!("group{g}"), None)),
                    }
                }
                for (i, (name, agg)) in aggs.iter().enumerate() {
                    let apath = format!("{p}.aggs[{i}]");
                    let out_ty = self.check_agg(agg, input_schema.as_ref(), &apath);
                    columns.push((name.clone(), out_ty));
                }
                Some(PlanSchema { columns })
            }
            PhysicalPlan::Sort { input, by } => {
                let p = seg("Sort");
                let schema = self.infer(input, &p);
                let keys: Vec<usize> = by.iter().map(|&(c, _)| c).collect();
                self.check_keys(&keys, schema.as_ref(), &format!("{p}.by"));
                schema
            }
            PhysicalPlan::Limit { input, .. } => self.infer(input, &seg("Limit")),
        }
    }

    /// Resolves a scan name: catalog table, fragment output, forward /
    /// dangling / malformed fragment reference, or unknown table.
    fn resolve_scan(&mut self, table: &str, path: &str) -> Option<PlanSchema> {
        match self.schemas.get(table) {
            Some(Some(schema)) => Some(schema.clone()),
            Some(None) => None, // known but opaque: suppress column checks
            None => {
                if let Some(rest) = table.strip_prefix("@frag") {
                    if rest.parse::<usize>().is_ok() {
                        self.push(
                            Severity::Error,
                            DiagnosticKind::ForwardFragmentRef,
                            path,
                            format!(
                                "{table:?} refers to a fragment that is not \
                                 produced before this plan — fragments may only \
                                 read earlier fragments (the executor rejects \
                                 this as Unavailable)"
                            ),
                        );
                    } else {
                        self.push(
                            Severity::Error,
                            DiagnosticKind::MalformedFragmentRef,
                            path,
                            format!(
                                "{table:?} looks like a fragment reference but \
                                 does not parse as @frag<N>; the executor would \
                                 neither wire it as a dependency nor find it in \
                                 the catalog (UnknownTable), and cache \
                                 fingerprints would silently exclude it"
                            ),
                        );
                    }
                } else {
                    self.push(
                        Severity::Error,
                        DiagnosticKind::UnknownTable,
                        path,
                        format!("table {table:?} is not in the catalog"),
                    );
                }
                None
            }
        }
    }

    /// Bounds-checks a key/index list against a schema (suppressed when
    /// the schema is underivable).
    fn check_keys(&mut self, keys: &[usize], schema: Option<&PlanSchema>, path: &str) {
        let Some(schema) = schema else { return };
        for (slot, &k) in keys.iter().enumerate() {
            if k >= schema.width() {
                self.push(
                    Severity::Error,
                    DiagnosticKind::ColumnOutOfBounds,
                    path,
                    format!(
                        "key {slot} references column {k} of a {}-column input",
                        schema.width()
                    ),
                );
            }
        }
    }

    /// Types a predicate position: the expression itself plus the
    /// boolean-output requirement and the always-false screens.
    fn check_predicate(&mut self, predicate: &Expr, schema: Option<&PlanSchema>, path: &str) {
        let ty = self.type_expr(predicate, schema, path);
        if let Some(t) = ty {
            if family(t) != Family::Boolean {
                self.push(
                    Severity::Error,
                    DiagnosticKind::TypeMismatch,
                    path,
                    format!(
                        "predicate produces {} — the filter requires a boolean \
                         (or NULL) and raises TypeMismatch otherwise",
                        ty_name(ty)
                    ),
                );
            }
        }
        self.check_always_false(predicate, schema, path);
    }

    /// Types one aggregate expression; returns the aggregate's output
    /// column type.
    fn check_agg(
        &mut self,
        agg: &AggExpr,
        schema: Option<&PlanSchema>,
        path: &str,
    ) -> Option<DataType> {
        match agg {
            AggExpr::Count => Some(DataType::Int64),
            AggExpr::CountIf(pred) => {
                let ty = self.type_expr(pred, schema, path);
                if ty.is_some_and(|t| family(t) != Family::Boolean) {
                    self.push(
                        Severity::Warning,
                        DiagnosticKind::AlwaysFalsePredicate,
                        path,
                        format!(
                            "COUNT-IF predicate produces {} — non-boolean \
                             predicates never count",
                            ty_name(ty)
                        ),
                    );
                }
                Some(DataType::Int64)
            }
            AggExpr::SumIf { value, predicate } => {
                let vt = self.type_expr(value, schema, path);
                if vt.is_some_and(|t| family(t) != Family::Numeric) {
                    self.push(
                        Severity::Warning,
                        DiagnosticKind::AggregateNonNumeric,
                        path,
                        format!(
                            "SUM-IF over {} — non-numeric values are silently \
                             skipped",
                            ty_name(vt)
                        ),
                    );
                }
                let pt = self.type_expr(predicate, schema, path);
                if pt.is_some_and(|t| family(t) != Family::Boolean) {
                    self.push(
                        Severity::Warning,
                        DiagnosticKind::AlwaysFalsePredicate,
                        path,
                        format!(
                            "SUM-IF predicate produces {} — non-boolean \
                             predicates never fire",
                            ty_name(pt)
                        ),
                    );
                }
                Some(DataType::Float64)
            }
            AggExpr::Sum(e) | AggExpr::Avg(e) | AggExpr::Min(e) | AggExpr::Max(e) => {
                let ty = self.type_expr(e, schema, path);
                if ty.is_some_and(|t| family(t) != Family::Numeric) {
                    self.push(
                        Severity::Warning,
                        DiagnosticKind::AggregateNonNumeric,
                        path,
                        format!(
                            "numeric aggregate over {} — values that do not \
                             coerce to f64 are silently skipped",
                            ty_name(ty)
                        ),
                    );
                }
                Some(DataType::Float64)
            }
        }
    }

    /// Infers an expression's static type against `schema`, recording type
    /// errors. `None` = provably NULL (or unknowable after an error);
    /// NULL unifies with everything, mirroring the evaluator's NULL
    /// short-circuits.
    fn type_expr(
        &mut self,
        expr: &Expr,
        schema: Option<&PlanSchema>,
        path: &str,
    ) -> Option<DataType> {
        match expr {
            Expr::Col(i) => match schema {
                None => None,
                Some(s) => {
                    if *i >= s.width() {
                        self.push(
                            Severity::Error,
                            DiagnosticKind::ColumnOutOfBounds,
                            path,
                            format!(
                                "column {i} referenced in a {}-column input",
                                s.width()
                            ),
                        );
                        None
                    } else {
                        s.ty(*i)
                    }
                }
            },
            Expr::Lit(v) => v.data_type(),
            Expr::Bin { op, left, right } => {
                let lt = self.type_expr(left, schema, path);
                let rt = self.type_expr(right, schema, path);
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                        for (side, ty) in [("left", lt), ("right", rt)] {
                            if ty.is_some_and(|t| family(t) != Family::Numeric) {
                                self.push(
                                    Severity::Error,
                                    DiagnosticKind::TypeMismatch,
                                    path,
                                    format!(
                                        "arithmetic {op:?} {side} operand is {} — \
                                         only numeric families combine",
                                        ty_name(ty)
                                    ),
                                );
                            }
                        }
                        if *op == BinOp::Div {
                            if let Expr::Lit(v) = right.as_ref() {
                                if v.as_f64() == Some(0.0) {
                                    self.push(
                                        Severity::Error,
                                        DiagnosticKind::DivisionByConstantZero,
                                        path,
                                        "division by a literal zero".to_string(),
                                    );
                                }
                            }
                        }
                        match (lt, rt) {
                            (None, _) | (_, None) => None, // NULL operand: always NULL
                            (Some(DataType::Int64), Some(DataType::Int64))
                                if *op != BinOp::Div =>
                            {
                                Some(DataType::Int64)
                            }
                            _ => Some(DataType::Float64),
                        }
                    }
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        if let (Some(l), Some(r)) = (lt, rt) {
                            if family(l) != family(r) {
                                self.push(
                                    Severity::Error,
                                    DiagnosticKind::TypeMismatch,
                                    path,
                                    format!(
                                        "{op:?} compares {} against {} — mixed \
                                         families raise TypeMismatch on the first \
                                         row where both sides are non-NULL",
                                        ty_name(lt),
                                        ty_name(rt)
                                    ),
                                );
                            }
                        }
                        Some(DataType::Bool)
                    }
                    BinOp::And | BinOp::Or => {
                        for (side, ty) in [("left", lt), ("right", rt)] {
                            if ty.is_some_and(|t| family(t) != Family::Boolean) {
                                self.push(
                                    Severity::Error,
                                    DiagnosticKind::TypeMismatch,
                                    path,
                                    format!(
                                        "{op:?} {side} operand is {} — boolean \
                                         logic requires Bool or NULL",
                                        ty_name(ty)
                                    ),
                                );
                            }
                        }
                        Some(DataType::Bool)
                    }
                }
            }
            Expr::Not(e) => {
                let ty = self.type_expr(e, schema, path);
                if ty.is_some_and(|t| family(t) != Family::Boolean) {
                    self.push(
                        Severity::Error,
                        DiagnosticKind::TypeMismatch,
                        path,
                        format!("NOT over {} — requires Bool or NULL", ty_name(ty)),
                    );
                }
                Some(DataType::Bool)
            }
            Expr::InList { expr, list } => {
                let ty = self.type_expr(expr, schema, path);
                if let Some(t) = ty {
                    let has_candidate = list
                        .iter()
                        .any(|v| v.data_type().is_some_and(|c| family(c) == family(t)));
                    if !list.is_empty() && !has_candidate {
                        self.push(
                            Severity::Warning,
                            DiagnosticKind::AlwaysFalsePredicate,
                            path,
                            format!(
                                "IN-list probes {} but no candidate shares its \
                                 family — membership is always false",
                                ty_name(ty)
                            ),
                        );
                    }
                }
                Some(DataType::Bool)
            }
            Expr::IsNull(e) => {
                self.type_expr(e, schema, path);
                Some(DataType::Bool)
            }
            Expr::Contains { expr, .. } => {
                let ty = self.type_expr(expr, schema, path);
                if ty.is_some_and(|t| family(t) != Family::Text) {
                    self.push(
                        Severity::Error,
                        DiagnosticKind::TypeMismatch,
                        path,
                        format!(
                            "CONTAINS probes {} — requires Utf8 or NULL",
                            ty_name(ty)
                        ),
                    );
                }
                Some(DataType::Bool)
            }
        }
    }

    /// Screens a predicate for statically provable emptiness: false
    /// literal results and contradictory single-column range conjunctions.
    fn check_always_false(&mut self, predicate: &Expr, schema: Option<&PlanSchema>, path: &str) {
        // Literal-literal constant folding at the root.
        if let Some(false) = const_bool(predicate) {
            self.push(
                Severity::Warning,
                DiagnosticKind::AlwaysFalsePredicate,
                path,
                "predicate constant-folds to false".to_string(),
            );
            return;
        }
        // Contradictory numeric bounds on one column across a conjunction:
        // e.g. `col0 > 5 AND col0 < 3`.
        let Some(schema) = schema else { return };
        let mut bounds: HashMap<usize, (f64, f64)> = HashMap::new(); // col -> (lo, hi)
        let mut conjuncts = Vec::new();
        collect_conjuncts(predicate, &mut conjuncts);
        for c in conjuncts {
            let Some((col, op, lit)) = column_vs_literal(c) else {
                continue;
            };
            if schema.ty(col).map(family) != Some(Family::Numeric) {
                continue;
            }
            let Some(x) = lit.as_f64() else { continue };
            let (lo, hi) = bounds
                .entry(col)
                .or_insert((f64::NEG_INFINITY, f64::INFINITY));
            match op {
                BinOp::Eq => {
                    *lo = lo.max(x);
                    *hi = hi.min(x);
                }
                BinOp::Gt | BinOp::Ge => *lo = lo.max(x),
                BinOp::Lt | BinOp::Le => *hi = hi.min(x),
                _ => {}
            }
            if lo > hi {
                self.push(
                    Severity::Warning,
                    DiagnosticKind::AlwaysFalsePredicate,
                    path,
                    format!(
                        "conjunction bounds column {col} to an empty interval \
                         ({lo} > {hi}) — the predicate never selects a row"
                    ),
                );
                return;
            }
        }
    }
}

/// Evaluates a literal-only boolean expression, `None` when not constant.
/// Mirrors the evaluator: comparisons across families are errors (reported
/// elsewhere), so only same-family literal comparisons fold here.
fn const_bool(e: &Expr) -> Option<bool> {
    match e {
        Expr::Lit(crate::data::Value::Bool(b)) => Some(*b),
        Expr::Bin { op, left, right } => {
            let (Expr::Lit(l), Expr::Lit(r)) = (left.as_ref(), right.as_ref()) else {
                match op {
                    BinOp::And => {
                        let lv = const_bool(left);
                        let rv = const_bool(right);
                        return match (lv, rv) {
                            (Some(false), _) | (_, Some(false)) => Some(false),
                            (Some(true), Some(true)) => Some(true),
                            _ => None,
                        };
                    }
                    BinOp::Or => {
                        let lv = const_bool(left);
                        let rv = const_bool(right);
                        return match (lv, rv) {
                            (Some(true), _) | (_, Some(true)) => Some(true),
                            (Some(false), Some(false)) => Some(false),
                            _ => None,
                        };
                    }
                    _ => return None,
                }
            };
            let (lt, rt) = (l.data_type(), r.data_type());
            let (lt, rt) = (lt?, rt?);
            if family(lt) != family(rt) {
                return None; // a type error, not a foldable comparison
            }
            let ord = match (l.as_f64(), r.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y)?,
                _ => match (l, r) {
                    (crate::data::Value::Utf8(x), crate::data::Value::Utf8(y)) => x.cmp(y),
                    (crate::data::Value::Bool(x), crate::data::Value::Bool(y)) => x.cmp(y),
                    _ => return None,
                },
            };
            use std::cmp::Ordering;
            match op {
                BinOp::Eq => Some(ord == Ordering::Equal),
                BinOp::Ne => Some(ord != Ordering::Equal),
                BinOp::Lt => Some(ord == Ordering::Less),
                BinOp::Le => Some(ord != Ordering::Greater),
                BinOp::Gt => Some(ord == Ordering::Greater),
                BinOp::Ge => Some(ord != Ordering::Less),
                _ => None,
            }
        }
        Expr::Not(inner) => const_bool(inner).map(|b| !b),
        _ => None,
    }
}

/// Flattens an `AND` tree into its conjuncts.
fn collect_conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    match e {
        Expr::Bin {
            op: BinOp::And,
            left,
            right,
        } => {
            collect_conjuncts(left, out);
            collect_conjuncts(right, out);
        }
        other => out.push(other),
    }
}

/// Matches `Col(i) <op> Lit(v)` or `Lit(v) <op> Col(i)` (op flipped), the
/// shape the range-contradiction screen understands.
fn column_vs_literal(e: &Expr) -> Option<(usize, BinOp, &crate::data::Value)> {
    let Expr::Bin { op, left, right } = e else {
        return None;
    };
    match (left.as_ref(), right.as_ref()) {
        (Expr::Col(i), Expr::Lit(v)) => Some((*i, *op, v)),
        (Expr::Lit(v), Expr::Col(i)) => {
            let flipped = match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                other => *other,
            };
            Some((*i, flipped, v))
        }
        _ => None,
    }
}

/// Convenience: the [`EngineError`] kinds the analyzer's soundness
/// guarantee covers. True for errors an analyzer-accepted plan can never
/// produce.
pub fn is_schema_error(e: &EngineError) -> bool {
    matches!(
        e,
        EngineError::UnknownColumn(_)
            | EngineError::UnknownTable(_)
            | EngineError::TypeMismatch { .. }
            | EngineError::ColumnIndex { .. }
            | EngineError::RaggedTable { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Column, ColumnData, Table, Value};

    fn demo_catalog() -> SchemaCatalog {
        let mut catalog = Catalog::new();
        catalog.insert(
            "t".to_string(),
            Table::new(
                "t",
                vec![
                    Column::new("k", ColumnData::Int64(vec![1, 2])),
                    Column::new(
                        "s",
                        ColumnData::Utf8(vec!["a".to_string(), "b".to_string()]),
                    ),
                ],
            )
            .expect("aligned"),
        );
        SchemaCatalog::from_catalog(&catalog)
    }

    #[test]
    fn scan_schema_matches_table() {
        let schemas = demo_catalog();
        let plan = PhysicalPlan::Scan {
            table: "t".to_string(),
        };
        let analysis = analyze_plan(&plan, &schemas);
        assert!(analysis.is_valid());
        let schema = analysis.schema.expect("derivable");
        assert_eq!(
            schema.columns,
            vec![
                ("k".to_string(), Some(DataType::Int64)),
                ("s".to_string(), Some(DataType::Utf8)),
            ]
        );
    }

    #[test]
    fn ghost_table_is_rejected_with_path() {
        let schemas = demo_catalog();
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Scan {
                table: "ghost".to_string(),
            }),
            predicate: Expr::col(0).eq(Expr::int(1)),
        };
        let analysis = analyze_plan(&plan, &schemas);
        assert!(!analysis.is_valid());
        let err = analysis.errors().next().expect("one error");
        assert_eq!(err.kind, DiagnosticKind::UnknownTable);
        assert_eq!(err.path, "Filter/Scan");
        // The scan failed, so downstream column checks are suppressed —
        // exactly one diagnostic, no cascade.
        assert_eq!(analysis.diagnostics.len(), 1);
    }

    #[test]
    fn fragment_pipeline_registers_outputs_in_order() {
        let schemas = demo_catalog();
        let prepare = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Scan {
                table: "t".to_string(),
            }),
            exprs: vec![("kk".to_string(), Expr::col(0))],
        };
        let combine = PhysicalPlan::Scan {
            table: "@frag0".to_string(),
        };
        let analyses = analyze_fragment_plans(&[&prepare, &combine], &schemas);
        assert!(analyses.iter().all(PlanAnalysis::is_valid));
        assert_eq!(
            analyses[1].schema.as_ref().expect("derivable").columns,
            vec![("kk".to_string(), Some(DataType::Int64))]
        );
    }

    #[test]
    fn forward_reference_is_rejected() {
        let schemas = demo_catalog();
        let head = PhysicalPlan::Scan {
            table: "@frag1".to_string(),
        };
        let tail = PhysicalPlan::Scan {
            table: "t".to_string(),
        };
        let analyses = analyze_fragment_plans(&[&head, &tail], &schemas);
        assert_eq!(
            analyses[0].diagnostics[0].kind,
            DiagnosticKind::ForwardFragmentRef
        );
        assert!(analyses[1].is_valid());
    }

    #[test]
    fn always_false_interval_is_a_warning_not_an_error() {
        let schemas = demo_catalog();
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Scan {
                table: "t".to_string(),
            }),
            predicate: Expr::col(0)
                .gt(Expr::int(5))
                .and(Expr::col(0).lt(Expr::int(3))),
        };
        let analysis = analyze_plan(&plan, &schemas);
        assert!(analysis.is_valid(), "warnings do not invalidate");
        assert_eq!(
            analysis.diagnostics[0].kind,
            DiagnosticKind::AlwaysFalsePredicate
        );
    }

    #[test]
    fn null_literal_unifies_with_everything() {
        let schemas = demo_catalog();
        // s = NULL: comparing Utf8 against a NULL literal is fine (always
        // NULL at runtime, never a type error) — but it must still be a
        // boolean predicate.
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Scan {
                table: "t".to_string(),
            }),
            predicate: Expr::col(1).eq(Expr::Lit(Value::Null)),
        };
        assert!(analyze_plan(&plan, &schemas).is_valid());
    }

    #[test]
    fn division_by_constant_zero_is_static() {
        let schemas = demo_catalog();
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Scan {
                table: "t".to_string(),
            }),
            exprs: vec![(
                "d".to_string(),
                Expr::col(0).div(Expr::int(0)),
            )],
        };
        let analysis = analyze_plan(&plan, &schemas);
        assert!(!analysis.is_valid());
        assert_eq!(
            analysis.errors().next().expect("err").kind,
            DiagnosticKind::DivisionByConstantZero
        );
    }
}
