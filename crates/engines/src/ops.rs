//! Physical operators and the plan executor.
//!
//! Plans are trees of materializing operators: each node consumes whole input
//! tables and produces an output table. Besides the result, execution yields
//! a [`WorkProfile`] — per-operator tuple/byte counts — which the simulator
//! in [`crate::exec`] converts into engine-dependent time and money.

use crate::data::{Column, ColumnData, DataType, Table, Value};
use crate::error::EngineError;
use crate::expr::Expr;
use std::collections::HashMap;

/// Join flavours needed by the TPC-H two-table queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner equi-join.
    Inner,
    /// Left-outer equi-join (Q13's `customer LEFT OUTER JOIN orders`).
    LeftOuter,
}

/// Aggregate expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum AggExpr {
    /// `COUNT(*)`.
    Count,
    /// `SUM(expr)`.
    Sum(Expr),
    /// `AVG(expr)`.
    Avg(Expr),
    /// `MIN(expr)` (numeric).
    Min(Expr),
    /// `MAX(expr)` (numeric).
    Max(Expr),
    /// `SUM(CASE WHEN pred THEN 1 ELSE 0 END)` — Q12's priority counters.
    CountIf(Expr),
    /// `SUM(CASE WHEN pred THEN value ELSE 0 END)` — Q14's promo revenue.
    SumIf {
        /// Value summed when the predicate holds.
        value: Expr,
        /// The predicate.
        predicate: Expr,
    },
}

/// A physical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Leaf: read a named base table.
    Scan {
        /// Base-table name resolved against the execution catalog.
        table: String,
    },
    /// Leaf: read a base table with a predicate pushed into the storage
    /// layer (index range scan / partition pruning). Semantically identical
    /// to `Filter(Scan)`, but the work profile charges only the *selected*
    /// rows — storage-side selection never materializes the rejected ones.
    PrunedScan {
        /// Base-table name.
        table: String,
        /// Storage-evaluable predicate.
        predicate: Expr,
    },
    /// Row selection.
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Selection predicate.
        predicate: Expr,
    },
    /// Column computation / pruning.
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Output columns as (name, expression).
        exprs: Vec<(String, Expr)>,
    },
    /// Hash equi-join on single key columns.
    HashJoin {
        /// Build side (left).
        left: Box<PhysicalPlan>,
        /// Probe side (right).
        right: Box<PhysicalPlan>,
        /// Key column positions in the left input.
        left_keys: Vec<usize>,
        /// Key column positions in the right input.
        right_keys: Vec<usize>,
        /// Inner or left-outer.
        join_type: JoinType,
    },
    /// Hash aggregation.
    Aggregate {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Group-by key column positions (empty = one global group).
        group_by: Vec<usize>,
        /// Aggregates as (output name, expression).
        aggs: Vec<(String, AggExpr)>,
    },
    /// Sort by column positions; `true` = descending.
    Sort {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Sort keys as (column, descending).
        by: Vec<(usize, bool)>,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Row cap.
        n: usize,
    },
}

/// What kind of work an operator performed (for the cost model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Table scan.
    Scan,
    /// Filter.
    Filter,
    /// Projection.
    Project,
    /// Hash join.
    Join,
    /// Aggregation.
    Aggregate,
    /// Sort.
    Sort,
    /// Limit.
    Limit,
}

/// Tuple/byte accounting for one executed operator.
#[derive(Debug, Clone, PartialEq)]
pub struct OpWork {
    /// Operator kind.
    pub kind: OpKind,
    /// Input tuples (both sides summed for joins).
    pub rows_in: u64,
    /// Output tuples.
    pub rows_out: u64,
    /// Estimated output bytes.
    pub bytes_out: u64,
}

/// Work accounting for a whole plan execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkProfile {
    /// Per-operator entries in execution (post-order) sequence.
    pub ops: Vec<OpWork>,
}

impl WorkProfile {
    /// Total tuples read by scans.
    pub fn scanned_rows(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.kind == OpKind::Scan)
            .map(|o| o.rows_in)
            .sum()
    }

    /// Total bytes read by scans.
    pub fn scanned_bytes(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.kind == OpKind::Scan)
            .map(|o| o.bytes_out)
            .sum()
    }

    /// Total tuples entering joins.
    pub fn join_input_rows(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.kind == OpKind::Join)
            .map(|o| o.rows_in)
            .sum()
    }

    /// Total tuples entering aggregations.
    pub fn agg_input_rows(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.kind == OpKind::Aggregate)
            .map(|o| o.rows_in)
            .sum()
    }

    /// Bytes of the largest intermediate result (a memory-pressure proxy).
    pub fn peak_intermediate_bytes(&self) -> u64 {
        self.ops.iter().map(|o| o.bytes_out).max().unwrap_or(0)
    }

    /// Total bytes produced across all operators (the "intermediate data"
    /// cost metric some user policies optimize).
    pub fn total_intermediate_bytes(&self) -> u64 {
        self.ops.iter().map(|o| o.bytes_out).sum()
    }

    /// Rows of the final operator's output (the plan's result size).
    pub fn output_rows(&self) -> u64 {
        self.ops.last().map_or(0, |o| o.rows_out)
    }

    /// Bytes of the final operator's output.
    pub fn output_bytes(&self) -> u64 {
        self.ops.last().map_or(0, |o| o.bytes_out)
    }
}

/// Hashable key for joins and group-by.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyVal {
    Int(i64),
    Str(String),
    Date(i32),
    Bool(bool),
    /// Floats keyed by bit pattern.
    Float(u64),
    Null,
}

fn key_of(v: &Value) -> KeyVal {
    match v {
        Value::Int64(x) => KeyVal::Int(*x),
        Value::Utf8(s) => KeyVal::Str(s.clone()),
        Value::Date(d) => KeyVal::Date(*d),
        Value::Bool(b) => KeyVal::Bool(*b),
        Value::Float64(f) => KeyVal::Float(f.to_bits()),
        Value::Null => KeyVal::Null,
    }
}

/// Executes a plan against a catalog of base tables.
///
/// Returns the result table and the work profile. Base tables are shared
/// (`&Table`), never copied for scans beyond what operators materialize.
pub fn execute(
    plan: &PhysicalPlan,
    catalog: &HashMap<String, Table>,
) -> Result<(Table, WorkProfile), EngineError> {
    let mut profile = WorkProfile::default();
    let table = run(plan, catalog, &mut profile)?;
    Ok((table, profile))
}

fn record(profile: &mut WorkProfile, kind: OpKind, rows_in: u64, out: &Table) {
    profile.ops.push(OpWork {
        kind,
        rows_in,
        rows_out: out.n_rows() as u64,
        bytes_out: out.estimated_bytes(),
    });
}

fn run(
    plan: &PhysicalPlan,
    catalog: &HashMap<String, Table>,
    profile: &mut WorkProfile,
) -> Result<Table, EngineError> {
    match plan {
        PhysicalPlan::Scan { table } => {
            let t = catalog
                .get(table)
                .ok_or_else(|| EngineError::UnknownTable(table.clone()))?
                .clone();
            let rows = t.n_rows() as u64;
            record(profile, OpKind::Scan, rows, &t);
            Ok(t)
        }
        PhysicalPlan::PrunedScan { table, predicate } => {
            let base = catalog
                .get(table)
                .ok_or_else(|| EngineError::UnknownTable(table.clone()))?;
            let mask = predicate.eval_mask(base)?;
            let out = base.filter(&mask);
            // Storage-side pruning: only the surviving rows are charged.
            let rows = out.n_rows() as u64;
            record(profile, OpKind::Scan, rows, &out);
            Ok(out)
        }
        PhysicalPlan::Filter { input, predicate } => {
            let t = run(input, catalog, profile)?;
            let mask = predicate.eval_mask(&t)?;
            let out = t.filter(&mask);
            record(profile, OpKind::Filter, t.n_rows() as u64, &out);
            Ok(out)
        }
        PhysicalPlan::Project { input, exprs } => {
            let t = run(input, catalog, profile)?;
            let out = project(&t, exprs)?;
            record(profile, OpKind::Project, t.n_rows() as u64, &out);
            Ok(out)
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
        } => {
            let lt = run(left, catalog, profile)?;
            let rt = run(right, catalog, profile)?;
            let out = hash_join(&lt, &rt, left_keys, right_keys, *join_type)?;
            record(
                profile,
                OpKind::Join,
                (lt.n_rows() + rt.n_rows()) as u64,
                &out,
            );
            Ok(out)
        }
        PhysicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let t = run(input, catalog, profile)?;
            let out = aggregate(&t, group_by, aggs)?;
            record(profile, OpKind::Aggregate, t.n_rows() as u64, &out);
            Ok(out)
        }
        PhysicalPlan::Sort { input, by } => {
            let t = run(input, catalog, profile)?;
            let out = sort(&t, by)?;
            record(profile, OpKind::Sort, t.n_rows() as u64, &out);
            Ok(out)
        }
        PhysicalPlan::Limit { input, n } => {
            let t = run(input, catalog, profile)?;
            let indices: Vec<usize> = (0..t.n_rows().min(*n)).collect();
            let out = t.take(&indices);
            record(profile, OpKind::Limit, t.n_rows() as u64, &out);
            Ok(out)
        }
    }
}

fn project(t: &Table, exprs: &[(String, Expr)]) -> Result<Table, EngineError> {
    let n = t.n_rows();
    let mut columns = Vec::with_capacity(exprs.len());
    for (name, expr) in exprs {
        // Evaluate row-wise and infer the column type from the first
        // non-NULL value; all-NULL columns default to Int64.
        let mut values = Vec::with_capacity(n);
        for row in 0..n {
            values.push(expr.eval(t, row)?);
        }
        columns.push(column_from_values(name, values)?);
    }
    Table::new(&t.name, columns)
}

fn column_from_values(name: &str, values: Vec<Value>) -> Result<Column, EngineError> {
    let dtype = values
        .iter()
        .find_map(|v| v.data_type())
        .unwrap_or(DataType::Int64);
    let mut validity = Vec::with_capacity(values.len());
    macro_rules! build {
        ($variant:ident, $extract:expr, $default:expr) => {{
            let mut out = Vec::with_capacity(values.len());
            for v in &values {
                match $extract(v) {
                    Some(x) => {
                        validity.push(true);
                        out.push(x);
                    }
                    None => {
                        validity.push(false);
                        out.push($default);
                    }
                }
            }
            ColumnData::$variant(out)
        }};
    }
    let data = match dtype {
        DataType::Int64 => build!(
            Int64,
            |v: &Value| match v {
                Value::Int64(x) => Some(*x),
                _ => None,
            },
            0
        ),
        DataType::Float64 => build!(
            Float64,
            |v: &Value| v.as_f64(),
            0.0
        ),
        DataType::Utf8 => build!(
            Utf8,
            |v: &Value| match v {
                Value::Utf8(s) => Some(s.clone()),
                _ => None,
            },
            String::new()
        ),
        DataType::Date => build!(
            Date,
            |v: &Value| match v {
                Value::Date(d) => Some(*d),
                _ => None,
            },
            0
        ),
        DataType::Bool => build!(
            Bool,
            |v: &Value| match v {
                Value::Bool(b) => Some(*b),
                _ => None,
            },
            false
        ),
    };
    if validity.iter().all(|&v| v) {
        Ok(Column::new(name, data))
    } else {
        Ok(Column::with_validity(name, data, validity))
    }
}

fn row_key(t: &Table, keys: &[usize], row: usize) -> Result<Vec<KeyVal>, EngineError> {
    keys.iter()
        .map(|&k| Ok(key_of(&t.column(k)?.value(row))))
        .collect()
}

fn hash_join(
    left: &Table,
    right: &Table,
    left_keys: &[usize],
    right_keys: &[usize],
    join_type: JoinType,
) -> Result<Table, EngineError> {
    if left_keys.len() != right_keys.len() {
        return Err(EngineError::TypeMismatch {
            context: "join key arity mismatch".to_string(),
        });
    }
    // Build on the right side, probe from the left so LeftOuter preserves
    // every left row naturally.
    let mut build: HashMap<Vec<KeyVal>, Vec<usize>> = HashMap::new();
    for row in 0..right.n_rows() {
        let key = row_key(right, right_keys, row)?;
        if key.iter().any(|k| matches!(k, KeyVal::Null)) {
            continue; // NULL keys never match
        }
        build.entry(key).or_default().push(row);
    }

    let mut left_idx: Vec<usize> = Vec::new();
    let mut right_idx: Vec<Option<usize>> = Vec::new();
    for row in 0..left.n_rows() {
        let key = row_key(left, left_keys, row)?;
        let matches = if key.iter().any(|k| matches!(k, KeyVal::Null)) {
            None
        } else {
            build.get(&key)
        };
        match matches {
            Some(rows) => {
                for &r in rows {
                    left_idx.push(row);
                    right_idx.push(Some(r));
                }
            }
            None => {
                if join_type == JoinType::LeftOuter {
                    left_idx.push(row);
                    right_idx.push(None);
                }
            }
        }
    }

    // Assemble output columns: all left columns then all right columns.
    let mut columns = Vec::with_capacity(left.n_columns() + right.n_columns());
    for c in left.columns() {
        columns.push(c.take(&left_idx));
    }
    for c in right.columns() {
        columns.push(c.take_opt(&right_idx));
    }
    // Disambiguate duplicated names with a right-side prefix.
    let left_names: Vec<String> = left.columns().iter().map(|c| c.name.clone()).collect();
    for col in columns.iter_mut().skip(left.n_columns()) {
        if left_names.contains(&col.name) {
            col.name = format!("r.{}", col.name);
        }
    }
    Table::new("join", columns)
}

/// Running state of one aggregate.
#[derive(Debug, Clone)]
enum AggState {
    Count(u64),
    Sum { total: f64, seen: bool },
    Avg { total: f64, count: u64 },
    Min(Option<f64>),
    Max(Option<f64>),
}

fn aggregate(
    t: &Table,
    group_by: &[usize],
    aggs: &[(String, AggExpr)],
) -> Result<Table, EngineError> {
    // Group rows.
    let mut groups: HashMap<Vec<KeyVal>, Vec<usize>> = HashMap::new();
    let mut first_seen: Vec<Vec<KeyVal>> = Vec::new();
    for row in 0..t.n_rows() {
        let key = row_key(t, group_by, row)?;
        groups
            .entry(key.clone())
            .or_insert_with(|| {
                first_seen.push(key);
                Vec::new()
            })
            .push(row);
    }
    // Global aggregation over empty input still yields one group.
    if group_by.is_empty() && groups.is_empty() {
        groups.insert(Vec::new(), Vec::new());
        first_seen.push(Vec::new());
    }

    // Deterministic output order: first-seen group order.
    let ordered_keys = first_seen;

    // Compute aggregates per group.
    let mut agg_values: Vec<Vec<Value>> = vec![Vec::with_capacity(ordered_keys.len()); aggs.len()];
    let mut group_rows: Vec<usize> = Vec::with_capacity(ordered_keys.len());
    for key in &ordered_keys {
        let rows = &groups[key];
        group_rows.push(rows.first().copied().unwrap_or(0));
        for (slot, (_, agg)) in aggs.iter().enumerate() {
            let mut state = match agg {
                AggExpr::Count | AggExpr::CountIf(_) => AggState::Count(0),
                AggExpr::Sum(_) | AggExpr::SumIf { .. } => AggState::Sum {
                    total: 0.0,
                    seen: false,
                },
                AggExpr::Avg(_) => AggState::Avg {
                    total: 0.0,
                    count: 0,
                },
                AggExpr::Min(_) => AggState::Min(None),
                AggExpr::Max(_) => AggState::Max(None),
            };
            for &row in rows {
                step_agg(&mut state, agg, t, row)?;
            }
            agg_values[slot].push(finish_agg(state));
        }
    }

    // Assemble: group-key columns (gathered from representative rows) then
    // aggregate columns.
    let mut columns = Vec::with_capacity(group_by.len() + aggs.len());
    for &g in group_by {
        let src = t.column(g)?;
        columns.push(src.take(&group_rows));
    }
    for (slot, (name, _)) in aggs.iter().enumerate() {
        columns.push(column_from_values(name, std::mem::take(&mut agg_values[slot]))?);
    }
    Table::new("agg", columns)
}

fn step_agg(state: &mut AggState, agg: &AggExpr, t: &Table, row: usize) -> Result<(), EngineError> {
    match (state, agg) {
        (AggState::Count(c), AggExpr::Count) => *c += 1,
        (AggState::Count(c), AggExpr::CountIf(pred)) => {
            if matches!(pred.eval(t, row)?, Value::Bool(true)) {
                *c += 1;
            }
        }
        (AggState::Sum { total, seen }, AggExpr::Sum(e)) => {
            if let Some(x) = e.eval(t, row)?.as_f64() {
                *total += x;
                *seen = true;
            }
        }
        (AggState::Sum { total, seen }, AggExpr::SumIf { value, predicate }) => {
            *seen = true;
            if matches!(predicate.eval(t, row)?, Value::Bool(true)) {
                if let Some(x) = value.eval(t, row)?.as_f64() {
                    *total += x;
                }
            }
        }
        (AggState::Avg { total, count }, AggExpr::Avg(e)) => {
            if let Some(x) = e.eval(t, row)?.as_f64() {
                *total += x;
                *count += 1;
            }
        }
        (AggState::Min(m), AggExpr::Min(e)) => {
            if let Some(x) = e.eval(t, row)?.as_f64() {
                *m = Some(m.map_or(x, |cur: f64| cur.min(x)));
            }
        }
        (AggState::Max(m), AggExpr::Max(e)) => {
            if let Some(x) = e.eval(t, row)?.as_f64() {
                *m = Some(m.map_or(x, |cur: f64| cur.max(x)));
            }
        }
        _ => unreachable!("state/agg pairing is fixed at construction"),
    }
    Ok(())
}

fn finish_agg(state: AggState) -> Value {
    match state {
        AggState::Count(c) => Value::Int64(c as i64),
        AggState::Sum { total, seen } => {
            if seen {
                Value::Float64(total)
            } else {
                Value::Null
            }
        }
        AggState::Avg { total, count } => {
            if count > 0 {
                Value::Float64(total / count as f64)
            } else {
                Value::Null
            }
        }
        AggState::Min(m) => m.map_or(Value::Null, Value::Float64),
        AggState::Max(m) => m.map_or(Value::Null, Value::Float64),
    }
}

fn sort(t: &Table, by: &[(usize, bool)]) -> Result<Table, EngineError> {
    let mut indices: Vec<usize> = (0..t.n_rows()).collect();
    // Validate columns up-front so sort_by can't panic mid-way.
    for &(c, _) in by {
        t.column(c)?;
    }
    indices.sort_by(|&a, &b| {
        for &(c, desc) in by {
            let col = t.column(c).expect("validated above");
            let ord = cmp_values(&col.value(a), &col.value(b));
            let ord = if desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(t.take(&indices))
}

/// Total order over values for sorting: NULLs first, then by type.
fn cmp_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Null, _) => Ordering::Less,
        (_, Value::Null) => Ordering::Greater,
        (Value::Utf8(x), Value::Utf8(y)) => x.cmp(y),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
            _ => Ordering::Equal,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Column, ColumnData};

    fn catalog() -> HashMap<String, Table> {
        let orders = Table::new(
            "orders",
            vec![
                Column::new("o_orderkey", ColumnData::Int64(vec![1, 2, 3, 4])),
                Column::new("o_custkey", ColumnData::Int64(vec![10, 20, 10, 30])),
                Column::new(
                    "o_priority",
                    ColumnData::Utf8(vec![
                        "1-URGENT".into(),
                        "3-MEDIUM".into(),
                        "2-HIGH".into(),
                        "5-LOW".into(),
                    ]),
                ),
            ],
        )
        .unwrap();
        let customer = Table::new(
            "customer",
            vec![
                Column::new("c_custkey", ColumnData::Int64(vec![10, 20, 40])),
                Column::new(
                    "c_name",
                    ColumnData::Utf8(vec!["alice".into(), "bob".into(), "carol".into()]),
                ),
            ],
        )
        .unwrap();
        let mut cat = HashMap::new();
        cat.insert("orders".to_string(), orders);
        cat.insert("customer".to_string(), customer);
        cat
    }

    fn scan(t: &str) -> PhysicalPlan {
        PhysicalPlan::Scan {
            table: t.to_string(),
        }
    }

    #[test]
    fn scan_unknown_table() {
        let res = execute(&scan("nope"), &catalog());
        assert!(matches!(res, Err(EngineError::UnknownTable(_))));
    }

    #[test]
    fn pruned_scan_equals_filter_scan_but_charges_less() {
        let predicate = Expr::col(1).eq(Expr::int(10));
        let pruned = PhysicalPlan::PrunedScan {
            table: "orders".to_string(),
            predicate: predicate.clone(),
        };
        let filtered = PhysicalPlan::Filter {
            input: Box::new(scan("orders")),
            predicate,
        };
        let (out_p, prof_p) = execute(&pruned, &catalog()).unwrap();
        let (out_f, _) = execute(&filtered, &catalog()).unwrap();
        // Same semantics…
        assert_eq!(out_p.columns(), out_f.columns());
        // …but the pruned scan charges only the selected rows.
        assert_eq!(prof_p.scanned_rows(), 2);
        assert_eq!(prof_p.ops.len(), 1);
    }

    #[test]
    fn pruned_scan_unknown_table() {
        let plan = PhysicalPlan::PrunedScan {
            table: "nope".to_string(),
            predicate: Expr::col(0).ge(Expr::int(0)),
        };
        assert!(matches!(
            execute(&plan, &catalog()),
            Err(EngineError::UnknownTable(_))
        ));
    }

    #[test]
    fn filter_and_profile() {
        let plan = PhysicalPlan::Filter {
            input: Box::new(scan("orders")),
            predicate: Expr::col(1).eq(Expr::int(10)),
        };
        let (out, profile) = execute(&plan, &catalog()).unwrap();
        assert_eq!(out.n_rows(), 2);
        assert_eq!(profile.ops.len(), 2);
        assert_eq!(profile.scanned_rows(), 4);
        assert_eq!(profile.ops[1].kind, OpKind::Filter);
        assert_eq!(profile.ops[1].rows_out, 2);
    }

    #[test]
    fn project_computes_expressions() {
        let plan = PhysicalPlan::Project {
            input: Box::new(scan("orders")),
            exprs: vec![
                ("key2".to_string(), Expr::col(0).mul(Expr::int(2))),
                ("is_urgent".to_string(), Expr::col(2).eq(Expr::str("1-URGENT"))),
            ],
        };
        let (out, _) = execute(&plan, &catalog()).unwrap();
        assert_eq!(out.n_columns(), 2);
        assert_eq!(out.row(0), vec![Value::Int64(2), Value::Bool(true)]);
        assert_eq!(out.row(1), vec![Value::Int64(4), Value::Bool(false)]);
    }

    #[test]
    fn inner_join_matches_keys() {
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(scan("customer")),
            right: Box::new(scan("orders")),
            left_keys: vec![0],
            right_keys: vec![1],
            join_type: JoinType::Inner,
        };
        let (out, profile) = execute(&plan, &catalog()).unwrap();
        // alice(10) x 2 orders + bob(20) x 1 = 3 rows; carol unmatched.
        assert_eq!(out.n_rows(), 3);
        assert_eq!(profile.join_input_rows(), 7);
        // Right-side duplicate of c_custkey is prefixed... names differ here,
        // so both originals survive.
        assert!(out.column_by_name("o_orderkey").is_ok());
    }

    #[test]
    fn left_outer_join_preserves_unmatched() {
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(scan("customer")),
            right: Box::new(scan("orders")),
            left_keys: vec![0],
            right_keys: vec![1],
            join_type: JoinType::LeftOuter,
        };
        let (out, _) = execute(&plan, &catalog()).unwrap();
        assert_eq!(out.n_rows(), 4); // 3 matches + carol with NULLs
        let carol_row = (0..out.n_rows())
            .find(|&i| out.row(i)[1] == Value::Utf8("carol".into()))
            .unwrap();
        assert_eq!(out.row(carol_row)[2], Value::Null);
    }

    #[test]
    fn aggregate_count_per_group() {
        // COUNT(orders) per custkey.
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(scan("orders")),
            group_by: vec![1],
            aggs: vec![("n".to_string(), AggExpr::Count)],
        };
        let (out, _) = execute(&plan, &catalog()).unwrap();
        assert_eq!(out.n_rows(), 3);
        // First-seen order: 10, 20, 30.
        assert_eq!(out.row(0), vec![Value::Int64(10), Value::Int64(2)]);
        assert_eq!(out.row(1), vec![Value::Int64(20), Value::Int64(1)]);
    }

    #[test]
    fn global_aggregates_and_countif() {
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(scan("orders")),
            group_by: vec![],
            aggs: vec![
                ("n".to_string(), AggExpr::Count),
                (
                    "high".to_string(),
                    AggExpr::CountIf(Expr::col(2).in_list(vec![
                        Value::Utf8("1-URGENT".into()),
                        Value::Utf8("2-HIGH".into()),
                    ])),
                ),
                ("sum_key".to_string(), AggExpr::Sum(Expr::col(0))),
                ("avg_key".to_string(), AggExpr::Avg(Expr::col(0))),
                ("min_key".to_string(), AggExpr::Min(Expr::col(0))),
                ("max_key".to_string(), AggExpr::Max(Expr::col(0))),
            ],
        };
        let (out, _) = execute(&plan, &catalog()).unwrap();
        assert_eq!(out.n_rows(), 1);
        assert_eq!(
            out.row(0),
            vec![
                Value::Int64(4),
                Value::Int64(2),
                Value::Float64(10.0),
                Value::Float64(2.5),
                Value::Float64(1.0),
                Value::Float64(4.0),
            ]
        );
    }

    #[test]
    fn sumif_conditional_total() {
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(scan("orders")),
            group_by: vec![],
            aggs: vec![(
                "urgent_keys".to_string(),
                AggExpr::SumIf {
                    value: Expr::col(0),
                    predicate: Expr::col(2).eq(Expr::str("1-URGENT")),
                },
            )],
        };
        let (out, _) = execute(&plan, &catalog()).unwrap();
        assert_eq!(out.row(0), vec![Value::Float64(1.0)]);
    }

    #[test]
    fn empty_global_aggregate_has_one_row() {
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan("orders")),
                predicate: Expr::col(0).gt(Expr::int(99)),
            }),
            group_by: vec![],
            aggs: vec![("n".to_string(), AggExpr::Count)],
        };
        let (out, _) = execute(&plan, &catalog()).unwrap();
        assert_eq!(out.n_rows(), 1);
        assert_eq!(out.row(0), vec![Value::Int64(0)]);
    }

    #[test]
    fn sort_and_limit() {
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Sort {
                input: Box::new(scan("orders")),
                by: vec![(1, false), (0, true)],
            }),
            n: 2,
        };
        let (out, _) = execute(&plan, &catalog()).unwrap();
        assert_eq!(out.n_rows(), 2);
        // custkey 10 group first, orderkey desc inside: 3 then 1.
        assert_eq!(out.row(0)[0], Value::Int64(3));
        assert_eq!(out.row(1)[0], Value::Int64(1));
    }

    #[test]
    fn join_null_keys_never_match() {
        let mut cat = catalog();
        let t = Table::new(
            "nullkey",
            vec![Column::with_validity(
                "k",
                ColumnData::Int64(vec![10, 0]),
                vec![true, false],
            )],
        )
        .unwrap();
        cat.insert("nullkey".to_string(), t);
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(scan("nullkey")),
            right: Box::new(scan("customer")),
            left_keys: vec![0],
            right_keys: vec![0],
            join_type: JoinType::Inner,
        };
        let (out, _) = execute(&plan, &cat).unwrap();
        assert_eq!(out.n_rows(), 1); // only the non-NULL 10 matches
    }

    #[test]
    fn work_profile_aggregates() {
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::HashJoin {
                left: Box::new(scan("customer")),
                right: Box::new(scan("orders")),
                left_keys: vec![0],
                right_keys: vec![1],
                join_type: JoinType::Inner,
            }),
            group_by: vec![0],
            aggs: vec![("n".to_string(), AggExpr::Count)],
        };
        let (_, profile) = execute(&plan, &catalog()).unwrap();
        assert_eq!(profile.scanned_rows(), 7);
        assert!(profile.agg_input_rows() > 0);
        assert!(profile.peak_intermediate_bytes() > 0);
        assert!(profile.total_intermediate_bytes() >= profile.peak_intermediate_bytes());
    }
}
