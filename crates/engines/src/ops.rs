//! Physical operators and the plan executors.
//!
//! Plans are operator trees executed **vector-at-a-time** by default
//! ([`execute`]): operators exchange *batches* — a table plus an optional
//! selection vector of live row ids — so filters, pruned scans, sorts and
//! limits never materialize intermediate tables. Expressions run through
//! the batch evaluator ([`Expr::eval_batch`]) against whole columns, joins
//! hash composite keys into a single `u64`-keyed open-addressing table
//! with collision verification (no per-row key allocation), and grouped
//! aggregation accumulates directly from column slices. Projection, join
//! and aggregation materialize their outputs; everything below them stays
//! virtual.
//!
//! The original row-at-a-time path survives as [`execute_scalar`] — the
//! readable reference implementation that goldens, property tests and the
//! scalar-vs-vectorized benchmarks run against. Both paths produce
//! identical result tables **and identical [`WorkProfile`]s** (bit-for-bit,
//! including the estimated byte counts), so the simulator in
//! [`crate::exec`], the `ires` cost modelling and every repro binary are
//! unaffected by which executor runs. `tests/vectorized_differential.rs`
//! enforces the equivalence property-test-style.

use crate::catalog::Catalog;
use crate::data::{Column, ColumnData, DataType, Table, Value};
use crate::error::EngineError;
use crate::expr::{BatchVals, EvalScratch, Expr, NumTy, SelView};
use std::collections::HashMap;

/// Join flavours needed by the TPC-H two-table queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner equi-join.
    Inner,
    /// Left-outer equi-join (Q13's `customer LEFT OUTER JOIN orders`).
    LeftOuter,
}

/// Aggregate expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum AggExpr {
    /// `COUNT(*)`.
    Count,
    /// `SUM(expr)`.
    Sum(Expr),
    /// `AVG(expr)`.
    Avg(Expr),
    /// `MIN(expr)` (numeric).
    Min(Expr),
    /// `MAX(expr)` (numeric).
    Max(Expr),
    /// `SUM(CASE WHEN pred THEN 1 ELSE 0 END)` — Q12's priority counters.
    CountIf(Expr),
    /// `SUM(CASE WHEN pred THEN value ELSE 0 END)` — Q14's promo revenue.
    SumIf {
        /// Value summed when the predicate holds.
        value: Expr,
        /// The predicate.
        predicate: Expr,
    },
}

/// A physical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Leaf: read a named base table.
    Scan {
        /// Base-table name resolved against the execution catalog.
        table: String,
    },
    /// Leaf: read a base table with a predicate pushed into the storage
    /// layer (index range scan / partition pruning). Semantically identical
    /// to `Filter(Scan)`, but the work profile charges only the *selected*
    /// rows — storage-side selection never materializes the rejected ones.
    PrunedScan {
        /// Base-table name.
        table: String,
        /// Storage-evaluable predicate.
        predicate: Expr,
    },
    /// Row selection.
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Selection predicate.
        predicate: Expr,
    },
    /// Column computation / pruning.
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Output columns as (name, expression).
        exprs: Vec<(String, Expr)>,
    },
    /// Hash equi-join on single key columns.
    HashJoin {
        /// Build side (left).
        left: Box<PhysicalPlan>,
        /// Probe side (right).
        right: Box<PhysicalPlan>,
        /// Key column positions in the left input.
        left_keys: Vec<usize>,
        /// Key column positions in the right input.
        right_keys: Vec<usize>,
        /// Inner or left-outer.
        join_type: JoinType,
    },
    /// Hash aggregation.
    Aggregate {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Group-by key column positions (empty = one global group).
        group_by: Vec<usize>,
        /// Aggregates as (output name, expression).
        aggs: Vec<(String, AggExpr)>,
    },
    /// Sort by column positions; `true` = descending.
    Sort {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Sort keys as (column, descending).
        by: Vec<(usize, bool)>,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Row cap.
        n: usize,
    },
}

/// What kind of work an operator performed (for the cost model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Table scan.
    Scan,
    /// Filter.
    Filter,
    /// Projection.
    Project,
    /// Hash join.
    Join,
    /// Aggregation.
    Aggregate,
    /// Sort.
    Sort,
    /// Limit.
    Limit,
}

/// Tuple/byte accounting for one executed operator.
#[derive(Debug, Clone, PartialEq)]
pub struct OpWork {
    /// Operator kind.
    pub kind: OpKind,
    /// Input tuples (both sides summed for joins).
    pub rows_in: u64,
    /// Output tuples.
    pub rows_out: u64,
    /// Estimated output bytes.
    pub bytes_out: u64,
}

/// Work accounting for a whole plan execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkProfile {
    /// Per-operator entries in execution (post-order) sequence.
    pub ops: Vec<OpWork>,
}

impl WorkProfile {
    /// Total tuples read by scans.
    pub fn scanned_rows(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.kind == OpKind::Scan)
            .map(|o| o.rows_in)
            .sum()
    }

    /// Total bytes read by scans.
    pub fn scanned_bytes(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.kind == OpKind::Scan)
            .map(|o| o.bytes_out)
            .sum()
    }

    /// Total tuples entering joins.
    pub fn join_input_rows(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.kind == OpKind::Join)
            .map(|o| o.rows_in)
            .sum()
    }

    /// Total tuples entering aggregations.
    pub fn agg_input_rows(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.kind == OpKind::Aggregate)
            .map(|o| o.rows_in)
            .sum()
    }

    /// Bytes of the largest intermediate result (a memory-pressure proxy).
    pub fn peak_intermediate_bytes(&self) -> u64 {
        self.ops.iter().map(|o| o.bytes_out).max().unwrap_or(0)
    }

    /// Total bytes produced across all operators (the "intermediate data"
    /// cost metric some user policies optimize).
    pub fn total_intermediate_bytes(&self) -> u64 {
        self.ops.iter().map(|o| o.bytes_out).sum()
    }

    /// Rows of the final operator's output (the plan's result size).
    pub fn output_rows(&self) -> u64 {
        self.ops.last().map_or(0, |o| o.rows_out)
    }

    /// Bytes of the final operator's output.
    pub fn output_bytes(&self) -> u64 {
        self.ops.last().map_or(0, |o| o.bytes_out)
    }
}

/// Hashable key for joins and group-by.
///
/// Strings are *borrowed* from their column: hashing or comparing a key row
/// allocates nothing, and even interning a previously unseen key into a
/// build map only copies `Copy` variants and string references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum KeyVal<'a> {
    Int(i64),
    Str(&'a str),
    Date(i32),
    Bool(bool),
    /// Floats keyed by bit pattern.
    Float(u64),
    Null,
}

/// The key part of one row of one column, read straight from typed storage
/// (no `Value` materialization, no string clone).
fn key_part(col: &Column, row: usize) -> KeyVal<'_> {
    if !col.is_valid(row) {
        return KeyVal::Null;
    }
    match &col.data {
        ColumnData::Int64(v) => KeyVal::Int(v[row]),
        ColumnData::Utf8(v) => KeyVal::Str(&v[row]),
        ColumnData::Date(v) => KeyVal::Date(v[row]),
        ColumnData::Bool(v) => KeyVal::Bool(v[row]),
        ColumnData::Float64(v) => KeyVal::Float(v[row].to_bits()),
    }
}

/// Executes a plan against a [`Catalog`] of base tables using the default
/// vectorized engine: batch expression evaluation, selection vectors, and
/// allocation-free hash joins.
///
/// Returns the result table and the work profile. Base tables are shared
/// (borrowed through the catalog's `Arc<Table>` entries), never copied for
/// scans beyond what operators materialize. Semantics and work accounting
/// are identical to [`execute_scalar`].
pub fn execute(
    plan: &PhysicalPlan,
    catalog: &Catalog,
) -> Result<(Table, WorkProfile), EngineError> {
    execute_with_partitions(plan, catalog, 1)
}

/// [`execute`] with **intra-operator parallelism**: hash joins and grouped
/// aggregations partition their inputs by the existing `u64` key hash into
/// `partition_degree` shards (radix-style — selection vectors in, selection
/// vectors out, no row materialization) and run the shards on scoped
/// threads.
///
/// Because equal keys always share a shard and shard outputs are merged
/// back in deterministic order, the result table, the [`WorkProfile`] and
/// [`Table::fingerprint`] are **bit-for-bit identical** to the serial path
/// at every degree (the `vectorized_differential` suite pins this against
/// both [`execute`] and [`execute_scalar`]). A degree of 0 or 1 is the
/// serial path; degrees above [`MAX_PARTITION_DEGREE`] are clamped.
///
/// There is deliberately **no small-input fallback**: a degree above 1
/// always takes the sharded path, so the differential suites (which run
/// on small tables) genuinely exercise it, and callers opting in via the
/// knob get exactly what they asked for. On few-row inputs the scoped
/// threads cost more than they save — leave the degree at 1 (the default
/// at every layer) unless the workload's joins/aggregations are large.
pub fn execute_with_partitions(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    partition_degree: usize,
) -> Result<(Table, WorkProfile), EngineError> {
    let degree = partition_degree.clamp(1, MAX_PARTITION_DEGREE);
    let mut profile = WorkProfile::default();
    let mut scratch = EvalScratch::new();
    let batch = run_vec(plan, catalog, &mut profile, degree, &mut scratch)?;
    Ok((batch.materialize(), profile))
}

/// A topology-aware default for the `partition_degree` knob: the host's
/// available parallelism, clamped to `[1, MAX_PARTITION_DEGREE]`. On a
/// single-core box this is 1 (the serial path — scoped threads would only
/// add overhead); on a 64-way box it saturates at the hard cap. Callers
/// that want a fixed fan-out can still pass any explicit degree.
pub fn default_partition_degree() -> usize {
    std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .clamp(1, MAX_PARTITION_DEGREE)
}

/// Executes a plan row-at-a-time through the reference scalar operators.
///
/// Kept as the differential oracle for [`execute`] and as the baseline of
/// the scalar-vs-vectorized benchmarks; results and [`WorkProfile`]s match
/// the vectorized path exactly.
pub fn execute_scalar(
    plan: &PhysicalPlan,
    catalog: &Catalog,
) -> Result<(Table, WorkProfile), EngineError> {
    let mut profile = WorkProfile::default();
    let table = run(plan, catalog, &mut profile)?;
    Ok((table, profile))
}

fn record(profile: &mut WorkProfile, kind: OpKind, rows_in: u64, out: &Table) {
    profile.ops.push(OpWork {
        kind,
        rows_in,
        rows_out: out.n_rows() as u64,
        bytes_out: out.estimated_bytes(),
    });
}

fn run(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    profile: &mut WorkProfile,
) -> Result<Table, EngineError> {
    match plan {
        PhysicalPlan::Scan { table } => {
            let t = catalog
                .get(table)
                .ok_or_else(|| EngineError::UnknownTable(table.clone()))?
                .clone();
            let rows = t.n_rows() as u64;
            record(profile, OpKind::Scan, rows, &t);
            Ok(t)
        }
        PhysicalPlan::PrunedScan { table, predicate } => {
            let base = catalog
                .get(table)
                .ok_or_else(|| EngineError::UnknownTable(table.clone()))?;
            let mask = predicate.eval_mask(base)?;
            let out = base.filter(&mask);
            // Storage-side pruning: only the surviving rows are charged.
            let rows = out.n_rows() as u64;
            record(profile, OpKind::Scan, rows, &out);
            Ok(out)
        }
        PhysicalPlan::Filter { input, predicate } => {
            let t = run(input, catalog, profile)?;
            let mask = predicate.eval_mask(&t)?;
            let out = t.filter(&mask);
            record(profile, OpKind::Filter, t.n_rows() as u64, &out);
            Ok(out)
        }
        PhysicalPlan::Project { input, exprs } => {
            let t = run(input, catalog, profile)?;
            let out = project(&t, exprs)?;
            record(profile, OpKind::Project, t.n_rows() as u64, &out);
            Ok(out)
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
        } => {
            let lt = run(left, catalog, profile)?;
            let rt = run(right, catalog, profile)?;
            let out = hash_join(&lt, &rt, left_keys, right_keys, *join_type)?;
            record(
                profile,
                OpKind::Join,
                (lt.n_rows() + rt.n_rows()) as u64,
                &out,
            );
            Ok(out)
        }
        PhysicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let t = run(input, catalog, profile)?;
            let out = aggregate(&t, group_by, aggs)?;
            record(profile, OpKind::Aggregate, t.n_rows() as u64, &out);
            Ok(out)
        }
        PhysicalPlan::Sort { input, by } => {
            let t = run(input, catalog, profile)?;
            let out = sort(&t, by)?;
            record(profile, OpKind::Sort, t.n_rows() as u64, &out);
            Ok(out)
        }
        PhysicalPlan::Limit { input, n } => {
            let t = run(input, catalog, profile)?;
            let indices: Vec<usize> = (0..t.n_rows().min(*n)).collect();
            let out = t.take(&indices);
            record(profile, OpKind::Limit, t.n_rows() as u64, &out);
            Ok(out)
        }
    }
}

fn project(t: &Table, exprs: &[(String, Expr)]) -> Result<Table, EngineError> {
    let n = t.n_rows();
    let mut columns = Vec::with_capacity(exprs.len());
    for (name, expr) in exprs {
        // Evaluate row-wise and infer the column type from the first
        // non-NULL value; all-NULL columns default to Int64.
        let mut values = Vec::with_capacity(n);
        for row in 0..n {
            values.push(expr.eval(t, row)?);
        }
        columns.push(column_from_values(name, values)?);
    }
    Table::new(&t.name, columns)
}

fn column_from_values(name: &str, values: Vec<Value>) -> Result<Column, EngineError> {
    let dtype = values
        .iter()
        .find_map(|v| v.data_type())
        .unwrap_or(DataType::Int64);
    let mut validity = Vec::with_capacity(values.len());
    macro_rules! build {
        ($variant:ident, $extract:expr, $default:expr) => {{
            let mut out = Vec::with_capacity(values.len());
            for v in &values {
                match $extract(v) {
                    Some(x) => {
                        validity.push(true);
                        out.push(x);
                    }
                    None => {
                        validity.push(false);
                        out.push($default);
                    }
                }
            }
            ColumnData::$variant(out)
        }};
    }
    let data = match dtype {
        DataType::Int64 => build!(
            Int64,
            |v: &Value| match v {
                Value::Int64(x) => Some(*x),
                _ => None,
            },
            0
        ),
        DataType::Float64 => build!(
            Float64,
            |v: &Value| v.as_f64(),
            0.0
        ),
        DataType::Utf8 => build!(
            Utf8,
            |v: &Value| match v {
                Value::Utf8(s) => Some(s.clone()),
                _ => None,
            },
            String::new()
        ),
        DataType::Date => build!(
            Date,
            |v: &Value| match v {
                Value::Date(d) => Some(*d),
                _ => None,
            },
            0
        ),
        DataType::Bool => build!(
            Bool,
            |v: &Value| match v {
                Value::Bool(b) => Some(*b),
                _ => None,
            },
            false
        ),
    };
    if validity.iter().all(|&v| v) {
        Ok(Column::new(name, data))
    } else {
        Ok(Column::with_validity(name, data, validity))
    }
}

/// Fills `out` with the key of `row` — reusing the caller's scratch buffer
/// instead of allocating a fresh `Vec<KeyVal>` per row, so the scalar join
/// and aggregation baselines measure hashing, not allocator traffic. Key
/// parts borrow from the columns: no per-row `String` clone.
fn row_key_into<'a>(cols: &[&'a Column], row: usize, out: &mut Vec<KeyVal<'a>>) {
    out.clear();
    for col in cols {
        out.push(key_part(col, row));
    }
}

/// Resolves key columns, but — matching the vectorized executor's lazy
/// per-row validation — only when the side actually has rows.
fn key_columns<'a>(t: &'a Table, keys: &[usize]) -> Result<Vec<&'a Column>, EngineError> {
    if t.n_rows() == 0 {
        return Ok(Vec::new());
    }
    keys.iter().map(|&k| t.column(k)).collect()
}

fn hash_join(
    left: &Table,
    right: &Table,
    left_keys: &[usize],
    right_keys: &[usize],
    join_type: JoinType,
) -> Result<Table, EngineError> {
    if left_keys.len() != right_keys.len() {
        return Err(EngineError::TypeMismatch {
            context: "join key arity mismatch".to_string(),
        });
    }
    // Build on the right side, probe from the left so LeftOuter preserves
    // every left row naturally. One scratch key buffer serves every row;
    // it is only cloned (cheaply: `KeyVal` is `Copy`) when a new key enters
    // the build map.
    let rcols = key_columns(right, right_keys)?;
    let lcols = key_columns(left, left_keys)?;
    let mut scratch: Vec<KeyVal<'_>> = Vec::with_capacity(right_keys.len());
    let mut build: HashMap<Vec<KeyVal<'_>>, Vec<usize>> = HashMap::new();
    for row in 0..right.n_rows() {
        row_key_into(&rcols, row, &mut scratch);
        if scratch.iter().any(|k| matches!(k, KeyVal::Null)) {
            continue; // NULL keys never match
        }
        match build.get_mut(&scratch) {
            Some(rows) => rows.push(row),
            None => {
                build.insert(scratch.clone(), vec![row]);
            }
        }
    }

    let mut left_idx: Vec<usize> = Vec::new();
    let mut right_idx: Vec<Option<usize>> = Vec::new();
    for row in 0..left.n_rows() {
        row_key_into(&lcols, row, &mut scratch);
        let matches = if scratch.iter().any(|k| matches!(k, KeyVal::Null)) {
            None
        } else {
            build.get(&scratch)
        };
        match matches {
            Some(rows) => {
                for &r in rows {
                    left_idx.push(row);
                    right_idx.push(Some(r));
                }
            }
            None => {
                if join_type == JoinType::LeftOuter {
                    left_idx.push(row);
                    right_idx.push(None);
                }
            }
        }
    }

    // Assemble output columns: all left columns then all right columns.
    let mut columns = Vec::with_capacity(left.n_columns() + right.n_columns());
    for c in left.columns() {
        columns.push(c.take(&left_idx));
    }
    for c in right.columns() {
        columns.push(c.take_opt(&right_idx));
    }
    finish_join_output(left, columns)
}

/// Disambiguates right-side column names that collide with left-side ones
/// (with an `r.` prefix) and assembles the join result — shared by the
/// scalar and vectorized joins so their output schemas can never drift.
pub(crate) fn finish_join_output(left: &Table, mut columns: Vec<Column>) -> Result<Table, EngineError> {
    let left_names: Vec<String> = left.columns().iter().map(|c| c.name.clone()).collect();
    for col in columns.iter_mut().skip(left.n_columns()) {
        if left_names.contains(&col.name) {
            col.name = format!("r.{}", col.name);
        }
    }
    Table::new("join", columns)
}

/// Running state of one aggregate.
#[derive(Debug, Clone)]
enum AggState {
    Count(u64),
    Sum { total: f64, seen: bool },
    Avg { total: f64, count: u64 },
    Min(Option<f64>),
    Max(Option<f64>),
}

fn aggregate(
    t: &Table,
    group_by: &[usize],
    aggs: &[(String, AggExpr)],
) -> Result<Table, EngineError> {
    // Group rows. The scratch key buffer is reused across rows and cloned
    // only when a previously unseen group appears.
    let gcols = key_columns(t, group_by)?;
    let mut groups: HashMap<Vec<KeyVal<'_>>, Vec<usize>> = HashMap::new();
    let mut first_seen: Vec<Vec<KeyVal<'_>>> = Vec::new();
    let mut scratch: Vec<KeyVal<'_>> = Vec::with_capacity(group_by.len());
    for row in 0..t.n_rows() {
        row_key_into(&gcols, row, &mut scratch);
        match groups.get_mut(&scratch) {
            Some(rows) => rows.push(row),
            None => {
                first_seen.push(scratch.clone());
                groups.insert(scratch.clone(), vec![row]);
            }
        }
    }
    // Global aggregation over empty input still yields one group.
    if group_by.is_empty() && groups.is_empty() {
        groups.insert(Vec::new(), Vec::new());
        first_seen.push(Vec::new());
    }

    // Deterministic output order: first-seen group order.
    let ordered_keys = first_seen;

    // Compute aggregates per group.
    let mut agg_values: Vec<Vec<Value>> = vec![Vec::with_capacity(ordered_keys.len()); aggs.len()];
    let mut group_rows: Vec<usize> = Vec::with_capacity(ordered_keys.len());
    for key in &ordered_keys {
        let rows = &groups[key];
        group_rows.push(rows.first().copied().unwrap_or(0));
        for (slot, (_, agg)) in aggs.iter().enumerate() {
            let mut state = match agg {
                AggExpr::Count | AggExpr::CountIf(_) => AggState::Count(0),
                AggExpr::Sum(_) | AggExpr::SumIf { .. } => AggState::Sum {
                    total: 0.0,
                    seen: false,
                },
                AggExpr::Avg(_) => AggState::Avg {
                    total: 0.0,
                    count: 0,
                },
                AggExpr::Min(_) => AggState::Min(None),
                AggExpr::Max(_) => AggState::Max(None),
            };
            for &row in rows {
                step_agg(&mut state, agg, t, row)?;
            }
            agg_values[slot].push(finish_agg(state));
        }
    }

    // Assemble: group-key columns (gathered from representative rows) then
    // aggregate columns.
    let mut columns = Vec::with_capacity(group_by.len() + aggs.len());
    for &g in group_by {
        let src = t.column(g)?;
        columns.push(src.take(&group_rows));
    }
    for (slot, (name, _)) in aggs.iter().enumerate() {
        columns.push(column_from_values(name, std::mem::take(&mut agg_values[slot]))?);
    }
    Table::new("agg", columns)
}

fn step_agg(state: &mut AggState, agg: &AggExpr, t: &Table, row: usize) -> Result<(), EngineError> {
    match (state, agg) {
        (AggState::Count(c), AggExpr::Count) => *c += 1,
        (AggState::Count(c), AggExpr::CountIf(pred)) => {
            if matches!(pred.eval(t, row)?, Value::Bool(true)) {
                *c += 1;
            }
        }
        (AggState::Sum { total, seen }, AggExpr::Sum(e)) => {
            if let Some(x) = e.eval(t, row)?.as_f64() {
                *total += x;
                *seen = true;
            }
        }
        (AggState::Sum { total, seen }, AggExpr::SumIf { value, predicate }) => {
            *seen = true;
            if matches!(predicate.eval(t, row)?, Value::Bool(true)) {
                if let Some(x) = value.eval(t, row)?.as_f64() {
                    *total += x;
                }
            }
        }
        (AggState::Avg { total, count }, AggExpr::Avg(e)) => {
            if let Some(x) = e.eval(t, row)?.as_f64() {
                *total += x;
                *count += 1;
            }
        }
        (AggState::Min(m), AggExpr::Min(e)) => {
            if let Some(x) = e.eval(t, row)?.as_f64() {
                *m = Some(m.map_or(x, |cur: f64| cur.min(x)));
            }
        }
        (AggState::Max(m), AggExpr::Max(e)) => {
            if let Some(x) = e.eval(t, row)?.as_f64() {
                *m = Some(m.map_or(x, |cur: f64| cur.max(x)));
            }
        }
        // LINT: panic-ok — states are built by agg_states() from the same
        // agg list iterated here; a mismatched pairing cannot be produced
        // by any public input, only by a bug in this file.
        _ => unreachable!("state/agg pairing is fixed at construction"),
    }
    Ok(())
}

fn finish_agg(state: AggState) -> Value {
    match state {
        AggState::Count(c) => Value::Int64(c as i64),
        AggState::Sum { total, seen } => {
            if seen {
                Value::Float64(total)
            } else {
                Value::Null
            }
        }
        AggState::Avg { total, count } => {
            if count > 0 {
                Value::Float64(total / count as f64)
            } else {
                Value::Null
            }
        }
        AggState::Min(m) => m.map_or(Value::Null, Value::Float64),
        AggState::Max(m) => m.map_or(Value::Null, Value::Float64),
    }
}

fn sort(t: &Table, by: &[(usize, bool)]) -> Result<Table, EngineError> {
    let mut indices: Vec<usize> = (0..t.n_rows()).collect();
    // Validate columns up-front so sort_by can't panic mid-way.
    for &(c, _) in by {
        t.column(c)?;
    }
    indices.sort_by(|&a, &b| {
        for &(c, desc) in by {
            let col = t.column(c).expect("validated above");
            let ord = cmp_values(&col.value(a), &col.value(b));
            let ord = if desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(t.take(&indices))
}

/// Total order over values for sorting: NULLs first, then by type.
fn cmp_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Null, _) => Ordering::Less,
        (_, Value::Null) => Ordering::Greater,
        (Value::Utf8(x), Value::Utf8(y)) => x.cmp(y),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
            _ => Ordering::Equal,
        },
    }
}

// ========================= vectorized executor =========================

/// A table flowing between vectorized operators: either borrowed from the
/// catalog (scans) or owned (materializing operators), plus an optional
/// selection vector of live original-row ids. Shared with the fused morsel
/// executor in [`crate::fused`], which builds the same batches from
/// chunk-native pipelines.
pub(crate) enum TableSlot<'a> {
    Borrowed(&'a Table),
    Owned(Table),
}

pub(crate) struct Batch<'a> {
    pub(crate) slot: TableSlot<'a>,
    pub(crate) sel: Option<Vec<u32>>,
}

impl<'a> Batch<'a> {
    pub(crate) fn all(slot: TableSlot<'a>) -> Self {
        Batch { slot, sel: None }
    }

    pub(crate) fn table(&self) -> &Table {
        match &self.slot {
            TableSlot::Borrowed(t) => t,
            TableSlot::Owned(t) => t,
        }
    }

    pub(crate) fn sel_ref(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// Logical row count (what the scalar path would have materialized).
    pub(crate) fn len(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.table().n_rows(),
        }
    }

    /// Original row id of batch position `pos`.
    #[inline]
    pub(crate) fn row_id(&self, pos: usize) -> usize {
        match &self.sel {
            Some(s) => s[pos] as usize,
            None => pos,
        }
    }

    /// Gathers the batch into a concrete table (the final plan result).
    pub(crate) fn materialize(self) -> Table {
        match (self.slot, self.sel) {
            (TableSlot::Owned(t), None) => t,
            (TableSlot::Borrowed(t), None) => t.clone(),
            (TableSlot::Owned(t), Some(sel)) => t.take_ids(&sel),
            (TableSlot::Borrowed(t), Some(sel)) => t.take_ids(&sel),
        }
    }
}

/// Records one operator's work from a batch without materializing it; byte
/// accounting is identical to measuring the materialized table.
pub(crate) fn record_batch(profile: &mut WorkProfile, kind: OpKind, rows_in: u64, batch: &Batch<'_>) {
    profile.ops.push(OpWork {
        kind,
        rows_in,
        rows_out: batch.len() as u64,
        bytes_out: batch.table().estimated_bytes_sel(batch.sel_ref()),
    });
}

fn run_vec<'a>(
    plan: &PhysicalPlan,
    catalog: &'a Catalog,
    profile: &mut WorkProfile,
    degree: usize,
    scratch: &mut EvalScratch,
) -> Result<Batch<'a>, EngineError> {
    match plan {
        PhysicalPlan::Scan { table } => {
            let t = catalog
                .get(table)
                .ok_or_else(|| EngineError::UnknownTable(table.clone()))?;
            let batch = Batch::all(TableSlot::Borrowed(t));
            record_batch(profile, OpKind::Scan, t.n_rows() as u64, &batch);
            Ok(batch)
        }
        PhysicalPlan::PrunedScan { table, predicate } => {
            let base = catalog
                .get(table)
                .ok_or_else(|| EngineError::UnknownTable(table.clone()))?;
            let mut sel = scratch.take_sel();
            predicate.eval_sel_in(base, None, scratch, &mut sel)?;
            // Storage-side pruning: only the surviving rows are charged.
            let rows = sel.len() as u64;
            let batch = Batch {
                slot: TableSlot::Borrowed(base),
                sel: Some(sel),
            };
            record_batch(profile, OpKind::Scan, rows, &batch);
            Ok(batch)
        }
        PhysicalPlan::Filter { input, predicate } => {
            let b = run_vec(input, catalog, profile, degree, scratch)?;
            let rows_in = b.len() as u64;
            let mut sel = scratch.take_sel();
            predicate.eval_sel_in(b.table(), b.sel_ref(), scratch, &mut sel)?;
            if let Some(old) = b.sel {
                scratch.put_sel(old);
            }
            let batch = Batch {
                slot: b.slot,
                sel: Some(sel),
            };
            record_batch(profile, OpKind::Filter, rows_in, &batch);
            Ok(batch)
        }
        PhysicalPlan::Project { input, exprs } => {
            let b = run_vec(input, catalog, profile, degree, scratch)?;
            let rows_in = b.len() as u64;
            let out = project_vec(&b, exprs, scratch)?;
            let batch = Batch::all(TableSlot::Owned(out));
            record_batch(profile, OpKind::Project, rows_in, &batch);
            Ok(batch)
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
        } => {
            let lb = run_vec(left, catalog, profile, degree, scratch)?;
            let rb = run_vec(right, catalog, profile, degree, scratch)?;
            let rows_in = (lb.len() + rb.len()) as u64;
            let out = hash_join_vec(&lb, &rb, left_keys, right_keys, *join_type, degree)?;
            let batch = Batch::all(TableSlot::Owned(out));
            record_batch(profile, OpKind::Join, rows_in, &batch);
            Ok(batch)
        }
        PhysicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let b = run_vec(input, catalog, profile, degree, scratch)?;
            let rows_in = b.len() as u64;
            let out = aggregate_vec(&b, group_by, aggs, degree, scratch)?;
            let batch = Batch::all(TableSlot::Owned(out));
            record_batch(profile, OpKind::Aggregate, rows_in, &batch);
            Ok(batch)
        }
        PhysicalPlan::Sort { input, by } => {
            let b = run_vec(input, catalog, profile, degree, scratch)?;
            let rows_in = b.len() as u64;
            let sel = sort_sel(&b, by)?;
            let batch = Batch {
                slot: b.slot,
                sel: Some(sel),
            };
            record_batch(profile, OpKind::Sort, rows_in, &batch);
            Ok(batch)
        }
        PhysicalPlan::Limit { input, n } => {
            let b = run_vec(input, catalog, profile, degree, scratch)?;
            let rows_in = b.len() as u64;
            let keep = b.len().min(*n);
            let sel = match b.sel {
                Some(mut s) => {
                    s.truncate(keep);
                    s
                }
                None => (0..keep as u32).collect(),
            };
            let batch = Batch {
                slot: b.slot,
                sel: Some(sel),
            };
            record_batch(profile, OpKind::Limit, rows_in, &batch);
            Ok(batch)
        }
    }
}

// ----- vectorized projection -----

pub(crate) fn project_vec(
    b: &Batch<'_>,
    exprs: &[(String, Expr)],
    scratch: &mut EvalScratch,
) -> Result<Table, EngineError> {
    let t = b.table();
    let sel = b.sel_ref();
    let sv = SelView::new(t, sel);
    let mut columns = Vec::with_capacity(exprs.len());
    for (name, expr) in exprs {
        // Direct column references and literals materialize straight from
        // typed storage — exact for the full i64 range (the batch
        // evaluator's f64-widened constants are only exact to 2^53);
        // strings cloned only here.
        match expr {
            Expr::Col(i) => columns.push(gather_normalized(t.column(*i)?, &sv, name)),
            Expr::Lit(v) => columns.push(broadcast_value(name, v, sv.len())),
            _ => {
                let bv = expr.eval_batch_in(t, sel, scratch)?;
                columns.push(column_from_batch(name, &bv, &sv));
                scratch.recycle(bv);
            }
        }
    }
    Table::new(&t.name, columns)
}

/// Gathers a column under a selection with the same normalization
/// `column_from_values` applies to scalar projection output: NULL slots
/// hold the type default, an all-NULL (or empty) result collapses to
/// Int64, and a fully valid result drops its validity mask.
pub(crate) fn gather_normalized(col: &Column, sv: &SelView<'_>, name: &str) -> Column {
    let n = sv.len();
    if n == 0 {
        return Column::new(name, ColumnData::Int64(Vec::new()));
    }
    let validity: Option<Vec<bool>> = col
        .validity
        .as_ref()
        .map(|v| (0..n).map(|pos| v[sv.row(pos)]).collect());
    let any_valid = validity.as_ref().is_none_or(|v| v.iter().any(|&ok| ok));
    if !any_valid {
        return Column::with_validity(name, ColumnData::Int64(vec![0; n]), vec![false; n]);
    }
    macro_rules! gather {
        ($v:expr, $default:expr, $clone:expr) => {
            (0..n)
                .map(|pos| {
                    let row = sv.row(pos);
                    if col.is_valid(row) {
                        $clone(&$v[row])
                    } else {
                        $default
                    }
                })
                .collect()
        };
    }
    let data = match &col.data {
        ColumnData::Int64(v) => ColumnData::Int64(gather!(v, 0, |x: &i64| *x)),
        ColumnData::Float64(v) => ColumnData::Float64(gather!(v, 0.0, |x: &f64| *x)),
        ColumnData::Utf8(v) => ColumnData::Utf8(gather!(v, String::new(), |x: &String| x.clone())),
        ColumnData::Date(v) => ColumnData::Date(gather!(v, 0, |x: &i32| *x)),
        ColumnData::Bool(v) => ColumnData::Bool(gather!(v, false, |x: &bool| *x)),
    };
    match validity {
        Some(v) if !v.iter().all(|&ok| ok) => Column::with_validity(name, data, v),
        _ => Column::new(name, data),
    }
}

/// Broadcasts one literal value into a column of length `n`, exactly as
/// `column_from_values(vec![v; n])` would: typed data, all-NULL literals
/// collapse to Int64, zero rows collapse to an empty Int64 column.
pub(crate) fn broadcast_value(name: &str, v: &Value, n: usize) -> Column {
    if n == 0 {
        return Column::new(name, ColumnData::Int64(Vec::new()));
    }
    match v {
        Value::Int64(x) => Column::new(name, ColumnData::Int64(vec![*x; n])),
        Value::Float64(x) => Column::new(name, ColumnData::Float64(vec![*x; n])),
        Value::Utf8(s) => Column::new(name, ColumnData::Utf8(vec![s.clone(); n])),
        Value::Date(d) => Column::new(name, ColumnData::Date(vec![*d; n])),
        Value::Bool(b) => Column::new(name, ColumnData::Bool(vec![*b; n])),
        Value::Null => {
            Column::with_validity(name, ColumnData::Int64(vec![0; n]), vec![false; n])
        }
    }
}

/// Builds an output column from a batch vector, with `column_from_values`'s
/// normalization rules (see [`gather_normalized`]).
pub(crate) fn column_from_batch(name: &str, bv: &BatchVals<'_>, sv: &SelView<'_>) -> Column {
    let n = sv.len();
    if n == 0 {
        return Column::new(name, ColumnData::Int64(Vec::new()));
    }
    let finish = |data: ColumnData, valid: Option<&Vec<bool>>| -> Column {
        match valid {
            Some(v) if !v.iter().all(|&ok| ok) => {
                Column::with_validity(name, data, v.clone())
            }
            _ => Column::new(name, data),
        }
    };
    let all_null = || -> Column {
        Column::with_validity(name, ColumnData::Int64(vec![0; n]), vec![false; n])
    };
    match bv {
        BatchVals::ConstNull => all_null(),
        BatchVals::ConstNum { val, ty } => {
            let data = match ty {
                NumTy::Int => ColumnData::Int64(vec![*val as i64; n]),
                NumTy::Float => ColumnData::Float64(vec![*val; n]),
                NumTy::Date => ColumnData::Date(vec![*val as i32; n]),
            };
            Column::new(name, data)
        }
        BatchVals::ConstBool(b) => Column::new(name, ColumnData::Bool(vec![*b; n])),
        BatchVals::ConstStr(s) => Column::new(name, ColumnData::Utf8(vec![s.to_string(); n])),
        BatchVals::Num { vals, valid, ty } => {
            if let Some(v) = valid {
                if !v.iter().any(|&ok| ok) {
                    return all_null();
                }
            }
            let ok = |pos: usize| valid.as_ref().is_none_or(|v| v[pos]);
            let data = match ty {
                NumTy::Int => ColumnData::Int64(
                    (0..n).map(|p| if ok(p) { vals[p] as i64 } else { 0 }).collect(),
                ),
                NumTy::Float => ColumnData::Float64(
                    (0..n).map(|p| if ok(p) { vals[p] } else { 0.0 }).collect(),
                ),
                NumTy::Date => ColumnData::Date(
                    (0..n).map(|p| if ok(p) { vals[p] as i32 } else { 0 }).collect(),
                ),
            };
            finish(data, valid.as_ref())
        }
        BatchVals::Bools { vals, valid } => {
            if let Some(v) = valid {
                if !v.iter().any(|&ok| ok) {
                    return all_null();
                }
            }
            let ok = |pos: usize| valid.as_ref().is_none_or(|v| v[pos]);
            let data = ColumnData::Bool(
                (0..n).map(|p| if ok(p) { vals[p] } else { false }).collect(),
            );
            finish(data, valid.as_ref())
        }
        BatchVals::Str { vals, valid } => {
            let validity: Vec<bool> = (0..n)
                .map(|pos| valid.is_none_or(|v| v[sv.row(pos)]))
                .collect();
            if !validity.iter().any(|&ok| ok) {
                return all_null();
            }
            let data = ColumnData::Utf8(
                (0..n)
                    .map(|pos| {
                        if validity[pos] {
                            vals[sv.row(pos)].clone()
                        } else {
                            String::new()
                        }
                    })
                    .collect(),
            );
            finish(data, Some(&validity))
        }
    }
}

// ----- allocation-free composite keys -----

/// SplitMix64 finalizer: one multiply-xorshift round per key part.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[inline]
fn hash_combine(h: u64, k: u64) -> u64 {
    (h ^ k).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Hashes the composite key of `row` into one `u64` — no per-row
/// allocation. `None` when a key part is NULL and `null_sentinel` is off
/// (join keys: NULL never matches). With the sentinel on (group-by keys),
/// NULL hashes like a distinguished constant so NULL groups with NULL.
fn key_hash(cols: &[&Column], row: usize, null_sentinel: bool) -> Option<u64> {
    let mut h: u64 = 0x517c_c1b7_2722_0a95;
    for col in cols {
        let k = if !col.is_valid(row) {
            if !null_sentinel {
                return None;
            }
            mix64(0x6e75_6c6c) // "null"
        } else {
            match &col.data {
                ColumnData::Int64(v) => mix64(v[row] as u64),
                ColumnData::Date(v) => mix64(v[row] as i64 as u64),
                ColumnData::Float64(v) => mix64(v[row].to_bits()),
                ColumnData::Bool(v) => mix64(v[row] as u64),
                ColumnData::Utf8(v) => fnv1a(v[row].as_bytes()),
            }
        };
        h = hash_combine(h, k);
    }
    Some(h)
}

/// Verifies composite-key equality between two rows with `KeyVal`
/// semantics: same-variant values compare (floats by bit pattern), values
/// of different column types never match, and NULL equals NULL (reachable
/// only for group-by keys — join paths skip NULL keys before hashing).
fn keys_equal(lcols: &[&Column], lrow: usize, rcols: &[&Column], rrow: usize) -> bool {
    lcols.iter().zip(rcols.iter()).all(|(lc, rc)| {
        let lv = lc.is_valid(lrow);
        let rv = rc.is_valid(rrow);
        if !lv || !rv {
            return lv == rv;
        }
        match (&lc.data, &rc.data) {
            (ColumnData::Int64(a), ColumnData::Int64(b)) => a[lrow] == b[rrow],
            (ColumnData::Float64(a), ColumnData::Float64(b)) => {
                a[lrow].to_bits() == b[rrow].to_bits()
            }
            (ColumnData::Date(a), ColumnData::Date(b)) => a[lrow] == b[rrow],
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a[lrow] == b[rrow],
            (ColumnData::Utf8(a), ColumnData::Utf8(b)) => a[lrow] == b[rrow],
            _ => false,
        }
    })
}

/// Open-addressing map from `u64` hash to a `u32` chain head (`0` =
/// empty). Linear probing at ≤ 50% load; collision resolution is the
/// caller's verification of chained entries, so distinct keys sharing a
/// hash simply share a chain.
struct U64Map {
    mask: usize,
    slots: Vec<(u64, u32)>,
}

impl U64Map {
    fn with_capacity(n: usize) -> U64Map {
        let cap = (n.max(4) * 2).next_power_of_two();
        U64Map {
            mask: cap - 1,
            slots: vec![(0, 0); cap],
        }
    }

    #[inline]
    fn probe(&self, h: u64) -> usize {
        let mut i = (h as usize) & self.mask;
        loop {
            let (slot_hash, head) = self.slots[i];
            if head == 0 || slot_hash == h {
                return i;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Chain head for `h`, or 0 when absent.
    #[inline]
    fn get(&self, h: u64) -> u32 {
        let (slot_hash, head) = self.slots[self.probe(h)];
        if head != 0 && slot_hash == h {
            head
        } else {
            0
        }
    }

    /// Mutable chain-head slot for `h`, claiming an empty slot if needed.
    #[inline]
    fn entry(&mut self, h: u64) -> &mut u32 {
        let i = self.probe(h);
        self.slots[i].0 = h;
        &mut self.slots[i].1
    }
}

// ----- partitioned parallel join / aggregation -----

/// Hard cap on the partition fan-out of one join or aggregation operator
/// (one scoped thread per shard); [`execute_with_partitions`] clamps to it.
pub const MAX_PARTITION_DEGREE: usize = 64;

/// Which of `p` shards a key hash belongs to. The *high* hash bits pick the
/// shard so each shard's open-addressing table keeps its full low-bit slot
/// entropy ([`U64Map::probe`] indexes with `h & mask`); equal keys share a
/// hash and therefore always share a shard.
#[inline]
fn shard_of(h: u64, p: usize) -> usize {
    ((h >> 32) as usize) % p
}

/// Keys of one batch, hashed and radix-partitioned in a single
/// chunk-parallel pass: each scoped thread hashes one contiguous range of
/// batch positions and bins `(position, hash)` pairs into per-shard
/// sublists. Within a shard, iterating the chunks in order yields strictly
/// ascending positions — the invariant every downstream ordering argument
/// rests on.
struct PartitionedKeys {
    /// `parts[chunk][shard]` → (batch position, key hash), ascending.
    parts: Vec<Vec<Vec<(u32, u64)>>>,
    /// Positions whose key had a NULL part (join keys only — sentinel
    /// hashing is total), ascending.
    nulls: Vec<u32>,
}

impl PartitionedKeys {
    /// Number of hashed entries in shard `s`.
    fn shard_len(&self, s: usize) -> usize {
        self.parts.iter().map(|chunk| chunk[s].len()).sum()
    }

    /// Visits shard `s`'s (position, hash) pairs in ascending position
    /// order.
    fn for_shard(&self, s: usize, mut f: impl FnMut(u32, u64)) {
        for chunk in &self.parts {
            for &(pos, h) in &chunk[s] {
                f(pos, h);
            }
        }
    }
}

/// Hashes and partitions a batch's key columns into `p` shards on up to
/// `p` scoped threads. Pure per-position work plus order-preserving
/// binning, so the result is independent of the thread split.
fn partition_keys(
    b: &Batch<'_>,
    cols: &[&Column],
    null_sentinel: bool,
    p: usize,
) -> PartitionedKeys {
    let n = b.len();
    if n == 0 {
        return PartitionedKeys {
            parts: Vec::new(),
            nulls: Vec::new(),
        };
    }
    let chunk = n.div_ceil(p).max(1);
    let ranges: Vec<(usize, usize)> = (0..n)
        .step_by(chunk)
        .map(|start| (start, (start + chunk).min(n)))
        .collect();
    let mut parts = Vec::with_capacity(ranges.len());
    let mut nulls = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(start, end)| {
                scope.spawn(move || {
                    let mut bins: Vec<Vec<(u32, u64)>> = vec![Vec::new(); p];
                    let mut chunk_nulls: Vec<u32> = Vec::new();
                    for pos in start..end {
                        match key_hash(cols, b.row_id(pos), null_sentinel) {
                            Some(h) => bins[shard_of(h, p)].push((pos as u32, h)),
                            None => chunk_nulls.push(pos as u32),
                        }
                    }
                    (bins, chunk_nulls)
                })
            })
            .collect();
        for handle in handles {
            let (bins, chunk_nulls) = handle.join().expect("partition thread panicked");
            parts.push(bins);
            nulls.extend(chunk_nulls);
        }
    });
    PartitionedKeys { parts, nulls }
}

/// The partitioned counterpart of [`serial_join_indices`]: both sides are
/// radix-partitioned by key hash into `p` shards (selection vectors of
/// batch positions — no rows move), each shard builds its own [`U64Map`]
/// on a scoped thread, probe work is split into bounded-size **probe
/// tasks** that share the shard's build map read-only, and all task
/// outputs merge back through a per-probe-position scatter.
///
/// The task split is the skew defence: with a plain thread-per-shard
/// probe, one hot key (every `lineitem` row of one part, say) piles its
/// whole probe side into a single shard and serializes the phase. Here a
/// shard whose probe list exceeds its fair share `ceil(total / p)` is
/// re-partitioned morsel-wise into up to `p` contiguous ranges, so the
/// hot shard's probes run in parallel against the one shared build map
/// (probing is read-only — only building needs exclusivity). Total probe
/// tasks stay ≤ 2·p, keeping the thread fan-out bounded by the clamped
/// degree.
///
/// Determinism: equal keys share a shard, so a shard's hash chains are
/// exactly the serial chains restricted to its keys (built in reverse →
/// ascending build position, verified by [`keys_equal`]); and because each
/// probe position lives in exactly one task, with its matches contiguous
/// there in chain order, the scatter reproduces the serial output row for
/// row — bit-for-bit, at every `p` and every task decomposition.
pub(crate) fn partitioned_join_indices(
    lb: &Batch<'_>,
    rb: &Batch<'_>,
    lcols: &[&Column],
    rcols: &[&Column],
    join_type: JoinType,
    p: usize,
) -> (Vec<u32>, Vec<u32>, Vec<bool>) {
    let ln = lb.len();
    // Build rows with NULL keys never match and are dropped by the
    // partitioner exactly as the serial build skips them; probe rows with
    // NULL keys only ever emit the LeftOuter NULL row and are appended as
    // a pseudo-shard below — the scatter restores probe order regardless.
    let build_keys = partition_keys(rb, rcols, false, p);
    let probe_keys = partition_keys(lb, lcols, false, p);

    // Phase 1: per-shard hash-table builds, one scoped thread per shard.
    struct ShardBuild {
        build: Vec<(u32, u64)>,
        map: U64Map,
        next: Vec<u32>,
    }
    let builds: Vec<ShardBuild> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..p)
            .map(|s| {
                let build_keys = &build_keys;
                scope.spawn(move || {
                    let mut build: Vec<(u32, u64)> =
                        Vec::with_capacity(build_keys.shard_len(s));
                    build_keys.for_shard(s, |pos, h| build.push((pos, h)));
                    let mut map = U64Map::with_capacity(build.len());
                    let mut next: Vec<u32> = vec![0; build.len()];
                    for local in (0..build.len()).rev() {
                        let head = map.entry(build[local].1);
                        next[local] = *head;
                        *head = local as u32 + 1;
                    }
                    ShardBuild { build, map, next }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join build thread panicked"))
            .collect()
    });

    // Phase 2: probe tasks — each shard's probe list, split morsel-wise
    // into contiguous ranges of at most its fair share of positions.
    let probes: Vec<Vec<(u32, u64)>> = (0..p)
        .map(|s| {
            let mut v = Vec::with_capacity(probe_keys.shard_len(s));
            probe_keys.for_shard(s, |pos, h| v.push((pos, h)));
            v
        })
        .collect();
    let probe_total: usize = probes.iter().map(|v| v.len()).sum();
    let fair = probe_total.div_ceil(p).max(1);
    let mut tasks: Vec<(usize, usize, usize)> = Vec::new(); // (shard, start, end)
    for (s, v) in probes.iter().enumerate() {
        if v.is_empty() {
            continue;
        }
        let n_tasks = v.len().div_ceil(fair).min(p);
        let step = v.len().div_ceil(n_tasks).max(1);
        let mut start = 0;
        while start < v.len() {
            let end = (start + step).min(v.len());
            tasks.push((s, start, end));
            start = end;
        }
    }
    let mut shard_outs: Vec<Vec<(u32, u32, bool)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .iter()
            .map(|&(s, start, end)| {
                let (builds, probes) = (&builds, &probes);
                scope.spawn(move || {
                    let sb = &builds[s];
                    let mut out: Vec<(u32, u32, bool)> = Vec::new();
                    for &(pos, h) in &probes[s][start..end] {
                        let lrow = lb.row_id(pos as usize);
                        let mut matched = false;
                        let mut cur = sb.map.get(h);
                        while cur != 0 {
                            let local = (cur - 1) as usize;
                            let rrow = rb.row_id(sb.build[local].0 as usize);
                            if keys_equal(lcols, lrow, rcols, rrow) {
                                out.push((pos, rrow as u32, true));
                                matched = true;
                            }
                            cur = sb.next[local];
                        }
                        if !matched && join_type == JoinType::LeftOuter {
                            out.push((pos, 0, false));
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join probe thread panicked"))
            .collect()
    });
    // NULL-key probe rows are always unmatched; under LeftOuter they emit
    // their NULL row from a final pseudo-shard.
    if join_type == JoinType::LeftOuter && !probe_keys.nulls.is_empty() {
        shard_outs.push(probe_keys.nulls.iter().map(|&pos| (pos, 0, false)).collect());
    }

    // Scatter-merge back to probe order: per-position output counts →
    // prefix offsets → each shard writes its (contiguous, chain-ordered)
    // runs into the positions' slots.
    let mut offsets = vec![0usize; ln + 1];
    for shard in &shard_outs {
        for &(pos, _, _) in shard {
            offsets[pos as usize + 1] += 1;
        }
    }
    for i in 0..ln {
        offsets[i + 1] += offsets[i];
    }
    let total = offsets[ln];
    let mut left_out = vec![0u32; total];
    let mut right_out = vec![0u32; total];
    let mut right_hit = vec![false; total];
    for shard in &shard_outs {
        for &(pos, rrow, hit) in shard {
            let at = offsets[pos as usize];
            offsets[pos as usize] += 1;
            left_out[at] = lb.row_id(pos as usize) as u32;
            right_out[at] = rrow;
            right_hit[at] = hit;
        }
    }
    (left_out, right_out, right_hit)
}

/// The serial first-seen group-id assignment: one hash-chained pass over
/// the batch, returning each position's group id and the first original
/// row of every group, in first-seen order.
pub(crate) fn serial_group_ids(b: &Batch<'_>, gcols: &[&Column], n: usize) -> (Vec<u32>, Vec<u32>) {
    let mut group_ids: Vec<u32> = Vec::with_capacity(n);
    let mut rep_rows: Vec<u32> = Vec::new();
    let mut map = U64Map::with_capacity(n);
    let mut chain: Vec<u32> = Vec::new(); // per-group next in hash chain
    for pos in 0..n {
        let row = b.row_id(pos);
        let h = key_hash(gcols, row, true).expect("sentinel hashing is total");
        let head = map.entry(h);
        let mut cur = *head;
        let mut found = None;
        while cur != 0 {
            let g = (cur - 1) as usize;
            if keys_equal(gcols, row, gcols, rep_rows[g] as usize) {
                found = Some(g);
                break;
            }
            cur = chain[g];
        }
        let g = match found {
            Some(g) => g,
            None => {
                let g = rep_rows.len();
                rep_rows.push(row as u32);
                chain.push(*head);
                *head = g as u32 + 1;
                g
            }
        };
        group_ids.push(g as u32);
    }
    (group_ids, rep_rows)
}

/// Per-shard result of partitioned group discovery.
struct ShardGroups {
    /// (batch position, local group id) pairs in ascending position order.
    pairs: Vec<(u32, u32)>,
    /// Batch position of each local group's first occurrence.
    first_pos: Vec<u32>,
}

/// The partitioned counterpart of the serial group-id assignment inside
/// [`aggregate_vec`]: positions are radix-partitioned by (sentinel) group
/// hash, each shard discovers its groups on a scoped thread, and the local
/// groups merge into global first-seen order by ascending first position.
///
/// All rows of one group land in one shard, and a shard scans its
/// positions in ascending batch order, so local first occurrences *are*
/// global first occurrences — the merged `group_ids` / representative rows
/// are bit-identical to the serial pass, which keeps the downstream
/// accumulation (shared code) bit-identical too.
pub(crate) fn partitioned_group_ids(
    b: &Batch<'_>,
    gcols: &[&Column],
    p: usize,
) -> (Vec<u32>, Vec<u32>) {
    let n = b.len();
    let keys = partition_keys(b, gcols, true, p); // sentinel hashing: no NULLs

    let shard_groups: Vec<ShardGroups> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..p)
            .map(|s| {
                let keys = &keys;
                scope.spawn(move || {
                    let len = keys.shard_len(s);
                    let mut map = U64Map::with_capacity(len);
                    let mut chain: Vec<u32> = Vec::new();
                    let mut first_pos: Vec<u32> = Vec::new();
                    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(len);
                    keys.for_shard(s, |pos, h| {
                        let row = b.row_id(pos as usize);
                        let head = map.entry(h);
                        let mut cur = *head;
                        let mut found = None;
                        while cur != 0 {
                            let g = (cur - 1) as usize;
                            if keys_equal(gcols, row, gcols, b.row_id(first_pos[g] as usize)) {
                                found = Some(g);
                                break;
                            }
                            cur = chain[g];
                        }
                        let g = match found {
                            Some(g) => g,
                            None => {
                                let g = first_pos.len();
                                first_pos.push(pos);
                                chain.push(*head);
                                *head = g as u32 + 1;
                                g
                            }
                        };
                        pairs.push((pos, g as u32));
                    });
                    ShardGroups { pairs, first_pos }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("aggregation shard thread panicked"))
            .collect()
    });

    // Merge in shard-index order, then rank groups by first position —
    // first positions are unique, so the rank order *is* the serial
    // first-seen order.
    let mut order: Vec<(u32, usize, u32)> = Vec::new();
    for (s, sg) in shard_groups.iter().enumerate() {
        for (local, &fp) in sg.first_pos.iter().enumerate() {
            order.push((fp, s, local as u32));
        }
    }
    order.sort_unstable();
    let mut global_of: Vec<Vec<u32>> = shard_groups
        .iter()
        .map(|sg| vec![0; sg.first_pos.len()])
        .collect();
    let mut rep_rows: Vec<u32> = Vec::with_capacity(order.len());
    for (rank, &(fp, s, local)) in order.iter().enumerate() {
        global_of[s][local as usize] = rank as u32;
        rep_rows.push(b.row_id(fp as usize) as u32);
    }
    let mut group_ids = vec![0u32; n];
    for (s, sg) in shard_groups.iter().enumerate() {
        for &(pos, local) in &sg.pairs {
            group_ids[pos as usize] = global_of[s][local as usize];
        }
    }
    (group_ids, rep_rows)
}

// ----- vectorized join -----

pub(crate) fn hash_join_vec(
    lb: &Batch<'_>,
    rb: &Batch<'_>,
    left_keys: &[usize],
    right_keys: &[usize],
    join_type: JoinType,
    degree: usize,
) -> Result<Table, EngineError> {
    if left_keys.len() != right_keys.len() {
        return Err(EngineError::TypeMismatch {
            context: "join key arity mismatch".to_string(),
        });
    }
    let lt = lb.table();
    let rt = rb.table();
    let ln = lb.len();
    let rn = rb.len();
    // Key columns are resolved only when the side has rows, matching the
    // scalar path's per-row (hence lazy) validation.
    let rcols: Vec<&Column> = if rn > 0 {
        right_keys.iter().map(|&k| rt.column(k)).collect::<Result<_, _>>()?
    } else {
        Vec::new()
    };
    let lcols: Vec<&Column> = if ln > 0 {
        left_keys.iter().map(|&k| lt.column(k)).collect::<Result<_, _>>()?
    } else {
        Vec::new()
    };

    let (left_out, right_out, right_hit) = if degree > 1 {
        partitioned_join_indices(lb, rb, &lcols, &rcols, join_type, degree)
    } else {
        serial_join_indices(lb, rb, &lcols, &rcols, join_type)
    };

    // Assemble output columns: all left columns then all right columns.
    // Each column's gather is independent, so the partitioned path runs
    // them on scoped threads — same gathers, same order, just overlapped.
    // The combined column list is chunked so the thread fan-out stays
    // bounded by the clamped degree, like every other phase.
    let columns: Vec<Column> = if degree > 1 && lt.n_columns() + rt.n_columns() > 1 {
        enum Gather<'a> {
            Left(&'a Column),
            Right(&'a Column),
        }
        let tasks: Vec<Gather<'_>> = lt
            .columns()
            .iter()
            .map(Gather::Left)
            .chain(rt.columns().iter().map(Gather::Right))
            .collect();
        let chunk = tasks.len().div_ceil(degree).max(1);
        std::thread::scope(|scope| {
            let (left_out, right_out, right_hit) = (&left_out, &right_out, &right_hit);
            let handles: Vec<_> = tasks
                .chunks(chunk)
                .map(|group| {
                    scope.spawn(move || {
                        group
                            .iter()
                            .map(|task| match task {
                                Gather::Left(c) => c.take_ids(left_out),
                                Gather::Right(c) => c.take_opt_ids(right_out, right_hit),
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("join gather thread panicked"))
                .collect()
        })
    } else {
        let mut columns = Vec::with_capacity(lt.n_columns() + rt.n_columns());
        for c in lt.columns() {
            columns.push(c.take_ids(&left_out));
        }
        for c in rt.columns() {
            columns.push(c.take_opt_ids(&right_out, &right_hit));
        }
        columns
    };
    finish_join_output(lt, columns)
}

/// The serial build/probe producing the join's gather indices:
/// `(left row, right row, right matched)` triples flattened into three
/// vectors, in probe order with matches in build-chain order.
pub(crate) fn serial_join_indices(
    lb: &Batch<'_>,
    rb: &Batch<'_>,
    lcols: &[&Column],
    rcols: &[&Column],
    join_type: JoinType,
) -> (Vec<u32>, Vec<u32>, Vec<bool>) {
    let ln = lb.len();
    let rn = rb.len();
    // Build over the right batch. Chains are threaded through `next` by
    // batch position; building in reverse keeps each chain in ascending
    // position order, so probe output matches the scalar path row-for-row.
    let mut map = U64Map::with_capacity(rn);
    let mut next: Vec<u32> = vec![0; rn];
    for pos in (0..rn).rev() {
        let row = rb.row_id(pos);
        if let Some(h) = key_hash(rcols, row, false) {
            let head = map.entry(h);
            next[pos] = *head;
            *head = pos as u32 + 1;
        }
    }

    // Probe from the left.
    let mut left_out: Vec<u32> = Vec::new();
    let mut right_out: Vec<u32> = Vec::new();
    let mut right_hit: Vec<bool> = Vec::new();
    for pos in 0..ln {
        let lrow = lb.row_id(pos);
        let mut matched = false;
        if let Some(h) = key_hash(lcols, lrow, false) {
            let mut cur = map.get(h);
            while cur != 0 {
                let rpos = (cur - 1) as usize;
                let rrow = rb.row_id(rpos);
                if keys_equal(lcols, lrow, rcols, rrow) {
                    left_out.push(lrow as u32);
                    right_out.push(rrow as u32);
                    right_hit.push(true);
                    matched = true;
                }
                cur = next[rpos];
            }
        }
        if !matched && join_type == JoinType::LeftOuter {
            left_out.push(lrow as u32);
            right_out.push(0);
            right_hit.push(false);
        }
    }
    (left_out, right_out, right_hit)
}

// ----- vectorized aggregation -----

/// Numeric view with `Value::as_f64` semantics: booleans and strings are
/// not numeric and silently yield `None`, exactly as the scalar
/// aggregation steps skip them.
pub(crate) fn agg_num_input(bv: &BatchVals<'_>, sv: &SelView<'_>) -> Vec<Option<f64>> {
    let n = sv.len();
    match bv {
        BatchVals::Num { vals, valid, .. } => (0..n)
            .map(|p| match valid {
                Some(v) if !v[p] => None,
                _ => Some(vals[p]),
            })
            .collect(),
        BatchVals::ConstNum { val, .. } => vec![Some(*val); n],
        _ => vec![None; n],
    }
}

/// Boolean view with `matches!(v, Value::Bool(true))` semantics: anything
/// that is not a valid boolean counts as false, never as an error.
pub(crate) fn agg_bool_input(bv: &BatchVals<'_>, sv: &SelView<'_>) -> Vec<Option<bool>> {
    let n = sv.len();
    match bv {
        BatchVals::Bools { vals, valid } => (0..n)
            .map(|p| match valid {
                Some(v) if !v[p] => None,
                _ => Some(vals[p]),
            })
            .collect(),
        BatchVals::ConstBool(b) => vec![Some(*b); n],
        _ => vec![None; n],
    }
}

/// The expression-evaluation surface the shared aggregation accumulator
/// ([`accumulate_aggs`]) runs against. The vectorized executor implements
/// it over a [`Batch`]; the fused executor implements it over a *virtual*
/// join output (deferred-gather columns), so both paths accumulate through
/// literally the same float additions in the same order.
pub(crate) trait AggInput {
    /// Predicate view of `e` over every batch position, with
    /// `matches!(v, Value::Bool(true))` semantics.
    fn eval_bools(&mut self, e: &Expr) -> Result<Vec<Option<bool>>, EngineError>;
    /// Numeric view of `e` over every batch position (`Value::as_f64`
    /// semantics).
    fn eval_nums(&mut self, e: &Expr) -> Result<Vec<Option<f64>>, EngineError>;
    /// Numeric view of `e` over the given batch positions only (SumIf's
    /// predicate-true subset).
    fn eval_nums_at(&mut self, e: &Expr, sub_pos: &[u32])
        -> Result<Vec<Option<f64>>, EngineError>;
}

struct BatchAggInput<'x, 'a> {
    b: &'x Batch<'a>,
    scratch: &'x mut EvalScratch,
}

impl AggInput for BatchAggInput<'_, '_> {
    fn eval_bools(&mut self, e: &Expr) -> Result<Vec<Option<bool>>, EngineError> {
        let t = self.b.table();
        let sel = self.b.sel_ref();
        let sv = SelView::new(t, sel);
        let bv = e.eval_batch_in(t, sel, self.scratch)?;
        let out = agg_bool_input(&bv, &sv);
        self.scratch.recycle(bv);
        Ok(out)
    }

    fn eval_nums(&mut self, e: &Expr) -> Result<Vec<Option<f64>>, EngineError> {
        let t = self.b.table();
        let sel = self.b.sel_ref();
        let sv = SelView::new(t, sel);
        let bv = e.eval_batch_in(t, sel, self.scratch)?;
        let out = agg_num_input(&bv, &sv);
        self.scratch.recycle(bv);
        Ok(out)
    }

    fn eval_nums_at(
        &mut self,
        e: &Expr,
        sub_pos: &[u32],
    ) -> Result<Vec<Option<f64>>, EngineError> {
        // The scalar path only evaluates SumIf's value on rows where the
        // predicate holds; mirror that by evaluating the value batch under
        // the predicate-true sub-selection of original row ids.
        let t = self.b.table();
        let sub_rows: Vec<u32> = sub_pos
            .iter()
            .map(|&p| self.b.row_id(p as usize) as u32)
            .collect();
        let bv = e.eval_batch_in(t, Some(&sub_rows), self.scratch)?;
        let sub_sv = SelView::new(t, Some(&sub_rows));
        let out = agg_num_input(&bv, &sub_sv);
        self.scratch.recycle(bv);
        Ok(out)
    }
}

/// Accumulated output of one aggregate over all groups.
pub(crate) enum AggCol {
    Counts(Vec<u64>),
    Opt(Vec<Option<f64>>),
}

/// One pass per aggregate over the batch positions, accumulating straight
/// into per-group states. Shared verbatim by the vectorized and fused
/// executors — given identical `group_ids` and an [`AggInput`] that yields
/// identical per-position values, the accumulation (and so every float
/// rounding) is bit-identical.
pub(crate) fn accumulate_aggs(
    input: &mut dyn AggInput,
    aggs: &[(String, AggExpr)],
    group_ids: &[u32],
    n_groups: usize,
    n: usize,
) -> Result<Vec<AggCol>, EngineError> {
    let mut agg_cols: Vec<AggCol> = Vec::with_capacity(aggs.len());
    for (_, agg) in aggs {
        let col = match agg {
            AggExpr::Count => {
                let mut counts = vec![0u64; n_groups];
                for pos in 0..n {
                    counts[group_ids[pos] as usize] += 1;
                }
                AggCol::Counts(counts)
            }
            AggExpr::CountIf(pred) => {
                let flags = input.eval_bools(pred)?;
                let mut counts = vec![0u64; n_groups];
                for (pos, flag) in flags.iter().enumerate() {
                    if *flag == Some(true) {
                        counts[group_ids[pos] as usize] += 1;
                    }
                }
                AggCol::Counts(counts)
            }
            AggExpr::Sum(e) => {
                let nums = input.eval_nums(e)?;
                let mut totals = vec![0.0f64; n_groups];
                let mut seen = vec![false; n_groups];
                for (pos, x) in nums.iter().enumerate() {
                    if let Some(x) = x {
                        let g = group_ids[pos] as usize;
                        totals[g] += x;
                        seen[g] = true;
                    }
                }
                AggCol::Opt(
                    totals
                        .into_iter()
                        .zip(seen)
                        .map(|(tot, s)| if s { Some(tot) } else { None })
                        .collect(),
                )
            }
            AggExpr::SumIf { value, predicate } => {
                let flags = input.eval_bools(predicate)?;
                let mut sub_pos: Vec<u32> = Vec::new();
                for (pos, flag) in flags.iter().enumerate() {
                    if *flag == Some(true) {
                        sub_pos.push(pos as u32);
                    }
                }
                let nums = input.eval_nums_at(value, &sub_pos)?;
                let mut totals = vec![0.0f64; n_groups];
                // Every processed row marks its group as seen.
                let mut seen = vec![false; n_groups];
                for pos in 0..n {
                    seen[group_ids[pos] as usize] = true;
                }
                for (i, x) in nums.iter().enumerate() {
                    if let Some(x) = x {
                        totals[group_ids[sub_pos[i] as usize] as usize] += x;
                    }
                }
                AggCol::Opt(
                    totals
                        .into_iter()
                        .zip(seen)
                        .map(|(tot, s)| if s { Some(tot) } else { None })
                        .collect(),
                )
            }
            AggExpr::Avg(e) => {
                let nums = input.eval_nums(e)?;
                let mut totals = vec![0.0f64; n_groups];
                let mut counts = vec![0u64; n_groups];
                for (pos, x) in nums.iter().enumerate() {
                    if let Some(x) = x {
                        let g = group_ids[pos] as usize;
                        totals[g] += x;
                        counts[g] += 1;
                    }
                }
                AggCol::Opt(
                    totals
                        .into_iter()
                        .zip(counts)
                        .map(|(tot, c)| if c > 0 { Some(tot / c as f64) } else { None })
                        .collect(),
                )
            }
            AggExpr::Min(e) | AggExpr::Max(e) => {
                let is_min = matches!(agg, AggExpr::Min(_));
                let nums = input.eval_nums(e)?;
                let mut best: Vec<Option<f64>> = vec![None; n_groups];
                for (pos, x) in nums.iter().enumerate() {
                    if let Some(x) = x {
                        let g = group_ids[pos] as usize;
                        best[g] = Some(match best[g] {
                            None => *x,
                            Some(cur) => {
                                if is_min {
                                    cur.min(*x)
                                } else {
                                    cur.max(*x)
                                }
                            }
                        });
                    }
                }
                AggCol::Opt(best)
            }
        };
        agg_cols.push(col);
    }
    Ok(agg_cols)
}

/// Materializes accumulated aggregates into output columns, normalized
/// like `column_from_values` (all-NULL collapses to Int64, a fully valid
/// result drops its mask). Shared by both executors.
pub(crate) fn agg_output_columns(
    aggs: &[(String, AggExpr)],
    agg_cols: Vec<AggCol>,
) -> Vec<Column> {
    aggs.iter()
        .zip(agg_cols)
        .map(|((name, _), col)| match col {
            AggCol::Counts(v) => Column::new(
                name,
                ColumnData::Int64(v.into_iter().map(|c| c as i64).collect()),
            ),
            AggCol::Opt(v) => {
                if v.is_empty() {
                    Column::new(name, ColumnData::Int64(Vec::new()))
                } else if v.iter().all(|x| x.is_none()) {
                    Column::with_validity(
                        name,
                        ColumnData::Int64(vec![0; v.len()]),
                        vec![false; v.len()],
                    )
                } else if v.iter().all(|x| x.is_some()) {
                    Column::new(
                        name,
                        ColumnData::Float64(v.into_iter().map(|x| x.unwrap()).collect()),
                    )
                } else {
                    let validity: Vec<bool> = v.iter().map(|x| x.is_some()).collect();
                    Column::with_validity(
                        name,
                        ColumnData::Float64(
                            v.into_iter().map(|x| x.unwrap_or(0.0)).collect(),
                        ),
                        validity,
                    )
                }
            }
        })
        .collect()
}

pub(crate) fn aggregate_vec(
    b: &Batch<'_>,
    group_by: &[usize],
    aggs: &[(String, AggExpr)],
    degree: usize,
    scratch: &mut EvalScratch,
) -> Result<Table, EngineError> {
    let t = b.table();
    let sel = b.sel_ref();
    let sv = SelView::new(t, sel);
    let n = sv.len();

    // Assign group ids in first-seen order. The partitioned path shards
    // only this discovery step; the accumulation below is shared code over
    // identical `group_ids`, so its float additions happen in the same
    // order either way.
    let group_ids: Vec<u32>;
    let rep_rows: Vec<u32>; // first original row per group
    let n_groups;
    if group_by.is_empty() {
        // Global aggregation over empty input still yields one group.
        group_ids = vec![0; n];
        rep_rows = Vec::new();
        n_groups = 1;
    } else {
        let gcols: Vec<&Column> = if n > 0 {
            group_by.iter().map(|&g| t.column(g)).collect::<Result<_, _>>()?
        } else {
            Vec::new()
        };
        (group_ids, rep_rows) = if degree > 1 && n > 0 {
            partitioned_group_ids(b, &gcols, degree)
        } else {
            serial_group_ids(b, &gcols, n)
        };
        n_groups = rep_rows.len();
    }

    // Compute aggregates: one pass over the batch per aggregate,
    // accumulating straight from column slices into per-group states
    // (shared accumulator — see `accumulate_aggs`).
    let mut input = BatchAggInput { b, scratch };
    let agg_cols = accumulate_aggs(&mut input, aggs, &group_ids, n_groups, n)?;

    // Assemble: group-key columns (gathered from representative rows) then
    // aggregate columns, normalized like `column_from_values`.
    let mut columns = Vec::with_capacity(group_by.len() + aggs.len());
    for &g in group_by {
        columns.push(t.column(g)?.take_ids(&rep_rows));
    }
    columns.extend(agg_output_columns(aggs, agg_cols));
    Table::new("agg", columns)
}

// ----- vectorized sort -----

/// Stable-sorts the selection by the sort keys, comparing typed column
/// slices with `cmp_values` semantics (NULLs first, numerics as f64).
pub(crate) fn sort_sel(b: &Batch<'_>, by: &[(usize, bool)]) -> Result<Vec<u32>, EngineError> {
    let t = b.table();
    // Validate columns up-front so the comparator can't panic mid-sort.
    for &(c, _) in by {
        t.column(c)?;
    }
    let cols: Vec<&Column> = by.iter().map(|&(c, _)| t.column(c).expect("validated")).collect();
    let mut ids: Vec<u32> = match b.sel_ref() {
        Some(s) => s.to_vec(),
        None => (0..t.n_rows() as u32).collect(),
    };
    ids.sort_by(|&a, &b| {
        for (col, &(_, desc)) in cols.iter().zip(by.iter()) {
            let ord = cmp_col_rows(col, a as usize, b as usize);
            let ord = if desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(ids)
}

/// Typed row comparison matching [`cmp_values`]: NULLs first, strings and
/// booleans by `Ord`, numerics as f64 (non-comparable pairs = Equal).
fn cmp_col_rows(c: &Column, a: usize, b: usize) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (c.is_valid(a), c.is_valid(b)) {
        (false, false) => Ordering::Equal,
        (false, true) => Ordering::Less,
        (true, false) => Ordering::Greater,
        (true, true) => match &c.data {
            ColumnData::Utf8(v) => v[a].cmp(&v[b]),
            ColumnData::Bool(v) => v[a].cmp(&v[b]),
            ColumnData::Int64(v) => (v[a] as f64)
                .partial_cmp(&(v[b] as f64))
                .unwrap_or(Ordering::Equal),
            ColumnData::Float64(v) => v[a].partial_cmp(&v[b]).unwrap_or(Ordering::Equal),
            ColumnData::Date(v) => (v[a] as f64)
                .partial_cmp(&(v[b] as f64))
                .unwrap_or(Ordering::Equal),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Column, ColumnData};

    fn catalog() -> Catalog {
        let orders = Table::new(
            "orders",
            vec![
                Column::new("o_orderkey", ColumnData::Int64(vec![1, 2, 3, 4])),
                Column::new("o_custkey", ColumnData::Int64(vec![10, 20, 10, 30])),
                Column::new(
                    "o_priority",
                    ColumnData::Utf8(vec![
                        "1-URGENT".into(),
                        "3-MEDIUM".into(),
                        "2-HIGH".into(),
                        "5-LOW".into(),
                    ]),
                ),
            ],
        )
        .unwrap();
        let customer = Table::new(
            "customer",
            vec![
                Column::new("c_custkey", ColumnData::Int64(vec![10, 20, 40])),
                Column::new(
                    "c_name",
                    ColumnData::Utf8(vec!["alice".into(), "bob".into(), "carol".into()]),
                ),
            ],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.insert("orders", orders);
        cat.insert("customer", customer);
        cat
    }

    fn scan(t: &str) -> PhysicalPlan {
        PhysicalPlan::Scan {
            table: t.to_string(),
        }
    }

    #[test]
    fn scan_unknown_table() {
        let res = execute(&scan("nope"), &catalog());
        assert!(matches!(res, Err(EngineError::UnknownTable(_))));
    }

    #[test]
    fn pruned_scan_equals_filter_scan_but_charges_less() {
        let predicate = Expr::col(1).eq(Expr::int(10));
        let pruned = PhysicalPlan::PrunedScan {
            table: "orders".to_string(),
            predicate: predicate.clone(),
        };
        let filtered = PhysicalPlan::Filter {
            input: Box::new(scan("orders")),
            predicate,
        };
        let (out_p, prof_p) = execute(&pruned, &catalog()).unwrap();
        let (out_f, _) = execute(&filtered, &catalog()).unwrap();
        // Same semantics…
        assert_eq!(out_p.columns(), out_f.columns());
        // …but the pruned scan charges only the selected rows.
        assert_eq!(prof_p.scanned_rows(), 2);
        assert_eq!(prof_p.ops.len(), 1);
    }

    #[test]
    fn pruned_scan_unknown_table() {
        let plan = PhysicalPlan::PrunedScan {
            table: "nope".to_string(),
            predicate: Expr::col(0).ge(Expr::int(0)),
        };
        assert!(matches!(
            execute(&plan, &catalog()),
            Err(EngineError::UnknownTable(_))
        ));
    }

    #[test]
    fn filter_and_profile() {
        let plan = PhysicalPlan::Filter {
            input: Box::new(scan("orders")),
            predicate: Expr::col(1).eq(Expr::int(10)),
        };
        let (out, profile) = execute(&plan, &catalog()).unwrap();
        assert_eq!(out.n_rows(), 2);
        assert_eq!(profile.ops.len(), 2);
        assert_eq!(profile.scanned_rows(), 4);
        assert_eq!(profile.ops[1].kind, OpKind::Filter);
        assert_eq!(profile.ops[1].rows_out, 2);
    }

    #[test]
    fn project_computes_expressions() {
        let plan = PhysicalPlan::Project {
            input: Box::new(scan("orders")),
            exprs: vec![
                ("key2".to_string(), Expr::col(0).mul(Expr::int(2))),
                ("is_urgent".to_string(), Expr::col(2).eq(Expr::str("1-URGENT"))),
            ],
        };
        let (out, _) = execute(&plan, &catalog()).unwrap();
        assert_eq!(out.n_columns(), 2);
        assert_eq!(out.row(0), vec![Value::Int64(2), Value::Bool(true)]);
        assert_eq!(out.row(1), vec![Value::Int64(4), Value::Bool(false)]);
    }

    #[test]
    fn inner_join_matches_keys() {
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(scan("customer")),
            right: Box::new(scan("orders")),
            left_keys: vec![0],
            right_keys: vec![1],
            join_type: JoinType::Inner,
        };
        let (out, profile) = execute(&plan, &catalog()).unwrap();
        // alice(10) x 2 orders + bob(20) x 1 = 3 rows; carol unmatched.
        assert_eq!(out.n_rows(), 3);
        assert_eq!(profile.join_input_rows(), 7);
        // Right-side duplicate of c_custkey is prefixed... names differ here,
        // so both originals survive.
        assert!(out.column_by_name("o_orderkey").is_ok());
    }

    #[test]
    fn left_outer_join_preserves_unmatched() {
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(scan("customer")),
            right: Box::new(scan("orders")),
            left_keys: vec![0],
            right_keys: vec![1],
            join_type: JoinType::LeftOuter,
        };
        let (out, _) = execute(&plan, &catalog()).unwrap();
        assert_eq!(out.n_rows(), 4); // 3 matches + carol with NULLs
        let carol_row = (0..out.n_rows())
            .find(|&i| out.row(i)[1] == Value::Utf8("carol".into()))
            .unwrap();
        assert_eq!(out.row(carol_row)[2], Value::Null);
    }

    #[test]
    fn aggregate_count_per_group() {
        // COUNT(orders) per custkey.
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(scan("orders")),
            group_by: vec![1],
            aggs: vec![("n".to_string(), AggExpr::Count)],
        };
        let (out, _) = execute(&plan, &catalog()).unwrap();
        assert_eq!(out.n_rows(), 3);
        // First-seen order: 10, 20, 30.
        assert_eq!(out.row(0), vec![Value::Int64(10), Value::Int64(2)]);
        assert_eq!(out.row(1), vec![Value::Int64(20), Value::Int64(1)]);
    }

    #[test]
    fn global_aggregates_and_countif() {
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(scan("orders")),
            group_by: vec![],
            aggs: vec![
                ("n".to_string(), AggExpr::Count),
                (
                    "high".to_string(),
                    AggExpr::CountIf(Expr::col(2).in_list(vec![
                        Value::Utf8("1-URGENT".into()),
                        Value::Utf8("2-HIGH".into()),
                    ])),
                ),
                ("sum_key".to_string(), AggExpr::Sum(Expr::col(0))),
                ("avg_key".to_string(), AggExpr::Avg(Expr::col(0))),
                ("min_key".to_string(), AggExpr::Min(Expr::col(0))),
                ("max_key".to_string(), AggExpr::Max(Expr::col(0))),
            ],
        };
        let (out, _) = execute(&plan, &catalog()).unwrap();
        assert_eq!(out.n_rows(), 1);
        assert_eq!(
            out.row(0),
            vec![
                Value::Int64(4),
                Value::Int64(2),
                Value::Float64(10.0),
                Value::Float64(2.5),
                Value::Float64(1.0),
                Value::Float64(4.0),
            ]
        );
    }

    #[test]
    fn sumif_conditional_total() {
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(scan("orders")),
            group_by: vec![],
            aggs: vec![(
                "urgent_keys".to_string(),
                AggExpr::SumIf {
                    value: Expr::col(0),
                    predicate: Expr::col(2).eq(Expr::str("1-URGENT")),
                },
            )],
        };
        let (out, _) = execute(&plan, &catalog()).unwrap();
        assert_eq!(out.row(0), vec![Value::Float64(1.0)]);
    }

    #[test]
    fn empty_global_aggregate_has_one_row() {
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan("orders")),
                predicate: Expr::col(0).gt(Expr::int(99)),
            }),
            group_by: vec![],
            aggs: vec![("n".to_string(), AggExpr::Count)],
        };
        let (out, _) = execute(&plan, &catalog()).unwrap();
        assert_eq!(out.n_rows(), 1);
        assert_eq!(out.row(0), vec![Value::Int64(0)]);
    }

    #[test]
    fn sort_and_limit() {
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Sort {
                input: Box::new(scan("orders")),
                by: vec![(1, false), (0, true)],
            }),
            n: 2,
        };
        let (out, _) = execute(&plan, &catalog()).unwrap();
        assert_eq!(out.n_rows(), 2);
        // custkey 10 group first, orderkey desc inside: 3 then 1.
        assert_eq!(out.row(0)[0], Value::Int64(3));
        assert_eq!(out.row(1)[0], Value::Int64(1));
    }

    #[test]
    fn join_null_keys_never_match() {
        let mut cat = catalog();
        let t = Table::new(
            "nullkey",
            vec![Column::with_validity(
                "k",
                ColumnData::Int64(vec![10, 0]),
                vec![true, false],
            )],
        )
        .unwrap();
        cat.insert("nullkey", t);
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(scan("nullkey")),
            right: Box::new(scan("customer")),
            left_keys: vec![0],
            right_keys: vec![0],
            join_type: JoinType::Inner,
        };
        let (out, _) = execute(&plan, &cat).unwrap();
        assert_eq!(out.n_rows(), 1); // only the non-NULL 10 matches
    }

    #[test]
    fn partitioned_execution_is_bit_identical_to_serial() {
        let mut cat = catalog();
        // A NULL-bearing key column exercises the null routing of both the
        // build and probe partitioners.
        cat.insert(
            "nullkey",
            Table::new(
                "nullkey",
                vec![
                    Column::with_validity(
                        "k",
                        ColumnData::Int64(vec![10, 0, 20, 0, 10]),
                        vec![true, false, true, false, true],
                    ),
                    Column::new("v", ColumnData::Int64(vec![1, 2, 3, 4, 5])),
                ],
            )
            .unwrap(),
        );
        let plans = vec![
            PhysicalPlan::HashJoin {
                left: Box::new(scan("customer")),
                right: Box::new(scan("orders")),
                left_keys: vec![0],
                right_keys: vec![1],
                join_type: JoinType::Inner,
            },
            PhysicalPlan::HashJoin {
                left: Box::new(scan("nullkey")),
                right: Box::new(scan("orders")),
                left_keys: vec![0],
                right_keys: vec![1],
                join_type: JoinType::LeftOuter,
            },
            PhysicalPlan::Aggregate {
                input: Box::new(scan("nullkey")),
                group_by: vec![0],
                aggs: vec![
                    ("n".to_string(), AggExpr::Count),
                    ("s".to_string(), AggExpr::Sum(Expr::col(1))),
                ],
            },
            // Join feeding grouped aggregation feeding sort — the combine
            // shape of the paper's queries.
            PhysicalPlan::Sort {
                input: Box::new(PhysicalPlan::Aggregate {
                    input: Box::new(PhysicalPlan::HashJoin {
                        left: Box::new(scan("customer")),
                        right: Box::new(scan("orders")),
                        left_keys: vec![0],
                        right_keys: vec![1],
                        join_type: JoinType::LeftOuter,
                    }),
                    group_by: vec![0],
                    aggs: vec![("n".to_string(), AggExpr::Count)],
                }),
                by: vec![(1, true), (0, false)],
            },
            // Empty inputs and a global aggregate.
            PhysicalPlan::Aggregate {
                input: Box::new(PhysicalPlan::Filter {
                    input: Box::new(scan("orders")),
                    predicate: Expr::col(0).gt(Expr::int(99)),
                }),
                group_by: vec![1],
                aggs: vec![("n".to_string(), AggExpr::Count)],
            },
        ];
        for plan in &plans {
            let (serial, serial_profile) = execute(plan, &cat).unwrap();
            // Degrees beyond the cap clamp instead of over-spawning.
            for degree in [2usize, 3, 4, 7, 64, 1000] {
                let (part, part_profile) =
                    execute_with_partitions(plan, &cat, degree).unwrap();
                assert_eq!(part, serial, "table drifted at degree {degree}");
                assert_eq!(
                    part_profile, serial_profile,
                    "work profile drifted at degree {degree}"
                );
                assert_eq!(part.fingerprint(), serial.fingerprint());
            }
        }
        // Degree 0/1 are the serial path.
        for degree in [0usize, 1] {
            let (t, p) = execute_with_partitions(&plans[0], &cat, degree).unwrap();
            let (s, sp) = execute(&plans[0], &cat).unwrap();
            assert_eq!((t, p), (s, sp));
        }
    }

    #[test]
    fn work_profile_aggregates() {
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::HashJoin {
                left: Box::new(scan("customer")),
                right: Box::new(scan("orders")),
                left_keys: vec![0],
                right_keys: vec![1],
                join_type: JoinType::Inner,
            }),
            group_by: vec![0],
            aggs: vec![("n".to_string(), AggExpr::Count)],
        };
        let (_, profile) = execute(&plan, &catalog()).unwrap();
        assert_eq!(profile.scanned_rows(), 7);
        assert!(profile.agg_input_rows() > 0);
        assert!(profile.peak_intermediate_bytes() > 0);
        assert!(profile.total_intermediate_bytes() >= profile.peak_intermediate_bytes());
    }
}
