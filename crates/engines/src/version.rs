//! Versioned copy-on-write catalogs — the live-data half of the data plane.
//!
//! The paper's hospital federation never stops ingesting: new patient
//! records and lineitems arrive *while* tenants query. [`Catalog`] is
//! immutable by design (that is what lets every worker and fragment share
//! it without locks), so liveness comes from a layer above it:
//!
//! * [`ChunkedTable`] — an append-only table as an ordered list of
//!   immutable [`Arc<Table>`] chunks. Appending a delta batch builds a new
//!   `ChunkedTable` whose prior chunks are `Arc::clone`d handles of the old
//!   one: **zero bytes of prior data are recopied** — prior chunks carry
//!   forward as handles by construction ([`AppendStats::shared_bytes`]
//!   counts them). The byte cost that *can* recur is `pin()`-time
//!   compaction, so that is what gets measured:
//!   [`ChunkedTable::compaction_bytes`] reports the bytes materialized by
//!   [`Table::concat`], and the ingest bench gates that repeated pins of
//!   one version pay it at most once.
//! * [`CatalogVersion`] — one immutable published state of every table.
//!   [`CatalogVersion::pin`] lends it out as a plain [`Catalog`] of
//!   `Arc<Table>` snapshots, so the whole existing execution stack
//!   (executors, cost model, scheduler, runtime) reads a version through
//!   the same zero-copy seeding path it always used. A multi-chunk table
//!   compacts into one contiguous table **once per version** (cached,
//!   shared by every query pinning that version); single-chunk tables hand
//!   out their chunk directly.
//! * [`VersionedCatalog`] — the mutable head: `append`/`append_batch` build
//!   the next version copy-on-write (handle copies for untouched tables)
//!   and publish it atomically. Readers that pinned an older version keep
//!   their snapshot untouched — **snapshot isolation** — while later
//!   admissions observe the fresh rows.

use crate::catalog::Catalog;
use crate::data::Table;
use crate::error::EngineError;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Source of process-unique [`ChunkedTable`] identities (see
/// [`ChunkedTable::id`]).
static NEXT_TABLE_ID: AtomicU64 = AtomicU64::new(1);

fn next_table_id() -> u64 {
    NEXT_TABLE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Byte accounting of one delta append (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppendStats {
    /// Rows in the appended delta chunk.
    pub delta_rows: usize,
    /// Estimated bytes of the appended delta chunk (the only new data).
    pub delta_bytes: u64,
    /// Bytes of prior chunks carried into the new table by `Arc::clone`
    /// (handle copies, never byte copies — the copy-on-write invariant).
    pub shared_bytes: u64,
}

impl AppendStats {
    fn merge(&mut self, other: AppendStats) {
        self.delta_rows += other.delta_rows;
        self.delta_bytes += other.delta_bytes;
        self.shared_bytes += other.shared_bytes;
    }
}

/// An append-only table: immutable chunks sharing one schema.
pub struct ChunkedTable {
    name: String,
    /// Process-unique content identity (see [`ChunkedTable::id`]).
    id: u64,
    chunks: Vec<Arc<Table>>,
    n_rows: usize,
    /// The compacted single-table view, materialized at most once per
    /// version and shared by every pin of that version. Pre-seeded for
    /// single-chunk tables, so never-appended tables never compact.
    snapshot: OnceLock<Arc<Table>>,
}

impl fmt::Debug for ChunkedTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChunkedTable")
            .field("name", &self.name)
            .field("chunks", &self.chunks.len())
            .field("n_rows", &self.n_rows)
            .field("compacted", &self.snapshot.get().is_some())
            .finish()
    }
}

impl ChunkedTable {
    /// Wraps an already-shared table as a one-chunk chunked table (the
    /// snapshot is the chunk itself — no compaction ever needed).
    pub fn from_shared(name: impl Into<String>, table: Arc<Table>) -> Self {
        let n_rows = table.n_rows();
        let snapshot = OnceLock::new();
        let _ = snapshot.set(Arc::clone(&table));
        ChunkedTable {
            name: name.into(),
            id: next_table_id(),
            chunks: vec![table],
            n_rows,
            snapshot,
        }
    }

    /// Builds a chunked table directly from pre-built chunks — the
    /// streaming generator's entry point (no materialized intermediate
    /// table, no compaction debt). All chunks must share one schema;
    /// at least one chunk is required (a zero-row chunk is fine). A
    /// single-chunk table pre-seeds its snapshot like
    /// [`ChunkedTable::from_shared`], so it never pays compaction either.
    pub fn from_chunks(
        name: impl Into<String>,
        chunks: Vec<Arc<Table>>,
    ) -> Result<ChunkedTable, EngineError> {
        let name = name.into();
        let base = chunks.first().ok_or_else(|| EngineError::TypeMismatch {
            context: format!("chunked table {name:?} needs at least one chunk"),
        })?;
        for c in &chunks[1..] {
            if c.schema() != base.schema() {
                return Err(EngineError::TypeMismatch {
                    context: format!(
                        "chunk for table {:?} has schema {:?}, expected {:?}",
                        name,
                        c.schema(),
                        base.schema()
                    ),
                });
            }
        }
        let snapshot = OnceLock::new();
        if chunks.len() == 1 {
            let _ = snapshot.set(Arc::clone(&chunks[0]));
        }
        let n_rows = chunks.iter().map(|c| c.n_rows()).sum();
        Ok(ChunkedTable {
            name,
            id: next_table_id(),
            chunks,
            n_rows,
            snapshot,
        })
    }

    /// Process-unique identity of this table's *content state*.
    ///
    /// A fresh id is minted whenever a `ChunkedTable` is constructed — and
    /// appending builds a new table — so two handles share an id iff they
    /// are the same `Arc`'d table carried across versions untouched (which
    /// copy-on-write publishes guarantee is content-identical). That makes
    /// `(name, id)` a sound cache-key component: equal ids imply equal
    /// rows, and any publish that touches a table retires its id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The table's logical name (chunk tables may carry their own names).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Logical row count across all chunks.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of immutable chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The chunk handles, in append order.
    pub fn chunks(&self) -> &[Arc<Table>] {
        &self.chunks
    }

    /// Estimated bytes across all chunks.
    pub fn estimated_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.estimated_bytes()).sum()
    }

    /// Builds the successor table: all prior chunks shared by `Arc::clone`,
    /// plus `delta` as a new chunk. The delta's schema must match; its rows
    /// append after all existing rows.
    ///
    /// Prior chunks carry forward as handle copies *by construction* —
    /// `shared_bytes` reports their volume. (An earlier revision compared
    /// the cloned handles against their own sources by pointer identity;
    /// that gate was vacuous — freshly `Arc::clone`d handles are
    /// pointer-equal to their source by definition — so the recurring-cost
    /// measurement now lives at `pin()` time instead: see
    /// [`ChunkedTable::compaction_bytes`].)
    pub fn append(&self, delta: Table) -> Result<(ChunkedTable, AppendStats), EngineError> {
        let base = self.chunks.first().expect("a chunked table has >= 1 chunk");
        if delta.schema() != base.schema() {
            return Err(EngineError::TypeMismatch {
                context: format!(
                    "delta for table {:?} has schema {:?}, expected {:?}",
                    self.name,
                    delta.schema(),
                    base.schema()
                ),
            });
        }
        let mut stats = AppendStats {
            delta_rows: delta.n_rows(),
            delta_bytes: delta.estimated_bytes(),
            ..AppendStats::default()
        };
        let mut chunks = Vec::with_capacity(self.chunks.len() + 1);
        chunks.extend(self.chunks.iter().map(Arc::clone));
        stats.shared_bytes = self.estimated_bytes();
        let n_rows = self.n_rows + delta.n_rows();
        chunks.push(Arc::new(delta));
        Ok((
            ChunkedTable {
                name: self.name.clone(),
                id: next_table_id(),
                chunks,
                n_rows,
                snapshot: OnceLock::new(),
            },
            stats,
        ))
    }

    /// The contiguous single-table view of this chunked table.
    ///
    /// Single-chunk tables return their chunk handle (`Arc::clone`, zero
    /// copy). Multi-chunk tables compact via [`Table::concat`] exactly once
    /// — the result is cached in the version and every later pin shares it.
    pub fn snapshot(&self) -> Arc<Table> {
        Arc::clone(self.snapshot.get_or_init(|| {
            let parts: Vec<&Table> = self.chunks.iter().map(Arc::as_ref).collect();
            Arc::new(
                Table::concat(&self.name, &parts)
                    .expect("chunks of one table share a schema by construction"),
            )
        }))
    }

    /// Whether the compacted view has been materialized (or never needed).
    pub fn is_compacted(&self) -> bool {
        self.snapshot.get().is_some()
    }

    /// Bytes materialized by `pin()`-time compaction of this table — the
    /// one byte cost the copy-on-write store actually pays per version.
    ///
    /// Single-chunk tables (never appended, or wrapping a pre-shared
    /// snapshot) report 0: their snapshot *is* their chunk, no bytes move.
    /// A multi-chunk table reports its snapshot's size once the snapshot
    /// has been built, and 0 before — so "repeated pins compact at most
    /// once" is observable: pin a version twice and this number must not
    /// grow. The ingest bench gates exactly that.
    pub fn compaction_bytes(&self) -> u64 {
        if self.chunks.len() > 1 {
            self.snapshot.get().map_or(0, |s| s.estimated_bytes())
        } else {
            0
        }
    }
}

/// One immutable published state of the whole data store.
pub struct CatalogVersion {
    version: u64,
    tables: HashMap<String, Arc<ChunkedTable>>,
}

impl fmt::Debug for CatalogVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CatalogVersion")
            .field("version", &self.version)
            .field("tables", &self.tables.len())
            .field("rows", &self.total_rows())
            .finish()
    }
}

impl CatalogVersion {
    /// Builds a standalone version 0 directly from chunked tables — how a
    /// streaming generator publishes a dataset that was never materialized
    /// as whole tables (so chunk-native scans can run it without any
    /// `pin()` compaction).
    pub fn from_chunked(tables: Vec<ChunkedTable>) -> CatalogVersion {
        CatalogVersion {
            version: 0,
            tables: tables
                .into_iter()
                .map(|t| (t.name.clone(), Arc::new(t)))
                .collect(),
        }
    }

    /// Monotonically increasing version number (0 = the base catalog).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The chunked table registered under `name`.
    pub fn table(&self, name: &str) -> Option<&Arc<ChunkedTable>> {
        self.tables.get(name)
    }

    /// Row count of one table at this version.
    pub fn table_rows(&self, name: &str) -> Option<usize> {
        self.tables.get(name).map(|t| t.n_rows())
    }

    /// Total rows across all tables at this version.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.n_rows()).sum()
    }

    /// Registered table names in arbitrary order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// The `(name → id)` identity map of this version's tables — the
    /// table-identity component of result-cache keys (see
    /// [`ChunkedTable::id`]). Tables untouched since an earlier version
    /// keep their id, so content-identical pins key identically across
    /// versions.
    pub fn table_ids(&self) -> HashMap<String, u64> {
        self.tables
            .iter()
            .map(|(name, table)| (name.clone(), table.id()))
            .collect()
    }

    /// Lends this version out as a plain execution [`Catalog`]: one
    /// `Arc<Table>` snapshot per table, compacted at most once per version.
    /// Every downstream consumer (executors, cost model, scheduler,
    /// runtime workers) reads the version through the same zero-copy
    /// `Arc`-seeding path as before — `catalog_cloned_bytes` stays 0.
    pub fn pin(&self) -> Catalog {
        self.tables
            .iter()
            .map(|(name, table)| (name.clone(), table.snapshot()))
            .collect()
    }

    /// Total bytes materialized compacting this version's multi-chunk
    /// tables so far (see [`ChunkedTable::compaction_bytes`]). Stable under
    /// repeated [`CatalogVersion::pin`] calls — compaction happens at most
    /// once per version.
    pub fn compaction_bytes(&self) -> u64 {
        self.tables.values().map(|t| t.compaction_bytes()).sum()
    }
}

/// Cumulative ingest accounting of a [`VersionedCatalog`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Delta chunks appended.
    pub appends: u64,
    /// Versions published (batch appends publish one version).
    pub versions_published: u64,
    /// Rows ingested across all deltas.
    pub rows_ingested: u64,
    /// Bytes ingested across all deltas (the only data ever copied in).
    pub bytes_ingested: u64,
    /// Prior-chunk bytes carried forward by `Arc::clone` across all appends.
    pub bytes_shared: u64,
}

/// A receipt for one published ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReceipt {
    /// The version the ingest published (visible to admissions from now on).
    pub version: u64,
    /// Byte accounting of the append(s) behind it.
    pub stats: AppendStats,
}

/// The mutable head of the versioned store (see the module docs).
///
/// All mutation goes through one lock; readers never take it — they hold
/// `Arc<CatalogVersion>` handles obtained at admission time and keep their
/// snapshot for as long as they need it.
pub struct VersionedCatalog {
    current: Mutex<Arc<CatalogVersion>>,
    stats: Mutex<IngestStats>,
}

impl fmt::Debug for VersionedCatalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VersionedCatalog")
            .field("current", &*self.current())
            .finish()
    }
}

impl VersionedCatalog {
    /// Version 0: every table of `base` becomes a one-chunk chunked table
    /// (handle copies — no table bytes move).
    pub fn new(base: Catalog) -> Self {
        let tables = base
            .iter()
            .map(|(name, table)| {
                (
                    name.to_string(),
                    Arc::new(ChunkedTable::from_shared(name, Arc::clone(table))),
                )
            })
            .collect();
        VersionedCatalog {
            current: Mutex::new(Arc::new(CatalogVersion { version: 0, tables })),
            stats: Mutex::new(IngestStats::default()),
        }
    }

    /// The currently published version (an atomic handle read; the version
    /// itself is immutable).
    pub fn current(&self) -> Arc<CatalogVersion> {
        Arc::clone(&self.current.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// The currently published version number.
    pub fn version(&self) -> u64 {
        self.current().version()
    }

    /// Appends one delta batch to `table` and publishes the successor
    /// version. Prior chunks — and every *other* table — are carried by
    /// `Arc::clone`; queries pinned to older versions are unaffected.
    pub fn append(&self, table: &str, delta: Table) -> Result<IngestReceipt, EngineError> {
        self.append_batch(vec![(table.to_string(), delta)])
    }

    /// Appends deltas to several tables and publishes them as **one**
    /// atomic version bump — an admission observes either none or all of
    /// the batch (new orders never appear without their lineitems).
    pub fn append_batch(
        &self,
        deltas: Vec<(String, Table)>,
    ) -> Result<IngestReceipt, EngineError> {
        self.append_batch_traced(deltas).map(|(receipt, _)| receipt)
    }

    /// [`VersionedCatalog::append_batch`], additionally returning the
    /// `(name, id)` pairs of the table states this publish *superseded* —
    /// exactly what a result cache keyed on table identity must
    /// invalidate. Captured inside the head lock, so the trace is
    /// race-free against concurrent publishes.
    pub fn append_batch_traced(
        &self,
        deltas: Vec<(String, Table)>,
    ) -> Result<(IngestReceipt, Vec<(String, u64)>), EngineError> {
        let mut head = self
            .current
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut tables: HashMap<String, Arc<ChunkedTable>> = head
            .tables
            .iter()
            .map(|(name, table)| (name.clone(), Arc::clone(table)))
            .collect();
        let mut batch = AppendStats::default();
        let mut appends = 0u64;
        let mut superseded = Vec::new();
        for (name, delta) in deltas {
            let existing = tables
                .get(&name)
                .ok_or_else(|| EngineError::UnknownTable(name.clone()))?;
            let (next, stats) = existing.append(delta)?;
            superseded.push((name.clone(), existing.id()));
            batch.merge(stats);
            appends += 1;
            tables.insert(name, Arc::new(next));
        }
        let version = head.version + 1;
        *head = Arc::new(CatalogVersion { version, tables });
        drop(head);
        let mut stats = self
            .stats
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        stats.appends += appends;
        stats.versions_published += 1;
        stats.rows_ingested += batch.delta_rows as u64;
        stats.bytes_ingested += batch.delta_bytes;
        stats.bytes_shared += batch.shared_bytes;
        Ok((
            IngestReceipt {
                version,
                stats: batch,
            },
            superseded,
        ))
    }

    /// Cumulative ingest accounting since construction.
    pub fn stats(&self) -> IngestStats {
        *self.stats.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Column, ColumnData};

    fn table(name: &str, lo: i64, hi: i64) -> Table {
        Table::new(
            name,
            vec![
                Column::new("k", ColumnData::Int64((lo..hi).collect())),
                Column::new(
                    "s",
                    ColumnData::Utf8((lo..hi).map(|i| format!("v{i}")).collect()),
                ),
            ],
        )
        .unwrap()
    }

    fn base() -> Catalog {
        let mut cat = Catalog::new();
        cat.insert("t", table("t", 0, 10));
        cat.insert("fixed", table("fixed", 0, 3));
        cat
    }

    #[test]
    fn append_shares_every_prior_chunk() {
        let versioned = VersionedCatalog::new(base());
        let v0 = versioned.current();
        let receipt = versioned.append("t", table("t", 10, 15)).unwrap();
        assert_eq!(receipt.version, 1);
        assert_eq!(receipt.stats.delta_rows, 5);
        assert!(receipt.stats.shared_bytes > 0);

        let v1 = versioned.current();
        assert_eq!(v1.version(), 1);
        assert_eq!(v1.table_rows("t"), Some(15));
        // Prior chunk is pointer-identical across versions.
        assert!(Arc::ptr_eq(
            &v0.table("t").unwrap().chunks()[0],
            &v1.table("t").unwrap().chunks()[0]
        ));
        // Untouched tables share their whole ChunkedTable.
        assert!(Arc::ptr_eq(
            v0.table("fixed").unwrap(),
            v1.table("fixed").unwrap()
        ));
        // The old version still sees the old rows.
        assert_eq!(v0.table_rows("t"), Some(10));
    }

    #[test]
    fn table_ids_track_content_identity_across_versions() {
        let versioned = VersionedCatalog::new(base());
        let v0 = versioned.current();
        let ids0 = v0.table_ids();
        let (receipt, superseded) = versioned
            .append_batch_traced(vec![("t".to_string(), table("t", 10, 12))])
            .unwrap();
        assert_eq!(receipt.version, 1);
        // The publish reports exactly the superseded (name, id) pair.
        assert_eq!(superseded, vec![("t".to_string(), ids0["t"])]);
        let ids1 = versioned.current().table_ids();
        // Appended table retires its id; untouched table keeps it — so
        // cache entries over "fixed" keep hitting across the publish while
        // entries over "t" can never be served to a v1 admission.
        assert_ne!(ids1["t"], ids0["t"]);
        assert_eq!(ids1["fixed"], ids0["fixed"]);
        // Ids are unique across distinct tables too.
        assert_ne!(ids0["t"], ids0["fixed"]);
    }

    #[test]
    fn pin_compacts_once_per_version_and_matches_contiguous() {
        let versioned = VersionedCatalog::new(base());
        versioned.append("t", table("t", 10, 14)).unwrap();
        let v1 = versioned.current();
        assert!(!v1.table("t").unwrap().is_compacted());
        let pinned_a = v1.pin();
        assert!(v1.table("t").unwrap().is_compacted());
        let pinned_b = v1.pin();
        // Both pins share one compaction.
        assert!(Arc::ptr_eq(
            pinned_a.get_shared("t").unwrap(),
            pinned_b.get_shared("t").unwrap()
        ));
        // Never-appended tables pin their original chunk, zero copies.
        assert!(Arc::ptr_eq(
            pinned_a.get_shared("fixed").unwrap(),
            &v1.table("fixed").unwrap().chunks()[0]
        ));
        // Compaction is bit-identical to generating contiguously.
        assert_eq!(
            pinned_a.get("t").unwrap().fingerprint(),
            table("t", 0, 14).fingerprint()
        );
    }

    #[test]
    fn batch_append_publishes_one_atomic_version() {
        let versioned = VersionedCatalog::new(base());
        let receipt = versioned
            .append_batch(vec![
                ("t".to_string(), table("t", 10, 12)),
                ("fixed".to_string(), table("fixed", 3, 4)),
            ])
            .unwrap();
        assert_eq!(receipt.version, 1);
        assert_eq!(versioned.version(), 1);
        let stats = versioned.stats();
        assert_eq!(stats.appends, 2);
        assert_eq!(stats.versions_published, 1);
        assert_eq!(stats.rows_ingested, 3);
    }

    #[test]
    fn schema_and_name_errors_surface() {
        let versioned = VersionedCatalog::new(base());
        let bad_schema = Table::new(
            "t",
            vec![Column::new("k", ColumnData::Float64(vec![1.0]))],
        )
        .unwrap();
        assert!(matches!(
            versioned.append("t", bad_schema),
            Err(EngineError::TypeMismatch { .. })
        ));
        assert!(matches!(
            versioned.append("ghost", table("ghost", 0, 1)),
            Err(EngineError::UnknownTable(_))
        ));
        // Failed appends publish nothing.
        assert_eq!(versioned.version(), 0);
        assert_eq!(versioned.stats(), IngestStats::default());
    }

    #[test]
    fn concurrent_ingest_and_pins_stay_isolated() {
        let versioned = VersionedCatalog::new(base());
        std::thread::scope(|scope| {
            for round in 0..4 {
                let versioned = &versioned;
                scope.spawn(move || {
                    let lo = 10 + round * 3;
                    versioned.append("t", table("t", lo, lo + 3)).unwrap();
                });
                scope.spawn(move || {
                    let v = versioned.current();
                    let rows = v.table_rows("t").unwrap();
                    // A pin observes exactly its version's rows, no matter
                    // how many ingests race past it.
                    assert_eq!(v.pin().get("t").unwrap().n_rows(), rows);
                });
            }
        });
        assert_eq!(versioned.version(), 4);
        assert_eq!(versioned.current().table_rows("t"), Some(22));
    }

    #[test]
    fn compaction_bytes_count_once_per_version() {
        let versioned = VersionedCatalog::new(base());
        let v0 = versioned.current();
        // Version 0 is all single-chunk tables: nothing to compact, ever.
        let _ = v0.pin();
        assert_eq!(v0.compaction_bytes(), 0);

        versioned.append("t", table("t", 10, 14)).unwrap();
        let v1 = versioned.current();
        // Before the first pin nothing has been materialized.
        assert_eq!(v1.compaction_bytes(), 0);
        let _ = v1.pin();
        let after_first = v1.compaction_bytes();
        assert!(after_first > 0);
        // Untouched single-chunk tables contribute nothing.
        assert_eq!(v1.table("fixed").unwrap().compaction_bytes(), 0);
        // Repeated pins share the cached snapshot: the number must not grow.
        let _ = v1.pin();
        let _ = v1.pin();
        assert_eq!(v1.compaction_bytes(), after_first);
    }
}
