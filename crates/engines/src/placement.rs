//! Data placement: which site and engine hosts each base table.
//!
//! In Example 2.1 the `Patient` table lives in cloud A under Hive while
//! `GeneralInfo` lives in cloud B under PostgreSQL. Placement is an input to
//! plan enumeration — scans are pinned to the hosting site, and only the
//! shuffle/join location is a degree of freedom.

use crate::engine::EngineKind;
use crate::error::EngineError;
use midas_cloud::SiteId;
use std::collections::HashMap;

/// Where one table lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableLocation {
    /// Hosting federation site.
    pub site: SiteId,
    /// Engine managing the table there.
    pub engine: EngineKind,
}

/// The federation-wide table → location map.
#[derive(Debug, Clone, Default)]
pub struct Placement {
    locations: HashMap<String, TableLocation>,
}

impl Placement {
    /// An empty placement.
    pub fn new() -> Self {
        Placement::default()
    }

    /// Registers (or moves) a table.
    pub fn place(&mut self, table: &str, site: SiteId, engine: EngineKind) {
        self.locations
            .insert(table.to_string(), TableLocation { site, engine });
    }

    /// Looks a table up.
    pub fn locate(&self, table: &str) -> Result<TableLocation, EngineError> {
        self.locations
            .get(table)
            .copied()
            .ok_or_else(|| EngineError::UnknownTable(table.to_string()))
    }

    /// All placed table names.
    pub fn tables(&self) -> impl Iterator<Item = &str> {
        self.locations.keys().map(|s| s.as_str())
    }

    /// The distinct sites hosting at least one table.
    pub fn sites(&self) -> Vec<SiteId> {
        let mut sites: Vec<SiteId> = self.locations.values().map(|l| l.site).collect();
        sites.sort_unstable();
        sites.dedup();
        sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_and_locate() {
        let mut p = Placement::new();
        p.place("patient", SiteId(0), EngineKind::Hive);
        p.place("generalinfo", SiteId(1), EngineKind::PostgreSql);
        let loc = p.locate("patient").unwrap();
        assert_eq!(loc.site, SiteId(0));
        assert_eq!(loc.engine, EngineKind::Hive);
        assert!(p.locate("nope").is_err());
    }

    #[test]
    fn replacement_moves_the_table() {
        let mut p = Placement::new();
        p.place("t", SiteId(0), EngineKind::Hive);
        p.place("t", SiteId(1), EngineKind::Spark);
        assert_eq!(p.locate("t").unwrap().site, SiteId(1));
    }

    #[test]
    fn sites_are_deduped() {
        let mut p = Placement::new();
        p.place("a", SiteId(1), EngineKind::Hive);
        p.place("b", SiteId(0), EngineKind::Spark);
        p.place("c", SiteId(1), EngineKind::PostgreSql);
        assert_eq!(p.sites(), vec![SiteId(0), SiteId(1)]);
        assert_eq!(p.tables().count(), 3);
    }
}
