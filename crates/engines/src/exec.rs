//! The federated executor: run fragments, simulate time and money.
//!
//! A federated query is a sequence of *fragments*, each pinned to a site,
//! engine and VM allocation. Fragments exchange data by name: a fragment's
//! output is visible to later fragments as the table `@frag<N>`. Running a
//! fragment does real row processing and then converts the measured
//! [`WorkProfile`] into simulated wall-clock time under the engine
//! profile, VM parallelism, current site load and noise — plus billed
//! money under the site's pricing model, including egress for cross-site
//! fragment inputs.
//!
//! **Morsel-driven relational phase.** Fragment plans run through the
//! fused executor ([`crate::fused::execute_fused_with_partitions`]):
//! filters and projections stream over cache-resident morsels with
//! per-operator compiled kernel plans and pooled scratch buffers, and
//! `Aggregate ∘ Filter* ∘ HashJoin` shapes consume the join as index
//! triples, gathering only referenced columns. This is purely an engine
//! substitution — results and work profiles are bit-identical to
//! [`crate::ops::execute_with_partitions`] (the `fused_differential`
//! suite pins this), so every simulation quantity derived from a
//! profile is unchanged.
//!
//! The data plane is zero-copy: base tables live in a shared
//! [`Catalog`] of `Arc<Table>` entries, the per-query execution catalog is
//! seeded by `Arc::clone` (a refcount bump, never a byte copy — pinned by
//! [`ExecutionOutcome::catalog_cloned_bytes`]), and fragment outputs enter
//! the catalog `Arc::new`-ed exactly once. Because the catalog is immutable
//! during a wave of independent fragments, those fragments can execute
//! *concurrently* (see [`SharedExecutor::with_parallel_fragments`]) while
//! the simulation bookkeeping still runs in deterministic fragment order.

use crate::cache::{CacheKey, CacheScope, CachedFragment, FragmentResultCache, PlanFingerprint};
use crate::catalog::Catalog;
use crate::engine::{EngineKind, EngineProfile};
use crate::error::EngineError;
use crate::ops::{OpKind, PhysicalPlan, WorkProfile};
use crate::sim::{FaultPlan, SimulationEnv, SiteAdmission};
use crate::data::Table;
use midas_cloud::{Federation, InstanceType, Money, SiteId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One unit of site-pinned work.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// The operator tree; scans may reference base tables or `@frag<N>`.
    pub plan: PhysicalPlan,
    /// Where it runs.
    pub site: SiteId,
    /// Which engine runs it.
    pub engine: EngineKind,
    /// Instance-type name from the site's catalog.
    pub instance: String,
    /// Number of VMs allocated.
    pub vm_count: u32,
}

/// A whole federated query: fragments in execution (topological) order.
#[derive(Debug, Clone)]
pub struct FederatedQuery {
    /// The fragments; fragment `i` may read the outputs of fragments `< i`.
    pub fragments: Vec<Fragment>,
}

/// Per-fragment accounting.
#[derive(Debug, Clone)]
pub struct FragmentOutcome {
    /// Simulated seconds, transfers included.
    pub elapsed_s: f64,
    /// Money billed for VMs plus egress.
    pub money: Money,
    /// Bytes shipped into this fragment from other sites.
    pub ingress_bytes: u64,
    /// The work the fragment performed.
    pub work: WorkProfile,
}

/// The result of executing a federated query.
#[derive(Debug, Clone)]
pub struct ExecutionOutcome {
    /// The final fragment's output table.
    pub result: Table,
    /// Total simulated wall-clock seconds.
    pub elapsed_s: f64,
    /// Total billed money.
    pub money: Money,
    /// Total intermediate bytes produced across fragments.
    pub intermediate_bytes: u64,
    /// Bytes of base-table data the per-query catalog *references* through
    /// shared `Arc<Table>` handles — the volume the pre-Arc executor
    /// deep-copied for every job.
    pub catalog_shared_bytes: u64,
    /// Bytes of base-table data deep-copied while seeding the per-query
    /// catalog. Structurally zero on the `Arc` path; surfaced (and recorded
    /// by the runtime bench) as a regression gate so a reintroduced
    /// per-job copy fails loudly.
    pub catalog_cloned_bytes: u64,
    /// Fragments served from the result cache instead of executing (their
    /// tables and work profiles are bit-identical to recomputation; only
    /// wall-clock changes — see [`crate::cache`]).
    pub cache_hits: u32,
    /// Per-fragment breakdown.
    pub fragments: Vec<FragmentOutcome>,
}

impl ExecutionOutcome {
    /// The cost vector `(time, money)` the experiments feed estimators.
    pub fn cost_vector(&self) -> Vec<f64> {
        vec![self.elapsed_s, self.money.as_dollars()]
    }
}

/// A convenience bundle describing the canonical two-table QEP
/// configuration: where to join and what to buy there.
#[derive(Debug, Clone, PartialEq)]
pub struct QepConfig {
    /// Join/aggregate site.
    pub join_site: SiteId,
    /// Engine performing the join.
    pub join_engine: EngineKind,
    /// Instance type purchased at the join site.
    pub instance: String,
    /// How many VMs.
    pub vm_count: u32,
}

/// The federated executor.
pub struct Executor<'a> {
    federation: &'a Federation,
    env: SimulationEnv,
    partition_degree: usize,
}

impl<'a> Executor<'a> {
    /// Binds an executor to a federation with a fresh simulation
    /// environment.
    pub fn new(federation: &'a Federation, env: SimulationEnv) -> Self {
        Executor {
            federation,
            env,
            partition_degree: 1,
        }
    }

    /// Sets the intra-operator partition fan-out: hash joins and grouped
    /// aggregations inside every fragment run `degree`-way partitioned on
    /// scoped threads (see [`crate::ops::execute_with_partitions`]). Results, work
    /// profiles and fingerprints are bit-identical at every degree; 0/1 is
    /// the serial path.
    pub fn with_partition_degree(mut self, degree: usize) -> Self {
        self.partition_degree = degree.max(1);
        self
    }

    /// Topology-aware fan-out (see
    /// [`SharedExecutor::with_auto_partition_degree`]): partition degree =
    /// available parallelism, clamped to the engine maximum.
    pub fn with_auto_partition_degree(self) -> Self {
        let degree = crate::ops::default_partition_degree();
        self.with_partition_degree(degree)
    }

    /// Read access to the simulation environment (for tests/experiments).
    pub fn env(&self) -> &SimulationEnv {
        &self.env
    }

    /// Mutable access, e.g. to advance drift between queries.
    pub fn env_mut(&mut self) -> &mut SimulationEnv {
        &mut self.env
    }

    /// Executes a federated query against a shared base-table catalog.
    pub fn run(
        &mut self,
        query: &FederatedQuery,
        base_tables: &Catalog,
    ) -> Result<ExecutionOutcome, EngineError> {
        self.run_with_scale(query, base_tables, 1.0)
    }

    /// Like [`Executor::run`] but treating every physical row as
    /// `work_scale` logical rows.
    ///
    /// Row-capped datasets (see the TPC-H generator's uniform rescale) carry
    /// fewer physical rows than the scale factor nominally implies; passing
    /// `work_scale = 1 / rescale` makes the *simulated* time, transfer and
    /// billing reflect the nominal data volume while the relational work
    /// stays cheap.
    pub fn run_with_scale(
        &mut self,
        query: &FederatedQuery,
        base_tables: &Catalog,
        work_scale: f64,
    ) -> Result<ExecutionOutcome, EngineError> {
        run_federated(
            self.federation,
            &mut EnvHandle::Exclusive(&mut self.env),
            RunOptions {
                admission: None,
                pacing: 0.0,
                parallel: false,
                work_scale,
                partition_degree: self.partition_degree,
                faults: None,
                cache: None,
            },
            query,
            base_tables,
        )
    }
}

/// How one [`run_federated`] call reaches a shared [`FragmentResultCache`]:
/// the cache itself, the sharing-scope policy, who is asking, and the
/// identity of every pinned base table (see [`crate::cache`] for why these
/// four pieces make a hit sound).
#[derive(Clone, Copy)]
pub struct ResultCacheBinding<'a> {
    /// The shared cache.
    pub cache: &'a FragmentResultCache,
    /// The sharing-domain policy in force for this run.
    pub scope: CacheScope,
    /// The submitting tenant — the `PerTenant` scope component and the
    /// eviction owner of any entries this run inserts.
    pub tenant: &'a str,
    /// `name → id` identities of the pinned catalog version's tables
    /// (see `CatalogVersion::table_ids`). Fragments scanning a table
    /// absent from this map are simply not cached.
    pub table_ids: &'a HashMap<String, u64>,
}

/// The fault schedule one run executes under: the plan plus the run's
/// position in fault space (its job's admission sequence plus retry
/// attempt — see [`FaultPlan`]).
#[derive(Debug, Clone, Copy)]
pub struct FaultContext<'a> {
    /// The injected schedule.
    pub plan: &'a FaultPlan,
    /// This run's fault position.
    pub position: u64,
}

impl FaultContext<'_> {
    fn site_down(&self, site: SiteId) -> bool {
        self.plan.site_down(site, self.position)
    }

    fn slowdown(&self, site: SiteId) -> f64 {
        self.plan.slowdown_factor(site, self.position)
    }

    fn capped(&self, site: SiteId) -> bool {
        self.plan.admission_capped(site, self.position)
    }
}

/// Per-run execution knobs of [`run_federated`].
struct RunOptions<'a> {
    /// Per-site admission gates (`None` = unmetered legacy executor).
    admission: Option<&'a SiteAdmission>,
    /// Wall seconds slept per nominal simulated second of site occupancy.
    pacing: f64,
    /// Run independent fragments of one wave on scoped threads.
    parallel: bool,
    /// Logical rows per physical row.
    work_scale: f64,
    /// Intra-operator partition fan-out for joins/aggregations.
    partition_degree: usize,
    /// Injected faults (`None` = a healthy federation).
    faults: Option<FaultContext<'a>>,
    /// Shared fragment-result cache (`None` = always execute cold).
    cache: Option<ResultCacheBinding<'a>>,
}

/// How a run reaches the simulation environment: exclusively (the legacy
/// single-threaded [`Executor`]) or through a shared lock (the concurrent
/// [`SharedExecutor`]). Both take the env ops (`load`, `noise`, `tick`) on
/// exactly the same code path, which is what makes a single-worker shared
/// run bit-identical to a sequential one.
enum EnvHandle<'e> {
    /// Direct mutable access.
    Exclusive(&'e mut SimulationEnv),
    /// Lock-per-fragment access.
    Shared(&'e Mutex<SimulationEnv>),
}

impl EnvHandle<'_> {
    fn with<R>(&mut self, f: impl FnOnce(&mut SimulationEnv) -> R) -> R {
        match self {
            EnvHandle::Exclusive(env) => f(env),
            // Recover a poisoned env instead of cascading: the guarded
            // drift/clock state is plain arithmetic kept consistent at
            // every unlock, and one panicked job must not abort the whole
            // runtime's simulation.
            EnvHandle::Shared(env) => f(&mut env
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)),
        }
    }
}

/// An executor over a *shared* simulation environment, safe to call from
/// many worker threads at once.
///
/// Three concurrency controls compose here:
///
/// 1. **Per-site admission** — before a fragment's relational work runs, a
///    slot is acquired from the [`SiteAdmission`] gate of its site; workers
///    queue when the site is saturated, exactly like queries queue on a real
///    federation site with a bounded resource pool.
/// 2. **Locked env sections** — the drift/noise/clock bookkeeping of each
///    fragment happens under one short lock of the shared
///    [`SimulationEnv`], so per-site RNG streams stay internally
///    consistent no matter how executions interleave.
/// 3. **Pacing** — optionally, each fragment *occupies its site slot* for a
///    wall-clock duration proportional to its **nominal** occupancy (its
///    work profile simulated at unit load with no noise; `pacing` wall
///    seconds per nominal simulated second). This models what a runtime
///    actually experiences while a remote site executes a fragment: the
///    submitting worker waits, and *other* queries can run meanwhile.
///    Pacing never feeds back into simulated outcomes, and because the
///    nominal base is a pure function of plan and data, a workload's total
///    paced wall-clock is identical at every worker count — which is what
///    makes multi-worker throughput numbers comparable.
pub struct SharedExecutor<'a> {
    federation: &'a Federation,
    env: &'a Mutex<SimulationEnv>,
    admission: &'a SiteAdmission,
    pacing: f64,
    parallel_fragments: bool,
    partition_degree: usize,
    faults: Option<FaultContext<'a>>,
    cache: Option<ResultCacheBinding<'a>>,
}

impl<'a> SharedExecutor<'a> {
    /// Binds a shared executor to a federation, a lock-guarded environment
    /// and an admission layer. No pacing by default.
    pub fn new(
        federation: &'a Federation,
        env: &'a Mutex<SimulationEnv>,
        admission: &'a SiteAdmission,
    ) -> Self {
        SharedExecutor {
            federation,
            env,
            admission,
            pacing: 0.0,
            parallel_fragments: false,
            partition_degree: 1,
            faults: None,
            cache: None,
        }
    }

    /// Sets the wall-clock dilation: `pacing` wall seconds slept per
    /// *nominal* simulated second, while the fragment's site slot is held.
    pub fn with_pacing(mut self, pacing: f64) -> Self {
        self.pacing = if pacing.is_finite() && pacing > 0.0 {
            pacing
        } else {
            0.0
        };
        self
    }

    /// Enables intra-query parallelism: mutually independent fragments (one
    /// *wave* of the dependency DAG — e.g. the two scan fragments of a
    /// two-table query) execute concurrently on scoped threads, each under
    /// its own site admission permit.
    ///
    /// Only wall-clock overlap changes: the simulation bookkeeping (load
    /// reads, noise draws, clock ticks) still runs in fragment order, so
    /// the *simulated* outcome of a query is bit-for-bit identical with the
    /// flag on or off.
    pub fn with_parallel_fragments(mut self, enabled: bool) -> Self {
        self.parallel_fragments = enabled;
        self
    }

    /// Sets the intra-operator partition fan-out (see
    /// [`Executor::with_partition_degree`]): wave parallelism overlaps
    /// *fragments*, this overlaps the join/aggregation *inside* one
    /// fragment — both compose under the per-site admission permits.
    pub fn with_partition_degree(mut self, degree: usize) -> Self {
        self.partition_degree = degree.max(1);
        self
    }

    /// Topology-aware fan-out: sets the partition degree to
    /// [`crate::ops::default_partition_degree`] — the host's available
    /// parallelism clamped to the engine maximum — so callers get the
    /// sharded paths exactly when the hardware can overlap them (and the
    /// deterministic serial path on a single-core host).
    pub fn with_auto_partition_degree(self) -> Self {
        let degree = crate::ops::default_partition_degree();
        self.with_partition_degree(degree)
    }

    /// Runs this executor under an injected fault schedule at the given
    /// fault position (see [`FaultPlan`]): fragments bound to a down site
    /// fail with [`EngineError::SiteUnavailable`] *before* taking an
    /// admission slot, slowdown windows multiply the site's load inside the
    /// fragment's env section, and flap windows cap the site's admission
    /// gate at one slot. Positions outside every window execute exactly the
    /// healthy path — bit-for-bit, since a 1.0 slowdown multiplies load by
    /// exactly 1.0 and consumes no extra RNG draws.
    pub fn with_faults(mut self, plan: &'a FaultPlan, position: u64) -> Self {
        self.faults = Some(FaultContext { plan, position });
        self
    }

    /// Serves fragments from (and populates) a shared result cache: before
    /// a fragment takes its admission slot, its cache key — sharing scope,
    /// the canonical fingerprint of its dependency-closure plans, and the
    /// pinned identities of every base table the closure reads — is looked
    /// up; a hit returns the `Arc`'d table and work profile without
    /// executing, pacing, or occupying the site. Results and simulated
    /// outcomes are bit-identical either way (the executor is
    /// deterministic; see [`crate::cache`]). Injected site outages still
    /// fail *before* the cache lookup, so fault schedules replay
    /// identically warm or cold.
    pub fn with_result_cache(mut self, binding: ResultCacheBinding<'a>) -> Self {
        self.cache = Some(binding);
        self
    }

    /// Executes a federated query against base tables (logical scale 1).
    pub fn run(
        &self,
        query: &FederatedQuery,
        base_tables: &Catalog,
    ) -> Result<ExecutionOutcome, EngineError> {
        self.run_with_scale(query, base_tables, 1.0)
    }

    /// Like [`SharedExecutor::run`] with an explicit logical work scale
    /// (see [`Executor::run_with_scale`]).
    pub fn run_with_scale(
        &self,
        query: &FederatedQuery,
        base_tables: &Catalog,
        work_scale: f64,
    ) -> Result<ExecutionOutcome, EngineError> {
        run_federated(
            self.federation,
            &mut EnvHandle::Shared(self.env),
            RunOptions {
                admission: Some(self.admission),
                pacing: self.pacing,
                parallel: self.parallel_fragments,
                work_scale,
                partition_degree: self.partition_degree,
                faults: self.faults,
                cache: self.cache,
            },
            query,
            base_tables,
        )
    }
}

/// The one federated-execution loop behind both executors.
///
/// Execution is staged so the *relational* work (pure data processing over
/// the shared catalog) decouples from the *simulation* bookkeeping:
///
/// 1. **Dependency analysis** groups fragments into waves — fragment `i`'s
///    wave is its depth in the `@frag` dependency DAG, so fragments of one
///    wave are mutually independent.
/// 2. **Relational phase**, wave by wave: each fragment acquires its site
///    permit, runs [`execute`] over the catalog, holds the permit through
///    its paced occupancy, then releases. With `parallel` on, a wave's
///    fragments do this on scoped threads concurrently. Cross-site
///    transfer costs and instance shapes are resolved before the wave
///    (pure functions of earlier waves' outputs).
/// 3. **Simulation phase**: after each wave, one env section per newly
///    completed fragment (read load, draw noise, tick the clock) plus
///    billing — always consumed in fragment *index* order, advancing a
///    cursor over the completed prefix. On a failure the cursor still
///    advances over the fragments that did complete before the error is
///    surfaced, so a shared env sees the same draws/ticks the historical
///    fragment-at-a-time loop had already consumed when *it* hit the
///    error.
///
/// Because simulation sections always run in index order and the
/// relational phase never touches the env, the simulated outcome is
/// bit-for-bit identical whether a wave executed serially or in parallel —
/// and identical to the historical fragment-at-a-time loop. One caveat on
/// *error* paths of non-prefix DAGs (a lower-index fragment scheduled in a
/// later wave than a failing higher-index one — impossible for the
/// prepare/prepare/combine plans [`crate::exec`] callers assemble): the
/// failing wave surfaces its own lowest-index error, and env sections of
/// lower-index fragments that never executed are not replayed. Malformed
/// (forward-referencing) queries likewise fail during up-front validation,
/// before any env interaction.
fn run_federated(
    federation: &Federation,
    env: &mut EnvHandle<'_>,
    opts: RunOptions<'_>,
    query: &FederatedQuery,
    base_tables: &Catalog,
) -> Result<ExecutionOutcome, EngineError> {
    let RunOptions {
        admission,
        pacing,
        parallel,
        work_scale,
        partition_degree,
        faults,
        cache,
    } = opts;
    let work_scale = if work_scale.is_finite() && work_scale > 0.0 {
        work_scale
    } else {
        1.0
    };
    let n = query.fragments.len();

    // Dependency analysis: reject forward references, assign waves.
    let mut deps: Vec<Vec<usize>> = Vec::with_capacity(n);
    let mut wave_of: Vec<usize> = Vec::with_capacity(n);
    for (idx, fragment) in query.fragments.iter().enumerate() {
        let frag_deps = referenced_fragments(&fragment.plan);
        if let Some(&dep) = frag_deps.iter().find(|&&dep| dep >= idx) {
            return Err(EngineError::Unavailable(format!(
                "fragment {idx} references later fragment {dep}"
            )));
        }
        wave_of.push(frag_deps.iter().map(|&d| wave_of[d] + 1).max().unwrap_or(0));
        deps.push(frag_deps);
    }
    let n_waves = wave_of.iter().max().map_or(0, |&w| w + 1);

    // Result-cache keys, one per fragment. A fragment's key covers its
    // whole dependency *closure* — the canonical fingerprint of every plan
    // it transitively consumes (in ascending fragment order; `@frag`
    // references inside the plans pin the wiring) plus the pinned identity
    // of every base table the closure scans. Equal keys therefore imply
    // the same deterministic computation over the same data. A fragment
    // scanning a table with no identity in the binding is not cacheable.
    let cache_keys: Vec<Option<CacheKey>> = if let Some(binding) = cache {
        let mut closures: Vec<Vec<usize>> = Vec::with_capacity(n);
        for (idx, frag_deps) in deps.iter().enumerate() {
            let mut closure = vec![idx];
            for &dep in frag_deps {
                closure.extend(closures[dep].iter().copied());
            }
            closure.sort_unstable();
            closure.dedup();
            closures.push(closure);
        }
        (0..n)
            .map(|idx| {
                let closure = &closures[idx];
                let mut tables: Vec<(String, u64)> = Vec::new();
                for &member in closure {
                    for name in referenced_base_tables(&query.fragments[member].plan) {
                        if tables.iter().any(|(t, _)| *t == name) {
                            continue;
                        }
                        let id = *binding.table_ids.get(&name)?;
                        tables.push((name, id));
                    }
                }
                let fingerprint = PlanFingerprint::of_plans(
                    closure.iter().map(|&i| &query.fragments[i].plan),
                );
                let scope = binding
                    .scope
                    .key(binding.tenant, query.fragments[idx].site);
                Some(CacheKey::new(scope, fingerprint, tables))
            })
            .collect()
    } else {
        (0..n).map(|_| None).collect()
    };

    // Seed the execution catalog with only the base tables the query's
    // scans actually reference — by `Arc::clone`, a refcount bump. The
    // shared/cloned split is *measured* by pointer identity against the
    // base catalog, not assumed: if seeding ever regresses to a deep copy
    // (a fresh allocation), those bytes land in `catalog_cloned_bytes`
    // and trip the runtime bench's zero-copy gate.
    let mut catalog = Catalog::new();
    let mut catalog_shared_bytes = 0u64;
    let mut catalog_cloned_bytes = 0u64;
    for fragment in &query.fragments {
        for name in referenced_base_tables(&fragment.plan) {
            if catalog.contains(&name) {
                continue;
            }
            if let Some(table) = base_tables.get_shared(&name) {
                catalog.insert_shared(name.clone(), Arc::clone(table));
                let seeded = catalog.get_shared(&name).expect("just inserted");
                if Arc::ptr_eq(seeded, table) {
                    catalog_shared_bytes += table.estimated_bytes();
                } else {
                    catalog_cloned_bytes += table.estimated_bytes();
                }
            }
        }
    }

    // Per-fragment state filled wave by wave.
    let mut executed: Vec<Option<(Arc<Table>, WorkProfile)>> = (0..n).map(|_| None).collect();
    let mut shapes: Vec<Option<Result<InstanceType, EngineError>>> =
        (0..n).map(|_| None).collect();
    let mut transfers: Vec<(f64, Money, u64)> = vec![(0.0, Money::ZERO, 0); n];
    let mut frag_bytes: Vec<u64> = vec![0; n];
    let mut cache_hits = 0u32;
    let mut sim = SimCursor::new(n);

    for wave in 0..n_waves {
        let members: Vec<usize> = (0..n).filter(|&i| wave_of[i] == wave).collect();

        // Pure pre-computation: cross-site transfer of every upstream
        // fragment output this wave scans, and instance-shape resolution
        // (needed in-phase for paced occupancy; its error, if any, is
        // surfaced in fragment order below).
        for &idx in &members {
            let fragment = &query.fragments[idx];
            let mut transfer_s = 0.0;
            let mut transfer_money = Money::ZERO;
            let mut ingress = 0u64;
            for &dep in &deps[idx] {
                let from = query.fragments[dep].site;
                if from != fragment.site {
                    let bytes = (frag_bytes[dep] as f64 * work_scale) as u64;
                    let est = federation.transfer(from, fragment.site, bytes);
                    transfer_s += est.seconds;
                    transfer_money += federation.transfer_cost(from, fragment.site, bytes);
                    ingress += bytes;
                }
            }
            transfers[idx] = (transfer_s, transfer_money, ingress);
            shapes[idx] = Some(
                federation
                    .site(fragment.site)
                    .catalog
                    .by_name(&fragment.instance)
                    .cloned()
                    .ok_or_else(|| {
                        EngineError::Unavailable(format!(
                            "instance {} at site {}",
                            fragment.instance,
                            federation.site(fragment.site).name
                        ))
                    }),
            );
        }

        // Relational phase. Queue for an execution slot at the fragment's
        // site; the permit is held across the relational work AND the
        // paced wait, because that is the span during which the site is
        // actually busy. Nominal occupancy (unit load, no noise) is a pure
        // function of plan and data, so every run sleeps the same total
        // regardless of interleaving — throughput comparisons across
        // worker counts (and fragment-parallel modes) measure overlap,
        // not luck.
        let run_one = |idx: usize| -> Result<(Arc<Table>, WorkProfile, bool), EngineError> {
            let fragment = &query.fragments[idx];
            // Injected outage: the site refuses the fragment before a slot
            // is even taken (a down site has no queue to wait in) — and
            // before the cache is consulted, so a fault schedule replays
            // identically whether the cache is warm or cold.
            if let Some(f) = faults {
                if f.site_down(fragment.site) {
                    return Err(EngineError::SiteUnavailable {
                        site: fragment.site,
                    });
                }
            }
            // Cache hit: the fragment's output already exists — return it
            // without taking a site slot, executing, or pacing. The cached
            // table and work profile are bit-identical to what execution
            // would produce, so everything downstream (simulation,
            // billing, transfers) is unchanged.
            if let (Some(binding), Some(key)) = (cache, &cache_keys[idx]) {
                if let Some(hit) = binding.cache.get(key) {
                    return Ok((Arc::clone(&hit.table), hit.work.clone(), true));
                }
            }
            let capped = faults.is_some_and(|f| f.capped(fragment.site));
            let permit = admission.map(|a| a.acquire_capped(fragment.site, capped));
            let result =
                crate::fused::execute_fused_with_partitions(&fragment.plan, &catalog, partition_degree);
            if pacing > 0.0 {
                if let (Ok((_, work)), Some(Ok(shape))) = (&result, &shapes[idx]) {
                    let workers = fragment.vm_count.max(1) * shape.vcpus.max(1);
                    let profile = EngineProfile::for_engine(fragment.engine);
                    let nominal_s = transfers[idx].0
                        + simulate_fragment_seconds_scaled(
                            work, &profile, workers, 1.0, 1.0, work_scale,
                        );
                    std::thread::sleep(Duration::from_secs_f64(nominal_s * pacing));
                }
            }
            drop(permit);
            let (table, work) = result?;
            let table = Arc::new(table);
            if let (Some(binding), Some(key)) = (cache, &cache_keys[idx]) {
                binding.cache.insert(
                    key.clone(),
                    Arc::new(CachedFragment {
                        table: Arc::clone(&table),
                        work: work.clone(),
                    }),
                    binding.tenant,
                );
            }
            Ok((table, work, false))
        };
        // Admission-aware LPT launch order: within a *parallel* wave, start
        // the fragment with the largest estimated relational input first.
        // When two fragments of one wave target the same saturated site,
        // the longest one entering the admission queue first shrinks the
        // wave's critical path (classic longest-processing-time
        // scheduling); the estimate is a pure function of the catalog, so
        // the order is deterministic, and simulated outcomes are unaffected
        // because the simulation phase below always consumes fragments in
        // index order. Serial execution and single-fragment waves gain
        // nothing from reordering, so they keep the historical index order
        // (and skip the estimation walk entirely).
        let launch_order = if parallel && members.len() > 1 {
            lpt_launch_order(&members, |idx| {
                let fragment = &query.fragments[idx];
                let base: u64 = referenced_base_tables(&fragment.plan)
                    .iter()
                    .filter_map(|name| catalog.get_shared(name).map(|t| t.estimated_bytes()))
                    .sum();
                base + deps[idx].iter().map(|&d| frag_bytes[d]).sum::<u64>()
            })
        } else {
            members.clone()
        };
        // (table, work profile, served-from-cache) per fragment.
        type FragmentRun = Result<(Arc<Table>, WorkProfile, bool), EngineError>;
        let results: Vec<FragmentRun> =
            if parallel && launch_order.len() > 1 {
                std::thread::scope(|scope| {
                    let handles: Vec<_> = launch_order
                        .iter()
                        .map(|&idx| scope.spawn(move || run_one(idx)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("fragment thread panicked"))
                        .collect()
                })
            } else {
                launch_order.iter().map(|&idx| run_one(idx)).collect()
            };

        // Collect in fragment order (launch order was LPT; sorting back
        // restores it); the lowest-index failure wins, with a fragment's
        // execution error preceding its instance-lookup error — exactly
        // what the sequential fragment-at-a-time loop surfaced. Before
        // surfacing an error, the sim cursor advances over the fragments
        // that *did* complete, consuming the env draws/ticks the
        // sequential loop had already consumed at that point — a shared
        // env must end an aborted query in the same state either way.
        let mut collected: Vec<_> = launch_order.into_iter().zip(results).collect();
        collected.sort_by_key(|(idx, _)| *idx);
        for (idx, result) in collected {
            let (table, work, hit) = match result {
                Ok(ok) => ok,
                Err(e) => {
                    sim.advance(env, federation, query, &mut executed, &mut shapes, &transfers, work_scale, faults);
                    return Err(e);
                }
            };
            if shapes[idx].as_ref().is_some_and(|shape| shape.is_err()) {
                sim.advance(env, federation, query, &mut executed, &mut shapes, &transfers, work_scale, faults);
                return Err(shapes[idx].take().expect("staged").unwrap_err());
            }
            cache_hits += hit as u32;
            frag_bytes[idx] = table.estimated_bytes();
            catalog.insert_shared(format!("@frag{idx}"), Arc::clone(&table));
            executed[idx] = Some((table, work));
        }
        sim.advance(env, federation, query, &mut executed, &mut shapes, &transfers, work_scale, faults);
    }

    // The catalog holds the only other reference to the final fragment's
    // output; dropping it first makes the unwrap zero-copy.
    drop(catalog);
    let result = match sim.last_table {
        Some(table) => Arc::try_unwrap(table).unwrap_or_else(|shared| (*shared).clone()),
        None => Table::empty("empty"),
    };

    Ok(ExecutionOutcome {
        result,
        elapsed_s: sim.total_elapsed,
        money: sim.total_money,
        intermediate_bytes: sim.total_intermediate,
        catalog_shared_bytes,
        catalog_cloned_bytes,
        cache_hits,
        fragments: sim.outcomes,
    })
}

/// The simulation-phase cursor of [`run_federated`]: consumes completed
/// fragments strictly in index order, giving each its env section (read
/// load, draw noise, advance the world by the fragment's elapsed time —
/// the three ops atomic under one lock, preserving per-site RNG stream
/// consistency no matter how the relational phase interleaved) and its
/// billing.
struct SimCursor {
    /// Fragments `[0, next)` have been simulated and billed.
    next: usize,
    outcomes: Vec<FragmentOutcome>,
    last_table: Option<Arc<Table>>,
    total_elapsed: f64,
    total_money: Money,
    total_intermediate: u64,
}

impl SimCursor {
    fn new(n: usize) -> Self {
        SimCursor {
            next: 0,
            outcomes: Vec::with_capacity(n),
            last_table: None,
            total_elapsed: 0.0,
            total_money: Money::ZERO,
            total_intermediate: 0,
        }
    }

    /// Processes the maximal completed prefix of fragments past the
    /// cursor. Entries consumed here always have an `Ok` shape — the wave
    /// collector surfaces shape errors before marking a fragment executed.
    #[allow(clippy::too_many_arguments)]
    fn advance(
        &mut self,
        env: &mut EnvHandle<'_>,
        federation: &Federation,
        query: &FederatedQuery,
        executed: &mut [Option<(Arc<Table>, WorkProfile)>],
        shapes: &mut [Option<Result<InstanceType, EngineError>>],
        transfers: &[(f64, Money, u64)],
        work_scale: f64,
        faults: Option<FaultContext<'_>>,
    ) {
        while self.next < executed.len() && executed[self.next].is_some() {
            let idx = self.next;
            let fragment = &query.fragments[idx];
            let (table, work) = executed[idx].take().expect("checked above");
            let shape = shapes[idx]
                .take()
                .expect("resolved with its wave")
                .expect("errors surfaced before execution was recorded");
            let (transfer_s, transfer_money, ingress) = transfers[idx];
            let workers = fragment.vm_count.max(1) * shape.vcpus.max(1);
            let profile = EngineProfile::for_engine(fragment.engine);
            let elapsed = env.with(|env| {
                // An injected slowdown multiplies the site's load; it never
                // consumes RNG, so positions outside every window simulate
                // bit-identically to a fault-free run (x * 1.0 == x).
                let slowdown = faults.map_or(1.0, |f| f.slowdown(fragment.site));
                let load = env.load(fragment.site) * slowdown;
                let noise = env.noise(fragment.site);
                let compute_s = simulate_fragment_seconds_scaled(
                    &work, &profile, workers, load, noise, work_scale,
                );
                let elapsed = compute_s + transfer_s;
                // The world moves on while the fragment runs.
                env.tick(elapsed);
                elapsed
            });

            // Billing: VMs for the fragment duration plus the egress
            // already accounted.
            let site = federation.site(fragment.site);
            let vm_money = site
                .pricing
                .instance_cost(&shape, fragment.vm_count.max(1), elapsed);
            let money = vm_money + transfer_money;

            self.total_intermediate += work.total_intermediate_bytes();
            self.total_elapsed += elapsed;
            self.total_money += money;
            self.last_table = Some(table);
            self.outcomes.push(FragmentOutcome {
                elapsed_s: elapsed,
                money,
                ingress_bytes: ingress,
                work,
            });
            self.next += 1;
        }
    }
}

/// Longest-processing-time launch order for one wave: `members` sorted by
/// descending `estimate` (estimated relational input bytes), ties broken by
/// ascending fragment index so the order is fully deterministic.
fn lpt_launch_order(members: &[usize], estimate: impl Fn(usize) -> u64) -> Vec<usize> {
    let mut order: Vec<(u64, usize)> = members.iter().map(|&idx| (estimate(idx), idx)).collect();
    order.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    order.into_iter().map(|(_, idx)| idx).collect()
}

/// Base-table scan names (everything but `@frag<N>`) referenced by a plan.
fn referenced_base_tables(plan: &PhysicalPlan) -> Vec<String> {
    fn walk(plan: &PhysicalPlan, out: &mut Vec<String>) {
        match plan {
            PhysicalPlan::Scan { table } | PhysicalPlan::PrunedScan { table, .. } => {
                if !table.starts_with("@frag") && !out.iter().any(|t| t == table) {
                    out.push(table.clone());
                }
            }
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Aggregate { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. } => walk(input, out),
            PhysicalPlan::HashJoin { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
        }
    }
    let mut out = Vec::new();
    walk(plan, &mut out);
    out
}

/// Scan names of the form `@frag<N>` referenced by a plan.
fn referenced_fragments(plan: &PhysicalPlan) -> Vec<usize> {
    let mut deps = Vec::new();
    collect_refs(plan, &mut deps);
    deps.sort_unstable();
    deps.dedup();
    deps
}

fn collect_refs(plan: &PhysicalPlan, out: &mut Vec<usize>) {
    match plan {
        PhysicalPlan::Scan { table } | PhysicalPlan::PrunedScan { table, .. } => {
            if let Some(rest) = table.strip_prefix("@frag") {
                if let Ok(idx) = rest.parse::<usize>() {
                    out.push(idx);
                }
            }
        }
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Aggregate { input, .. }
        | PhysicalPlan::Sort { input, .. }
        | PhysicalPlan::Limit { input, .. } => collect_refs(input, out),
        PhysicalPlan::HashJoin { left, right, .. } => {
            collect_refs(left, out);
            collect_refs(right, out);
        }
    }
}

/// Converts a work profile into simulated seconds for one fragment.
pub fn simulate_fragment_seconds(
    work: &WorkProfile,
    profile: &EngineProfile,
    workers: u32,
    load: f64,
    noise: f64,
) -> f64 {
    simulate_fragment_seconds_scaled(work, profile, workers, load, noise, 1.0)
}

/// [`simulate_fragment_seconds`] with each physical row standing in for
/// `work_scale` logical rows.
pub fn simulate_fragment_seconds_scaled(
    work: &WorkProfile,
    profile: &EngineProfile,
    workers: u32,
    load: f64,
    noise: f64,
    work_scale: f64,
) -> f64 {
    let mut cpu_us = 0.0;
    for op in &work.ops {
        let n = op.rows_in as f64 * work_scale;
        cpu_us += match op.kind {
            OpKind::Scan => n * profile.scan_us_per_tuple,
            OpKind::Join => n * profile.join_us_per_tuple,
            OpKind::Aggregate => n * profile.agg_us_per_tuple,
            OpKind::Sort => n * profile.sort_us_per_tuple * (n.max(2.0)).log2(),
            // Filters/projections/limits stream: charge a light per-tuple touch.
            OpKind::Filter | OpKind::Project | OpKind::Limit => n * 0.15,
        };
    }
    let io_s =
        work.scanned_bytes() as f64 * work_scale / (profile.io_mib_s * 1024.0 * 1024.0);
    let speedup = profile.speedup(workers);
    // Load and noise scale the *whole* fragment: a busy cluster delays
    // container startup (YARN queueing) just as it slows the work itself.
    load * noise * (profile.startup_s + (cpu_us / 1e6 + io_s) / speedup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Column, ColumnData};
    use crate::expr::Expr;
    use crate::ops::JoinType;
    use crate::sim::DriftIntensity;
    use midas_cloud::federation::example_federation;

    fn base_tables(rows: usize) -> Catalog {
        let left = Table::new(
            "left",
            vec![
                Column::new("k", ColumnData::Int64((0..rows as i64).collect())),
                Column::new(
                    "v",
                    ColumnData::Float64((0..rows).map(|i| i as f64 * 0.5).collect()),
                ),
            ],
        )
        .unwrap();
        let right = Table::new(
            "right",
            vec![Column::new(
                "k",
                ColumnData::Int64((0..rows as i64 / 2).collect()),
            )],
        )
        .unwrap();
        let mut m = Catalog::new();
        m.insert("left", left);
        m.insert("right", right);
        m
    }

    fn two_fragment_query(a: SiteId, b: SiteId) -> FederatedQuery {
        // Fragment 0: scan+filter `right` at site B.
        // Fragment 1: join with `left` at site A (ships frag0 across).
        FederatedQuery {
            fragments: vec![
                Fragment {
                    plan: PhysicalPlan::Filter {
                        input: Box::new(PhysicalPlan::Scan {
                            table: "right".to_string(),
                        }),
                        predicate: Expr::col(0).ge(Expr::int(0)),
                    },
                    site: b,
                    engine: EngineKind::PostgreSql,
                    instance: "B2S".to_string(),
                    vm_count: 1,
                },
                Fragment {
                    plan: PhysicalPlan::HashJoin {
                        left: Box::new(PhysicalPlan::Scan {
                            table: "left".to_string(),
                        }),
                        right: Box::new(PhysicalPlan::Scan {
                            table: "@frag0".to_string(),
                        }),
                        left_keys: vec![0],
                        right_keys: vec![0],
                        join_type: JoinType::Inner,
                    },
                    site: a,
                    engine: EngineKind::Hive,
                    instance: "a1.large".to_string(),
                    vm_count: 2,
                },
            ],
        }
    }

    fn executor(fed: &Federation) -> Executor<'_> {
        let mut env = SimulationEnv::new();
        for site in fed.site_ids() {
            env.register_site(site, 42, DriftIntensity::Mild);
        }
        Executor::new(fed, env)
    }

    #[test]
    fn runs_and_joins_across_sites() {
        let (fed, a, b) = example_federation();
        let mut ex = executor(&fed);
        let out = ex.run(&two_fragment_query(a, b), &base_tables(100)).unwrap();
        assert_eq!(out.result.n_rows(), 50);
        assert!(out.elapsed_s > 0.0);
        assert!(out.money > Money::ZERO);
        assert_eq!(out.fragments.len(), 2);
        // The join fragment ingested the shipped fragment output.
        assert!(out.fragments[1].ingress_bytes > 0);
        assert_eq!(out.fragments[0].ingress_bytes, 0);
    }

    #[test]
    fn hive_startup_dominates_small_queries() {
        let (fed, a, b) = example_federation();
        let mut ex = executor(&fed);
        let out = ex.run(&two_fragment_query(a, b), &base_tables(10)).unwrap();
        // Fragment 1 runs on Hive: on a 10-row input its startup latency is
        // essentially the whole cost (Mild drift keeps load within ~0.3 of
        // nominal, so 4 s x load stays well above 2 s).
        assert!(out.fragments[1].elapsed_s >= 2.0, "{}", out.fragments[1].elapsed_s);
        // Fragment 0 on PostgreSQL has near-zero startup.
        assert!(out.fragments[0].elapsed_s < 1.0);
    }

    #[test]
    fn more_data_costs_more_time() {
        let (fed, a, b) = example_federation();
        let small = executor(&fed)
            .run(&two_fragment_query(a, b), &base_tables(100))
            .unwrap();
        let big = executor(&fed)
            .run(&two_fragment_query(a, b), &base_tables(100_000))
            .unwrap();
        assert!(big.elapsed_s > small.elapsed_s);
        assert!(big.money >= small.money);
    }

    #[test]
    fn unknown_instance_is_reported() {
        let (fed, a, b) = example_federation();
        let mut q = two_fragment_query(a, b);
        q.fragments[1].instance = "m5.mega".to_string();
        let err = executor(&fed).run(&q, &base_tables(10));
        assert!(matches!(err, Err(EngineError::Unavailable(_))));
    }

    #[test]
    fn forward_reference_is_rejected() {
        let (fed, a, _) = example_federation();
        let q = FederatedQuery {
            fragments: vec![Fragment {
                plan: PhysicalPlan::Scan {
                    table: "@frag5".to_string(),
                },
                site: a,
                engine: EngineKind::Spark,
                instance: "a1.medium".to_string(),
                vm_count: 1,
            }],
        };
        let err = executor(&fed).run(&q, &Catalog::new());
        assert!(matches!(err, Err(EngineError::Unavailable(_))));
    }

    #[test]
    fn failed_query_still_consumes_completed_fragments_env_sections() {
        let (fed, a, b) = example_federation();
        // Fragment 0 scans a present table; fragment 1 scans a missing one
        // (both in wave 0 — no dependencies).
        let q = FederatedQuery {
            fragments: vec![
                Fragment {
                    plan: PhysicalPlan::Scan {
                        table: "right".to_string(),
                    },
                    site: b,
                    engine: EngineKind::PostgreSql,
                    instance: "B2S".to_string(),
                    vm_count: 1,
                },
                Fragment {
                    plan: PhysicalPlan::Scan {
                        table: "ghost".to_string(),
                    },
                    site: a,
                    engine: EngineKind::Hive,
                    instance: "a1.large".to_string(),
                    vm_count: 1,
                },
            ],
        };
        let mut ex = executor(&fed);
        let err = ex.run(&q, &base_tables(50));
        assert!(matches!(err, Err(EngineError::UnknownTable(_))));
        // The completed fragment's env section (load, noise, tick) was
        // consumed before the error surfaced — exactly the state the
        // sequential fragment-at-a-time loop left a shared env in.
        let clock_after_failure = ex.env().clock_s;
        assert!(clock_after_failure > 0.0);
        let q0 = FederatedQuery {
            fragments: vec![q.fragments[0].clone()],
        };
        let mut ex0 = executor(&fed);
        ex0.run(&q0, &base_tables(50)).unwrap();
        assert_eq!(ex0.env().clock_s.to_bits(), clock_after_failure.to_bits());
    }

    #[test]
    fn lpt_order_is_descending_cost_with_index_ties() {
        let sizes = [10u64, 40, 40, 5];
        let order = lpt_launch_order(&[0, 1, 2, 3], |idx| sizes[idx]);
        assert_eq!(order, vec![1, 2, 0, 3]);
        // Degenerate waves pass through.
        assert_eq!(lpt_launch_order(&[7], |_| 0), vec![7]);
        assert!(lpt_launch_order(&[], |_| 0).is_empty());
    }

    #[test]
    fn lpt_launch_keeps_simulated_outcomes_and_error_order() {
        // Fragment 0 is *smaller* than fragment 1 in wave 0, so a parallel
        // wave launches 1 before 0 (LPT) — yet the simulated outcome must
        // be bit-identical to the serial index-order run (the sim cursor
        // still consumes in index order), and the lowest-index error must
        // still win.
        let (fed, a, b) = example_federation();
        let q = FederatedQuery {
            fragments: vec![
                Fragment {
                    plan: PhysicalPlan::Scan {
                        table: "right".to_string(),
                    },
                    site: b,
                    engine: EngineKind::PostgreSql,
                    instance: "B2S".to_string(),
                    vm_count: 1,
                },
                Fragment {
                    plan: PhysicalPlan::Scan {
                        table: "left".to_string(),
                    },
                    site: a,
                    engine: EngineKind::Hive,
                    instance: "a1.large".to_string(),
                    vm_count: 1,
                },
            ],
        };
        let tables = base_tables(200);
        let serial = executor(&fed).run(&q, &tables).unwrap();
        assert_eq!(serial.fragments.len(), 2);
        // Parallel (LPT-ordered) execution of the same wave, same seed.
        let mut env = SimulationEnv::new();
        for site in fed.site_ids() {
            env.register_site(site, 42, DriftIntensity::Mild);
        }
        let env = Mutex::new(env);
        let admission = SiteAdmission::unmetered();
        let parallel = SharedExecutor::new(&fed, &env, &admission)
            .with_parallel_fragments(true)
            .run(&q, &tables)
            .unwrap();
        assert_eq!(parallel.elapsed_s.to_bits(), serial.elapsed_s.to_bits());
        assert_eq!(parallel.money, serial.money);
        assert_eq!(parallel.result, serial.result);
        // Both orders of a missing-table wave surface the lowest index.
        let mut ghost = q.clone();
        ghost.fragments[0].plan = PhysicalPlan::Scan {
            table: "ghost0".to_string(),
        };
        ghost.fragments[1].plan = PhysicalPlan::Scan {
            table: "ghost1".to_string(),
        };
        match executor(&fed).run(&ghost, &tables) {
            Err(EngineError::UnknownTable(t)) => assert_eq!(t, "ghost0"),
            other => panic!("expected UnknownTable(ghost0), got {other:?}"),
        }
    }

    #[test]
    fn cached_run_is_bit_identical_to_cold_and_skips_execution() {
        let (fed, a, b) = example_federation();
        let q = two_fragment_query(a, b);
        let tables = base_tables(300);
        // Table identities for the binding — any stable ids work at this
        // layer; the runtime supplies `CatalogVersion::table_ids()`.
        let ids: HashMap<String, u64> =
            [("left".to_string(), 1), ("right".to_string(), 2)].into();
        let cache = FragmentResultCache::new(16 << 20);
        let mk_env = || {
            let mut env = SimulationEnv::new();
            for site in fed.site_ids() {
                env.register_site(site, 42, DriftIntensity::Mild);
            }
            Mutex::new(env)
        };
        let admission = SiteAdmission::unmetered();
        let binding = ResultCacheBinding {
            cache: &cache,
            scope: CacheScope::FederationGlobal,
            tenant: "h-A",
            table_ids: &ids,
        };
        let env_cold = mk_env();
        let cold = SharedExecutor::new(&fed, &env_cold, &admission)
            .with_result_cache(binding)
            .run(&q, &tables)
            .unwrap();
        assert_eq!(cold.cache_hits, 0);
        let env_warm = mk_env();
        let warm = SharedExecutor::new(&fed, &env_warm, &admission)
            .with_result_cache(binding)
            .run(&q, &tables)
            .unwrap();
        // Every fragment served from cache; outcome bit-identical.
        assert_eq!(warm.cache_hits, 2);
        assert_eq!(warm.result, cold.result);
        assert_eq!(
            warm.result.fingerprint(),
            cold.result.fingerprint()
        );
        assert_eq!(warm.elapsed_s.to_bits(), cold.elapsed_s.to_bits());
        assert_eq!(warm.money, cold.money);
        for (w, c) in warm.fragments.iter().zip(&cold.fragments) {
            assert_eq!(w.work, c.work);
            assert_eq!(w.elapsed_s.to_bits(), c.elapsed_s.to_bits());
            assert_eq!(w.ingress_bytes, c.ingress_bytes);
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.insertions, 2);
        // A different tenant under PerTenant scope misses everything.
        let scoped = ResultCacheBinding {
            scope: CacheScope::PerTenant,
            tenant: "h-B",
            ..binding
        };
        let env_other = mk_env();
        let other = SharedExecutor::new(&fed, &env_other, &admission)
            .with_result_cache(scoped)
            .run(&q, &tables)
            .unwrap();
        assert_eq!(other.cache_hits, 0);
        // A changed table identity (a publish) also misses.
        let ids2: HashMap<String, u64> =
            [("left".to_string(), 1), ("right".to_string(), 99)].into();
        let stale = ResultCacheBinding {
            table_ids: &ids2,
            ..binding
        };
        let env_stale = mk_env();
        let refreshed = SharedExecutor::new(&fed, &env_stale, &admission)
            .with_result_cache(stale)
            .run(&q, &tables)
            .unwrap();
        assert_eq!(refreshed.cache_hits, 0);
    }

    #[test]
    fn cost_vector_shape() {
        let (fed, a, b) = example_federation();
        let out = executor(&fed)
            .run(&two_fragment_query(a, b), &base_tables(50))
            .unwrap();
        let v = out.cost_vector();
        assert_eq!(v.len(), 2);
        assert!(v[0] > 0.0 && v[1] > 0.0);
    }

    #[test]
    fn clock_advances_with_execution() {
        let (fed, a, b) = example_federation();
        let mut ex = executor(&fed);
        assert_eq!(ex.env().clock_s, 0.0);
        let out = ex.run(&two_fragment_query(a, b), &base_tables(50)).unwrap();
        assert!((ex.env().clock_s - out.elapsed_s).abs() < 1e-9);
    }

    #[test]
    fn work_scale_inflates_simulated_costs_only() {
        let (fed, a, b) = example_federation();
        let tables = base_tables(20_000);
        let q = two_fragment_query(a, b);
        let mk_env = || {
            let mut env = SimulationEnv::new();
            for site in fed.site_ids() {
                env.register_site(site, 2, DriftIntensity::None);
            }
            env
        };
        let out1 = Executor::new(&fed, mk_env())
            .run_with_scale(&q, &tables, 1.0)
            .unwrap();
        let out50 = Executor::new(&fed, mk_env())
            .run_with_scale(&q, &tables, 50.0)
            .unwrap();
        // Same relational result...
        assert_eq!(out1.result.n_rows(), out50.result.n_rows());
        // ...but much more variable time on the low-startup PostgreSQL
        // fragment (Hive's fixed 12 s startup masks the join fragment at
        // this size), plus more money and ingress bytes.
        assert!(
            out50.fragments[0].elapsed_s > out1.fragments[0].elapsed_s * 3.0,
            "scaled {} vs base {}",
            out50.fragments[0].elapsed_s,
            out1.fragments[0].elapsed_s
        );
        assert!(out50.elapsed_s > out1.elapsed_s);
        assert!(out50.money >= out1.money);
        assert_eq!(
            out50.fragments[1].ingress_bytes,
            out1.fragments[1].ingress_bytes * 50
        );
        // Degenerate scales are clamped to 1.0.
        let bad = Executor::new(&fed, mk_env())
            .run_with_scale(&q, &tables, f64::NAN)
            .unwrap();
        assert!((bad.elapsed_s - out1.elapsed_s).abs() < out1.elapsed_s * 0.5);
    }

    #[test]
    fn more_vms_speed_up_parallel_engines() {
        let (fed, a, b) = example_federation();
        let mut q = two_fragment_query(a, b);
        q.fragments[1].engine = EngineKind::Spark; // parallel-friendly
        let tables = base_tables(200_000);

        let out1 = {
            let mut q1 = q.clone();
            q1.fragments[1].vm_count = 1;
            // Drift disabled so the comparison is clean.
            let mut env = SimulationEnv::new();
            for site in fed.site_ids() {
                env.register_site(site, 1, DriftIntensity::None);
            }
            Executor::new(&fed, env).run(&q1, &tables).unwrap()
        };
        let out8 = {
            let mut q8 = q.clone();
            q8.fragments[1].vm_count = 8;
            let mut env = SimulationEnv::new();
            for site in fed.site_ids() {
                env.register_site(site, 1, DriftIntensity::None);
            }
            Executor::new(&fed, env).run(&q8, &tables).unwrap()
        };
        assert!(
            out8.fragments[1].elapsed_s < out1.fragments[1].elapsed_s,
            "8 VMs {} should beat 1 VM {}",
            out8.fragments[1].elapsed_s,
            out1.fragments[1].elapsed_s
        );
    }
}
